"""Tests for the ROBDD engine."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE_NODE, TRUE_NODE, Bdd
from repro.boolfn import ExprBuilder
from repro.errors import SolverError


@pytest.fixture
def bdd():
    return Bdd(["a", "b", "c", "d"])


class TestConstruction:
    def test_terminals(self, bdd):
        assert bdd.const(False) == FALSE_NODE
        assert bdd.const(True) == TRUE_NODE

    def test_var_canonical(self, bdd):
        assert bdd.var("a") == bdd.var("a")

    def test_unknown_var_rejected(self, bdd):
        with pytest.raises(SolverError):
            bdd.var("zz")

    def test_duplicate_order_rejected(self):
        with pytest.raises(SolverError):
            Bdd(["x", "x"])

    def test_node_budget(self):
        small = Bdd([f"v{i}" for i in range(10)], max_nodes=8)
        with pytest.raises(SolverError):
            acc = small.var("v0")
            for i in range(1, 10):
                acc = small.apply_xor(acc, small.apply_and(small.var(f"v{i}"), acc))


class TestCanonicity:
    def test_equal_functions_equal_nodes(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        left = bdd.apply_or(a, b)
        right = bdd.negate(bdd.apply_and(bdd.negate(a), bdd.negate(b)))
        assert left == right

    def test_xor_self_is_false(self, bdd):
        f = bdd.apply_and(bdd.var("a"), bdd.var("b"))
        assert bdd.apply_xor(f, f) == FALSE_NODE

    def test_double_negation(self, bdd):
        f = bdd.apply_or(bdd.var("a"), bdd.var("c"))
        assert bdd.negate(bdd.negate(f)) == f


def _eval_bdd(bdd, node, env):
    while node > TRUE_NODE:
        name = bdd.order[bdd._level[node]]
        node = bdd._high[node] if env[name] else bdd._low[node]
    return node == TRUE_NODE


class TestSemantics:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_matches_expr_evaluation(self, seed):
        import random

        rng = random.Random(seed)
        builder = ExprBuilder()
        names = ["a", "b", "c", "d"]
        pool = [builder.var(n) for n in names]
        for _ in range(6):
            op = rng.choice(["and", "or", "xor", "not"])
            if op == "not":
                pool.append(builder.not_(rng.choice(pool)))
            else:
                args = [rng.choice(pool) for _ in range(rng.randint(2, 3))]
                pool.append(getattr(builder, op + "_")(args))
        expr = pool[-1]
        bdd = Bdd(names)
        node = bdd.from_expr(expr)
        for bits in itertools.product([False, True], repeat=4):
            env = dict(zip(names, bits))
            assert _eval_bdd(bdd, node, env) == builder.evaluate(expr, env)

    def test_restrict(self, bdd):
        builder = ExprBuilder()
        expr = builder.xor_(
            [builder.var("a"), builder.and_([builder.var("b"), builder.var("c")])]
        )
        node = bdd.from_expr(expr)
        low = bdd.restrict(node, "a", False)
        expected = bdd.apply_and(bdd.var("b"), bdd.var("c"))
        assert low == expected
        high = bdd.restrict(node, "a", True)
        assert high == bdd.negate(expected)

    def test_restrict_terminal_passthrough(self, bdd):
        assert bdd.restrict(TRUE_NODE, "a", False) == TRUE_NODE

    def test_boolean_derivative_detects_dependence(self, bdd):
        f = bdd.apply_and(bdd.var("a"), bdd.var("b"))
        derivative = bdd.apply_xor(
            bdd.restrict(f, "a", False), bdd.restrict(f, "a", True)
        )
        assert derivative == bdd.var("b")
        independent = bdd.apply_or(bdd.var("c"), bdd.var("d"))
        derivative2 = bdd.apply_xor(
            bdd.restrict(independent, "a", False),
            bdd.restrict(independent, "a", True),
        )
        assert bdd.is_false(derivative2)


class TestQueries:
    def test_any_sat(self, bdd):
        f = bdd.apply_and(bdd.var("a"), bdd.negate(bdd.var("c")))
        model = bdd.any_sat(f)
        assert model["a"] is True and model["c"] is False
        assert bdd.any_sat(FALSE_NODE) is None

    def test_count_sat(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.count_sat(TRUE_NODE) == 16
        assert bdd.count_sat(FALSE_NODE) == 0
        assert bdd.count_sat(a) == 8
        assert bdd.count_sat(bdd.apply_and(a, b)) == 4
        assert bdd.count_sat(bdd.apply_xor(a, b)) == 8

    def test_size(self, bdd):
        f = bdd.apply_and(bdd.var("a"), bdd.var("b"))
        assert bdd.size(f) == 4  # two internal + two terminals
        assert bdd.size(TRUE_NODE) == 2


class TestScale:
    def test_deep_chain_without_recursion_overflow(self):
        names = [f"v{i}" for i in range(3000)]
        builder = ExprBuilder()
        parity = builder.xor_([builder.var(n) for n in names])
        bdd = Bdd(names)
        acc = bdd.from_expr(parity)
        assert bdd.size(acc) == 2 * 3000 - 1 + 2
        # balanced folding keeps total allocation near n log n
        assert bdd.node_count < 200_000
        low = bdd.restrict(acc, "v1500", False)
        high = bdd.restrict(acc, "v1500", True)
        assert bdd.apply_xor(low, high) == TRUE_NODE

    def test_variable_order_sensitivity(self):
        # The classic (a1 AND b1) OR (a2 AND b2) ... function: linear
        # under interleaved order, exponential under separated order.
        k = 8
        interleaved = [x for i in range(k) for x in (f"a{i}", f"b{i}")]
        separated = [f"a{i}" for i in range(k)] + [f"b{i}" for i in range(k)]

        def build(order):
            bdd = Bdd(order)
            acc = FALSE_NODE
            for i in range(k):
                acc = bdd.apply_or(
                    acc, bdd.apply_and(bdd.var(f"a{i}"), bdd.var(f"b{i}"))
                )
            return bdd.size(acc)

        assert build(separated) > 10 * build(interleaved)
