"""The bench-regression gate must catch real regressions and stay
quiet on noise.  Synthetic records keep the tests hermetic; the last
class drives the CLI end to end, including the acceptance case of an
artificially inflated baseline."""

import json
from pathlib import Path

from benchmarks.check_bench import (
    WALL_FLOOR,
    compare_alloc,
    compare_verify,
    main,
    markdown_summary,
)


def verify_record(
    backend_wall=1.0,
    batch_wall=1.0,
    agree=True,
    safe=True,
    fronts=True,
    bitset_speedup=3600.0,
    bitset_agree=True,
    incremental_ratio=0.9,
    process_speedup=2.4,
    cpu_count=8,
):
    record = {
        "backends": [
            {
                "backend": "bdd",
                "wall_seconds": backend_wall,
                "all_safe": safe,
            },
            {"backend": "dpll", "error": "capped"},
        ],
        "sequential_vs_batch": [
            {
                "backend": "bdd",
                "batch_wall_seconds": batch_wall,
                "verdicts_agree": agree,
            }
        ],
    }
    if fronts:
        record["schema"] = "bench-verify/v2"
        record["fronts"] = [
            {
                "front": "bitset_vs_brute",
                "speedup": bitset_speedup,
                "verdicts_agree": bitset_agree,
            },
            {
                "front": "incremental_vs_fresh",
                "ratio": incremental_ratio,
            },
            {
                "front": "process_vs_thread",
                "speedup": process_speedup,
                "cpu_count": cpu_count,
            },
        ]
    return record


def alloc_record(
    width=8,
    placed=3,
    admitted=40,
    windowed_admitted=44,
    segmented_admitted=45,
    wall=1.0,
    lazy_runs=0,
    stream_speedup=50.0,
    models_agree=True,
    inf_width_match=True,
    inf_plans_match=True,
    segmented_match=True,
    streaming=True,
    fleet=True,
    fleet_admitted=32,
    single_admitted=30,
    frontend=True,
    frontend_staged=1.0,
    frontend_overlapped=1.0,
    lease_granted=True,
    first_lease_wall=0.002,
    staged_parse_wall=0.2,
    adaptive_width=120,
    adaptive_disturbances=8,
    fixed0_disturbances=8,
    restore=True,
    restore_solver_wall=1.0,
    restore_solver_admitted=40,
    restore_solver_leases=20,
):
    record = _alloc_record_base(
        width, placed, admitted, windowed_admitted, segmented_admitted, wall, lazy_runs
    )
    if frontend:
        record["streaming_frontend"] = {
            "workloads": [
                {
                    "workload": "adder32",
                    "gates": 229,
                    "staged_wall_seconds": frontend_staged,
                    "overlapped_wall_seconds": frontend_overlapped,
                }
            ],
            "first_lease": {
                "gates": 4004,
                "prefix_gates": 4,
                "staged_parse_wall_seconds": staged_parse_wall,
                "time_to_first_lease_seconds": first_lease_wall,
                "lease_granted": lease_granted,
            },
            "adaptive": [
                {
                    "policy": "fixed-0",
                    "total_width": 128,
                    "disturbances": fixed0_disturbances,
                },
                {"policy": "fixed-8", "total_width": 120, "disturbances": 8},
                {
                    "policy": "adaptive",
                    "total_width": adaptive_width,
                    "disturbances": adaptive_disturbances,
                },
            ],
        }
    if restore:
        record["restore_check"] = {
            "seed": 2,
            "rows": [
                {
                    "restore_check": "structural",
                    "admitted": 40,
                    "leases_granted": 20,
                    "wall_seconds": wall,
                },
                {
                    "restore_check": "solver",
                    "admitted": restore_solver_admitted,
                    "leases_granted": restore_solver_leases,
                    "wall_seconds": restore_solver_wall,
                },
            ],
            "solver_overhead_fraction": 0.0,
            "segmented_default": "solver",
        }
    if fleet:
        record["fleet"] = {
            "seed": 1,
            "rows": [
                {
                    "label": "single11",
                    "shards": [11],
                    "placement": "least-loaded",
                    "admitted": single_admitted,
                    "migrations": 0,
                    "wall_seconds": wall,
                },
                {
                    "label": "single22",
                    "shards": [22],
                    "placement": "least-loaded",
                    "admitted": single_admitted + 5,
                    "migrations": 0,
                    "wall_seconds": wall,
                },
                {
                    "label": "fleet2x11[least-loaded]",
                    "shards": [11, 11],
                    "placement": "least-loaded",
                    "admitted": fleet_admitted,
                    "migrations": 3,
                    "wall_seconds": wall,
                },
            ],
        }
    if streaming:
        record["streaming"] = {
            "seed": 7,
            "incremental_vs_rescan": [
                {
                    "workload": "generated-216",
                    "speedup": stream_speedup,
                    "models_agree": models_agree,
                }
            ],
            "throughput": {
                "lookahead": 8,
                "gates": 216,
                "gates_per_second": 50000.0,
            },
            "lookahead": [
                {
                    "lookahead": 0,
                    "total_width": 128,
                    "width_matches_offline": False,
                    "plans_match_offline": False,
                },
                {
                    "lookahead": "inf",
                    "total_width": 120,
                    "width_matches_offline": inf_width_match,
                    "plans_match_offline": inf_plans_match,
                },
            ],
            "segmented_parity": {
                "circuits": 12,
                "matches_offline": segmented_match,
            },
        }
    return record


def _alloc_record_base(
    width, placed, admitted, windowed_admitted, segmented_admitted, wall, lazy_runs
):
    return {
        "workloads": {
            "fig31": [
                {
                    "strategy": "greedy",
                    "final_width": width,
                    "placed": placed,
                    "wall_seconds": wall,
                }
            ]
        },
        "lazy_vs_eager_verification": {
            "lazy_solver_runs": lazy_runs,
            "lazy_wall_seconds": wall,
        },
        "online": [{"strategy": "greedy", "wall_seconds": wall}],
        "queueing": {
            "rows": [
                {
                    "policy": "fifo",
                    "admitted": admitted,
                    "wall_seconds": wall,
                }
            ]
        },
        "lending": {
            "rows": [
                {
                    "policy": "fifo",
                    "lending": "whole",
                    "admitted": admitted,
                    "wall_seconds": wall,
                },
                {
                    "policy": "fifo",
                    "lending": "windowed",
                    "admitted": windowed_admitted,
                    "wall_seconds": wall,
                },
                {
                    "policy": "fifo",
                    "lending": "segmented",
                    "admitted": segmented_admitted,
                    "wall_seconds": wall,
                },
            ]
        },
    }


def regressed(comp):
    return [finding.metric for finding in comp.regressions]


class TestCompareVerify:
    def test_identical_records_pass(self):
        comp = compare_verify(verify_record(), verify_record())
        assert comp.findings and not comp.regressions

    def test_wall_regression_over_tolerance_fails(self):
        comp = compare_verify(
            verify_record(), verify_record(backend_wall=1.3)
        )
        assert "verify.backends[bdd].wall_seconds" in regressed(comp)

    def test_wall_growth_within_tolerance_passes(self):
        comp = compare_verify(
            verify_record(), verify_record(backend_wall=1.2)
        )
        assert not comp.regressions

    def test_subfloor_baseline_is_noise_not_signal(self):
        base = verify_record(backend_wall=WALL_FLOOR / 2)
        fresh = verify_record(backend_wall=WALL_FLOOR * 10)
        comp = compare_verify(base, fresh)
        assert not comp.regressions

    def test_vanished_backend_fails(self):
        fresh = verify_record()
        fresh["backends"] = []
        comp = compare_verify(verify_record(), fresh)
        assert "verify.backends[bdd]" in regressed(comp)

    def test_safe_workload_turning_unsafe_fails(self):
        comp = compare_verify(verify_record(), verify_record(safe=False))
        assert "verify.backends[bdd].all_safe" in regressed(comp)

    def test_verdict_disagreement_fails(self):
        comp = compare_verify(verify_record(), verify_record(agree=False))
        assert "verify.sequential_vs_batch[bdd].verdicts_agree" in (
            regressed(comp)
        )

    def test_errored_baseline_row_is_skipped(self):
        comp = compare_verify(verify_record(), verify_record())
        assert not any("dpll" in m for m in regressed(comp))


class TestSolverSpeedFronts:
    """The schema-v2 ``fronts`` floors lock in the solver-speed wins."""

    def test_bitset_speedup_below_floor_fails(self):
        comp = compare_verify(
            verify_record(), verify_record(bitset_speedup=49.0)
        )
        assert "verify.fronts[bitset_vs_brute].speedup" in regressed(comp)

    def test_bitset_verdict_disagreement_fails(self):
        comp = compare_verify(
            verify_record(), verify_record(bitset_agree=False)
        )
        assert "verify.fronts[bitset_vs_brute].verdicts_agree" in (
            regressed(comp)
        )

    def test_incremental_not_strictly_faster_fails(self):
        comp = compare_verify(
            verify_record(), verify_record(incremental_ratio=1.0)
        )
        assert "verify.fronts[incremental_vs_fresh].ratio" in (
            regressed(comp)
        )

    def test_process_scaling_below_2x_fails_on_big_runner(self):
        comp = compare_verify(
            verify_record(),
            verify_record(process_speedup=1.4, cpu_count=4),
        )
        assert "verify.fronts[process_vs_thread].speedup" in regressed(comp)

    def test_process_scaling_not_enforced_on_small_runner(self):
        """A 1-cpu box cannot show multi-core scaling; the row is
        recorded honestly and the floor is waived, not faked."""
        comp = compare_verify(
            verify_record(),
            verify_record(process_speedup=0.9, cpu_count=1),
        )
        assert not comp.regressions
        waived = [
            f
            for f in comp.findings
            if f.metric == "verify.fronts[process_vs_thread].speedup"
        ]
        assert waived and "not enforced" in waived[0].detail

    def test_vanished_front_fails(self):
        fresh = verify_record()
        fresh["fronts"] = [
            r for r in fresh["fronts"] if r["front"] != "incremental_vs_fresh"
        ]
        comp = compare_verify(verify_record(), fresh)
        assert "verify.fronts[incremental_vs_fresh]" in regressed(comp)

    def test_v1_baseline_without_fronts_still_gates_fresh(self):
        """Fresh fronts are floor-checked even before the committed
        baseline is regenerated with schema v2."""
        comp = compare_verify(
            verify_record(fronts=False), verify_record(bitset_speedup=10.0)
        )
        assert "verify.fronts[bitset_vs_brute].speedup" in regressed(comp)

    def test_fronts_absent_everywhere_is_fine(self):
        comp = compare_verify(
            verify_record(fronts=False), verify_record(fronts=False)
        )
        assert not comp.regressions


class TestCompareAlloc:
    def test_identical_records_pass(self):
        comp = compare_alloc(alloc_record(), alloc_record())
        assert comp.findings and not comp.regressions

    def test_width_increase_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(width=9))
        assert "alloc.fig31[greedy].final_width" in regressed(comp)

    def test_width_decrease_passes(self):
        comp = compare_alloc(alloc_record(), alloc_record(width=7))
        assert not comp.regressions

    def test_admitted_drop_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(admitted=39))
        metrics = regressed(comp)
        assert "alloc.queueing[fifo].admitted" in metrics
        assert "alloc.lending[fifo,whole].admitted" in metrics

    def test_inflated_baseline_admitted_fails_the_gate(self):
        """The acceptance probe: bump a baseline number the fresh run
        cannot reach and the gate must fail."""
        comp = compare_alloc(alloc_record(admitted=99), alloc_record())
        assert "alloc.queueing[fifo].admitted" in regressed(comp)

    def test_windowed_below_whole_fails_within_fresh(self):
        fresh = alloc_record(admitted=40, windowed_admitted=39)
        comp = compare_alloc(alloc_record(), fresh)
        assert "alloc.lending[fifo].windowed_vs_whole" in regressed(comp)

    def test_segmented_below_windowed_fails_within_fresh(self):
        fresh = alloc_record(windowed_admitted=44, segmented_admitted=43)
        comp = compare_alloc(alloc_record(), fresh)
        metrics = regressed(comp)
        assert "alloc.lending[fifo].segmented_vs_windowed" in metrics

    def test_segmented_without_a_strict_win_fails_within_fresh(self):
        """Satellite acceptance: equal counts everywhere mean the
        restore-point analysis bought nothing — the gate must complain
        even though the non-strict lattice holds."""
        fresh = alloc_record(windowed_admitted=44, segmented_admitted=44)
        comp = compare_alloc(alloc_record(), fresh)
        assert (
            "alloc.lending.segmented_strictly_beats_windowed"
            in regressed(comp)
        )

    def test_segmented_strict_win_on_any_policy_passes(self):
        comp = compare_alloc(alloc_record(), alloc_record())
        assert not comp.regressions

    def test_lazy_solver_run_growth_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(lazy_runs=3))
        assert "alloc.lazy_vs_eager.lazy_solver_runs" in regressed(comp)

    def test_missing_lending_section_in_baseline_is_fine(self):
        """New sections may appear in fresh records before the baseline
        is regenerated — that must not fail the gate."""
        base = alloc_record()
        del base["lending"]
        comp = compare_alloc(base, alloc_record())
        assert not comp.regressions


class TestFleetGate:
    """The ``fleet`` section: baseline diffs plus the fleet-vs-single
    floor inside the fresh record."""

    def test_identical_fleet_records_pass(self):
        comp = compare_alloc(alloc_record(), alloc_record())
        assert not comp.regressions

    def test_fleet_admitted_drop_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(fleet_admitted=31))
        assert "alloc.fleet[fleet2x11[least-loaded]].admitted" in (
            regressed(comp)
        )

    def test_fleet_below_single_shard_fails_within_fresh(self):
        """A 2x11 fleet admitting less than one 11-qubit machine alone
        wasted a whole machine — the floor binds even when the baseline
        row agrees."""
        fresh = alloc_record(fleet_admitted=29, single_admitted=30)
        comp = compare_alloc(
            alloc_record(fleet_admitted=29, single_admitted=30), fresh
        )
        assert "alloc.fleet[fleet2x11[least-loaded]]_vs_single11" in (
            regressed(comp)
        )

    def test_vanished_fleet_row_fails(self):
        fresh = alloc_record()
        fresh["fleet"]["rows"] = [
            r for r in fresh["fleet"]["rows"] if "fleet" not in r["label"]
        ]
        comp = compare_alloc(alloc_record(), fresh)
        assert "alloc.fleet[fleet2x11[least-loaded]]" in regressed(comp)

    def test_fleet_absent_everywhere_is_fine(self):
        comp = compare_alloc(alloc_record(fleet=False), alloc_record(fleet=False))
        assert not comp.regressions

    def test_fresh_floor_enforced_without_baseline_section(self):
        """The fleet floor holds even before the committed baseline is
        regenerated with the new section."""
        comp = compare_alloc(
            alloc_record(fleet=False),
            alloc_record(fleet_admitted=20, single_admitted=30),
        )
        assert "alloc.fleet[fleet2x11[least-loaded]]_vs_single11" in (
            regressed(comp)
        )

    def test_committed_fleet_baseline_holds_the_floor(self):
        """The committed record must itself satisfy the fleet floor
        under every placement policy."""
        repo = Path(__file__).resolve().parent.parent
        payload = json.loads((repo / "BENCH_alloc.json").read_text())
        rows = {row["label"]: row for row in payload["fleet"]["rows"]}
        single = rows["single11"]["admitted"]
        fleet_rows = [r for label, r in rows.items() if label.startswith("fleet")]
        assert len(fleet_rows) == 3  # one per registered placement
        for row in fleet_rows:
            assert row["admitted"] >= single, row


class TestStreamingGates:
    """The ``streaming`` section floors: the incremental-engine win and
    the lookahead=∞ differential contract are locked in."""

    def test_identical_streaming_records_pass(self):
        comp = compare_alloc(alloc_record(), alloc_record())
        assert not comp.regressions

    def test_speedup_below_2x_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(stream_speedup=1.9))
        assert (
            "alloc.streaming.incremental_vs_rescan[generated-216].speedup"
            in regressed(comp)
        )

    def test_model_disagreement_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(models_agree=False))
        metric = "alloc.streaming.incremental_vs_rescan[generated-216].models_agree"
        assert metric in regressed(comp)

    def test_inf_width_mismatch_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(inf_width_match=False))
        assert "alloc.streaming.lookahead[inf].width_matches_offline" in regressed(comp)

    def test_inf_plan_mismatch_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(inf_plans_match=False))
        assert "alloc.streaming.lookahead[inf].plans_match_offline" in regressed(comp)

    def test_segmented_parity_break_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(segmented_match=False))
        assert "alloc.streaming.segmented_parity.matches_offline" in regressed(comp)

    def test_vanished_streaming_rows_fail(self):
        fresh = alloc_record()
        del fresh["streaming"]
        comp = compare_alloc(alloc_record(), fresh)
        metrics = regressed(comp)
        assert "alloc.streaming.incremental_vs_rescan[generated-216]" in metrics
        assert "alloc.streaming.lookahead[inf]" in metrics
        assert "alloc.streaming.throughput" in metrics
        assert "alloc.streaming.segmented_parity" in metrics

    def test_streaming_absent_everywhere_is_fine(self):
        """Pre-streaming baselines (and fresh records from older
        branches) must not trip the gate."""
        comp = compare_alloc(
            alloc_record(streaming=False), alloc_record(streaming=False)
        )
        assert not comp.regressions

    def test_fresh_floors_enforced_without_baseline_section(self):
        """Fresh streaming floors hold even before the committed
        baseline is regenerated with the new section."""
        comp = compare_alloc(
            alloc_record(streaming=False), alloc_record(stream_speedup=1.0)
        )
        assert (
            "alloc.streaming.incremental_vs_rescan[generated-216].speedup"
            in regressed(comp)
        )

    def test_committed_streaming_baseline_holds_the_floors(self):
        """The committed record must itself satisfy every floor."""
        repo = Path(__file__).resolve().parent.parent
        payload = json.loads((repo / "BENCH_alloc.json").read_text())
        streaming = payload["streaming"]
        for row in streaming["incremental_vs_rescan"]:
            assert row["speedup"] >= 2.0, row
            assert row["models_agree"] is True, row
        inf_rows = [r for r in streaming["lookahead"] if r["lookahead"] == "inf"]
        assert len(inf_rows) == 1
        assert inf_rows[0]["width_matches_offline"] is True
        assert inf_rows[0]["plans_match_offline"] is True
        assert streaming["segmented_parity"]["matches_offline"] is True


class TestStreamingFrontendGates:
    """The ``streaming_frontend`` floors: overlap must stay free, the
    prefix admission must beat a full staged parse, and adaptive
    lookahead must hold its width/disturbance wins."""

    def test_identical_frontend_records_pass(self):
        comp = compare_alloc(alloc_record(), alloc_record())
        assert not comp.regressions

    def test_overlap_cost_over_tolerance_fails_within_fresh(self):
        comp = compare_alloc(
            alloc_record(), alloc_record(frontend_overlapped=1.3)
        )
        metric = (
            "alloc.streaming_frontend.workloads[adder32].overlapped_vs_staged"
        )
        assert metric in regressed(comp)

    def test_overlap_cost_within_tolerance_passes(self):
        comp = compare_alloc(
            alloc_record(), alloc_record(frontend_overlapped=1.2)
        )
        assert not comp.regressions

    def test_subfloor_overlap_walls_are_noise(self):
        comp = compare_alloc(
            alloc_record(),
            alloc_record(
                frontend_staged=WALL_FLOOR / 5,
                frontend_overlapped=WALL_FLOOR / 2,
            ),
        )
        assert not comp.regressions

    def test_ungranted_lease_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(lease_granted=False))
        assert "alloc.streaming_frontend.first_lease.lease_granted" in (
            regressed(comp)
        )

    def test_first_lease_slower_than_parse_fails(self):
        comp = compare_alloc(
            alloc_record(), alloc_record(first_lease_wall=0.3)
        )
        assert (
            "alloc.streaming_frontend.first_lease.beats_staged_parse"
            in regressed(comp)
        )

    def test_adaptive_wider_than_best_fixed_fails(self):
        comp = compare_alloc(alloc_record(), alloc_record(adaptive_width=124))
        assert (
            "alloc.streaming_frontend.adaptive.width_vs_fixed-8"
            in regressed(comp)
        )

    def test_adaptive_more_disturbed_than_fixed0_fails(self):
        comp = compare_alloc(
            alloc_record(), alloc_record(adaptive_disturbances=9)
        )
        assert (
            "alloc.streaming_frontend.adaptive.disturbances_vs_fixed-0"
            in regressed(comp)
        )

    def test_vanished_frontend_rows_fail(self):
        fresh = alloc_record()
        del fresh["streaming_frontend"]
        comp = compare_alloc(alloc_record(), fresh)
        metrics = regressed(comp)
        assert "alloc.streaming_frontend.workloads[adder32]" in metrics
        assert "alloc.streaming_frontend.first_lease" in metrics
        assert "alloc.streaming_frontend.adaptive[adaptive]" in metrics

    def test_frontend_absent_everywhere_is_fine(self):
        comp = compare_alloc(
            alloc_record(frontend=False), alloc_record(frontend=False)
        )
        assert not comp.regressions

    def test_fresh_floors_enforced_without_baseline_section(self):
        comp = compare_alloc(
            alloc_record(frontend=False), alloc_record(lease_granted=False)
        )
        assert "alloc.streaming_frontend.first_lease.lease_granted" in (
            regressed(comp)
        )

    def test_committed_frontend_baseline_holds_the_floors(self):
        repo = Path(__file__).resolve().parent.parent
        payload = json.loads((repo / "BENCH_alloc.json").read_text())
        frontend = payload["streaming_frontend"]
        first = frontend["first_lease"]
        assert first["lease_granted"] is True
        assert (
            first["time_to_first_lease_seconds"]
            < first["staged_parse_wall_seconds"]
        )
        rows = {row["policy"]: row for row in frontend["adaptive"]}
        adaptive = rows["adaptive"]
        for policy, row in rows.items():
            if policy.startswith("fixed"):
                assert adaptive["total_width"] <= row["total_width"], policy
        assert (
            adaptive["disturbances"] <= rows["fixed-0"]["disturbances"]
        )


class TestRestoreCheckGates:
    """The ``restore_check`` record: the solver certifier's throughput
    and cost floors behind the segmented-mode default."""

    def test_identical_restore_records_pass(self):
        comp = compare_alloc(alloc_record(), alloc_record())
        assert not comp.regressions

    def test_solver_admitting_less_fails_within_fresh(self):
        comp = compare_alloc(
            alloc_record(), alloc_record(restore_solver_admitted=39)
        )
        assert "alloc.restore_check.solver_admitted_vs_structural" in (
            regressed(comp)
        )

    def test_solver_leasing_less_fails_within_fresh(self):
        comp = compare_alloc(
            alloc_record(), alloc_record(restore_solver_leases=19)
        )
        assert "alloc.restore_check.solver_leases_vs_structural" in (
            regressed(comp)
        )

    def test_solver_wall_blowup_fails_within_fresh(self):
        comp = compare_alloc(
            alloc_record(), alloc_record(restore_solver_wall=1.3)
        )
        assert "alloc.restore_check.solver_vs_structural_wall" in (
            regressed(comp)
        )

    def test_admitted_drop_vs_baseline_fails(self):
        base = alloc_record()
        base["restore_check"]["rows"][1]["admitted"] = 41
        comp = compare_alloc(base, alloc_record(restore_solver_admitted=40))
        assert "alloc.restore_check[solver].admitted" in regressed(comp)

    def test_vanished_restore_rows_fail(self):
        fresh = alloc_record()
        del fresh["restore_check"]
        comp = compare_alloc(alloc_record(), fresh)
        metrics = regressed(comp)
        assert "alloc.restore_check[structural]" in metrics
        assert "alloc.restore_check[solver]" in metrics

    def test_restore_absent_everywhere_is_fine(self):
        comp = compare_alloc(
            alloc_record(restore=False), alloc_record(restore=False)
        )
        assert not comp.regressions

    def test_committed_restore_baseline_holds_the_floors(self):
        repo = Path(__file__).resolve().parent.parent
        payload = json.loads((repo / "BENCH_alloc.json").read_text())
        rows = {
            row["restore_check"]: row
            for row in payload["restore_check"]["rows"]
        }
        assert rows["solver"]["admitted"] >= rows["structural"]["admitted"]
        assert (
            rows["solver"]["leases_granted"]
            >= rows["structural"]["leases_granted"]
        )
        assert payload["restore_check"]["segmented_default"] == "solver"


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def run_gate(self, tmp_path, base_alloc, fresh_alloc, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        code = main(
            [
                "--verify-baseline",
                self.write(tmp_path, "vb.json", verify_record()),
                "--verify-fresh",
                self.write(tmp_path, "vf.json", verify_record()),
                "--alloc-baseline",
                self.write(tmp_path, "ab.json", base_alloc),
                "--alloc-fresh",
                self.write(tmp_path, "af.json", fresh_alloc),
            ]
        )
        return code, summary.read_text()

    def test_clean_run_exits_zero_and_writes_summary(
        self, tmp_path, monkeypatch, capsys
    ):
        code, summary = self.run_gate(
            tmp_path, alloc_record(), alloc_record(), monkeypatch
        )
        assert code == 0
        assert "Bench-regression gate" in summary
        assert "REGRESSION" not in summary
        assert "no bench regressions" in capsys.readouterr().out

    def test_inflated_baseline_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        code, summary = self.run_gate(
            tmp_path,
            alloc_record(admitted=99, windowed_admitted=99),
            alloc_record(),
            monkeypatch,
        )
        assert code == 1
        assert "REGRESSION" in summary
        assert "admitted" in capsys.readouterr().err

    def test_verify_only_skips_alloc_records(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(tmp_path / "s.md"))
        code = main(
            [
                "--verify-only",
                "--verify-baseline",
                self.write(tmp_path, "vb.json", verify_record()),
                "--verify-fresh",
                self.write(tmp_path, "vf.json", verify_record()),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_verify" in out
        assert "BENCH_alloc" not in out

    def test_verify_only_catches_front_regression(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(tmp_path / "s.md"))
        code = main(
            [
                "--verify-only",
                "--verify-baseline",
                self.write(tmp_path, "vb.json", verify_record()),
                "--verify-fresh",
                self.write(
                    tmp_path, "vf.json", verify_record(incremental_ratio=1.2)
                ),
            ]
        )
        assert code == 1
        assert "incremental_vs_fresh" in capsys.readouterr().err

    def test_missing_alloc_fresh_without_verify_only_errors(
        self, tmp_path, monkeypatch
    ):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "--verify-fresh",
                    self.write(tmp_path, "vf.json", verify_record()),
                ]
            )
        assert excinfo.value.code == 2

    def test_summary_lists_every_metric(self, tmp_path, monkeypatch):
        _, summary = self.run_gate(
            tmp_path, alloc_record(), alloc_record(), monkeypatch
        )
        assert "alloc.lending[fifo].windowed_vs_whole" in summary
        assert "verify.backends[bdd].wall_seconds" in summary


class TestMarkdown:
    def test_counts_checks_and_regressions(self):
        comp = compare_alloc(alloc_record(), alloc_record(width=9))
        text = markdown_summary({"BENCH_alloc": comp})
        assert "1 regression(s)" in text
        assert "❌ REGRESSION" in text

    def test_real_committed_baselines_pass_against_themselves(self):
        """The committed records must be self-consistent under the
        gate (fresh == baseline is the identity run CI starts from)."""
        repo = Path(__file__).resolve().parent.parent
        verify = json.loads((repo / "BENCH_verify.json").read_text())
        alloc = json.loads((repo / "BENCH_alloc.json").read_text())
        assert not compare_verify(verify, verify).regressions
        assert not compare_alloc(alloc, alloc).regressions

    def test_committed_lending_rows_show_refinement_wins(self):
        """Acceptance: on the seeded 50-job lending trace the lattice
        ``segmented >= windowed >= whole`` holds under every policy,
        and each refinement wins strictly under at least one
        (gate-guarded via the committed baseline)."""
        repo = Path(__file__).resolve().parent.parent
        payload = json.loads((repo / "BENCH_alloc.json").read_text())
        rows = payload["lending"]["rows"]
        by_key = {
            (row["policy"], row["lending"]): row["admitted"]
            for row in rows
        }
        policies = {policy for policy, _ in by_key}
        for finer, coarser in (
            ("windowed", "whole"),
            ("segmented", "windowed"),
        ):
            assert any(
                by_key[(p, finer)] > by_key[(p, coarser)]
                for p in policies
            ), (finer, coarser, by_key)
            assert all(
                by_key[(p, finer)] >= by_key[(p, coarser)]
                for p in policies
            ), (finer, coarser, by_key)
