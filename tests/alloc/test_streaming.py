"""The streaming allocator's differential and soundness contracts.

Three invariants from the module contract, replayed over seeded random
circuits and hand-built adversarial streams:

* **∞-lookahead differential** — ``stream_allocate(lookahead=None)``
  equals offline ``allocate(strategy="greedy")`` gate-for-gate
  (assignment, unplaced, notes, windows, rewritten circuit), spoiled
  and segmented corpora included; any finite ``K >= len(gates)`` is
  equivalent to ∞.
* **Per-prefix soundness** — at every stream point, for every horizon,
  the current placement passes ``validate_placement`` against the
  current prefix's model; the incremental model itself equals a fresh
  ``build_model`` of the prefix.
* **Revision accounting** — tentative placements displaced inside the
  horizon count as rollbacks; committed placements broken by a
  post-horizon reactivation are revoked to unplaced (never left
  unsound) and counted.
"""

import pytest

from repro.alloc import (
    StreamingAllocator,
    allocate,
    build_model,
    stream_allocate,
    validate_placement,
)
from repro.circuits import Circuit, cnot, x
from repro.errors import CircuitError
from repro.testing import random_reversible_circuit

SEEDS = range(100, 112)
LOOKAHEADS = (0, 2, 8, None)


def corpus_case(seed, spoiled=()):
    return random_reversible_circuit(
        seed,
        num_data=6,
        num_ancillas=3,
        segment_gates=4,
        middle_gates=8,
        spoiled=spoiled,
    )


def plans_equal(streamed, offline):
    assert streamed.assignment == offline.assignment
    assert streamed.unplaced == offline.unplaced
    assert streamed.notes == offline.notes
    assert streamed.windows == offline.windows
    assert streamed.final_width == offline.final_width
    assert streamed.circuit.fingerprint() == offline.circuit.fingerprint()


class TestInfinityEqualsGreedy:
    """The differential contract: ∞-lookahead == offline greedy."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_plain_corpus(self, seed):
        circuit, ancillas = corpus_case(seed)
        streamed = stream_allocate(circuit, ancillas)
        offline = allocate(circuit, ancillas, strategy="greedy")
        plans_equal(streamed, offline)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_spoiled_corpus(self, seed):
        """Spoiled (unsafe) ancillas never segment and often go
        unplaced — the note streams must still match."""
        circuit, ancillas = corpus_case(seed, spoiled=(6,))  # first ancilla
        streamed = stream_allocate(circuit, ancillas)
        offline = allocate(circuit, ancillas, strategy="greedy")
        plans_equal(streamed, offline)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_segmented_corpus(self, seed):
        circuit, ancillas = corpus_case(seed)
        streamed = stream_allocate(circuit, ancillas, segmented=True)
        offline = allocate(
            circuit, ancillas, strategy="greedy", segmented=True
        )
        plans_equal(streamed, offline)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_horizon_past_stream_end_equals_infinity(self, seed):
        """Any K >= len(gates) can never commit mid-stream, so the plan
        must equal the ∞ (and hence the offline) plan."""
        circuit, ancillas = corpus_case(seed)
        streamed = stream_allocate(
            circuit, ancillas, lookahead=len(circuit.gates)
        )
        offline = allocate(circuit, ancillas, strategy="greedy")
        plans_equal(streamed, offline)

    def test_float_infinity_normalises_to_none(self):
        allocator = StreamingAllocator(4, [3], lookahead=float("inf"))
        assert allocator.lookahead is None
        assert allocator.name == "streaming(lookahead=inf)"


class TestPerPrefixSoundness:
    """validate_placement holds at *every* stream point, and the
    incremental model never drifts from a fresh offline build."""

    @pytest.mark.parametrize("lookahead", LOOKAHEADS)
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_every_stream_point_validates(self, seed, lookahead):
        circuit, ancillas = corpus_case(seed)
        allocator = StreamingAllocator(
            circuit.num_qubits,
            ancillas,
            lookahead=lookahead,
            labels=circuit.labels,
        )
        for gate in circuit.gates:
            allocator.feed(gate)
            validate_placement(allocator.model(), allocator.placement())
        plan = allocator.close()
        validate_placement(allocator.model(), allocator.placement())
        assert plan.final_width <= circuit.num_qubits

    @pytest.mark.parametrize("segmented", [False, True])
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_incremental_model_equals_offline_at_prefixes(
        self, seed, segmented
    ):
        circuit, ancillas = corpus_case(seed)
        allocator = StreamingAllocator(
            circuit.num_qubits,
            ancillas,
            segmented=segmented,
            labels=circuit.labels,
        )
        for i, gate in enumerate(circuit.gates):
            allocator.feed(gate)
            if i % 5 and i != len(circuit.gates) - 1:
                continue  # every 5th prefix plus both ends
            snapshot = allocator.model()
            prefix = Circuit(circuit.num_qubits, labels=circuit.labels)
            prefix.extend(circuit.gates[: i + 1])
            offline = build_model(prefix, ancillas, segmented=segmented)
            assert snapshot.windows == offline.windows
            assert snapshot.periods == offline.periods
            assert snapshot.candidates == offline.candidates
            assert snapshot.conflicts == offline.conflicts
            assert snapshot.untouched == offline.untouched
            assert (
                snapshot.circuit.fingerprint() == prefix.fingerprint()
            )

    def test_snapshot_is_stable_under_further_feeding(self):
        circuit, ancillas = corpus_case(SEEDS[0])
        allocator = StreamingAllocator(
            circuit.num_qubits, ancillas, labels=circuit.labels
        )
        half = len(circuit.gates) // 2
        for gate in circuit.gates[:half]:
            allocator.feed(gate)
        frozen = allocator.model()
        before = (len(frozen.circuit), dict(frozen.windows))
        for gate in circuit.gates[half:]:
            allocator.feed(gate)
        assert len(frozen.circuit) == before[0]
        assert frozen.windows == before[1]


class TestRevisionAccounting:
    """Rollbacks (tentative) and revocations (committed) are observable
    and leave the stream sound."""

    def test_tentative_rollback_on_host_conflict(self):
        """Wire 3 is first placed on host 0; host 0 then turns busy
        inside the grown window, so the buffered decision rolls back to
        host 2 — nothing was emitted, only the suffix moved."""
        allocator = StreamingAllocator(4, [3])  # lookahead=∞
        allocator.feed(cnot(1, 3))
        assert allocator.tentative() == {3: 0}
        allocator.feed(x(0))  # host 0 busy — window not yet grown
        assert allocator.tentative() == {3: 0}
        allocator.feed(cnot(1, 3))  # window [0,2] now covers gate 1
        assert allocator.tentative() == {3: 2}
        assert allocator.stats.rollbacks == 1
        assert allocator.stats.revocations == 0
        plan = allocator.close()
        assert plan.assignment == {3: 2}
        offline = allocate(
            Circuit(4).extend([cnot(1, 3), x(0), cnot(1, 3)]),
            [3],
            strategy="greedy",
        )
        assert plan.assignment == offline.assignment

    def test_committed_placement_revoked_on_reactivation(self):
        """With K=1 the placement goes final one gate after the last
        touch; a later reactivation that breaks it is revoked to
        unplaced — sound, never silently wrong."""
        allocator = StreamingAllocator(4, [3], lookahead=1)
        allocator.feed(cnot(1, 3))
        assert allocator.committed() == {}
        allocator.feed(x(0))  # horizon reached: commit 3 -> host 0
        assert allocator.committed() == {3: 0}
        allocator.feed(cnot(1, 3))  # window grows over gate 1: conflict
        assert allocator.committed() == {3: None}
        assert allocator.stats.revocations == 1
        plan = allocator.close()
        assert plan.assignment == {}
        assert plan.unplaced == [3]
        assert any("revoked" in note for note in plan.notes)
        validate_placement(allocator.model(), allocator.placement())

    def test_unbroken_commitment_survives_reactivation(self):
        """A reactivation that stays compatible keeps its host."""
        allocator = StreamingAllocator(4, [3], lookahead=1)
        allocator.feed(cnot(1, 3))
        allocator.feed(x(1))  # commit 3 -> host 0; host untouched
        assert allocator.committed() == {3: 0}
        allocator.feed(cnot(1, 3))
        assert allocator.committed() == {3: 0}
        assert allocator.stats.revocations == 0
        plan = allocator.close()
        assert plan.assignment == {3: 0}

    def test_lookahead_zero_commits_at_first_sight(self):
        allocator = StreamingAllocator(4, [3], lookahead=0)
        allocator.feed(cnot(1, 3))
        assert allocator.committed() == {3: 0}
        assert allocator.tentative() == {}
        assert allocator.stats.commits == 1

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_stats_gate_count_and_commit_totals(self, seed):
        circuit, ancillas = corpus_case(seed)
        allocator = StreamingAllocator(
            circuit.num_qubits, ancillas, lookahead=4
        )
        for gate in circuit.gates:
            allocator.feed(gate)
        allocator.close()
        assert allocator.stats.gates == len(circuit.gates)
        assert allocator.stats.commits == len(allocator.committed())
        assert allocator.stats.as_dict()["gates"] == len(circuit.gates)


class TestStreamLifecycle:
    def test_feed_after_close_raises(self):
        allocator = StreamingAllocator(4, [3])
        allocator.feed(cnot(1, 3))
        allocator.close()
        with pytest.raises(CircuitError, match="closed stream"):
            allocator.feed(x(0))

    def test_close_is_idempotent(self):
        allocator = StreamingAllocator(4, [3])
        allocator.feed(cnot(1, 3))
        assert allocator.close() is allocator.close()

    @pytest.mark.parametrize("bad", [-1, 2.5, "soon"])
    def test_bad_lookahead_raises(self, bad):
        with pytest.raises(CircuitError, match="lookahead"):
            StreamingAllocator(4, [3], lookahead=bad)

    def test_extend_matches_per_gate_feeding(self):
        circuit, ancillas = corpus_case(SEEDS[0])
        one = StreamingAllocator(
            circuit.num_qubits, ancillas, labels=circuit.labels
        )
        many = StreamingAllocator(
            circuit.num_qubits, ancillas, labels=circuit.labels
        )
        for gate in circuit.gates:
            one.feed(gate)
        many.extend(circuit.gates)
        plans_equal(one.close(), many.close())

    def test_untouched_ancilla_never_appears_in_placement(self):
        allocator = StreamingAllocator(5, [3, 4])
        allocator.feed(cnot(1, 3))  # wire 4 never touched
        placement = allocator.placement()
        assert 4 not in placement.assignment
        assert 4 not in placement.unplaced
        plan = allocator.close()
        assert 4 not in plan.assignment
        assert 4 not in plan.unplaced
