"""Differential soundness: every strategy vs the lookahead oracle.

For every registered strategy and every benchmark circuit:

* the placement is structurally sound (hosts idle over the guest's
  period, no overlapping guests share a host) —
  :func:`validate_placement`;
* the final width never beats the lookahead optimum (the oracle is a
  true lower bound wherever its search completed);
* placed ancillas pass the Section 6 ``verify_circuit`` safety check,
  and the rewrite preserves the classical function on basis states
  with ancillas grounded.
"""

import pytest

from repro.alloc import (
    Placement,
    allocate,
    available_strategies,
    build_model,
    validate_placement,
)
from repro.circuits import Circuit, apply_to_bits, cnot, x
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source
from repro.verify import verify_circuit
from tests.conftest import fig31_circuit


def _adder(n):
    program = elaborate(adder_qbr_source(n))
    return program.circuit, list(program.dirty_wires)


def _bench_circuits():
    cases = [
        ("fig31", fig31_circuit(), [5, 6]),
        ("trap", Circuit(4).extend([x(2), cnot(2, 3), cnot(1, 3)]), [2, 3]),
        (
            "overlap",
            Circuit(6).extend(
                [cnot(0, 3), cnot(1, 4), cnot(0, 3), cnot(1, 4), cnot(2, 5)]
            ),
            [3, 4, 5],
        ),
    ]
    for n in (4, 6):
        circuit, dirty = _adder(n)
        cases.append((f"adder{n}", circuit, dirty))
    return cases


CASES = _bench_circuits()
STRATEGIES = available_strategies()


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize(
    "name,circuit,dirty", CASES, ids=[c[0] for c in CASES]
)
class TestDifferential:
    def test_structurally_sound_and_bounded_by_oracle(
        self, strategy, name, circuit, dirty
    ):
        plan = allocate(circuit, dirty, strategy=strategy)
        oracle = allocate(circuit, dirty, strategy="lookahead")

        model = build_model(circuit, dirty)
        placement = Placement(
            assignment=dict(plan.assignment),
            unplaced=[a for a in model.ancillas if a not in plan.assignment],
        )
        validate_placement(model, placement)

        # The oracle is optimal: no strategy may go below it, and by
        # construction (greedy-seeded search) it never loses to greedy.
        assert plan.final_width >= oracle.final_width
        greedy = allocate(circuit, dirty, strategy="greedy")
        assert oracle.final_width <= greedy.final_width


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("adder_n", [4, 6])
def test_placed_adder_ancillas_verify_safe(strategy, adder_n):
    """Figure 6.3 circuits: whatever a strategy places must be safe."""
    circuit, dirty = _adder(adder_n)
    plan = allocate(circuit, dirty, strategy=strategy)
    if plan.assignment:
        report = verify_circuit(
            circuit, sorted(plan.assignment), backend="bdd"
        )
        assert report.all_safe


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig31_rewrite_preserves_function(strategy):
    """The compacted circuit computes the same classical function on
    the working qubits, for every basis input, ancillas grounded."""
    original = fig31_circuit()
    plan = allocate(original, [5, 6], strategy=strategy)
    assert plan.final_width == 5

    for s in range(2**5):
        bits = [(s >> i) & 1 for i in range(5)]
        old = apply_to_bits(original, bits + [0, 0])
        new = apply_to_bits(plan.circuit, bits)
        assert old[:5] == new
        assert old[5:] == [0, 0]  # ancillas restored


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig31_safety_gated(strategy):
    """Acceptance: every strategy rides the verify_circuit safety gate."""
    plan = allocate(
        fig31_circuit(),
        [5, 6],
        strategy=strategy,
        safety_check=lambda c, q: verify_circuit(
            c, [q], backend="bdd"
        ).all_safe,
    )
    assert plan.final_width == 5
