"""The lookahead-policy layer of the streaming allocator.

Three contracts:

* the policy registry mirrors the strategy/backend registries (names,
  coercion of the legacy ``lookahead=`` forms, validation errors);
* the ``adaptive`` policy's mechanics — grow on disturbance, cap at
  the ceiling, shrink back after a quiet window — are deterministic;
* the differential floor the bench gate also enforces: over a seeded
  corpus (plain, spoiled and segmented alike), a fresh adaptive policy
  per circuit ends at a total width no worse than the better of the
  fixed horizons it interpolates between (``K=0`` and ``K=8``), while
  never disturbing the stream more than the commit-at-first-sight
  baseline.
"""

import pytest

from repro.alloc import (
    AdaptiveLookahead,
    FixedLookahead,
    LookaheadPolicy,
    StreamingAllocator,
    available_lookahead_policies,
    make_lookahead_policy,
    stream_allocate,
)
from repro.errors import CircuitError
from repro.testing import random_reversible_circuit

#: The differential corpus: 12 seeds, three flavours each.
SEEDS = range(200, 212)


def corpus_case(seed, spoiled=()):
    return random_reversible_circuit(
        seed,
        num_data=5,
        num_ancillas=3,
        segment_gates=3,
        middle_gates=6,
        spoiled=spoiled,
    )


def run_stream(circuit, ancillas, lookahead, segmented=False):
    allocator = StreamingAllocator(
        circuit.num_qubits, ancillas, lookahead=lookahead, segmented=segmented
    )
    for gate in circuit.gates:
        allocator.feed(gate)
    plan = allocator.close()
    return plan, allocator.stats


class TestRegistry:
    def test_both_policies_registered(self):
        names = available_lookahead_policies()
        assert "fixed" in names
        assert "adaptive" in names

    def test_make_by_name(self):
        assert isinstance(make_lookahead_policy("fixed"), FixedLookahead)
        assert isinstance(
            make_lookahead_policy("adaptive"), AdaptiveLookahead
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(CircuitError):
            make_lookahead_policy("clairvoyant")

    def test_legacy_forms_coerce_to_fixed(self):
        assert StreamingAllocator(4, [3], lookahead=None).lookahead is None
        assert StreamingAllocator(4, [3], lookahead=5).lookahead == 5
        assert (
            StreamingAllocator(4, [3], lookahead=float("inf")).lookahead
            is None
        )

    def test_policy_name_and_instance_accepted(self):
        by_name = StreamingAllocator(4, [3], lookahead="adaptive")
        assert isinstance(by_name.policy, AdaptiveLookahead)
        policy = AdaptiveLookahead(initial=3)
        by_instance = StreamingAllocator(4, [3], lookahead=policy)
        assert by_instance.policy is policy
        assert by_instance.lookahead == 3

    def test_name_carries_the_policy_tag(self):
        assert "adaptive@" in StreamingAllocator(
            4, [3], lookahead="adaptive"
        ).name
        assert "inf" in StreamingAllocator(4, [3]).name

    def test_fixed_validation(self):
        with pytest.raises(CircuitError):
            FixedLookahead(-1)
        with pytest.raises(CircuitError):
            FixedLookahead(2.5)

    def test_adaptive_validation(self):
        with pytest.raises(CircuitError):
            AdaptiveLookahead(initial=-1)
        with pytest.raises(CircuitError):
            AdaptiveLookahead(growth=1)

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            LookaheadPolicy().horizon()


class TestAdaptiveMechanics:
    def test_grows_on_disturbance(self):
        policy = AdaptiveLookahead(initial=4, ceiling=64)
        policy.observe(1)
        assert policy.horizon() == 8

    def test_growth_caps_at_ceiling(self):
        policy = AdaptiveLookahead(initial=4, ceiling=6)
        policy.observe(1)
        assert policy.horizon() == 6
        policy.observe(1)
        assert policy.horizon() == 6

    def test_grows_from_zero(self):
        policy = AdaptiveLookahead(initial=0)
        policy.observe(2)
        assert policy.horizon() == 1

    def test_shrinks_after_quiet_window(self):
        policy = AdaptiveLookahead(initial=8, window=4)
        for _ in range(4):
            policy.observe(0)
        assert policy.horizon() == 4

    def test_history_resets_between_moves(self):
        policy = AdaptiveLookahead(initial=8, window=4, threshold=2)
        policy.observe(1)
        for _ in range(3):
            policy.observe(0)
        # Window full with one disturbance below threshold: shrink,
        # and the straggler must not count toward the next window.
        assert policy.horizon() == 4
        policy.observe(1)
        assert policy.horizon() == 4

    def test_describe_tracks_the_moving_horizon(self):
        policy = AdaptiveLookahead(initial=4)
        assert policy.describe() == "adaptive@4"
        policy.observe(1)
        assert policy.describe() == "adaptive@8"

    def test_static_policies_ignore_observations(self):
        policy = FixedLookahead(3)
        policy.observe(10)
        assert policy.horizon() == 3


class TestAdaptiveDifferential:
    """Adaptive must dominate the fixed horizons it moves between."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "flavour", ["plain", "spoiled", "segmented"]
    )
    def test_width_no_worse_than_best_fixed(self, seed, flavour):
        spoiled = (5,) if flavour == "spoiled" else ()
        segmented = flavour == "segmented"
        circuit, ancillas = corpus_case(seed, spoiled=spoiled)
        widths = {}
        disturbances = {}
        for label, lookahead in (
            ("fixed-0", 0),
            ("fixed-8", 8),
            ("adaptive", "adaptive"),
        ):
            plan, stats = run_stream(
                circuit, ancillas, lookahead, segmented=segmented
            )
            widths[label] = plan.final_width
            disturbances[label] = stats.rollbacks + stats.revocations
        assert widths["adaptive"] <= min(
            widths["fixed-0"], widths["fixed-8"]
        )
        # Interpolation bound: moving the horizon never disturbs the
        # stream more than the worse of the two fixed endpoints (the
        # bench gate additionally pins the aggregate vs fixed-0 on its
        # own corpus).
        assert disturbances["adaptive"] <= max(
            disturbances["fixed-0"], disturbances["fixed-8"]
        )

    def test_replans_are_counted(self):
        circuit, ancillas = corpus_case(200)
        _, stats = run_stream(circuit, ancillas, "adaptive")
        assert stats.replans > 0
        assert stats.as_dict()["replans"] == stats.replans

    def test_stream_allocate_accepts_policy_names(self):
        circuit, ancillas = corpus_case(201)
        plan = stream_allocate(circuit, ancillas, lookahead="adaptive")
        assert plan.strategy.startswith("streaming(lookahead=adaptive")
