"""Lending-window structure of the interval model and the
window-disjointness contract of ``validate_placement``."""

import pytest

from repro.alloc import (
    Placement,
    allocate,
    build_model,
    validate_placement,
)
from repro.circuits import Circuit, cnot
from repro.errors import CircuitError


def staircase_circuit():
    """Wire 4 is busy throughout; ancillas 1 and 2 have disjoint
    windows [0,1] and [2,3], and wires 0/3 stay idle (hosts)."""
    c = Circuit(5)
    c.extend([cnot(4, 1), cnot(4, 1)])  # ancilla 1: window [0, 1]
    c.extend([cnot(4, 2), cnot(4, 2)])  # ancilla 2: window [2, 3]
    return c


class TestModelWindows:
    def test_windows_equal_activity_periods(self):
        model = build_model(staircase_circuit(), [1, 2])
        assert set(model.windows) == {1, 2}
        for a in model.ancillas:
            assert model.windows[a] == model.periods[a]
        assert (model.windows[1].first, model.windows[1].last) == (0, 1)
        assert (model.windows[2].first, model.windows[2].last) == (2, 3)

    def test_conflicts_are_window_overlaps(self):
        model = build_model(staircase_circuit(), [1, 2])
        assert model.conflicts[1] == frozenset()
        assert model.conflicts[2] == frozenset()

    def test_restrict_keeps_windows(self):
        model = build_model(staircase_circuit(), [1, 2])
        sub = model.restrict([2])
        assert set(sub.windows) == {2}
        assert sub.windows[2] == model.windows[2]

    def test_shifted_window(self):
        model = build_model(staircase_circuit(), [1])
        shifted = model.windows[1].shifted(7)
        assert (shifted.first, shifted.last) == (7, 8)
        assert model.windows[1].overlaps(shifted) is False


class TestWindowDisjointness:
    def test_disjoint_windows_may_share_a_host(self):
        model = build_model(staircase_circuit(), [1, 2])
        placement = Placement(assignment={1: 0, 2: 0})
        validate_placement(model, placement)  # must not raise

    def test_overlapping_windows_on_one_host_rejected(self):
        # Ancillas 1 and 2 both active over [0, 3]: same window.
        c = Circuit(4).extend(
            [cnot(3, 1), cnot(3, 2), cnot(3, 2), cnot(3, 1)]
        )
        model = build_model(c, [1, 2])
        placement = Placement(assignment={1: 0, 2: 0})
        with pytest.raises(CircuitError, match="share host"):
            validate_placement(model, placement)

    def test_allocate_packs_disjoint_windows_onto_one_host(self):
        plan = allocate(staircase_circuit(), [1, 2], strategy="greedy")
        assert plan.assignment == {1: 0, 2: 0}
        assert plan.final_width == 3
        assert set(plan.windows) == {1, 2}

    def test_plan_carries_windows_for_unplaced_ancillas(self):
        # No idle host at all: both wires busy during the window.
        c = Circuit(2).extend([cnot(0, 1), cnot(0, 1)])
        plan = allocate(c, [1], strategy="greedy")
        assert plan.unplaced == [1]
        assert (plan.windows[1].first, plan.windows[1].last) == (0, 1)
