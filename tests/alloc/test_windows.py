"""Lending-window structure of the interval model and the
window-set-disjointness contract of ``validate_placement``."""

import pytest

from repro.alloc import (
    Placement,
    allocate,
    build_model,
    validate_placement,
)
from repro.circuits import Circuit, WindowSet, cnot, x
from repro.errors import CircuitError


def staircase_circuit():
    """Wire 4 is busy throughout; ancillas 1 and 2 have disjoint
    windows [0,1] and [2,3], and wires 0/3 stay idle (hosts)."""
    c = Circuit(5)
    c.extend([cnot(4, 1), cnot(4, 1)])  # ancilla 1: window [0, 1]
    c.extend([cnot(4, 2), cnot(4, 2)])  # ancilla 2: window [2, 3]
    return c


def gapped_circuit():
    """Ancilla 1 has two identity blocks [0,1] and [5,6] straddling a
    gap in which wire 0 (the only potential host) is busy."""
    c = Circuit(3)
    c.extend([cnot(2, 1), cnot(2, 1)])  # block 1 on the ancilla
    c.extend([x(0), x(0), x(0)])  # the host is busy only in the gap
    c.extend([cnot(2, 1), cnot(2, 1)])  # block 2
    return c


class TestModelWindows:
    def test_windows_cover_activity_periods(self):
        model = build_model(staircase_circuit(), [1, 2])
        assert set(model.windows) == {1, 2}
        assert model.segmented is False
        for a in model.ancillas:
            assert isinstance(model.windows[a], WindowSet)
            assert len(model.windows[a]) == 1
            assert model.windows[a].hull == model.periods[a]
        assert (model.windows[1].first, model.windows[1].last) == (0, 1)
        assert (model.windows[2].first, model.windows[2].last) == (2, 3)

    def test_conflicts_are_window_overlaps(self):
        model = build_model(staircase_circuit(), [1, 2])
        assert model.conflicts[1] == frozenset()
        assert model.conflicts[2] == frozenset()

    def test_restrict_keeps_windows(self):
        model = build_model(staircase_circuit(), [1, 2])
        sub = model.restrict([2])
        assert set(sub.windows) == {2}
        assert sub.windows[2] == model.windows[2]
        assert sub.segmented is model.segmented

    def test_shifted_window(self):
        model = build_model(staircase_circuit(), [1])
        shifted = model.windows[1].shifted(7)
        assert (shifted.first, shifted.last) == (7, 8)
        assert model.windows[1].overlaps(shifted) is False


class TestSegmentedModel:
    def test_segmented_windows_split_at_restore_points(self):
        model = build_model(gapped_circuit(), [1], segmented=True)
        assert model.segmented is True
        assert model.windows[1] == WindowSet.of((0, 1), (5, 6))
        assert model.periods[1].first == 0 and model.periods[1].last == 6

    def test_gap_busy_host_becomes_candidate_under_segmentation(self):
        """Wire 0 is busy only inside the restore gap, so it is a
        candidate exactly when windows are segmented."""
        whole = build_model(gapped_circuit(), [1])
        assert whole.candidates[1] == ()
        segmented = build_model(gapped_circuit(), [1], segmented=True)
        assert segmented.candidates[1] == (0,)

    def test_segmented_allocate_places_through_the_gap(self):
        plan = allocate(gapped_circuit(), [1], segmented=True)
        assert plan.assignment == {1: 0}
        assert plan.final_width == 2
        assert plan.windows[1] == WindowSet.of((0, 1), (5, 6))
        whole_plan = allocate(gapped_circuit(), [1])
        assert whole_plan.unplaced == [1]

    def test_interleaved_sets_share_a_host(self):
        """Two ancillas whose segment sets interleave (each inside the
        other's gap) pack onto one host under segmentation."""
        c = Circuit(4)
        c.extend([cnot(3, 1), cnot(3, 1)])  # a1 block 1: [0, 1]
        c.extend([cnot(3, 2), cnot(3, 2)])  # a2 block 1: [2, 3]
        c.extend([cnot(3, 1), cnot(3, 1)])  # a1 block 2: [4, 5]
        c.extend([cnot(3, 2), cnot(3, 2)])  # a2 block 2: [6, 7]
        model = build_model(c, [1, 2], segmented=True)
        assert model.conflicts[1] == frozenset()
        plan = allocate(c, [1, 2], segmented=True)
        assert plan.assignment == {1: 0, 2: 0}
        assert plan.final_width == 2


class TestWindowDisjointness:
    def test_disjoint_windows_may_share_a_host(self):
        model = build_model(staircase_circuit(), [1, 2])
        placement = Placement(assignment={1: 0, 2: 0})
        validate_placement(model, placement)  # must not raise

    def test_overlapping_windows_on_one_host_rejected(self):
        # Ancillas 1 and 2 both active over [0, 3]: same window.
        c = Circuit(4).extend(
            [cnot(3, 1), cnot(3, 2), cnot(3, 2), cnot(3, 1)]
        )
        model = build_model(c, [1, 2])
        placement = Placement(assignment={1: 0, 2: 0})
        with pytest.raises(CircuitError, match="share host"):
            validate_placement(model, placement)

    def test_nonadjacent_set_overlap_rejected(self):
        """The sweep must catch an overlap between sets that are not
        adjacent in first-segment order: a1 = {[0,1], [8,9]} and
        a3 = {[8,9]} clash even though a2 = {[4,5]} sorts between
        them (a whole-set adjacent-pair check would miss it)."""
        c = Circuit(5)
        c.extend([cnot(4, 1), cnot(4, 1)])  # a1 block 1: [0, 1]
        c.extend([x(4), x(4)])
        c.extend([cnot(4, 2), cnot(4, 2)])  # a2: [4, 5]
        c.extend([x(4), x(4)])
        c.extend([cnot(1, 3), cnot(1, 3)])  # a1 block 2 == a3: [8, 9]
        model = build_model(c, [1, 2, 3], segmented=True)
        assert model.windows[1] == WindowSet.of((0, 1), (8, 9))
        assert model.windows[3] == WindowSet.of((8, 9))
        # a2 alone fits a1's gap on a shared host.
        validate_placement(
            model, Placement(assignment={1: 0, 2: 0}, unplaced=[3])
        )
        with pytest.raises(CircuitError, match="share host"):
            validate_placement(
                model, Placement(assignment={1: 0, 2: 0, 3: 0})
            )

    def test_allocate_packs_disjoint_windows_onto_one_host(self):
        plan = allocate(staircase_circuit(), [1, 2], strategy="greedy")
        assert plan.assignment == {1: 0, 2: 0}
        assert plan.final_width == 3
        assert set(plan.windows) == {1, 2}

    def test_plan_carries_windows_for_unplaced_ancillas(self):
        # No idle host at all: both wires busy during the window.
        c = Circuit(2).extend([cnot(0, 1), cnot(0, 1)])
        plan = allocate(c, [1], strategy="greedy")
        assert plan.unplaced == [1]
        assert (plan.windows[1].first, plan.windows[1].last) == (0, 1)
