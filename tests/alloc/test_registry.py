"""Tests for the allocation-strategy registry."""

import pytest

from repro.alloc import (
    AllocationStrategy,
    available_strategies,
    make_strategy,
    register_strategy,
    strategy_class,
)
from repro.alloc.registry import _REGISTRY
from repro.errors import CircuitError


class TestRegistry:
    def test_core_strategies_registered(self):
        names = available_strategies()
        for expected in ("greedy", "interval-graph", "lookahead", "verified"):
            assert expected in names

    def test_names_sorted(self):
        names = available_strategies()
        assert list(names) == sorted(names)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(CircuitError, match="greedy"):
            strategy_class("no-such-strategy")

    def test_make_strategy_sets_name(self):
        strategy = make_strategy("greedy")
        assert strategy.name == "greedy"

    def test_make_strategy_forwards_options(self):
        strategy = make_strategy("lookahead", max_ancillas=3)
        assert strategy.max_ancillas == 3

    def test_duplicate_name_rejected(self):
        with pytest.raises(CircuitError, match="already registered"):

            @register_strategy("greedy")
            class Impostor(AllocationStrategy):
                def plan(self, model):
                    raise NotImplementedError

    def test_non_strategy_class_rejected(self):
        with pytest.raises(CircuitError, match="must subclass"):
            register_strategy("bogus")(dict)

    def test_reregistration_is_idempotent(self):
        cls = _REGISTRY["greedy"]
        assert register_strategy("greedy")(cls) is cls
