"""Per-strategy behaviour of the borrow-allocation subsystem."""

import pytest

from repro.alloc import (
    LookaheadStrategy,
    VerifiedStrategy,
    allocate,
    build_model,
)
from repro.circuits import Circuit, cnot, toffoli, x
from repro.errors import CircuitError, VerificationError
from repro.verify import BatchVerifier
from tests.conftest import fig31_circuit


def greedy_trap_circuit():
    """First-fit takes the wrong host: ancilla 2 (period [0,1]) can sit
    on wire 0 or 1, ancilla 3 (period [1,2]) only on wire 0 — greedy
    gives 0 to ancilla 2 and strands ancilla 3."""
    return Circuit(4).extend([x(2), cnot(2, 3), cnot(1, 3)])


class TestGreedy:
    def test_matches_seed_on_figure_31(self):
        plan = allocate(fig31_circuit(), [5, 6], strategy="greedy")
        assert plan.assignment == {5: 2, 6: 2}
        assert plan.final_width == 5

    def test_first_fit_is_suboptimal_on_the_trap(self):
        plan = allocate(greedy_trap_circuit(), [2, 3], strategy="greedy")
        assert plan.assignment == {2: 0}
        assert plan.unplaced == [3]
        assert plan.final_width == 3


class TestLookahead:
    def test_optimal_on_figure_31(self):
        plan = allocate(fig31_circuit(), [5, 6], strategy="lookahead")
        assert plan.final_width == 5
        assert not plan.unplaced

    def test_beats_greedy_on_the_trap(self):
        plan = allocate(greedy_trap_circuit(), [2, 3], strategy="lookahead")
        assert plan.assignment == {2: 1, 3: 0}
        assert plan.final_width == 2

    def test_refuses_oversized_problems(self):
        circuit = Circuit(40)
        for a in range(20, 40):
            circuit.append(cnot(0, a))
        with pytest.raises(CircuitError, match="capped"):
            allocate(circuit, range(20, 40), strategy="lookahead",
                     max_ancillas=4)

    def test_budget_exhaustion_falls_back_to_greedy_seed(self):
        strategy = LookaheadStrategy(max_nodes=1)
        greedy_plan = allocate(greedy_trap_circuit(), [2, 3])
        plan = allocate(greedy_trap_circuit(), [2, 3], strategy=strategy)
        assert strategy.last_optimal is False
        assert plan.final_width <= greedy_plan.final_width
        assert any("budget" in note for note in plan.notes)

    def test_reports_optimality(self):
        strategy = LookaheadStrategy()
        allocate(greedy_trap_circuit(), [2, 3], strategy=strategy)
        assert strategy.last_optimal is True


class TestIntervalGraph:
    def test_packs_two_ancillas_on_one_host(self):
        plan = allocate(fig31_circuit(), [5, 6], strategy="interval-graph")
        hosts = list(plan.assignment.values())
        assert len(hosts) == 2
        assert len(set(hosts)) == 1  # both guests share q3

    def test_overlapping_ancillas_get_distinct_hosts(self):
        # Wires 2 and 5 are idle throughout; the ancilla periods
        # overlap, so packing must spread them across both hosts.
        c = Circuit(6).extend(
            [cnot(0, 3), cnot(1, 4), cnot(0, 3), cnot(1, 4)]
        )
        plan = allocate(c, [3, 4], strategy="interval-graph")
        hosts = set(plan.assignment.values())
        assert len(hosts) == len(plan.assignment) == 2


class TestVerified:
    def test_unsafe_ancilla_left_in_place(self):
        circuit = Circuit(3).extend([cnot(0, 1), x(2)])
        plan = allocate(circuit, [2], strategy="verified")
        assert plan.unplaced == [2]
        assert plan.final_width == 3
        assert any("not safely uncomputed" in note for note in plan.notes)

    def test_safe_ancillas_placed(self):
        plan = allocate(fig31_circuit(), [5, 6], strategy="verified")
        assert plan.final_width == 5
        assert not plan.unplaced

    def test_hostless_ancilla_pays_no_solver_time(self):
        # Every working qubit busy throughout: no candidate host, so
        # the lazy gate must not verify anything.
        circuit = Circuit(3).extend(
            [cnot(0, 1), toffoli(0, 1, 2), cnot(0, 1)]
        )
        verifier = BatchVerifier(backend="bdd")
        strategy = VerifiedStrategy(verifier=verifier)
        plan = allocate(circuit, [2], strategy=strategy)
        assert plan.unplaced == [2]
        assert verifier.cache_misses == 0 and verifier.cache_hits == 0
        assert strategy.last_safety == {}

    def test_candidate_ancillas_verified_once(self):
        verifier = BatchVerifier(backend="bdd")
        strategy = VerifiedStrategy(verifier=verifier)
        allocate(fig31_circuit(), [5, 6], strategy=strategy)
        assert verifier.cache_misses == 2
        assert strategy.last_safety == {5: True, 6: True}
        # Re-planning the same circuit is all cache hits.
        allocate(fig31_circuit(), [5, 6], strategy=strategy)
        assert verifier.cache_misses == 2
        assert verifier.cache_hits == 2

    def test_non_classical_circuit_rejected(self):
        from repro.circuits import hadamard

        circuit = Circuit(3).extend([hadamard(0), cnot(0, 2), cnot(0, 2)])
        with pytest.raises(VerificationError):
            allocate(circuit, [2], strategy="verified")

    def test_cannot_wrap_itself(self):
        with pytest.raises(CircuitError):
            VerifiedStrategy(inner="verified")

    def test_wraps_other_strategies(self):
        strategy = VerifiedStrategy(inner="lookahead")
        plan = allocate(greedy_trap_circuit(), [2, 3], strategy=strategy)
        # the trap ancillas are not safely uncomputed, so the verified
        # gate keeps them private regardless of the inner optimum
        assert plan.unplaced == [2, 3]


class TestDriver:
    def test_strategy_instance_with_options_rejected(self):
        with pytest.raises(CircuitError, match="options"):
            allocate(
                fig31_circuit(),
                [5, 6],
                strategy=LookaheadStrategy(),
                max_nodes=10,
            )

    def test_plan_records_strategy_name(self):
        plan = allocate(fig31_circuit(), [5, 6], strategy="interval-graph")
        assert plan.strategy == "interval-graph"

    def test_qubits_saved_property(self):
        plan = allocate(fig31_circuit(), [5, 6])
        assert plan.qubits_saved == 2

    def test_model_restrict_rejects_unknown_wires(self):
        model = build_model(fig31_circuit(), [5, 6])
        with pytest.raises(CircuitError):
            model.restrict([0])
