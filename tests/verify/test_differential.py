"""Property-based differential testing of the Theorem 6.4 reduction.

For random classical circuits, every scalable backend (SAT via CDCL and
DPLL, BDD in both orders) must agree with the exhaustive Theorem 6.2
truth-table oracle on every qubit — and, since Theorem 6.2 is itself
proven equivalent to Definition 3.1, with the unitary factorisation
check on small registers.
"""

from hypothesis import given, settings

from repro.circuits import circuit_unitary
from repro.verify import (
    classical_safe_uncomputation,
    track_circuit,
    make_checker,
    unitary_acts_identity_on,
)
from tests.conftest import classical_circuit_strategy, reversible_pair_circuit


@settings(max_examples=40, deadline=None)
@given(classical_circuit_strategy(4, max_gates=10))
def test_sat_and_bdd_match_truth_table_oracle(circuit):
    tracked = track_circuit(circuit)
    checkers = {
        backend: make_checker(tracked, backend)
        for backend in ("cdcl", "dpll", "bdd", "bdd-reversed")
    }
    for qubit in range(circuit.num_qubits):
        expected = classical_safe_uncomputation(circuit, qubit).safe
        for backend, checker in checkers.items():
            assert checker.check_qubit(qubit).safe == expected, (
                backend,
                qubit,
            )


@settings(max_examples=25, deadline=None)
@given(classical_circuit_strategy(3, max_gates=8))
def test_reduction_matches_definition_31(circuit):
    unitary = circuit_unitary(circuit)
    tracked = track_circuit(circuit)
    checker = make_checker(tracked, "bdd")
    for qubit in range(circuit.num_qubits):
        semantic = unitary_acts_identity_on(unitary, qubit, 3)
        assert checker.check_qubit(qubit).safe == semantic


@settings(max_examples=25, deadline=None)
@given(reversible_pair_circuit(4, max_gates=6))
def test_compute_uncompute_pairs_are_safe_everywhere(circuit):
    """C ; C⁻¹ is the identity, hence safe on every qubit."""
    tracked = track_circuit(circuit)
    checker = make_checker(tracked, "cdcl")
    for qubit in range(circuit.num_qubits):
        assert checker.check_qubit(qubit).safe


@settings(max_examples=30, deadline=None)
@given(classical_circuit_strategy(4, max_gates=10))
def test_simplification_ablation_preserves_verdicts(circuit):
    """Ablation A1: verdicts must not depend on the x⊕x=0 rule."""
    with_simpl = track_circuit(circuit, simplify_xor=True)
    without = track_circuit(circuit, simplify_xor=False)
    for qubit in range(circuit.num_qubits):
        a = make_checker(with_simpl, "cdcl").check_qubit(qubit).safe
        b = make_checker(without, "cdcl").check_qubit(qubit).safe
        assert a == b
