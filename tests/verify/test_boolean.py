"""Tests for the Section 6.1 Boolean reduction and its backends."""

import pytest

from repro.circuits import Circuit, cnot, toffoli, x
from repro.errors import SolverError, VerificationError
from repro.verify import (
    formula_61,
    formula_62,
    make_checker,
    track_circuit,
)
from repro.verify.boolean import BACKENDS, BddBooleanChecker, SatBooleanChecker
from tests.conftest import fig13_circuit


class TestTrackCircuit:
    def test_initial_formulas_are_variables(self):
        tracked = track_circuit(Circuit(2, labels=["p", "q"]))
        assert tracked.formula_of(0) is tracked.input_vars[0]
        assert tracked.name_of(1) == "q"

    def test_x_negates(self):
        tracked = track_circuit(Circuit(1).append(x(0)))
        b = tracked.builder
        assert tracked.formula_of(0) is b.not_(b.var("q0"))

    def test_toffoli_update_rule(self):
        tracked = track_circuit(Circuit(3).append(toffoli(0, 1, 2)))
        b = tracked.builder
        expected = b.xor_(
            [b.var("q2"), b.and_([b.var("q0"), b.var("q1")])]
        )
        assert tracked.formula_of(2) is expected

    def test_figure_61_cancellation(self):
        """After gates 1 and 3 of Figure 1.3, b_a collapses to a."""
        circuit = Circuit(5, labels=["q1", "q2", "a", "q3", "q4"]).extend(
            [toffoli(0, 1, 2), toffoli(0, 1, 2)]
        )
        tracked = track_circuit(circuit)
        assert tracked.formula_of(2) is tracked.input_vars[2]

    def test_no_cancellation_when_disabled(self):
        circuit = Circuit(5).extend([toffoli(0, 1, 2), toffoli(0, 1, 2)])
        tracked = track_circuit(circuit, simplify_xor=False)
        assert tracked.formula_of(2) is not tracked.input_vars[2]

    def test_rejects_non_classical(self):
        from repro.circuits import hadamard

        with pytest.raises(VerificationError):
            track_circuit(Circuit(1).append(hadamard(0)))

    def test_rejects_duplicate_labels(self):
        with pytest.raises(VerificationError):
            track_circuit(Circuit(2, labels=["same", "same"]))


class TestFormulas:
    def test_formula_61_shape(self):
        tracked = track_circuit(fig13_circuit())
        expr = formula_61(tracked, 2)
        # b_a = a after the circuit, so a AND NOT a = false.
        assert expr.is_false

    def test_formula_61_satisfiable_for_x(self):
        tracked = track_circuit(Circuit(1).append(x(0)))
        expr = formula_61(tracked, 0)
        assert tracked.builder.evaluate(expr, {"q0": False}) is True

    def test_formula_62_semantically_false_for_safe_qubit(self):
        # The Figure 1.3 disjunction is zero but only *semantically* —
        # local simplification cannot distribute AND over XOR, so the
        # unsatisfiability is the solver's job (here decided by BDD
        # canonicity).
        from repro.bdd import Bdd

        tracked = track_circuit(fig13_circuit())
        expr = formula_62(tracked, 2)
        assert not expr.is_false  # structurally non-trivial
        bdd = Bdd(sorted(expr.variables()))
        assert bdd.is_false(bdd.from_expr(expr))

    def test_formula_62_detects_dependence(self):
        circuit = Circuit(2).append(cnot(1, 0))
        tracked = track_circuit(circuit)
        expr = formula_62(tracked, 1)
        assert not expr.is_false

    def test_formula_62_others_subset(self):
        circuit = Circuit(3).extend([cnot(2, 0)])
        tracked = track_circuit(circuit)
        assert not formula_62(tracked, 2, others=[0]).is_false
        assert formula_62(tracked, 2, others=[1]).is_false


class TestBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_safe_verdict(self, backend):
        tracked = track_circuit(fig13_circuit())
        checker = make_checker(tracked, backend)
        outcome = checker.check_qubit(2)
        assert outcome.safe and bool(outcome)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_restoration_counterexample(self, backend):
        tracked = track_circuit(Circuit(2).append(x(1)))
        outcome = make_checker(tracked, backend).check_qubit(1)
        assert not outcome.safe
        assert outcome.failed_condition == "zero-restoration"
        assert outcome.counterexample["q1"] is False

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_plus_restoration_counterexample(self, backend):
        tracked = track_circuit(Circuit(2).append(cnot(1, 0)))
        outcome = make_checker(tracked, backend).check_qubit(1)
        assert not outcome.safe
        assert outcome.failed_condition == "plus-restoration"

    def test_unknown_backend(self):
        tracked = track_circuit(Circuit(1).append(x(0)))
        with pytest.raises(SolverError):
            make_checker(tracked, "z3")
        with pytest.raises(SolverError):
            SatBooleanChecker(tracked, solver="bdd")

    def test_bdd_reports_dependent_qubit(self):
        tracked = track_circuit(
            Circuit(2, labels=["t", "d"]).append(cnot(1, 0))
        )
        outcome = BddBooleanChecker(tracked).check_qubit(1)
        assert outcome.details["dependent_qubit"] == "t"

    def test_ablation_no_simplify_same_verdicts(self):
        for simplify in (True, False):
            tracked = track_circuit(fig13_circuit(), simplify_xor=simplify)
            outcome = make_checker(tracked, "cdcl").check_qubit(2)
            assert outcome.safe

    def test_formula_sizes_grow_without_simplification(self):
        plain = track_circuit(fig13_circuit(), simplify_xor=True)
        bloated = track_circuit(fig13_circuit(), simplify_xor=False)
        assert (
            bloated.formula_of(2).dag_size() > plain.formula_of(2).dag_size()
        )
