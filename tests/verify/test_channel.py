"""Tests for the Definition 5.1 channel-level check and theorem cross-
validation on random operations (experiment E10)."""

import numpy as np
import pytest

from repro.channels import QuantumOperation, basis_measurement, initialization
from repro.linalg import embed_operator, random_unitary
from repro.verify import (
    operation_acts_identity_on,
    preserves_bell_entanglement,
    restores_basis_states,
)


def identity_on_qubit_op(rng, qubit, n):
    """A random channel of the exact form I_qubit ⊗ E'."""
    others = [p for p in range(n) if p != qubit]
    u = random_unitary(n - 1, rng)
    v = random_unitary(n - 1, rng)
    k1 = embed_operator(u, others, n) * np.sqrt(0.5)
    k2 = embed_operator(v, others, n) * np.sqrt(0.5)
    return QuantumOperation([k1, k2], n)


def touching_op(rng, qubit, n):
    """A random channel that genuinely acts on ``qubit``."""
    u = random_unitary(n, rng)
    return QuantumOperation.from_unitary(u, n)


class TestKrausFactorisation:
    def test_accepts_tensor_channels(self, rng):
        for qubit in range(3):
            op = identity_on_qubit_op(rng, qubit, 3)
            assert operation_acts_identity_on(op, qubit)

    def test_rejects_touching_channels(self, rng):
        op = touching_op(rng, 0, 2)
        assert not operation_acts_identity_on(op, 0)

    def test_initialization_is_not_identity(self):
        assert not operation_acts_identity_on(initialization(0, 2), 0)
        assert operation_acts_identity_on(initialization(0, 2), 1)

    def test_measurement_branch_not_identity(self):
        branch = basis_measurement(0, 2)[True]
        assert not operation_acts_identity_on(branch, 0)

    def test_rotated_kraus_representation_still_accepted(self, rng):
        # Mix the Kraus operators of I ⊗ E' by a unitary: same channel,
        # different representation — the check must still pass.
        op = identity_on_qubit_op(rng, 1, 3)
        k1, k2 = op.kraus
        theta = 0.8
        mixed = QuantumOperation(
            [
                np.cos(theta) * k1 + np.sin(theta) * k2,
                -np.sin(theta) * k1 + np.cos(theta) * k2,
            ],
            3,
        )
        assert operation_acts_identity_on(mixed, 1)


class TestTheorem61CrossValidation:
    """Conditions (2) and (3) of Theorem 6.1 agree with Definition 5.1."""

    @pytest.mark.parametrize("seed", range(6))
    def test_positive_cases_all_three_checks(self, seed):
        rng = np.random.default_rng(seed)
        qubit = int(rng.integers(0, 3))
        op = identity_on_qubit_op(rng, qubit, 3)
        assert operation_acts_identity_on(op, qubit)
        assert restores_basis_states(op, qubit)
        assert preserves_bell_entanglement(op, qubit)

    @pytest.mark.parametrize("seed", range(6))
    def test_negative_cases_all_three_checks(self, seed):
        rng = np.random.default_rng(seed + 1000)
        op = touching_op(rng, 0, 2)
        assert not operation_acts_identity_on(op, 0)
        assert not restores_basis_states(op, 0)
        assert not preserves_bell_entanglement(op, 0)

    def test_z_phase_caught_by_all(self):
        # The Figure 1.4 lesson at channel level: Z restores basis
        # states per-computational-input but fails |+> and Bell tests.
        z = embed_operator(np.diag([1.0, -1.0]), [0], 2)
        op = QuantumOperation.from_unitary(z, 2)
        assert not operation_acts_identity_on(op, 0)
        assert not restores_basis_states(op, 0)
        assert not preserves_bell_entanglement(op, 0)

    def test_control_dependence_caught_by_all(self):
        from repro.circuits import Circuit, circuit_unitary, cnot

        u = circuit_unitary(Circuit(2).append(cnot(1, 0)))
        op = QuantumOperation.from_unitary(u, 2)
        assert not operation_acts_identity_on(op, 1)
        assert not restores_basis_states(op, 1)
        assert not preserves_bell_entanglement(op, 1)
