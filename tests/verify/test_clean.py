"""Tests for the clean-qubit (alloc) verification path."""

import pytest

from repro.circuits import Circuit, cnot, toffoli, x
from repro.errors import SolverError, VerificationError
from repro.verify import (
    check_clean_uncomputation,
    track_circuit,
    verify_clean_wires,
)
from repro.lang.surface import verify_qbr

BACKENDS = ("cdcl", "dpll", "bdd", "bdd-reversed", "brute")


class TestCheckClean:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compute_uncompute_is_clean(self, backend):
        circuit = Circuit(3).extend(
            [toffoli(0, 1, 2), toffoli(0, 1, 2)]
        )
        tracked = track_circuit(circuit)
        clean, model = check_clean_uncomputation(tracked, 2, backend)
        assert clean and model is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_leftover_scratch_detected(self, backend):
        circuit = Circuit(3).append(toffoli(0, 1, 2))
        tracked = track_circuit(circuit)
        clean, model = check_clean_uncomputation(tracked, 2, backend)
        assert not clean
        assert model.get("q0") and model.get("q1")

    def test_clean_is_weaker_than_dirty(self):
        """The Figure 1.4 separation: a-as-control is clean but dirty-
        unsafe; single-read scratch is clean but dirty-unsafe too."""
        from repro.verify import classical_safe_uncomputation

        for circuit, wire in [
            (Circuit(2).append(cnot(1, 0)), 1),
            (
                Circuit(4).extend(
                    [toffoli(0, 1, 2), cnot(2, 3), toffoli(0, 1, 2)]
                ),
                2,
            ),
        ]:
            tracked = track_circuit(circuit)
            clean, _ = check_clean_uncomputation(tracked, wire, "bdd")
            assert clean
            assert not classical_safe_uncomputation(circuit, wire).safe

    def test_unknown_backend(self):
        tracked = track_circuit(Circuit(1).append(x(0)))
        with pytest.raises(SolverError):
            check_clean_uncomputation(tracked, 0, "z3")


class TestVerifyCleanWires:
    def test_report(self):
        circuit = Circuit(3, labels=["w", "c1", "c2"]).extend(
            [cnot(0, 1), cnot(0, 1), x(2)]
        )
        report = verify_clean_wires(circuit, [1, 2], backend="cdcl")
        assert report.verdict_for("c1").safe
        verdict = report.verdict_for("c2")
        assert not verdict.safe
        assert verdict.failed_condition == "zero-restoration"
        assert verdict.counterexample.input_bits[2] == 0

    def test_out_of_range(self):
        with pytest.raises(VerificationError):
            verify_clean_wires(Circuit(1), [3])


class TestQbrIntegration:
    SOURCE = """
        borrow@ w[2];
        alloc c;
        borrow d;
        CCNOT[w[1], w[2], c];
        CNOT[c, d];
        CNOT[c, d];
        CCNOT[w[1], w[2], c];
    """

    def test_clean_wires_included_on_request(self):
        report = verify_qbr(self.SOURCE, backend="bdd", include_clean=True)
        names = {v.name for v in report.verdicts}
        assert names == {"c", "d"}
        assert report.all_safe

    def test_clean_wires_excluded_by_default(self):
        report = verify_qbr(self.SOURCE, backend="bdd")
        assert {v.name for v in report.verdicts} == {"d"}

    def test_unclean_alloc_detected(self):
        source = "borrow@ w; alloc c; CNOT[w, c];"
        report = verify_qbr(source, backend="cdcl", include_clean=True)
        assert not report.verdict_for("c").safe
