"""Tests for the batch verification engine (repro.verify.batch)."""

import pytest

from repro.circuits import Circuit, cnot, x
from repro.errors import VerificationError
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source
from repro.verify import BatchVerifier, VerificationJob, verify_circuit
from tests.conftest import fig13_circuit


def adder_program(n=14):
    return elaborate(adder_qbr_source(n))


def verdict_tuples(report):
    return [
        (v.qubit, v.name, v.safe, v.failed_condition) for v in report.verdicts
    ]


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("backend", ("bdd", "cdcl"))
    def test_fig63_adder_suite_identical_verdicts(self, backend):
        """Acceptance: max_workers>1 == the sequential shim on adder.qbr."""
        program = adder_program()
        assert len(program.dirty_wires) >= 12
        sequential = verify_circuit(
            program.circuit, program.dirty_wires, backend=backend
        )
        parallel = BatchVerifier(backend=backend, max_workers=4).verify_circuit(
            program.circuit, program.dirty_wires
        )
        assert verdict_tuples(parallel) == verdict_tuples(sequential)
        assert parallel.all_safe

    @pytest.mark.parametrize("backend", ("bdd", "cdcl", "portfolio"))
    def test_unsafe_circuit_identical_verdicts(self, backend):
        circuit = Circuit(4, labels=["w", "d1", "d2", "d3"]).extend(
            [cnot(0, 1), cnot(0, 1), x(2), cnot(3, 0)]
        )
        sequential = verify_circuit(circuit, [1, 2, 3], backend=backend)
        parallel = BatchVerifier(backend=backend, max_workers=4).verify_circuit(
            circuit, [1, 2, 3]
        )
        assert verdict_tuples(parallel) == verdict_tuples(sequential)
        assert not parallel.all_safe


class TestMemoisation:
    def test_repeat_circuit_is_all_cache_hits(self):
        verifier = BatchVerifier(backend="bdd")
        circuit = fig13_circuit()
        first = verifier.verify_circuit(circuit, [2])
        again = verifier.verify_circuit(circuit, [2])
        assert first.cache_misses == 1 and first.cache_hits == 0
        assert again.cache_hits == 1 and again.cache_misses == 0
        assert verdict_tuples(first) == verdict_tuples(again)
        assert verifier.cache_hits == 1 and verifier.cache_misses == 1

    def test_equal_circuits_share_verdicts_across_objects(self):
        verifier = BatchVerifier(backend="cdcl")
        a = fig13_circuit()
        b = fig13_circuit()  # distinct object, same fingerprint
        assert a.fingerprint() == b.fingerprint()
        verifier.verify_circuit(a, [2])
        report = verifier.verify_circuit(b, [2])
        assert report.cache_hits == 1

    def test_dedup_within_one_batch(self):
        verifier = BatchVerifier(backend="bdd")
        circuit = fig13_circuit()
        reports = verifier.verify_circuits(
            [(circuit, [2]), (circuit, [2]), (circuit, [0, 2])]
        )
        assert [r.cache_misses for r in reports] == [1, 0, 1]
        assert [r.cache_hits for r in reports] == [0, 1, 1]

    def test_shared_external_cache(self):
        cache = {}
        BatchVerifier(backend="bdd", cache=cache).verify_circuit(
            fig13_circuit(), [2]
        )
        report = BatchVerifier(backend="bdd", cache=cache).verify_circuit(
            fig13_circuit(), [2]
        )
        assert report.cache_hits == 1

    def test_different_backend_not_conflated(self):
        verifier = BatchVerifier()
        circuit = fig13_circuit()
        verifier.verify_circuit(circuit, [2], backend="bdd")
        report = verifier.verify_circuit(circuit, [2], backend="cdcl")
        assert report.cache_misses == 1
        assert report.backend == "cdcl"

    def test_cached_unsafe_verdict_still_replays(self):
        verifier = BatchVerifier(backend="cdcl")
        circuit = Circuit(2).append(x(1))
        first = verifier.verify_circuit(circuit, [1])
        again = verifier.verify_circuit(circuit, [1])
        for report in (first, again):
            cex = report.verdicts[0].counterexample
            assert cex is not None and cex.kind == "zero-restoration"


class TestApi:
    def test_job_normalisation_and_mixed_backends(self):
        verifier = BatchVerifier(backend="bdd")
        jobs = [
            (fig13_circuit(), [2]),
            VerificationJob(Circuit(2).append(x(1)), (1,), backend="cdcl"),
        ]
        reports = verifier.verify_circuits(jobs)
        assert [r.backend for r in reports] == ["bdd", "cdcl"]
        assert reports[0].all_safe and not reports[1].all_safe

    def test_empty_batch(self):
        assert BatchVerifier().verify_circuits([]) == []

    def test_out_of_range_qubit(self):
        with pytest.raises(VerificationError):
            BatchVerifier().verify_circuit(fig13_circuit(), [9])

    def test_bad_max_workers(self):
        with pytest.raises(VerificationError):
            BatchVerifier(max_workers=0)

    def test_simplify_xor_ablation_keyed_separately(self):
        cache = {}
        BatchVerifier(backend="cdcl", cache=cache).verify_circuit(
            fig13_circuit(), [2]
        )
        report = BatchVerifier(
            backend="cdcl", simplify_xor=False, cache=cache
        ).verify_circuit(fig13_circuit(), [2])
        assert report.cache_misses == 1  # not a hit: different tracking

    def test_report_timings(self):
        report = BatchVerifier(backend="bdd", max_workers=1).verify_circuit(
            fig13_circuit(), [2]
        )
        assert report.total_seconds >= report.solver_seconds >= 0
        assert report.track_seconds >= 0


class TestFingerprint:
    def test_fingerprint_sensitive_to_gates_labels_width(self):
        base = fig13_circuit()
        assert base.fingerprint() == fig13_circuit().fingerprint()
        wider = Circuit(6, labels=["q1", "q2", "a", "q3", "q4", "e"]).extend(
            base.gates
        )
        assert base.fingerprint() != wider.fingerprint()
        relabeled = Circuit(5, labels=["z1", "q2", "a", "q3", "q4"]).extend(
            base.gates
        )
        assert base.fingerprint() != relabeled.fingerprint()
        shorter = Circuit(5, base.gates[:-1], labels=base.labels)
        assert base.fingerprint() != shorter.fingerprint()

    def test_label_concatenation_not_ambiguous(self):
        a = Circuit(2, labels=["al", "x"])
        b = Circuit(2, labels=["a", "lx"])
        assert a.fingerprint() != b.fingerprint()


class TestClear:
    def test_clear_drops_memoised_state(self):
        verifier = BatchVerifier(backend="bdd")
        verifier.verify_circuit(fig13_circuit(), [2])
        verifier.clear()
        report = verifier.verify_circuit(fig13_circuit(), [2])
        assert report.cache_misses == 1 and report.cache_hits == 0
