"""Tests for the pluggable backend registry (repro.verify.backends)."""

import random
import threading

import pytest

from repro.circuits import Circuit, mcx, x
from repro.errors import SolverCancelled, SolverError
from repro.verify import make_checker, track_circuit
from repro.verify.backends import (
    BooleanCheckOutcome,
    CheckerBackend,
    available_backends,
    backend_class,
    register_backend,
)
from repro.verify.backends.registry import _REGISTRY

BUILTIN = ("bdd", "bdd-reversed", "bitset", "brute", "cdcl", "dpll", "portfolio")


def random_circuit(seed: int, num_qubits: int = 6, max_gates: int = 12):
    rng = random.Random(seed)
    gates = []
    for _ in range(rng.randint(1, max_gates)):
        wires = rng.sample(range(num_qubits), rng.randint(1, 3))
        gates.append(mcx(wires[:-1], wires[-1]))
    return Circuit(num_qubits).extend(gates)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_backends() == BUILTIN

    def test_unknown_name_lists_registered_backends(self):
        tracked = track_circuit(Circuit(1))
        with pytest.raises(SolverError) as excinfo:
            make_checker(tracked, "z3")
        message = str(excinfo.value)
        assert "z3" in message
        for name in BUILTIN:
            assert name in message

    def test_backend_class_lookup(self):
        cls = backend_class("cdcl")
        assert issubclass(cls, CheckerBackend)
        assert cls.name == "cdcl"

    def test_register_custom_backend_and_clean_up(self):
        @register_backend("always-safe")
        class AlwaysSafe(CheckerBackend):
            def check_qubit(self, qubit):
                return BooleanCheckOutcome(qubit, safe=True)

        try:
            assert "always-safe" in available_backends()
            tracked = track_circuit(random_circuit(3))
            outcome = make_checker(tracked, "always-safe").check_qubit(0)
            assert outcome.safe
        finally:
            _REGISTRY.pop("always-safe")

    def test_duplicate_name_rejected(self):
        with pytest.raises(SolverError):

            @register_backend("cdcl")
            class Impostor(CheckerBackend):
                def check_qubit(self, qubit):  # pragma: no cover
                    raise AssertionError

    def test_non_backend_class_rejected(self):
        with pytest.raises(SolverError):
            register_backend("not-a-backend")(dict)


class TestDifferential:
    """Every registered backend must agree with the ``brute`` oracle."""

    @pytest.mark.parametrize("seed", range(6))
    def test_all_backends_match_brute_on_random_6q_circuits(self, seed):
        circuit = random_circuit(seed + 1000)
        tracked = track_circuit(circuit)
        oracle = make_checker(tracked, "brute")
        others = [
            make_checker(tracked, name)
            for name in available_backends()
            if name != "brute"
        ]
        for qubit in range(circuit.num_qubits):
            expected = oracle.check_qubit(qubit).safe
            for checker in others:
                assert checker.check_qubit(qubit).safe == expected, (
                    checker.name,
                    qubit,
                )


class TestPortfolio:
    @pytest.mark.parametrize("seed", range(5))
    def test_portfolio_verdict_identical_to_cdcl(self, seed):
        circuit = random_circuit(seed + 500)
        tracked = track_circuit(circuit)
        portfolio = make_checker(tracked, "portfolio")
        cdcl = make_checker(tracked, "cdcl")
        for qubit in range(circuit.num_qubits):
            raced = portfolio.check_qubit(qubit)
            reference = cdcl.check_qubit(qubit)
            assert raced.safe == reference.safe, qubit
            assert raced.failed_condition == reference.failed_condition, qubit

    def test_winner_recorded(self):
        tracked = track_circuit(random_circuit(7))
        outcome = make_checker(tracked, "portfolio").check_qubit(0)
        assert outcome.details["winner"] in ("cdcl", "bdd")

    def test_pool_threads_released_on_gc(self):
        import gc
        import time

        for _ in range(3):  # settle unrelated thread churn
            gc.collect()
        time.sleep(0.05)
        before = threading.active_count()
        for _ in range(8):
            tracked = track_circuit(random_circuit(13, num_qubits=3))
            make_checker(tracked, "portfolio").check_qubit(0)
        gc.collect()
        time.sleep(0.2)  # woken workers need a moment to exit
        # Without the finalizer this leaks 2 threads per checker (16+).
        assert threading.active_count() <= before + 4

    def test_empty_portfolio_rejected(self):
        from repro.verify.backends.portfolio import PortfolioCheckerBackend

        tracked = track_circuit(Circuit(1))
        with pytest.raises(SolverError):
            PortfolioCheckerBackend(tracked, contenders=())
        with pytest.raises(SolverError):
            PortfolioCheckerBackend(tracked, contenders=("portfolio",))


class TestCancellation:
    """A pre-set cancel event must abort checks with SolverCancelled."""

    @pytest.mark.parametrize("backend", ("cdcl", "dpll"))
    def test_sat_check_unwinds(self, backend):
        # x(1) keeps formula (6.1) non-trivial, so the solver loop runs.
        tracked = track_circuit(Circuit(2).append(x(1)))
        checker = make_checker(tracked, backend)
        cancelled = threading.Event()
        cancelled.set()
        with pytest.raises(SolverCancelled):
            checker.check_qubit(1, cancel_event=cancelled)

    def test_bdd_check_unwinds(self):
        from tests.conftest import fig13_circuit

        tracked = track_circuit(fig13_circuit())
        checker = make_checker(tracked, "bdd")
        cancelled = threading.Event()
        cancelled.set()
        with pytest.raises(SolverCancelled):
            checker.check_qubit(2, cancel_event=cancelled)

    def test_unset_event_changes_nothing(self):
        tracked = track_circuit(random_circuit(11))
        checker = make_checker(tracked, "cdcl")
        free = threading.Event()
        with_event = checker.check_qubit(0, cancel_event=free)
        without = make_checker(tracked, "cdcl").check_qubit(0)
        assert with_event.safe == without.safe

    def test_portfolio_forwards_outer_cancellation(self):
        tracked = track_circuit(Circuit(2).append(x(1)))
        checker = make_checker(tracked, "portfolio")
        cancelled = threading.Event()
        cancelled.set()
        with pytest.raises(SolverCancelled):
            checker.check_qubit(1, cancel_event=cancelled)
