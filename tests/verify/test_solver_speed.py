"""Differential suites locking in the solver-speed overhaul.

Three fronts, three agreements that must hold exactly:

* the ``bitset`` kernel backend, the old enumeration path of ``brute``
  (``bitset_max_vars=0``) and the ``cdcl`` solver return identical
  verdicts over a seeded corpus of random reversible circuits,
  including deliberately spoiled (known-unsafe) ancillas;
* the incremental probe-based ``cdcl`` backend and its historical
  fresh-instance-per-check mode agree verdict-for-verdict;
* the batch engine's ``process`` executor matches the ``thread``
  executor and the sequential shim, including when four process-pool
  verifiers hammer one shared on-disk verdict cache.
"""

import pytest

from repro.circuits import Circuit, cnot, x
from repro.errors import VerificationError
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source
from repro.testing.generators import random_reversible_circuit
from repro.verify import BatchVerifier, make_checker, track_circuit, verify_circuit
from repro.verify.backends.brute import BruteCheckerBackend
from repro.verify.backends.cdcl import CdclCheckerBackend

CORPUS = [
    random_reversible_circuit(seed, num_ancillas=2)
    for seed in range(6)
] + [
    random_reversible_circuit(seed + 50, num_ancillas=2, spoiled=(5,))
    for seed in range(4)
]


def verdict_tuples(report):
    return [
        (v.qubit, v.name, v.safe, v.failed_condition) for v in report.verdicts
    ]


class TestBitsetDifferential:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_bitset_old_brute_and_cdcl_agree(self, index):
        circuit, ancillas = CORPUS[index]
        tracked = track_circuit(circuit)
        bitset = make_checker(tracked, "bitset")
        old_brute = BruteCheckerBackend(tracked, bitset_max_vars=0)
        cdcl = make_checker(tracked, "cdcl")
        for qubit in ancillas:
            reference = old_brute.check_qubit(qubit)
            for checker in (bitset, cdcl):
                outcome = checker.check_qubit(qubit)
                assert outcome.safe == reference.safe, (checker.name, qubit)
                assert outcome.failed_condition == (
                    reference.failed_condition
                ), (checker.name, qubit)

    def test_spoiled_ancillas_actually_flagged(self):
        circuit, ancillas = random_reversible_circuit(
            99, num_ancillas=2, spoiled=(5,)
        )
        tracked = track_circuit(circuit)
        checker = make_checker(tracked, "bitset")
        assert not checker.check_qubit(5).safe
        assert 5 in ancillas


class TestIncrementalMatchesFresh:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_identical_verdicts_on_corpus(self, index):
        circuit, ancillas = CORPUS[index]
        tracked = track_circuit(circuit)
        incremental = CdclCheckerBackend(tracked, incremental=True)
        fresh = CdclCheckerBackend(tracked, incremental=False)
        for qubit in ancillas:
            a = incremental.check_qubit(qubit)
            b = fresh.check_qubit(qubit)
            assert a.safe == b.safe, qubit
            assert a.failed_condition == b.failed_condition, qubit

    def test_adder_suite_identical_verdicts(self):
        program = elaborate(adder_qbr_source(8))
        tracked = track_circuit(program.circuit)
        incremental = CdclCheckerBackend(tracked, incremental=True)
        fresh = CdclCheckerBackend(tracked, incremental=False)
        for qubit in program.dirty_wires:
            assert (
                incremental.check_qubit(qubit).safe
                == fresh.check_qubit(qubit).safe
            ), qubit


class TestProcessExecutor:
    def test_fig63_adder_matches_thread_and_sequential(self):
        program = elaborate(adder_qbr_source(8))
        sequential = verify_circuit(
            program.circuit, program.dirty_wires, backend="cdcl"
        )
        threaded = BatchVerifier(
            backend="cdcl", max_workers=4
        ).verify_circuit(program.circuit, program.dirty_wires)
        with BatchVerifier(
            backend="cdcl", executor="process", max_workers=4
        ) as verifier:
            processed = verifier.verify_circuit(
                program.circuit, program.dirty_wires
            )
        assert verdict_tuples(processed) == verdict_tuples(sequential)
        assert verdict_tuples(processed) == verdict_tuples(threaded)
        assert processed.all_safe

    def test_unsafe_verdicts_cross_the_process_boundary(self):
        circuit = Circuit(4, labels=["w", "d1", "d2", "d3"]).extend(
            [cnot(0, 1), cnot(0, 1), x(2), cnot(3, 0)]
        )
        sequential = verify_circuit(circuit, [1, 2, 3], backend="cdcl")
        with BatchVerifier(
            backend="cdcl", executor="process", max_workers=2
        ) as verifier:
            processed = verifier.verify_circuit(circuit, [1, 2, 3])
        assert verdict_tuples(processed) == verdict_tuples(sequential)
        assert not processed.all_safe
        cex = processed.verdicts[1].counterexample
        assert cex is not None  # counterexamples pickle back intact

    def test_mixed_circuit_batch(self):
        jobs = [
            (circuit, list(ancillas))
            for circuit, ancillas in CORPUS[:4]
        ]
        with BatchVerifier(
            backend="bitset", executor="process", max_workers=2
        ) as verifier:
            reports = verifier.verify_circuits(jobs)
        baseline = BatchVerifier(backend="bitset").verify_circuits(jobs)
        assert [verdict_tuples(r) for r in reports] == [
            verdict_tuples(r) for r in baseline
        ]

    def test_memoisation_still_applies(self):
        circuit, ancillas = CORPUS[0]
        with BatchVerifier(
            backend="cdcl", executor="process", max_workers=2
        ) as verifier:
            first = verifier.verify_circuit(circuit, list(ancillas))
            again = verifier.verify_circuit(circuit, list(ancillas))
        assert first.cache_misses == len(ancillas)
        assert again.cache_hits == len(ancillas)

    def test_close_is_idempotent_and_pool_restarts(self):
        circuit, ancillas = CORPUS[1]
        verifier = BatchVerifier(
            backend="cdcl", executor="process", max_workers=2
        )
        verifier.verify_circuit(circuit, list(ancillas))
        verifier.close()
        verifier.close()
        # A closed verifier lazily starts a fresh pool on next use.
        report = verifier.verify_circuit(circuit, [ancillas[0]])
        assert report.cache_hits == 1
        verifier.close()

    def test_unknown_executor_rejected(self):
        with pytest.raises(VerificationError):
            BatchVerifier(executor="fork-bomb")


class TestProcessDiskCacheHammer:
    def test_four_process_verifiers_share_one_path(self, tmp_path):
        from repro.verify import DiskVerdictCache

        path = str(tmp_path / "verdicts.json")
        jobs = [
            (circuit, list(ancillas))
            for circuit, ancillas in CORPUS[:4]
        ]
        verifiers = [
            BatchVerifier(
                backend="cdcl",
                executor="process",
                max_workers=2,
                cache_path=path,
            )
            for _ in range(4)
        ]
        try:
            # Interleave: every verifier flushes while the others'
            # verdicts are already on disk.
            for step, job in enumerate(jobs):
                for verifier in verifiers[step % 2 :: 2]:
                    verifier.verify_circuit(*job)
        finally:
            for verifier in verifiers:
                verifier.close()

        merged = DiskVerdictCache(path)
        assert merged.load_error is None
        expected = sum(len(qubits) for _, qubits in jobs)
        assert len(merged) == expected
        # A late reader sees every verdict as a hit, no solver runs.
        late = BatchVerifier(backend="cdcl", cache_path=path)
        for job in jobs:
            late.verify_circuit(*job)
        assert late.cache_misses == 0

    def test_workers_share_the_disk_cache_mid_batch(self, tmp_path):
        """Two process-executor verifiers on one path converge through
        their *workers'* chunk flushes alone: neither parent cache ever
        flushes (``autosave=False``, no ``flush()`` call), yet the
        second verifier's workers find the first's verdicts on disk —
        cross-process hits before any parent flush boundary."""
        from repro.verify import DiskVerdictCache

        path = str(tmp_path / "verdicts.json")
        program = elaborate(adder_qbr_source(8))
        dirty = list(program.dirty_wires)

        first = BatchVerifier(
            backend="cdcl",
            executor="process",
            max_workers=2,
            cache=DiskVerdictCache(path, autosave=False),
        )
        second = BatchVerifier(
            backend="cdcl",
            executor="process",
            max_workers=2,
            cache=DiskVerdictCache(path, autosave=False),
        )
        try:
            baseline = first.verify_circuit(program.circuit, dirty)
            hammered = second.verify_circuit(program.circuit, dirty)
        finally:
            first.close()
            second.close()
        assert verdict_tuples(hammered) == verdict_tuples(baseline)
        # Every one of the second verifier's checks was already on
        # disk, put there by the first verifier's worker processes.
        assert second.worker_disk_hits == len(dirty)
        # The file's contents came from workers, not a parent flush.
        merged = DiskVerdictCache(path)
        assert len(merged) == len(dirty)
