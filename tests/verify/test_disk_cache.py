"""Tests for the disk-persistent verdict cache."""

import json

import pytest

from repro.circuits import Circuit, cnot, toffoli, x
from repro.errors import VerificationError
from repro.verify import BatchVerifier, DiskVerdictCache
from tests.conftest import fig31_circuit


def safe_circuit():
    return fig31_circuit()


def unsafe_circuit():
    return Circuit(3).extend([cnot(0, 1), x(2), toffoli(0, 1, 2)])


class TestPersistence:
    def test_verdicts_survive_the_process_boundary(self, tmp_path):
        path = str(tmp_path / "verdicts.json")
        first = BatchVerifier(backend="bdd", cache_path=path)
        report = first.verify_circuit(safe_circuit(), [5, 6])
        assert report.all_safe
        assert first.cache_misses == 2

        # A brand-new verifier (fresh process, same file) is all hits.
        second = BatchVerifier(backend="bdd", cache_path=path)
        report = second.verify_circuit(safe_circuit(), [5, 6])
        assert report.all_safe
        assert second.cache_misses == 0
        assert second.cache_hits == 2

    def test_unsafe_counterexample_round_trips(self, tmp_path):
        path = str(tmp_path / "verdicts.json")
        first = BatchVerifier(backend="bdd", cache_path=path)
        report = first.verify_circuit(unsafe_circuit(), [2])
        assert not report.all_safe

        # Replay of the cached counterexample must still validate on
        # the simulator in the second process.
        second = BatchVerifier(backend="bdd", cache_path=path)
        report = second.verify_circuit(unsafe_circuit(), [2])
        assert not report.all_safe
        assert second.cache_misses == 0
        verdict = report.verdicts[0]
        assert verdict.counterexample is not None

    def test_different_backend_is_a_miss(self, tmp_path):
        path = str(tmp_path / "verdicts.json")
        BatchVerifier(backend="bdd", cache_path=path).verify_circuit(
            safe_circuit(), [5]
        )
        other = BatchVerifier(backend="cdcl", cache_path=path)
        other.verify_circuit(safe_circuit(), [5])
        assert other.cache_misses == 1

    def test_cache_and_cache_path_mutually_exclusive(self, tmp_path):
        with pytest.raises(VerificationError):
            BatchVerifier(cache={}, cache_path=str(tmp_path / "v.json"))


class TestCorruption:
    def test_garbage_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "verdicts.json"
        path.write_text("{not json at all")
        cache = DiskVerdictCache(str(path))
        assert len(cache) == 0
        assert "unreadable" in cache.load_error

        # The verifier still works and repairs the file.
        verifier = BatchVerifier(backend="bdd", cache=cache)
        verifier.verify_circuit(safe_circuit(), [5])
        assert verifier.cache_misses == 1
        repaired = DiskVerdictCache(str(path))
        assert repaired.load_error is None
        assert len(repaired) == 1

    def test_wrong_schema_discarded(self, tmp_path):
        path = tmp_path / "verdicts.json"
        path.write_text(json.dumps({"schema": "other/v9", "verdicts": {}}))
        cache = DiskVerdictCache(str(path))
        assert len(cache) == 0
        assert "schema" in cache.load_error

    def test_malformed_payload_discarded(self, tmp_path):
        path = tmp_path / "verdicts.json"
        path.write_text(
            json.dumps(
                {"schema": "verdict-cache/v1", "verdicts": {"bad-key": {}}}
            )
        )
        cache = DiskVerdictCache(str(path))
        assert len(cache) == 0
        assert "malformed" in cache.load_error

    def test_missing_file_is_fine(self, tmp_path):
        cache = DiskVerdictCache(str(tmp_path / "nope" / "verdicts.json"))
        assert len(cache) == 0
        assert cache.load_error is None


class TestMappingContract:
    def test_mutable_mapping_operations(self, tmp_path):
        from repro.verify.backends.base import BooleanCheckOutcome

        path = str(tmp_path / "verdicts.json")
        cache = DiskVerdictCache(path)
        key = ("fp", 3, "bdd", True)
        cache[key] = BooleanCheckOutcome(qubit=3, safe=True)
        assert key in cache
        assert len(cache) == 1
        assert list(cache) == [key]

        reloaded = DiskVerdictCache(path)
        assert reloaded[key].safe is True
        del reloaded[key]
        assert len(DiskVerdictCache(path)) == 0

    def test_clear_persists(self, tmp_path):
        from repro.verify.backends.base import BooleanCheckOutcome

        path = str(tmp_path / "verdicts.json")
        cache = DiskVerdictCache(path)
        cache[("fp", 0, "bdd", True)] = BooleanCheckOutcome(qubit=0, safe=True)
        cache.clear()
        assert len(DiskVerdictCache(path)) == 0

    def test_batch_of_misses_flushes_once(self, tmp_path, monkeypatch):
        path = str(tmp_path / "verdicts.json")
        cache = DiskVerdictCache(path)
        writes = []
        original = DiskVerdictCache.flush

        def counting_flush(self):
            writes.append(1)
            original(self)

        monkeypatch.setattr(DiskVerdictCache, "flush", counting_flush)
        verifier = BatchVerifier(backend="bdd", cache=cache, max_workers=1)
        verifier.verify_circuit(safe_circuit(), [5, 6])
        assert verifier.cache_misses == 2
        assert sum(writes) == 1  # one write for the whole batch

    def test_autosave_off_until_flush(self, tmp_path):
        from repro.verify.backends.base import BooleanCheckOutcome

        path = str(tmp_path / "verdicts.json")
        cache = DiskVerdictCache(path, autosave=False)
        cache[("fp", 0, "bdd", True)] = BooleanCheckOutcome(qubit=0, safe=True)
        assert len(DiskVerdictCache(path)) == 0
        cache.flush()
        assert len(DiskVerdictCache(path)) == 1


class TestConcurrentWriters:
    """Two verifiers sharing one cache_path must not clobber each other:
    a flush is a read-merge-write under an advisory lock, so the store
    converges on the union of everyone's verdicts."""

    def test_interleaved_stores_merge_instead_of_clobbering(self, tmp_path):
        from repro.verify.backends.base import BooleanCheckOutcome

        path = str(tmp_path / "verdicts.json")
        first = DiskVerdictCache(path)
        second = DiskVerdictCache(path)  # opened before first stores
        first[("fp1", 0, "bdd", True)] = BooleanCheckOutcome(
            qubit=0, safe=True
        )
        second[("fp2", 0, "bdd", True)] = BooleanCheckOutcome(
            qubit=0, safe=False
        )
        final = DiskVerdictCache(path)
        assert final.load_error is None
        assert len(final) == 2  # the classic lost update
        assert final[("fp1", 0, "bdd", True)].safe is True
        assert final[("fp2", 0, "bdd", True)].safe is False

    def test_deleted_key_not_resurrected_by_merge(self, tmp_path):
        from repro.verify.backends.base import BooleanCheckOutcome

        path = str(tmp_path / "verdicts.json")
        cache = DiskVerdictCache(path)
        key = ("fp", 0, "bdd", True)
        cache[key] = BooleanCheckOutcome(qubit=0, safe=True)
        del cache[key]  # the merge pass must honour the tombstone
        assert len(DiskVerdictCache(path)) == 0

    def test_clear_wipes_despite_other_writers(self, tmp_path):
        from repro.verify.backends.base import BooleanCheckOutcome

        path = str(tmp_path / "verdicts.json")
        first = DiskVerdictCache(path)
        second = DiskVerdictCache(path)
        second[("fp2", 0, "bdd", True)] = BooleanCheckOutcome(
            qubit=0, safe=True
        )
        first.clear()  # a wipe is a wipe, not a merge
        assert len(DiskVerdictCache(path)) == 0

    def test_two_batch_verifiers_share_one_path(self, tmp_path):
        path = str(tmp_path / "verdicts.json")
        first = BatchVerifier(backend="bdd", cache_path=path)
        second = BatchVerifier(backend="bdd", cache_path=path)
        # Interleave: each verifier flushes while the other's verdicts
        # are already on disk.
        first.verify_circuit(safe_circuit(), [5])
        second.verify_circuit(unsafe_circuit(), [2])
        first.verify_circuit(safe_circuit(), [6])

        merged = DiskVerdictCache(path)
        assert merged.load_error is None
        assert len(merged) == 3
        # A third process sees everything as hits.
        third = BatchVerifier(backend="bdd", cache_path=path)
        third.verify_circuit(safe_circuit(), [5, 6])
        third.verify_circuit(unsafe_circuit(), [2])
        assert third.cache_misses == 0
        assert third.cache_hits == 3

    def test_threaded_writers_converge_on_union(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        from repro.verify.backends.base import BooleanCheckOutcome

        path = str(tmp_path / "verdicts.json")
        caches = [DiskVerdictCache(path) for _ in range(4)]

        def hammer(index):
            cache = caches[index]
            for step in range(10):
                key = (f"fp{index}", step, "bdd", True)
                cache[key] = BooleanCheckOutcome(qubit=step, safe=True)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))

        final = DiskVerdictCache(path)
        assert final.load_error is None  # never torn, never malformed
        assert len(final) == 40  # no writer lost a single verdict


class TestSchedulerIntegration:
    def test_multiprogrammer_cache_path(self, tmp_path):
        from repro.multiprog import (
            BorrowRequest,
            MultiProgrammer,
            QuantumJob,
        )
        from repro.mcx import cccnot_with_dirty_ancilla

        def job():
            circuit = Circuit(5).extend(
                cccnot_with_dirty_ancilla([0, 1, 3], 4, 2)
            )
            return QuantumJob("alpha", circuit, [BorrowRequest(2)])

        path = str(tmp_path / "scheduler-verdicts.json")
        first = MultiProgrammer(10, cache_path=path)
        first.schedule([job()])
        assert first.verifier.cache_misses == 1

        second = MultiProgrammer(10, cache_path=path)
        second.schedule([job()])
        assert second.verifier.cache_misses == 0
        assert second.verifier.cache_hits == 1
