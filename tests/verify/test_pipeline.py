"""Tests for the end-to-end verification pipeline with counterexample
replay."""

import pytest

from repro.circuits import Circuit, cnot, x
from repro.errors import VerificationError
from repro.verify import verify_circuit
from repro.verify.pipeline import Counterexample, _replay
from tests.conftest import fig13_circuit


class TestReports:
    def test_safe_report(self):
        report = verify_circuit(fig13_circuit(), [2], backend="bdd")
        assert report.all_safe
        assert report.num_qubits == 5 and report.num_gates == 4
        verdict = report.verdict_for("a")
        assert verdict.safe and "SAFE" in str(verdict)

    def test_multiple_dirty_qubits(self):
        circuit = Circuit(4, labels=["w", "d1", "d2", "d3"]).extend(
            [cnot(0, 1), cnot(0, 1), x(2)]
        )
        report = verify_circuit(circuit, [1, 2, 3], backend="cdcl")
        assert report.verdict_for("d1").safe
        assert not report.verdict_for("d2").safe
        assert report.verdict_for("d3").safe  # untouched wire
        assert not report.all_safe

    def test_summary_text(self):
        report = verify_circuit(fig13_circuit(), [2], backend="bdd")
        text = report.summary()
        assert "backend=bdd" in text and "a: SAFE" in text

    def test_unknown_verdict_name(self):
        report = verify_circuit(fig13_circuit(), [2])
        with pytest.raises(VerificationError):
            report.verdict_for("zz")

    def test_dirty_qubit_out_of_range(self):
        with pytest.raises(VerificationError):
            verify_circuit(fig13_circuit(), [9])

    def test_timings_recorded(self):
        report = verify_circuit(fig13_circuit(), [2])
        assert report.total_seconds >= report.solver_seconds >= 0


class TestCounterexamples:
    def test_zero_restoration_replayable(self):
        report = verify_circuit(Circuit(2).append(x(1)), [1], backend="cdcl")
        cex = report.verdicts[0].counterexample
        assert cex.kind == "zero-restoration"
        assert cex.input_bits[1] == 0
        assert "zero-restoration" in cex.describe()

    def test_plus_restoration_replayable(self):
        circuit = Circuit(2).append(cnot(1, 0))
        for backend in ("cdcl", "dpll", "bdd", "brute"):
            report = verify_circuit(circuit, [1], backend=backend)
            cex = report.verdicts[0].counterexample
            assert cex.kind == "plus-restoration"

    def test_bogus_counterexample_rejected(self):
        circuit = fig13_circuit()  # a is actually safe
        bogus = Counterexample("zero-restoration", {}, [0, 0, 0, 0, 0])
        with pytest.raises(VerificationError):
            _replay(circuit, 2, bogus)
        bogus2 = Counterexample("plus-restoration", {}, [0, 0, 0, 0, 0])
        with pytest.raises(VerificationError):
            _replay(circuit, 2, bogus2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(VerificationError):
            _replay(fig13_circuit(), 2, Counterexample("weird", {}, [0] * 5))


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_backends_agree_on_random_circuits(self, seed):
        import random

        from repro.circuits import mcx

        rng = random.Random(seed + 77)
        n = 5
        gates = []
        for _ in range(rng.randint(1, 10)):
            wires = rng.sample(range(n), rng.randint(1, 3))
            gates.append(mcx(wires[:-1], wires[-1]))
        circuit = Circuit(n).extend(gates)
        verdicts = {}
        for backend in ("cdcl", "dpll", "bdd", "bdd-reversed", "brute"):
            report = verify_circuit(circuit, list(range(n)), backend=backend)
            verdicts[backend] = [v.safe for v in report.verdicts]
        reference = verdicts.pop("brute")
        for backend, values in verdicts.items():
            assert values == reference, (seed, backend)
