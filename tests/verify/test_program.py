"""Tests for program-level borrow verification via the scalable pipeline,
cross-validated against the dense semantic checkers."""

import pytest

from repro.errors import SemanticsError
from repro.lang import borrow, seq, unitary
from repro.lang.ast import If, basis_measurement_on
from repro.verify import program_is_safe
from repro.verify.program import verify_borrows_in_program

UNIVERSE = ["q1", "q2", "q3", "q4"]


class TestBasicVerdicts:
    def test_safe_borrow(self):
        program = borrow(
            "a", unitary("CX", "q1", "a"), unitary("CX", "q1", "a")
        )
        report = verify_borrows_in_program(program, UNIVERSE, backend="bdd")
        assert report.all_safe
        assert report.borrows[0].pool_size == 3

    def test_unsafe_borrow(self):
        program = borrow("a", unitary("X", "a"))
        report = verify_borrows_in_program(program, UNIVERSE)
        assert not report.all_safe
        assert report.borrows[0].failing is not None

    def test_fig13_pattern(self):
        program = borrow(
            "a",
            unitary("CCX", "q1", "q2", "a"),
            unitary("CCX", "a", "q3", "q4"),
            unitary("CCX", "q1", "q2", "a"),
            unitary("CCX", "a", "q3", "q4"),
        )
        report = verify_borrows_in_program(program, UNIVERSE)
        assert report.all_safe

    def test_stuck_borrow_is_vacuously_safe(self):
        program = borrow(
            "a",
            unitary("CX", "a", "q1"),
            unitary("CX", "a", "q2"),
            unitary("CX", "a", "q3"),
            unitary("CX", "a", "q4"),
        )
        report = verify_borrows_in_program(program, UNIVERSE)
        assert report.all_safe
        assert report.borrows[0].stuck

    def test_no_borrows(self):
        report = verify_borrows_in_program(unitary("X", "q1"), UNIVERSE)
        assert report.all_safe
        assert "(no borrows)" in report.summary()


class TestNestedBorrows:
    def test_nested_instantiations_enumerated(self):
        # inner borrow's value is XORed into 'a' twice: 'a' safe for any
        # choice of 'b'; 'b' untouched hence safe.
        program = borrow(
            "a",
            borrow("b", unitary("CX", "b", "a"), unitary("CX", "b", "a")),
        )
        report = verify_borrows_in_program(program, UNIVERSE)
        assert report.all_safe
        outer = report.borrows[0]
        assert outer.instantiations_checked >= 3

    def test_nested_single_read_is_unsafe_for_inner(self):
        program = borrow("a", borrow("b", unitary("CX", "b", "a")))
        report = verify_borrows_in_program(program, UNIVERSE)
        verdicts = {b.placeholder: b.safe for b in report.borrows}
        assert verdicts["b"] is False  # b's value leaks into a
        assert verdicts["a"] is False  # a is overwritten by b

    def test_agrees_with_dense_semantics(self):
        import random

        rng = random.Random(5)
        for _ in range(15):
            target = rng.choice(["q1", "q2"])
            if rng.random() < 0.5:
                body = [
                    unitary("CX", target, "a"),
                    unitary("CX", target, "a"),
                ]
            else:
                body = [unitary("CX", target, "a"), unitary("X", "a")]
            program = seq(unitary("X", target), borrow("a", *body))
            fast = verify_borrows_in_program(program, UNIVERSE).all_safe
            dense = program_is_safe(program, UNIVERSE)
            assert fast == dense


class TestValidation:
    def test_control_flow_rejected(self):
        program = borrow(
            "a",
            If(basis_measurement_on("q1"), unitary("X", "a"), unitary("X", "a")),
        )
        with pytest.raises(SemanticsError):
            verify_borrows_in_program(program, UNIVERSE)

    def test_cap_enforced(self):
        # 3 nested borrows with 3-qubit pools exceed a tiny cap.
        inner = borrow("c", unitary("X", "c"), unitary("X", "c"))
        middle = borrow("b", inner)
        program = borrow("a", middle, unitary("CX", "q1", "a"),
                         unitary("CX", "q1", "a"))
        with pytest.raises(SemanticsError):
            verify_borrows_in_program(program, UNIVERSE, cap=2)

    def test_summary_text(self):
        program = borrow("a", unitary("X", "a"))
        report = verify_borrows_in_program(program, UNIVERSE)
        assert "UNSAFE" in report.summary()
