"""Tests for the Theorem 6.2 classical checker, including the Figure 1.4
counterexample (experiment E3)."""

import pytest

from repro.circuits import Circuit, cnot, mcx, toffoli, x
from repro.errors import VerificationError
from repro.verify import classical_safe_uncomputation
from repro.verify.classical import naive_classical_check
from tests.conftest import fig13_circuit


class TestFigure14Counterexample:
    """A circuit that is safe for a *clean* qubit but not a *dirty* one."""

    def circuit(self):
        # a (wire 1) controls a NOT on q: every computational-basis input
        # restores a, yet |+> on a is not restored (phase kickback /
        # copying correlation).
        return Circuit(2, labels=["q", "a"]).append(cnot(1, 0))

    def test_naive_clean_check_passes(self):
        assert naive_classical_check(self.circuit(), 1)

    def test_dirty_check_fails(self):
        result = classical_safe_uncomputation(self.circuit(), 1)
        assert not result.safe
        assert result.failed_condition == "plus-restoration"

    def test_counterexample_is_concrete(self):
        result = classical_safe_uncomputation(self.circuit(), 1)
        bits = result.counterexample_input
        assert bits is not None and bits[1] == 0


class TestZeroRestoration:
    def test_x_gate_fails_zero(self):
        circuit = Circuit(2).append(x(1))
        result = classical_safe_uncomputation(circuit, 1)
        assert result.failed_condition == "zero-restoration"

    def test_naive_check_also_fails_x(self):
        assert not naive_classical_check(Circuit(1).append(x(0)), 0)


class TestSafeCircuits:
    def test_fig13(self):
        assert classical_safe_uncomputation(fig13_circuit(), 2).safe

    def test_idle_wire(self):
        circuit = Circuit(3).append(cnot(0, 1))
        assert classical_safe_uncomputation(circuit, 2).safe

    def test_toggling_pattern_is_safe(self):
        # The Figure 1.3 toggling discipline: the scratch is *read twice*
        # so its dirty offset cancels in the target.
        gates = [
            toffoli(0, 1, 2),
            cnot(2, 3),
            toffoli(0, 1, 2),
            cnot(2, 3),
        ]
        circuit = Circuit(4).extend(gates)
        assert classical_safe_uncomputation(circuit, 2).safe

    def test_single_read_of_dirty_scratch_is_unsafe(self):
        # Restoring the scratch is NOT enough if its dirty value leaked
        # into another qubit via a single read — clean-qubit reasoning
        # would accept this circuit, dirty-qubit reasoning must not.
        gates = [toffoli(0, 1, 2), cnot(2, 3), toffoli(0, 1, 2)]
        circuit = Circuit(4).extend(gates)
        result = classical_safe_uncomputation(circuit, 2)
        assert not result.safe
        assert result.failed_condition == "plus-restoration"

    def test_result_truthiness(self):
        assert classical_safe_uncomputation(fig13_circuit(), 2)
        assert not classical_safe_uncomputation(
            Circuit(1).append(x(0)), 0
        )


class TestAgainstDefinition31:
    """Brute-force Theorem 6.2 equals the unitary factorisation check."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_circuits_agree(self, seed):
        import random

        from repro.circuits import circuit_unitary
        from repro.verify import unitary_acts_identity_on

        rng = random.Random(seed)
        n = 4
        gates = []
        for _ in range(rng.randint(1, 8)):
            wires = rng.sample(range(n), rng.randint(1, 3))
            gates.append(mcx(wires[:-1], wires[-1]))
        circuit = Circuit(n).extend(gates)
        u = circuit_unitary(circuit)
        for qubit in range(n):
            expected = unitary_acts_identity_on(u, qubit, n)
            got = classical_safe_uncomputation(circuit, qubit).safe
            assert got == expected, (seed, qubit)


class TestValidation:
    def test_rejects_non_classical(self):
        from repro.circuits import hadamard

        with pytest.raises(VerificationError):
            classical_safe_uncomputation(
                Circuit(1).append(hadamard(0)), 0
            )
