"""Experiment E6: the Figure 6.1 formula-construction trace."""

import pytest

from repro.circuits import Circuit, hadamard, x
from repro.errors import VerificationError
from repro.verify import formula_trace
from repro.verify.booltrace import render_trace
from tests.conftest import fig13_circuit


class TestFigure61:
    def test_full_table(self):
        """Row-by-row reproduction of Figure 6.1."""
        rows = formula_trace(fig13_circuit())
        by_step = {row.step: row.formulas for row in rows}
        assert by_step[0] == {
            "q1": "q1", "q2": "q2", "a": "a", "q3": "q3", "q4": "q4",
        }
        assert by_step[1]["a"] == "a ^ q1&q2"
        assert by_step[2]["q4"] == "q4 ^ a&q3 ^ q1&q2&q3"
        # the x ^ x = 0 simplification after the third gate
        assert by_step[3]["a"] == "a"
        # final: q4 ^ q3(a ^ q1 q2) ^ q3 a  ==  q4 ^ q1&q2&q3
        assert by_step[4]["q4"] == "q4 ^ q1&q2&q3"
        assert by_step[4]["a"] == "a"
        assert by_step[4]["q1"] == "q1"

    def test_untouched_columns_stay_constant(self):
        rows = formula_trace(fig13_circuit())
        for row in rows:
            assert row.formulas["q1"] == "q1"
            assert row.formulas["q2"] == "q2"
            assert row.formulas["q3"] == "q3"


class TestRendering:
    def test_render_contains_headers_and_rows(self):
        text = render_trace(formula_trace(fig13_circuit()))
        assert "b_a" in text and "b_q4" in text
        assert "a ^ q1&q2" in text
        assert text.count("\n") >= 6

    def test_empty_trace(self):
        assert render_trace([]) == ""


class TestValidation:
    def test_x_gate_trace(self):
        rows = formula_trace(Circuit(1, labels=["w"]).append(x(0)))
        assert rows[1].formulas["w"] == "1 ^ w"

    def test_rejects_non_classical(self):
        with pytest.raises(VerificationError):
            formula_trace(Circuit(1).append(hadamard(0)))
