"""Tests for the Definition 3.1 unitary factorisation check."""

import numpy as np
import pytest

from repro.circuits import Circuit, circuit_unitary, cnot, hadamard, x
from repro.errors import QubitError
from repro.linalg import embed_operator, random_unitary
from repro.verify import factor_unitary, unitary_acts_identity_on
from repro.verify.unitary import move_qubit_front


class TestMoveQubitFront:
    def test_front_qubit_is_noop(self, rng):
        u = random_unitary(2, rng)
        assert np.allclose(move_qubit_front(u, 0, 2), u)

    def test_moved_blocks_expose_tensor_structure(self, rng):
        v = random_unitary(2, rng)
        # V on qubits (0,1), identity on qubit 2; with qubit 2 in front
        # the matrix must be block-diag(V, V).
        full = embed_operator(v, [0, 1], 3)
        moved = move_qubit_front(full, 2, 3)
        half = 4
        assert np.allclose(moved[:half, :half], v)
        assert np.allclose(moved[half:, half:], v)
        assert np.allclose(moved[:half, half:], 0)
        assert np.allclose(moved[half:, :half], 0)

    def test_bounds(self):
        with pytest.raises(QubitError):
            move_qubit_front(np.eye(4), 2, 2)
        with pytest.raises(QubitError):
            move_qubit_front(np.eye(3), 0, 2)


class TestFactorUnitary:
    def test_tensor_factorisation_recovered(self, rng):
        v = random_unitary(2, rng)
        for qubit in range(3):
            others = [p for p in range(3) if p != qubit]
            full = embed_operator(v, others, 3)
            recovered = factor_unitary(full, qubit, 3)
            assert recovered is not None
            assert np.allclose(recovered, v)

    def test_x_gate_rejected(self):
        u = circuit_unitary(Circuit(2).append(x(1)))
        assert factor_unitary(u, 1, 2) is None

    def test_control_dependence_rejected(self):
        # CNOT with q as control: not identity on q despite classical
        # basis restoration — the essence of Figure 1.4.
        u = circuit_unitary(Circuit(2).append(cnot(1, 0)))
        assert not unitary_acts_identity_on(u, 1, 2)

    def test_phase_between_blocks_rejected(self):
        # Z ⊗ I: diagonal, restores basis states, but alters |+> — must
        # NOT count as identity on the Z qubit.
        z = np.diag([1.0, -1.0])
        full = embed_operator(z, [0], 2)
        assert not unitary_acts_identity_on(full, 0, 2)

    def test_global_phase_is_tolerated_in_v(self, rng):
        # e^{i phi} V ⊗ I still factorises (phase lives in V).
        v = random_unitary(1, rng) * np.exp(0.7j)
        full = embed_operator(v, [1], 2)
        assert unitary_acts_identity_on(full, 0, 2)

    def test_hadamard_on_other_wires_ok(self):
        u = circuit_unitary(Circuit(3).extend([hadamard(0), cnot(0, 1)]))
        assert unitary_acts_identity_on(u, 2, 3)
        assert not unitary_acts_identity_on(u, 0, 3)
