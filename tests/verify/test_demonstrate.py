"""Tests for quantum demonstrations of counterexamples."""

import pytest

from repro.circuits import Circuit, cnot, toffoli, x
from repro.errors import VerificationError
from repro.verify import (
    demonstrate,
    demonstrate_entanglement_violation,
    demonstrate_plus_violation,
    demonstrate_zero_violation,
    verify_circuit,
)
from repro.verify.pipeline import Counterexample
from tests.conftest import fig13_circuit


def verdict_for(circuit, qubit, backend="bdd"):
    report = verify_circuit(circuit, [qubit], backend=backend)
    return report.verdicts[0]


class TestZeroViolation:
    def test_x_gate_fidelity_zero(self):
        circuit = Circuit(2).append(x(1))
        verdict = verdict_for(circuit, 1)
        demo = demonstrate(circuit, 1, verdict.counterexample)
        assert demo.kind == "zero-restoration"
        assert demo.fidelity == pytest.approx(0.0, abs=1e-9)
        assert demo.violated


class TestPlusViolation:
    def test_control_dependence(self):
        circuit = Circuit(2).append(cnot(1, 0))
        verdict = verdict_for(circuit, 1)
        demo = demonstrate(circuit, 1, verdict.counterexample)
        assert demo.kind == "plus-restoration"
        # |+> fully decoheres: reduced state is I/2, fidelity 1/2.
        assert demo.fidelity == pytest.approx(0.5, abs=1e-9)

    def test_safe_circuit_keeps_plus(self):
        probe = Counterexample("plus-restoration", {}, [1, 1, 0, 1, 0])
        demo = demonstrate_plus_violation(fig13_circuit(), 2, probe)
        assert demo.fidelity == pytest.approx(1.0, abs=1e-9)
        assert not demo.violated


class TestEntanglement:
    def test_safe_circuit_preserves_bell(self):
        for bits in ([0, 0, 0, 0, 0], [1, 1, 0, 1, 1]):
            probe = Counterexample("plus-restoration", {}, bits)
            demo = demonstrate_entanglement_violation(
                fig13_circuit(), 2, probe
            )
            assert demo.fidelity == pytest.approx(1.0, abs=1e-9)

    def test_unsafe_circuit_breaks_bell(self):
        broken = Circuit(5).extend(
            [toffoli(0, 1, 2), toffoli(2, 3, 4), toffoli(2, 3, 4)]
        )
        verdict = verdict_for(broken, 2)
        demo = demonstrate_entanglement_violation(
            broken, 2, verdict.counterexample
        )
        assert demo.violated

    def test_bell_breaks_for_control_dependence_too(self):
        circuit = Circuit(2).append(cnot(1, 0))
        verdict = verdict_for(circuit, 1)
        demo = demonstrate_entanglement_violation(
            circuit, 1, verdict.counterexample
        )
        # Bell pair decoheres to a classical mixture: fidelity 1/2.
        assert demo.fidelity == pytest.approx(0.5, abs=1e-9)


class TestDispatch:
    def test_unknown_kind(self):
        probe = Counterexample("weird", {}, [0])
        with pytest.raises(VerificationError):
            demonstrate(Circuit(1), 0, probe)

    def test_str_rendering(self):
        circuit = Circuit(2).append(x(1))
        verdict = verdict_for(circuit, 1)
        demo = demonstrate_zero_violation(circuit, 1, verdict.counterexample)
        assert "fidelity" in str(demo)


class TestEveryUnsafeVerdictDemonstrable:
    """Integration: for random unsafe circuits, the demonstration always
    exhibits a genuine quantum violation (fidelity < 1)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random(self, seed):
        import random

        from repro.circuits import mcx

        rng = random.Random(seed + 31)
        n = 4
        gates = []
        for _ in range(rng.randint(1, 6)):
            wires = rng.sample(range(n), rng.randint(1, 3))
            gates.append(mcx(wires[:-1], wires[-1]))
        circuit = Circuit(n).extend(gates)
        report = verify_circuit(circuit, list(range(n)), backend="bdd")
        for verdict in report.verdicts:
            if verdict.safe:
                continue
            demo = demonstrate(circuit, verdict.qubit, verdict.counterexample)
            assert demo.violated, (seed, verdict)
