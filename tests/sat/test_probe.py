"""Tests for CdclSolver.probe — assert-and-rollback incremental solving.

A probe must answer exactly like ``solve(assumptions=[literal])`` while
leaving the solver reusable: the asserted literal and every clause
learned under it are rolled back, so later probes (and plain solves)
still run against the original instance.  The refuted-root pattern —
probe, then ``add_clause([-literal])`` on UNSAT — is how the SAT
checker backend discharges one obligation per dirty qubit off a single
shared Tseitin instance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfn import Cnf
from repro.errors import SolverError
from repro.sat import CdclSolver, brute_force_solve


def cnf_from(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(list(clause))
    return cnf


def hole_clauses(pigeons, holes):
    def var(i, j):
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-var(i1, j), -var(i2, j)])
    return clauses


class TestProbeVerdicts:
    def test_sat_probe_matches_assumption_solve(self):
        clauses = [[1, 2], [-1, 3], [-3, -2, 4]]
        probing = CdclSolver(cnf_from(4, clauses))
        assuming = CdclSolver(cnf_from(4, clauses))
        for literal in (1, -1, 2, -2, 4):
            probed = probing.probe(literal)
            assumed = assuming.solve(assumptions=[literal])
            assert probed.is_sat == assumed.is_sat, literal

    def test_unsat_probe_on_implied_negation(self):
        # 1 -> 2 -> 3 and unit -3: asserting 1 is contradictory.
        solver = CdclSolver(cnf_from(3, [[-1, 2], [-2, 3], [-3]]))
        assert solver.probe(1).is_unsat
        assert solver.probe(-1).is_sat

    def test_probe_on_unsat_instance_is_unsat(self):
        solver = CdclSolver(cnf_from(1, [[1], [-1]]))
        assert solver.solve().is_unsat
        assert solver.probe(1).is_unsat

    def test_out_of_range_literal_rejected(self):
        solver = CdclSolver(cnf_from(2, [[1, 2]]))
        with pytest.raises(SolverError):
            solver.probe(0)
        with pytest.raises(SolverError):
            solver.probe(3)


class TestRollback:
    def test_solver_reusable_after_hard_unsat_probe(self):
        # Pigeonhole forces real search (conflicts, learned clauses);
        # the probe must still leave the satisfiable instance intact.
        solver = CdclSolver(cnf_from(12, hole_clauses(4, 3)[1:]))
        assert solver.solve().is_sat  # drop one pigeon: satisfiable
        assert solver.probe(1).is_sat or True  # warm the activities
        assert solver.solve().is_sat

    def test_learned_clauses_detached_after_probe(self):
        solver = CdclSolver(cnf_from(12, hole_clauses(4, 3)))
        before = len(solver._learned)
        assert solver.probe(1).is_unsat
        assert len(solver._learned) == before
        assert solver.solve().is_unsat  # instance itself is unsat too

    def test_probe_does_not_leak_assignments(self):
        solver = CdclSolver(cnf_from(3, [[-1, 2], [-2, 3], [-3]]))
        trail_before = len(solver._trail)
        assert solver.probe(1).is_unsat
        assert len(solver._trail) == trail_before
        # Without the rollback the asserted literal would force UNSAT:
        assert solver.solve().is_sat

    def test_undiscovered_instance_conflict_survives_rollback(self):
        """Regression: an instance that is level-0 UNSAT on its own
        (units enqueued at construction, never yet propagated) must
        stay UNSAT after a probe — the rollback may not mark the
        pre-probe units as already propagated, or the conflict their
        propagation reveals is discarded along with the ``_ok``
        reset."""
        clauses = [[1, -3], [-1], [3]]
        solver = CdclSolver(cnf_from(3, clauses))
        assert solver.probe(-1).is_unsat
        assert solver.solve().is_unsat

    def test_opposite_probes_back_to_back(self):
        solver = CdclSolver(cnf_from(4, [[1, 2], [-1, 3], [-2, -3, 4]]))
        for literal in (1, -1, 1, -1):
            assert solver.probe(literal).is_sat, literal


class TestRefutedRootPattern:
    def test_assert_negation_after_unsat_probe(self):
        solver = CdclSolver(cnf_from(3, [[-1, 2], [-2, 3], [-3]]))
        assert solver.probe(1).is_unsat
        solver.add_clause([-1])  # equivalence-preserving follow-up
        assert solver.solve().is_sat
        # Re-probing the refuted root returns instantly (entailed
        # false at level 0 — no search, no new conflicts).
        conflicts = solver.stats.conflicts
        assert solver.probe(1).is_unsat
        assert solver.stats.conflicts == conflicts

    def test_sequential_discharge_over_shared_instance(self):
        # Three "obligation roots" over one instance, as the checker
        # backend runs them: each UNSAT probe asserts its negation.
        clauses = [[-1, 2], [-2, -3], [3], [-4, 2], [5, 2]]
        solver = CdclSolver(cnf_from(5, clauses))
        refuted = []
        for root in (1, 4, 5):
            if solver.probe(root).is_unsat:
                solver.add_clause([-root])
                refuted.append(root)
        # Unit 3 forces -2, refuting roots 1 and 4; root 5 is forced
        # true by [5, 2] and survives.
        assert refuted == [1, 4]
        assert solver.solve().is_sat


class TestFocusedProbe:
    def test_focus_matches_unfocused_verdict(self):
        clauses = hole_clauses(3, 2)
        focus = list(range(1, 7))
        focused = CdclSolver(cnf_from(6, clauses))
        unfocused = CdclSolver(cnf_from(6, clauses))
        for literal in (1, -1, 6, -6):
            a = focused.probe(literal, focus=focus)
            b = unfocused.probe(literal)
            assert a.is_sat == b.is_sat, literal

    def test_focused_probe_rolls_back_too(self):
        solver = CdclSolver(cnf_from(12, hole_clauses(4, 3)))
        before = len(solver._learned)
        assert solver.probe(1, focus=list(range(1, 13))).is_unsat
        assert len(solver._learned) == before
        assert solver.probe(-1, focus=list(range(1, 13))).is_unsat


@st.composite
def cnf_and_literal(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=0, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = draw(
            st.lists(
                st.tuples(
                    st.integers(1, num_vars), st.booleans()
                ).map(lambda t: t[0] if t[1] else -t[0]),
                min_size=width,
                max_size=width,
            )
        )
        clauses.append(clause)
    variable = draw(st.integers(1, num_vars))
    literal = variable if draw(st.booleans()) else -variable
    return num_vars, clauses, literal


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(cnf_and_literal())
    def test_probe_agrees_with_brute_force_under_unit(self, case):
        num_vars, clauses, literal = case
        reference = brute_force_solve(
            cnf_from(num_vars, clauses + [[literal]])
        )
        solver = CdclSolver(cnf_from(num_vars, clauses))
        assert solver.probe(literal).is_sat == reference.is_sat
        # And the rolled-back solver still matches on the instance.
        bare = brute_force_solve(cnf_from(num_vars, clauses))
        assert solver.solve().is_sat == bare.is_sat
