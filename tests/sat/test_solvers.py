"""Tests for the CDCL and DPLL solvers, including differential fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfn import Cnf
from repro.errors import SolverError
from repro.sat import CdclSolver, DpllSolver, brute_force_solve


def cnf_from(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(list(clause))
    return cnf


def check_model(cnf, model):
    for clause in cnf.clauses:
        if not any(model[abs(l)] == (l > 0) for l in clause):
            return False
    return True


SOLVERS = [
    pytest.param(lambda c: CdclSolver(c).solve(), id="cdcl"),
    pytest.param(lambda c: DpllSolver(c).solve(), id="dpll"),
]


@pytest.mark.parametrize("solve", SOLVERS)
class TestBasics:
    def test_empty_cnf_is_sat(self, solve):
        assert solve(cnf_from(3, [])).is_sat

    def test_unit_clauses(self, solve):
        cnf = cnf_from(2, [[1], [-2]])
        result = solve(cnf)
        assert result.is_sat
        assert result.model[1] is True and result.model[2] is False

    def test_conflicting_units(self, solve):
        assert solve(cnf_from(1, [[1], [-1]])).is_unsat

    def test_empty_clause(self, solve):
        cnf = Cnf()
        cnf.new_var()
        cnf.clauses.append([])
        assert solve(cnf).is_unsat

    def test_chain_implication(self, solve):
        # x1 and (x_i -> x_{i+1}) forces all true.
        n = 30
        clauses = [[1]] + [[-i, i + 1] for i in range(1, n)]
        result = solve(cnf_from(n, clauses))
        assert result.is_sat
        assert all(result.model[v] for v in range(1, n + 1))

    def test_model_satisfies(self, solve):
        cnf = cnf_from(4, [[1, 2], [-1, 3], [-3, -2, 4], [2, -4]])
        result = solve(cnf)
        assert result.is_sat
        assert check_model(cnf, result.model)

    def test_pigeonhole_3_into_2_unsat(self, solve):
        # p_ij: pigeon i in hole j; vars 1..6 as (i,j) row-major.
        def var(i, j):
            return i * 2 + j + 1

        clauses = []
        for i in range(3):
            clauses.append([var(i, 0), var(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-var(i1, j), -var(i2, j)])
        assert solve(cnf_from(6, clauses)).is_unsat


class TestCdclSpecifics:
    def test_learns_clauses_on_hard_instance(self):
        def var(i, j):
            return i * 3 + j + 1

        clauses = []
        for i in range(4):
            clauses.append([var(i, j) for j in range(3)])
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    clauses.append([-var(i1, j), -var(i2, j)])
        solver = CdclSolver(cnf_from(12, clauses))
        assert solver.solve().is_unsat
        assert solver.stats.conflicts > 0
        assert solver.stats.learned_clauses > 0

    def test_conflict_budget(self):
        def var(i, j):
            return i * 4 + j + 1

        clauses = []
        for i in range(5):
            clauses.append([var(i, j) for j in range(4)])
        for j in range(4):
            for i1 in range(5):
                for i2 in range(i1 + 1, 5):
                    clauses.append([-var(i1, j), -var(i2, j)])
        with pytest.raises(SolverError):
            CdclSolver(cnf_from(20, clauses), max_conflicts=3).solve()

    def test_tautology_ignored(self):
        result = CdclSolver(cnf_from(2, [[1, -1], [2]])).solve()
        assert result.is_sat and result.model[2] is True


class TestBruteForce:
    def test_caps_variables(self):
        with pytest.raises(SolverError):
            brute_force_solve(cnf_from(30, []))


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=0, max_value=20))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clause = draw(
            st.lists(
                st.tuples(
                    st.integers(1, num_vars), st.booleans()
                ).map(lambda t: t[0] if t[1] else -t[0]),
                min_size=width,
                max_size=width,
            )
        )
        clauses.append(clause)
    return cnf_from(num_vars, clauses)


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(random_cnf())
    def test_three_solvers_agree(self, cnf):
        reference = brute_force_solve(cnf)
        cdcl = CdclSolver(cnf_from(cnf.num_vars, cnf.clauses)).solve()
        dpll = DpllSolver(cnf_from(cnf.num_vars, cnf.clauses)).solve()
        assert cdcl.is_sat == reference.is_sat
        assert dpll.is_sat == reference.is_sat
        if cdcl.is_sat:
            assert check_model(cnf, cdcl.model)
        if dpll.is_sat:
            assert check_model(cnf, dpll.model)
