"""Generator determinism and the constructive safety guarantee.

The generators must be *reproducible from the seed alone* — across
runs, processes and Python versions — or a failing property test's
seed would be useless.  Golden fingerprints pin the exact output of a
fixed seed, so any drift (a refactor reordering rng draws, a Python
version changing an algorithm) fails loudly here rather than silently
invalidating recorded failure seeds.
"""

import hashlib
import random

import pytest

from repro.errors import CircuitError
from repro.testing import (
    random_arrival_trace,
    random_job,
    random_reversible_circuit,
)
from repro.verify import verify_circuit, verify_clean_wires


def _trace_signature(trace) -> str:
    sig = ";".join(
        f"{e.kind}:{e.job.circuit.fingerprint() if e.job else ''}"
        f":{e.timeout}:{e.pick}"
        for e in trace
    )
    return hashlib.blake2b(sig.encode(), digest_size=16).hexdigest()


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        for seed in range(20):
            c1, a1 = random_reversible_circuit(seed, 4, 2)
            c2, a2 = random_reversible_circuit(seed, 4, 2)
            assert a1 == a2
            assert c1.fingerprint() == c2.fingerprint()
            assert [str(g) for g in c1.gates] == [str(g) for g in c2.gates]

    def test_different_seeds_differ(self):
        fingerprints = {
            random_reversible_circuit(seed, 4, 2)[0].fingerprint()
            for seed in range(20)
        }
        assert len(fingerprints) > 15  # collisions would be astonishing

    def test_same_seed_same_job(self):
        for seed in range(20):
            j1, j2 = random_job(seed), random_job(seed)
            assert j1.name == j2.name
            assert j1.request_wires == j2.request_wires
            assert j1.circuit.fingerprint() == j2.circuit.fingerprint()

    def test_same_seed_same_trace(self):
        t1 = random_arrival_trace(99, num_jobs=6)
        t2 = random_arrival_trace(99, num_jobs=6)
        assert _trace_signature(t1) == _trace_signature(t2)

    def test_golden_fingerprints(self):
        """Pin seed 2026's exact output: a change here means recorded
        failure seeds from other machines/versions no longer replay."""
        circuit, ancillas = random_reversible_circuit(
            2026, num_data=4, num_ancillas=2
        )
        assert ancillas == (4, 5)
        assert circuit.fingerprint() == "3ab52c5f7c1a302081ad94865a5be928"
        job = random_job(2026)
        assert job.name == "job-2026"
        assert (
            job.circuit.fingerprint() == "7c78a3fa2457a0d269fb74c9fb4fedb5"
        )
        trace = random_arrival_trace(2026, num_jobs=5)
        assert len(trace) == 16
        assert (
            _trace_signature(trace) == "8ea3b89300bd6f5e831a4fc64b3e4408"
        )

    def test_shared_rng_advances(self):
        rng = random.Random(5)
        j1 = random_job(rng, name="a")
        j2 = random_job(rng, name="b")
        assert j1.circuit.fingerprint() != j2.circuit.fingerprint()

    def test_rng_without_name_rejected(self):
        with pytest.raises(CircuitError):
            random_job(random.Random(5))


class TestSafetyGuarantee:
    """The generator's clean/dirty-safe claim is machine-checked."""

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_ancillas_are_clean_under_brute(self, seed):
        circuit, ancillas = random_reversible_circuit(
            seed, num_data=3, num_ancillas=1, segment_gates=2,
            middle_gates=2,
        )
        report = verify_clean_wires(circuit, ancillas, backend="brute")
        assert report.all_safe, f"seed {seed}: clean check failed"

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_ancillas_are_dirty_safe(self, seed):
        circuit, ancillas = random_reversible_circuit(seed, 4, 2)
        report = verify_circuit(circuit, ancillas, backend="bdd")
        assert report.all_safe, f"seed {seed}: dirty-safety failed"

    @pytest.mark.parametrize("seed", range(8))
    def test_spoiled_ancilla_is_unsafe(self, seed):
        circuit, ancillas = random_reversible_circuit(
            seed, num_data=3, num_ancillas=2, spoiled=[ancilla_spoiled(3)]
        )
        report = verify_circuit(circuit, ancillas, backend="bdd")
        by_qubit = {v.qubit: v.safe for v in report.verdicts}
        assert by_qubit[ancilla_spoiled(3)] is False
        assert by_qubit[4] is True  # the unspoiled sibling stays safe

    def test_spoiling_a_data_wire_rejected(self):
        with pytest.raises(CircuitError):
            random_reversible_circuit(0, 3, 1, spoiled=[0])


def ancilla_spoiled(num_data: int) -> int:
    """First ancilla wire index for a ``num_data``-wide circuit."""
    return num_data


class TestStructure:
    def test_all_gates_classical_and_ancillas_touched(self):
        for seed in range(10):
            circuit, ancillas = random_reversible_circuit(seed, 4, 2)
            assert all(g.is_classical for g in circuit.gates)
            touched = circuit.qubits_touched()
            for ancilla in ancillas:
                assert ancilla in touched

    def test_job_requests_are_its_ancillas(self):
        for seed in range(10):
            job = random_job(seed)
            width = job.circuit.num_qubits
            assert all(0 <= w < width for w in job.request_wires)
            assert len(job.request_wires) >= 1

    def test_trace_shape(self):
        trace = random_arrival_trace(3, num_jobs=7)
        submits = [e for e in trace if e.kind == "submit"]
        releases = [e for e in trace if e.kind == "release"]
        assert len(submits) == 7
        assert len(releases) >= 14  # the drain tail alone
        names = [e.job.name for e in submits]
        assert len(set(names)) == 7

    def test_trace_without_drain(self):
        trace = random_arrival_trace(3, num_jobs=7, drain=False)
        releases = [e for e in trace if e.kind == "release"]
        assert len(releases) < 14
