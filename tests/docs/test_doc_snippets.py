"""Tier-1 mirror of the ``docs`` CI job: docs and code must not drift.

Runs :mod:`tools.run_doc_snippets` over ``docs/*.md`` in-process, so a
plain ``pytest`` run catches a stale example without waiting for CI.
"""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))


def load_runner():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import run_doc_snippets
    finally:
        sys.path.pop(0)
    return run_doc_snippets


def test_docs_tree_exists():
    names = {p.name for p in DOCS}
    assert {"architecture.md", "benchmarks.md", "language.md"} <= names


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_doc_snippets_pass(path, capsys):
    runner = load_runner()
    failed = runner.main([str(path)])
    out = capsys.readouterr().out
    assert failed == 0, f"doc snippets failed:\n{out}"


def test_language_doc_covers_every_diagnostic_code():
    from repro.lang.diagnostics import CODES

    text = (REPO_ROOT / "docs" / "language.md").read_text()
    for code in CODES:
        assert f"### {code}" in text, f"{code} missing from docs/language.md"


def test_runner_flags_a_broken_snippet(tmp_path, capsys):
    bad = tmp_path / "bad.md"
    bad.write_text("```python\n>>> 1 + 1\n3\n```\n")
    runner = load_runner()
    assert runner.main([str(bad)]) == 1
    capsys.readouterr()


def test_runner_syntax_checks_plain_blocks(tmp_path, capsys):
    bad = tmp_path / "bad.md"
    bad.write_text("```python\ndef broken(:\n```\n")
    runner = load_runner()
    assert runner.main([str(bad)]) == 1
    capsys.readouterr()
