"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.circuits import Circuit, cnot, mcx, toffoli


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need different streams reseed."""
    return np.random.default_rng(20260611)


def classical_gate_strategy(num_qubits: int):
    """One random X / CX / CCX / MCX gate on ``num_qubits`` wires."""

    def build(data):
        qubits, fanin = data
        controls = qubits[: fanin - 1]
        target = qubits[fanin - 1]
        return mcx(controls, target)

    return st.tuples(
        st.permutations(range(num_qubits)),
        st.integers(min_value=1, max_value=min(4, num_qubits)),
    ).map(build)


def classical_circuit_strategy(num_qubits: int, max_gates: int = 12):
    """A random classical circuit (the Theorem 6.2 fragment)."""
    return st.lists(
        classical_gate_strategy(num_qubits), min_size=0, max_size=max_gates
    ).map(lambda gates: Circuit(num_qubits, gates))


def reversible_pair_circuit(num_qubits: int, max_gates: int = 8):
    """A circuit of the form C ; C⁻¹ — always safe on every qubit."""
    return st.lists(
        classical_gate_strategy(num_qubits), min_size=1, max_size=max_gates
    ).map(
        lambda gates: Circuit(
            num_qubits, gates + [g.dagger() for g in reversed(gates)]
        )
    )


def fig13_circuit() -> Circuit:
    """The Figure 1.3 CCCNOT-with-dirty-qubit circuit (wires q1,q2,a,q3,q4)."""
    return Circuit(5, labels=["q1", "q2", "a", "q3", "q4"]).extend(
        [toffoli(0, 1, 2), toffoli(2, 3, 4), toffoli(0, 1, 2), toffoli(2, 3, 4)]
    )


def fig31_circuit() -> Circuit:
    """The Figure 3.1a circuit: CNOT then two CCCNOT routines with dirty
    ancillas a1 (wire 5) and a2 (wire 6) over working qubits q1..q5.

    The paper's Figure 4.4 listing writes the second routine's first
    Toffoli as ``Toffoli[q4, q5, q2]`` — with ``q2`` as accumulator and
    ``a2`` a *control*, which would make a2 genuinely unsafe (our
    verifier finds the counterexample).  Figure 3.1's caption asserts a2
    is safely uncomputed, so the intended accumulator must be ``a2``;
    this builder uses that corrected reading (see EXPERIMENTS.md, D2).
    """
    c = Circuit(7, labels=["q1", "q2", "q3", "q4", "q5", "a1", "a2"])
    c.append(cnot(1, 2))
    # First routine: CCCNOT(q1,q2,q4 -> q5) borrowing a1.
    c.extend(
        [toffoli(0, 1, 5), toffoli(5, 3, 4), toffoli(0, 1, 5), toffoli(5, 3, 4)]
    )
    # Second routine: CCCNOT(q4,q5,q2 -> q1) borrowing a2 as accumulator.
    c.extend(
        [toffoli(3, 4, 6), toffoli(6, 1, 0), toffoli(3, 4, 6), toffoli(6, 1, 0)]
    )
    return c


def fig44_verbatim_second_routine() -> Circuit:
    """Figure 4.4's S2 exactly as printed (``Toffoli[q4, q5, q2]`` —
    the a2-as-control reading).  Kept to document that this variant's a2
    fails safe uncomputation while the program semantics still collapses
    to a singleton."""
    c = Circuit(7, labels=["q1", "q2", "q3", "q4", "q5", "a1", "a2"])
    c.append(cnot(1, 2))
    c.extend(
        [toffoli(0, 1, 5), toffoli(5, 3, 4), toffoli(0, 1, 5), toffoli(5, 3, 4)]
    )
    c.extend(
        [toffoli(3, 4, 1), toffoli(6, 1, 0), toffoli(3, 4, 1), toffoli(6, 1, 0)]
    )
    return c
