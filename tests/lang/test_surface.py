"""Tests for the .qbr lexer, parser, and elaborator."""

import pytest

from repro.errors import ParseError
from repro.lang.surface import elaborate, parse, tokenize
from repro.lang.surface.parser import (
    BinOp,
    DeclStmt,
    ForStmt,
    GateStmt,
    LetStmt,
)


class TestLexer:
    def test_keywords_and_ids(self):
        kinds = [t.kind for t in tokenize("let borrow alloc release for to x")]
        assert kinds == [
            "LET", "BORROW", "ALLOC", "RELEASE", "FOR", "TO", "ID", "EOF",
        ]

    def test_borrow_at(self):
        tokens = tokenize("borrow@ q;")
        assert tokens[0].kind == "BORROW_SKIP"

    def test_positions(self):
        tokens = tokenize("let\nn = 5;")
        n_token = tokens[1]
        assert (n_token.line, n_token.column) == (2, 1)

    def test_comments_skipped(self):
        tokens = tokenize("// hello\nX[q]; /* multi\nline */ X[q];")
        assert sum(1 for t in tokens if t.kind == "ID") == 4

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(ParseError) as err:
            tokenize("let n = 5 $")
        assert "line 1" in str(err.value)


class TestParser:
    def test_let(self):
        program = parse("let n = 5 + 2 * 3;")
        stmt = program.statements[0]
        assert isinstance(stmt, LetStmt)
        assert isinstance(stmt.value, BinOp) and stmt.value.op == "+"

    def test_precedence(self):
        stmt = parse("let n = 2 * 3 + 4;").statements[0]
        assert stmt.value.op == "+"
        assert isinstance(stmt.value.left, BinOp)

    def test_parentheses(self):
        stmt = parse("let n = 2 * (3 + 4);").statements[0]
        assert stmt.value.op == "*"

    def test_unary_minus(self):
        program = parse("let n = -3; borrow q; X[q];")
        assert program.statements[0].value is not None

    def test_gate_arities(self):
        program = parse(
            "borrow a; borrow b; borrow c;"
            "X[a]; CNOT[a, b]; CCNOT[a, b, c];"
        )
        gates = [s for s in program.statements if isinstance(s, GateStmt)]
        assert [g.gate for g in gates] == ["X", "CNOT", "CCNOT"]

    def test_gate_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse("borrow a; CNOT[a];")

    def test_for_loop(self):
        program = parse("for i = 1 to 3 { X[q]; }")
        loop = program.statements[0]
        assert isinstance(loop, ForStmt)
        assert len(loop.body) == 1

    def test_unterminated_for(self):
        with pytest.raises(ParseError):
            parse("for i = 1 to 3 { X[q];")

    def test_empty_program(self):
        with pytest.raises(ParseError):
            parse("   // nothing\n")

    def test_decl_kinds(self):
        program = parse("borrow a; borrow@ b; alloc c[3];")
        kinds = [s.kind for s in program.statements if isinstance(s, DeclStmt)]
        assert kinds == ["borrow", "borrow_skip", "alloc"]


class TestElaborator:
    def test_scalar_and_array_registers(self):
        prog = elaborate("borrow a; borrow q[3]; CNOT[a, q[2]];")
        assert prog.circuit.num_qubits == 4
        assert prog.circuit.labels == ["a", "q[1]", "q[2]", "q[3]"]
        assert prog.circuit.gates[0].qubits == (0, 2)

    def test_roles(self):
        prog = elaborate("borrow d; borrow@ i[2]; alloc c;")
        assert prog.dirty_wires == [0]
        assert prog.input_wires == [1, 2]
        assert prog.clean_wires == [3]

    def test_let_arithmetic(self):
        prog = elaborate("let n = 2 + 3; borrow q[n - 1]; X[q[4]];")
        assert prog.circuit.num_qubits == 4

    def test_for_ascending_and_descending(self):
        up = elaborate("borrow q[3]; for i = 1 to 3 { X[q[i]]; }")
        down = elaborate("borrow q[3]; for i = 3 to 1 { X[q[i]]; }")
        assert [g.qubits[0] for g in up.circuit.gates] == [0, 1, 2]
        assert [g.qubits[0] for g in down.circuit.gates] == [2, 1, 0]

    def test_loop_variable_scoping(self):
        prog = elaborate(
            "let i = 9; borrow q[9]; for i = 1 to 2 { X[q[i]]; } X[q[i]];"
        )
        assert prog.circuit.gates[-1].qubits == (8,)  # i restored to 9

    def test_nested_loops(self):
        prog = elaborate(
            "borrow q[4];"
            "for i = 1 to 2 { for j = 1 to 2 { X[q[2 * (i - 1) + j]]; } }"
        )
        assert [g.qubits[0] for g in prog.circuit.gates] == [0, 1, 2, 3]

    def test_release_lifetime(self):
        with pytest.raises(ParseError):
            elaborate("borrow q; release q; X[q];")

    def test_double_release(self):
        with pytest.raises(ParseError):
            elaborate("borrow q; release q; release q;")

    def test_release_unknown(self):
        with pytest.raises(ParseError):
            elaborate("release zz;")

    def test_index_bounds(self):
        with pytest.raises(ParseError) as err:
            elaborate("borrow q[2]; X[q[3]];")
        assert "out of range" in str(err.value)

    def test_scalar_indexing_rejected(self):
        with pytest.raises(ParseError):
            elaborate("borrow q; X[q[1]];")

    def test_array_needs_index(self):
        with pytest.raises(ParseError):
            elaborate("borrow q[2]; X[q];")

    def test_variable_register_collisions(self):
        with pytest.raises(ParseError):
            elaborate("let q = 3; borrow q;")
        with pytest.raises(ParseError):
            elaborate("borrow q; let q = 3;")

    def test_redeclaration_rejected(self):
        with pytest.raises(ParseError):
            elaborate("borrow q; borrow q;")

    def test_redeclaration_after_release_allowed(self):
        prog = elaborate("borrow q; release q; borrow q; X[q];")
        # the second q is a fresh wire
        assert prog.circuit.num_qubits == 2
        assert prog.circuit.gates[0].qubits == (1,)

    def test_undefined_variable(self):
        with pytest.raises(ParseError):
            elaborate("borrow q[n];")

    def test_summary(self):
        prog = elaborate("borrow d; borrow@ i; X[d];")
        assert "dirty=1" in prog.summary()

    def test_wires_of(self):
        prog = elaborate("borrow q[2]; borrow a; X[a];")
        assert prog.wires_of("q") == [0, 1]
        with pytest.raises(ParseError):
            prog.wires_of("zz")
