"""Snapshot corpus for the static borrow checker (``repro.lang.borrowck``).

Every ``BQ###`` diagnostic code documented in ``docs/language.md`` is
exercised here with a minimal failing program, and the *full* rendered
diagnostic — caret spans, notes, fix-hints — is snapshot-asserted, so a
wording or span regression fails loudly.  The corpus mirrors Guppy's
``linear_errors`` suite: ``copy_qubit`` (BQ007), ``borrow_leaked``
(BQ009), use-after-move (BQ001/BQ003) and double-borrow (BQ002).
"""

import textwrap

import pytest

from repro.lang import (
    BorrowCheckError,
    check_program,
    check_qbr,
)
from repro.lang.diagnostics import CODES, Diagnostic, DiagnosticReport, Span
from repro.lang.surface import elaborate, verify_qbr
from repro.lang.surface.parser import ParseError


def report_for(source):
    report = check_program(source)
    return report


def snapshot(source):
    return check_program(source).render()


# ---------------------------------------------------------------------------
# One minimal failing program per code, full-text snapshots.
# ---------------------------------------------------------------------------


def test_bq001_use_after_release():
    assert snapshot("borrow q; release q; X[q];") == textwrap.dedent(
        """\
        error[BQ001]: register 'q' used after release
         --> <qbr>:1:24
          |
        1 | borrow q; release q; X[q];
          |                        ^ 'q' is no longer live here
          |
          = note: 'q' was released on line 1
          = help: move this use before the release, or drop the release"""
    )


def test_bq002_double_borrow():
    assert snapshot("borrow q;\nborrow q;") == textwrap.dedent(
        """\
        error[BQ002]: register 'q' is already declared and still live
         --> <qbr>:2:8
          |
        2 | borrow q;
          |        ^ redeclared here
          |
          = note: the first declaration of 'q' is on line 1
          = help: release 'q' before redeclaring it, or pick a fresh name"""
    )


def test_bq003_borrow_escapes_scope():
    source = (
        "borrow@ x;\n"
        "borrow b { within { CNOT[x, b]; } apply { } }\n"
        "X[b];"
    )
    assert snapshot(source) == textwrap.dedent(
        """\
        error[BQ003]: scoped borrow 'b' used after its block ended
         --> <qbr>:3:3
          |
        3 | X[b];
          |   ^ the borrow was already returned
          |
          = note: the borrow block for 'b' opened on line 2
          = help: move this gate inside the borrow block"""
    )


def test_bq004_apply_writes_frozen_wire():
    source = (
        "borrow@ x;\n"
        "borrow b {\n"
        "  within { CNOT[b, x]; }\n"
        "  apply  { X[x]; }\n"
        "}"
    )
    assert snapshot(source) == textwrap.dedent(
        """\
        error[BQ004]: apply-section writes to 'x', which the within-section touched
         --> <qbr>:4:14
          |
        4 |   apply  { X[x]; }
          |              ^ frozen by the borrow block
          |
          = note: every wire the within-section touches (and the borrowed wire itself) is restored when the block ends; an apply-section write would corrupt that restore
          = help: move this gate into the within-section, or target a wire the within-section leaves alone"""
    )


def test_bq005_use_while_lent():
    assert snapshot("borrow@ x;\nlend x { X[x]; }") == textwrap.dedent(
        """\
        error[BQ005]: register 'x' is lent out and cannot be used here
         --> <qbr>:2:12
          |
        2 | lend x { X[x]; }
          |            ^ owner access during a lend
          |
          = note: 'x' was lent on line 2
          = help: move this gate outside the lend block"""
    )


def test_bq006_lend_undeclared():
    assert snapshot("lend zz { }") == textwrap.dedent(
        """\
        error[BQ006]: cannot lend undeclared register 'zz'
         --> <qbr>:1:6
          |
        1 | lend zz { }
          |      ^^ no such register
          |
          = help: declare 'zz' before lending it"""
    )


def test_bq007_copy_qubit():
    # Guppy's ``copy_qubit``: the same qubit twice in one gate.
    assert snapshot("borrow@ x; CNOT[x, x];") == textwrap.dedent(
        """\
        error[BQ007]: gate operands 'x' and 'x' alias the same wire
         --> <qbr>:1:20
          |
        1 | borrow@ x; CNOT[x, x];
          |                    ^ same wire as an earlier operand
          |
          = note: a controlled gate needs pairwise-distinct wires; a qubit cannot be used twice in one gate
          = help: route one of the operands to a different wire"""
    )


def test_bq008_release_undeclared():
    assert snapshot("release zz;") == textwrap.dedent(
        """\
        error[BQ008]: release of undeclared register 'zz'
         --> <qbr>:1:9
          |
        1 | release zz;
          |         ^^ no such register
          |
          = help: declare 'zz' before releasing it"""
    )


def test_bq009_borrow_leaked():
    # Guppy's ``borrow_leaked``: a scoped borrow must be returned by its
    # block, never released by hand.
    source = (
        "borrow@ g;\n"
        "borrow b {\n"
        "  within { CNOT[g, b]; }\n"
        "  apply  { release b; }\n"
        "}"
    )
    assert snapshot(source) == textwrap.dedent(
        """\
        error[BQ009]: cannot release 'b': a scoped borrow must be returned by its block, not released
         --> <qbr>:4:20
          |
        4 |   apply  { release b; }
          |                    ^ borrow leaked here
          |
          = note: the borrow block for 'b' opened on line 2
          = help: remove this release; the block returns 'b' when it closes"""
    )


def test_bq010_dirty_read():
    source = (
        "borrow@ x; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[x, b]; }\n"
        "  apply  { CCNOT[b, x, t]; }\n"
        "}"
    )
    assert snapshot(source) == textwrap.dedent(
        """\
        error[BQ010]: dirty read in the apply-section: 'b' is read together with 'x', which the within-section changes between the two phases
         --> <qbr>:4:18
          |
        4 |   apply  { CCNOT[b, x, t]; }
          |                  ^ unprovable read
          |
          = note: the apply-section runs before and after the uncompute; only a lone read of the borrowed wire (against otherwise phase-stable controls) makes the two copies cancel the dirty value
          = help: recompute the needed value onto a fresh alloc wire in the within-section, then control on that wire"""
    )


def test_bq011_apply_read_write_overlap():
    source = (
        "borrow@ x; alloc t1; alloc t2;\n"
        "borrow b {\n"
        "  within { CNOT[x, b]; }\n"
        "  apply  { CNOT[b, t1]; CNOT[t1, t2]; }\n"
        "}"
    )
    report = report_for(source)
    # The offset taint smeared onto t1 also makes the second read dirty,
    # so BQ010 accompanies the overlap diagnostic.
    assert report.codes() == ["BQ010", "BQ011"]
    assert report.render().split("\n\n")[1] == textwrap.dedent(
        """\
        error[BQ011]: apply-section reads 't1', a wire it also writes
         --> <qbr>:4:30
          |
        4 |   apply  { CNOT[b, t1]; CNOT[t1, t2]; }
          |                              ^^ read/write overlap in the apply-section
          |
          = note: the apply-section runs twice (before and after the uncompute); a wire it writes has different values in the two runs
          = help: split the computation so no apply-section gate reads a wire another apply-section gate targets"""
    )


def test_bq012_no_net_effect_warning():
    source = (
        "borrow@ x; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[x, b]; }\n"
        "  apply  { X[t]; }\n"
        "}"
    )
    report = report_for(source)
    assert report.codes() == ["BQ012"]
    # Warnings do not fail the check.
    assert report.ok
    assert report.render() == textwrap.dedent(
        """\
        warning[BQ012]: apply-section gate cancels with its mirror copy and has no net effect
         --> <qbr>:4:12
          |
        4 |   apply  { X[t]; }
          |            ^^^^ fires identically in both phases
          |
          = note: the apply-section is emitted twice; a gate that reads no borrowed or within-touched wire repeats itself and the two copies cancel
          = help: control the gate on the borrowed wire, or move it out of the borrow block"""
    )


# ---------------------------------------------------------------------------
# Further code-level behaviours (no full-text snapshot needed).
# ---------------------------------------------------------------------------


def test_bq001_use_after_move_in_gate_controls():
    report = report_for("borrow a; borrow b; release a; CNOT[a, b];")
    assert report.codes() == ["BQ001"]


def test_bq003_release_after_block():
    source = (
        "borrow@ x;\n"
        "borrow b { within { CNOT[x, b]; } apply { } }\n"
        "release b;"
    )
    assert report_for(source).codes() == ["BQ003"]


def test_bq005_release_while_lent_is_bq009():
    report = report_for("borrow@ x;\nlend x { release x; }")
    assert report.codes() == ["BQ009"]


def test_bq006_lend_released_register():
    report = report_for("borrow q; release q; lend q { }")
    assert report.codes() == ["BQ006"]


def test_bq008_double_release():
    report = report_for("borrow q; release q; release q;")
    assert report.codes() == ["BQ008"]


def test_bq010_two_tainted_controls():
    # Both controls carry the borrowed offset: the product is dirty.
    source = (
        "borrow@ x; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[b, x]; }\n"
        "  apply  { CCNOT[b, x, t]; }\n"
        "}"
    )
    assert "BQ010" in report_for(source).codes()


def test_bq010_offset_non_borrow_wire_read():
    # Reading an offset *within* wire leaks: phase 2 restores it to its
    # own initial value, not the borrowed one, so nothing cancels.
    source = (
        "borrow@ x; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[b, x]; }\n"
        "  apply  { CNOT[x, t]; }\n"
        "}"
    )
    assert "BQ010" in report_for(source).codes()


def test_bq010_multi_wire_cross_offset():
    # A width-2 borrow has two independent unknowns: XOR-ing b[1] into
    # b[2] leaves b0_1 xor b0_2 on the wire, and reading it in the
    # apply-section leaks b0_1 into t (net effect t ^= b0_1).  The
    # per-origin taint must reject this — an identical-looking scalar
    # cancellation argument does not apply across origins.
    source = (
        "alloc t;\n"
        "borrow b[2] {\n"
        "  within { CNOT[b[1], b[2]]; }\n"
        "  apply  { CNOT[b[2], t]; }\n"
        "}"
    )
    report = report_for(source)
    assert report.codes() == ["BQ010"]
    assert "contaminated" in report.render()


def test_bq010_scrubbed_borrow_read():
    # The within-section XORs the borrow's own offset back out, leaving
    # the wire clean *after C* — but the mirror-phase firing still reads
    # the dirty initial value b0, with nothing left to cancel it.
    source = (
        "borrow@ o; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[b, t]; CNOT[t, b]; }\n"
        "  apply  { CNOT[b, o]; }\n"
        "}"
    )
    report = report_for(source)
    assert report.codes() == ["BQ010"]
    assert "the within-section rewrote 'b'" in report.render()


def test_bq010_foreign_offset_on_borrowed_wire():
    # Scrub b[2] clean, then mix b[1] into it: the wire now carries the
    # *other* wire's offset, which cannot cancel its own b0_2 in the
    # mirror phase.
    source = (
        "alloc t; alloc u;\n"
        "borrow b[2] {\n"
        "  within { CNOT[b[2], t]; CNOT[t, b[2]]; CNOT[b[1], b[2]]; }\n"
        "  apply  { CNOT[b[2], u]; }\n"
        "}"
    )
    report = report_for(source)
    assert "BQ010" in report.codes()
    assert "rewrote" in report.render()


def test_bq012_judged_against_innermost_block_only():
    # The gate's controls are phase-varying for the *outer* block (t is
    # outer-within-touched) but phase-stable for the inner block that
    # actually duplicates it — so the two inner copies cancel and the
    # warning must fire.
    source = (
        "borrow@ x; alloc t; alloc u;\n"
        "borrow a {\n"
        "  within { CNOT[x, t]; }\n"
        "  apply {\n"
        "    borrow c {\n"
        "      within { CNOT[x, c]; }\n"
        "      apply  { CNOT[t, u]; }\n"
        "    }\n"
        "  }\n"
        "}"
    )
    assert "BQ012" in report_for(source).codes()


# ---------------------------------------------------------------------------
# Collect-mode semantics: multi-error recovery and deduplication.
# ---------------------------------------------------------------------------


def test_collect_mode_accumulates_independent_errors():
    report = report_for("borrow q; release q; X[q];\nrelease zz;")
    assert report.codes() == ["BQ001", "BQ008"]
    assert not report.ok


def test_loop_unrolling_deduplicates_diagnostics():
    # The loop body elaborates four times but the diagnostic location is
    # identical, so the report holds a single entry.
    source = "borrow q; release q;\nfor i = 0 to 3 { X[q]; }"
    report = report_for(source)
    assert report.codes() == ["BQ001"]


def test_parse_errors_surface_as_parse_code():
    report = report_for("borrow q")
    assert report.codes() == ["PARSE"]
    assert not report.ok


def test_clean_program_has_empty_report():
    report = report_for("borrow@ a; borrow@ b; CNOT[a, b];")
    assert report.ok
    assert len(report) == 0
    assert report.render() == ""


def test_check_qbr_accepts_text_and_path(tmp_path):
    path = tmp_path / "prog.qbr"
    path.write_text("borrow q; release q; X[q];\n")
    from_path = check_qbr(str(path))
    from_text = check_qbr("borrow q; release q; X[q];")
    assert from_path.codes() == from_text.codes() == ["BQ001"]
    assert str(path) in from_path.render()


# ---------------------------------------------------------------------------
# Strict mode: elaborate() raises a rendered BorrowCheckError.
# ---------------------------------------------------------------------------


def test_strict_mode_raises_borrow_check_error():
    with pytest.raises(BorrowCheckError) as excinfo:
        elaborate("borrow q; release q; X[q];")
    err = excinfo.value
    assert err.code == "BQ001"
    assert err.line == 1
    assert "error[BQ001]" in str(err)
    assert "^ 'q' is no longer live here" in str(err)


def test_borrow_check_error_is_a_parse_error():
    # Existing callers catch ParseError; the checker must not break them.
    with pytest.raises(ParseError):
        elaborate("borrow@ x; CNOT[x, x];")


def test_warnings_do_not_raise_in_strict_mode():
    program = elaborate(
        "borrow@ x; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[x, b]; }\n"
        "  apply  { X[t]; }\n"
        "}"
    )
    assert program.diagnostics is not None
    assert program.diagnostics.codes() == ["BQ012"]


# ---------------------------------------------------------------------------
# Differential soundness: everything the checker proves, the Section 6
# solver must also certify.  The corpus deliberately mixes provable
# programs with unsafe ones (multi-wire registers, wire-mixing
# within-sections, scrubbed borrows) — for the unsafe entries the
# subset assertion is what catches a checker that wrongly "proves" a
# wire the solver rejects.
# ---------------------------------------------------------------------------

DIFFERENTIAL_CORPUS = [
    # Figure 1.3 CCCNOT — the canonical provable block.
    "borrow@ q1; borrow@ q2; borrow@ q3; alloc q4;\n"
    "borrow a {\n"
    "  within { CCNOT[q1, q2, a]; }\n"
    "  apply  { CCNOT[a, q3, q4]; }\n"
    "}",
    # Safe width-2 register: each wire offset-reads independently.
    "borrow@ x; alloc t[2];\n"
    "borrow b[2] {\n"
    "  within { CNOT[x, b[1]]; CNOT[x, b[2]]; }\n"
    "  apply  { CNOT[b[1], t[1]]; CNOT[b[2], t[2]]; }\n"
    "}",
    # Wire-mixing within, but the apply reads the *unmixed* wire (safe:
    # the mix restores and b[1] still carries its own offset).
    "alloc t;\n"
    "borrow b[2] {\n"
    "  within { CNOT[b[1], b[2]]; }\n"
    "  apply  { CNOT[b[1], t]; }\n"
    "}",
    # UNSAFE: the mix leaves b0_1 xor b0_2 on b[2]; reading it nets
    # t ^= b0_1.
    "alloc t;\n"
    "borrow b[2] {\n"
    "  within { CNOT[b[1], b[2]]; }\n"
    "  apply  { CNOT[b[2], t]; }\n"
    "}",
    # UNSAFE: scrubbed borrow — clean after C, but the mirror phase
    # reads b0 with nothing to cancel it.
    "borrow@ o; alloc t;\n"
    "borrow b {\n"
    "  within { CNOT[b, t]; CNOT[t, b]; }\n"
    "  apply  { CNOT[b, o]; }\n"
    "}",
    # UNSAFE: borrowed wire rewritten to the *other* wire's offset.
    "alloc t; alloc u;\n"
    "borrow b[2] {\n"
    "  within { CNOT[b[2], t]; CNOT[t, b[2]]; CNOT[b[1], b[2]]; }\n"
    "  apply  { CNOT[b[2], u]; }\n"
    "}",
    # Nested blocks, both provable.
    "borrow@ q1; borrow@ q2; borrow@ q3; alloc out;\n"
    "borrow a {\n"
    "  within {\n"
    "    borrow c {\n"
    "      within { CNOT[q1, c]; }\n"
    "      apply  { CCNOT[c, q2, a]; }\n"
    "    }\n"
    "  }\n"
    "  apply { CCNOT[a, q3, out]; }\n"
    "}",
]


@pytest.mark.parametrize("source", DIFFERENTIAL_CORPUS)
def test_proven_wires_are_solver_safe(source):
    program = elaborate(source, strict=False)
    report = verify_qbr(program, trust_checker=False)
    verdicts = {v.qubit: v.safe for v in report.verdicts}
    for wire in program.proven_wires:
        assert verdicts[wire] is True, (
            f"checker proved wire {wire} but the solver rejects it:\n"
            f"{program.diagnostics.render()}"
        )


def test_unsafe_corpus_entries_prove_nothing():
    # The unsafe differential entries must fail the checker outright —
    # no wire may ride a certification into the solver-skip path.
    for source in DIFFERENTIAL_CORPUS:
        program = elaborate(source, strict=False)
        report = verify_qbr(program, trust_checker=False)
        unsafe = {v.qubit for v in report.verdicts if not v.safe}
        assert not (unsafe & set(program.proven_wires))
        if unsafe:
            assert not program.diagnostics.ok


# ---------------------------------------------------------------------------
# Diagnostics plumbing.
# ---------------------------------------------------------------------------


def test_every_documented_code_is_exercised_here():
    import pathlib

    text = pathlib.Path(__file__).read_text()
    for code in CODES:
        assert code in text, f"{code} has no corpus entry"


def test_diagnostic_render_without_notes_has_no_trailing_bar():
    diag = Diagnostic(
        code="BQ001",
        message="boom",
        span=Span(line=1, column=1, length=2),
        label="here",
    )
    rendered = diag.render("XY q;")
    assert rendered == textwrap.dedent(
        """\
        error[BQ001]: boom
         --> <qbr>:1:1
          |
        1 | XY q;
          | ^^ here"""
    )


def test_report_renders_blocks_separated_by_blank_lines():
    report = DiagnosticReport(source="release a;\nrelease b;")
    report.add(
        Diagnostic(
            code="BQ008",
            message="first",
            span=Span(line=1, column=9, length=1),
        )
    )
    report.add(
        Diagnostic(
            code="BQ008",
            message="second",
            span=Span(line=2, column=9, length=1),
        )
    )
    assert report.render().count("\n\n") == 1
    assert len(report) == 2
