"""Streaming front-end equality: the iterator paths cannot drift.

``parse`` drains :func:`iter_statements` and ``elaborate`` drains
:func:`iter_program`, so equality is structural — but these tests pin
the *external* contract over a real corpus (the paper's ``.qbr``
templates, scoped borrow blocks, lend blocks, the borrow-check
differential corpus with its deliberate violations): gate-for-gate
equality, identical diagnostics and proven wires, and genuinely
incremental consumption (statements and gates arrive before source
after them has been lexed, and a late error surfaces only when the
stream reaches it).
"""

import pytest

from repro.errors import ParseError
from repro.lang.surface import (
    elaborate,
    iter_program,
    iter_statements,
    parse,
)
from repro.lang.surface.sources import adder_qbr_source, mcx_qbr_source
from tests.lang.test_borrowck import DIFFERENTIAL_CORPUS

CORPUS = [
    adder_qbr_source(4),
    mcx_qbr_source(5),
    "let n = 3; borrow q[3]; alloc t;\n"
    "for i = 1 to n { CNOT[q[i], t]; }\n"
    "for i = n to 1 { CNOT[q[i], t]; }",
    "borrow@ q1; borrow@ q2; borrow@ q3; alloc q4;\n"
    "borrow a {\n"
    "  within { CCNOT[q1, q2, a]; }\n"
    "  apply  { CCNOT[a, q3, q4]; }\n"
    "}",
    "borrow x; alloc t;\n"
    "lend x { X[t]; CNOT[t, t]; }" .replace("CNOT[t, t]", "X[t]"),
]


class TestStatementStreamEquality:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_streamed_statements_equal_parse(self, index):
        source = CORPUS[index]
        assert (
            tuple(iter_statements(source)) == parse(source).statements
        )

    def test_empty_source_raises_on_drain(self):
        stream = iter_statements("  // nothing\n")
        with pytest.raises(ParseError, match="empty program"):
            list(stream)


class TestGateStreamEquality:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_streamed_gates_equal_offline(self, index):
        source = CORPUS[index]
        offline = elaborate(source)
        assert list(iter_program(source)) == offline.circuit.gates

    @pytest.mark.parametrize("index", range(len(DIFFERENTIAL_CORPUS)))
    def test_differential_corpus_with_diagnostics(self, index):
        """Gate stream, diagnostics and proven wires must match the
        offline elaboration even on programs the checker rejects."""
        source = DIFFERENTIAL_CORPUS[index]
        offline = elaborate(source, strict=False)
        stream = iter_program(source, strict=False)
        assert list(stream) == offline.circuit.gates
        streamed = stream.result()
        assert streamed.circuit.fingerprint() == (
            offline.circuit.fingerprint()
        )
        assert streamed.proven_wires == offline.proven_wires
        assert streamed.dirty_wires == offline.dirty_wires
        assert streamed.diagnostics.codes() == offline.diagnostics.codes()

    def test_result_after_partial_consumption_drains(self):
        source = adder_qbr_source(4)
        offline = elaborate(source)
        stream = iter_program(source)
        first = [next(stream), next(stream)]
        assert first == offline.circuit.gates[:2]
        program = stream.result()
        assert program.circuit.gates == offline.circuit.gates
        assert stream.result() is program  # idempotent

    def test_lend_windows_survive_streaming(self):
        source = (
            "borrow x; alloc t;\n"
            "lend x { X[t]; }\n"
            "X[t];"
        )
        assert (
            iter_program(source).result().lend_windows
            == elaborate(source).lend_windows
        )


class TestIncrementality:
    def test_gates_arrive_before_later_source_is_lexed(self):
        """A lex error deep in the tail must not prevent the prefix's
        gates from streaming out first."""
        source = "borrow a; borrow b; CNOT[a, b]; X[a]; $"
        stream = iter_program(source)
        assert next(stream).name == "CX"
        assert next(stream).name == "X"
        with pytest.raises(ParseError, match="line 1"):
            next(stream)

    def test_statements_arrive_before_later_source_is_lexed(self):
        stream = iter_statements("let n = 1; let m = $")
        first = next(stream)
        assert first.name == "n"
        with pytest.raises(ParseError):
            next(stream)

    def test_num_wires_grows_with_declarations(self):
        stream = iter_program(
            "borrow a; X[a];\nborrow b; CNOT[a, b];"
        )
        next(stream)
        assert stream.num_wires == 1
        next(stream)
        assert stream.num_wires == 2

    def test_strict_violation_raises_at_the_gate(self):
        stream = iter_program("borrow@ x; CNOT[x, x];")
        with pytest.raises(ParseError):
            list(stream)
