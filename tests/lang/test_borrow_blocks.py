"""Positive-path tests for scoped ``borrow { within/apply }`` blocks.

Where ``test_borrowck.py`` pins the error corpus, this file pins what a
*valid* block elaborates to — the C; D; reverse(C); D double-conjugation
of the paper's Figure 1.3 — and cross-checks the checker's soundness:
every block the checker proves must also pass the Section 6 solver.
"""

import pytest

from repro.lang.surface import elaborate, job_from_qbr, verify_qbr

FIG13_CCCNOT = """\
borrow@ q1; borrow@ q2; borrow@ q3; alloc q4;
borrow a {
  within { CCNOT[q1, q2, a]; }
  apply  { CCNOT[a, q3, q4]; }
}
"""


def gate_tuples(program):
    return [(g.name, tuple(g.controls), g.target) for g in program.circuit.gates]


def test_fig13_cccnot_elaborates_to_double_conjugation():
    program = elaborate(FIG13_CCCNOT)
    # C; D; reverse(C); D — the apply-section fires in both phases so the
    # dirty initial value of the borrowed wire cancels out of q4.
    assert gate_tuples(program) == [
        ("CCX", (0, 1), 4),
        ("CCX", (4, 2), 3),
        ("CCX", (0, 1), 4),
        ("CCX", (4, 2), 3),
    ]
    assert program.proven_wires == [4]
    assert program.dirty_wires == [4]
    assert program.summary().endswith("proven=1")


def test_multi_gate_within_section_reverses_in_order():
    program = elaborate(
        "borrow@ x; borrow@ y; alloc t;\n"
        "borrow b {\n"
        "  within { CNOT[x, b]; CNOT[y, b]; }\n"
        "  apply  { CNOT[b, t]; }\n"
        "}"
    )
    names = [(g.name, tuple(g.controls), g.target) for g in program.circuit.gates]
    assert names == [
        ("CX", (0,), 3),   # C: x -> b
        ("CX", (1,), 3),   # C: y -> b
        ("CX", (3,), 2),   # D
        ("CX", (1,), 3),   # reverse(C), reversed order
        ("CX", (0,), 3),
        ("CX", (3,), 2),   # D again
    ]
    assert program.proven_wires == [3]


def test_nested_borrow_blocks_both_prove():
    program = elaborate(
        "borrow@ q1; borrow@ q2; borrow@ q3; alloc out;\n"
        "borrow a {\n"
        "  within {\n"
        "    borrow c {\n"
        "      within { CNOT[q1, c]; }\n"
        "      apply  { CCNOT[c, q2, a]; }\n"
        "    }\n"
        "  }\n"
        "  apply { CCNOT[a, q3, out]; }\n"
        "}"
    )
    assert sorted(program.proven_wires) == sorted(program.dirty_wires)
    assert len(program.proven_wires) == 2
    report = verify_qbr(program)
    assert all(v.safe for v in report.verdicts)


def test_block_without_dirty_reads_outside_still_elaborates():
    # A borrow block plus ordinary statements around it.
    program = elaborate(
        "borrow@ x; alloc t; alloc u;\n"
        "X[u];\n"
        "borrow b {\n"
        "  within { CNOT[x, b]; }\n"
        "  apply  { CNOT[b, t]; }\n"
        "}\n"
        "CNOT[t, u];"
    )
    assert program.proven_wires == program.dirty_wires
    assert len(program.circuit.gates) == 6


def test_lend_windows_record_gate_extents():
    program = elaborate(
        "borrow@ w; borrow@ x; alloc t;\n"
        "lend w { CNOT[x, t]; CNOT[t, x]; }\n"
        "X[t];"
    )
    assert program.lend_windows == {"w": [(0, 2)]}


@pytest.mark.parametrize(
    "source",
    [
        FIG13_CCCNOT,
        # Two independent blocks in sequence, each proving its own wire.
        "borrow@ x; alloc t1; alloc t2;\n"
        "borrow b { within { CNOT[x, b]; } apply { CNOT[b, t1]; } }\n"
        "borrow c { within { CNOT[x, c]; } apply { CNOT[c, t2]; } }",
        # Width-2 borrowed register: each wire offset-reads independently
        # (register indexing is 1-based, artifact §10.3).
        "borrow@ x; alloc t[2];\n"
        "borrow b[2] {\n"
        "  within { CNOT[x, b[1]]; CNOT[x, b[2]]; }\n"
        "  apply  { CNOT[b[1], t[1]]; CNOT[b[2], t[2]]; }\n"
        "}",
    ],
)
def test_checker_proven_blocks_are_solver_safe(source):
    # Soundness cross-check: anything the static checker certifies must
    # also be certified by the Section 6 verifier.
    program = elaborate(source)
    assert program.proven_wires, "corpus entry should prove at least one wire"
    report = verify_qbr(program)
    verdicts = {v.qubit: v.safe for v in report.verdicts}
    for wire in program.proven_wires:
        assert verdicts[wire] is True


def test_trust_checker_skips_proven_wires():
    report = verify_qbr(FIG13_CCCNOT, trust_checker=True)
    # The lone dirty wire is checker-proven, so nothing reaches the solver.
    assert report.verdicts == []


def test_job_from_qbr_marks_proven_requests_certified():
    job = job_from_qbr("fig13", FIG13_CCCNOT, trust_checker=True)
    certified = {r.wire: r.certified for r in job.ancilla_requests}
    assert certified == {4: True}


def test_job_from_qbr_defaults_to_uncertified():
    # Certification is opt-in: the conservative default pays the solver
    # even for checker-proven wires, mirroring verify_qbr.
    job = job_from_qbr("fig13", FIG13_CCCNOT)
    certified = {r.wire: r.certified for r in job.ancilla_requests}
    assert certified == {4: False}


def test_job_from_qbr_leaves_unproven_requests_uncertified():
    # Same gates written flat with a plain dirty borrow: nothing proven.
    job = job_from_qbr(
        "flat",
        "borrow@ q1; borrow@ q2; borrow@ q3; alloc q4; borrow a;\n"
        "CCNOT[q1, q2, a]; CCNOT[a, q3, q4];\n"
        "CCNOT[q1, q2, a]; CCNOT[a, q3, q4];\n"
        "release a;",
    )
    certified = {r.wire: r.certified for r in job.ancilla_requests}
    assert certified == {4: False}
