"""Experiment E9: the verbatim artifact programs parse, elaborate, and
match the direct circuit builders gate-for-gate."""

import pytest

from repro.adders import haner_carry_benchmark
from repro.lang.surface import elaborate, verify_qbr
from repro.lang.surface.sources import adder_qbr_source, mcx_qbr_source
from repro.mcx import gidney_mcx


def gate_list(circuit):
    return [(g.name, g.qubits) for g in circuit.gates]


class TestAdderProgram:
    @pytest.mark.parametrize("n", [3, 4, 6, 10])
    def test_matches_builder(self, n):
        program = elaborate(adder_qbr_source(n))
        built = haner_carry_benchmark(n)
        assert gate_list(program.circuit) == gate_list(built.circuit)
        assert program.dirty_wires == built.dirty_ancillas
        assert program.input_wires == built.target

    def test_dirty_qubits_all_safe(self):
        report = verify_qbr(adder_qbr_source(8), backend="bdd")
        assert report.all_safe
        assert len(report.verdicts) == 7

    def test_inputs_are_skipped(self):
        report = verify_qbr(adder_qbr_source(6), backend="bdd")
        names = {v.name for v in report.verdicts}
        assert all(name.startswith("a[") for name in names)


class TestMcxProgram:
    @pytest.mark.parametrize("m", [4, 5, 8])
    @pytest.mark.parametrize("verbatim", [False, True])
    def test_matches_builder(self, m, verbatim):
        program = elaborate(mcx_qbr_source(m, verbatim=verbatim))
        built = gidney_mcx(m, verbatim=verbatim)
        assert gate_list(program.circuit) == gate_list(built.circuit)
        assert program.dirty_wires == [built.ancilla]

    def test_m3_guard(self):
        with pytest.raises(ValueError):
            mcx_qbr_source(3)

    @pytest.mark.parametrize("verbatim", [False, True])
    def test_ancilla_safe(self, verbatim):
        report = verify_qbr(
            mcx_qbr_source(5, verbatim=verbatim), backend="cdcl"
        )
        assert report.all_safe
        assert report.verdicts[0].name == "anc"

    def test_release_is_respected(self):
        program = elaborate(mcx_qbr_source(4))
        anc_wire = program.wires_of("anc")[0]
        touched = [
            i
            for i, g in enumerate(program.circuit.gates)
            if anc_wire in g.qubits
        ]
        # the last gate on anc comes before the post-release tail
        assert touched[-1] < len(program.circuit.gates) - 1
