"""Tests for the QBorrow core AST: builders, substitution, well-formedness."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang import (
    Seq,
    Skip,
    basis_measurement_on,
    borrow,
    check_well_formed,
    init,
    mentioned_qubits,
    placeholders,
    seq,
    skip,
    substitute,
    to_circuit,
    unitary,
    unitary_matrix,
)
from repro.lang.ast import If, Measurement, While


class TestBuilders:
    def test_seq_flattens(self):
        s = seq(unitary("X", "q"), seq(unitary("X", "p"), unitary("X", "r")))
        assert isinstance(s, Seq)
        assert len(s.items) == 3

    def test_seq_drops_skip(self):
        assert seq(skip(), skip()) == Skip()
        assert seq(skip(), unitary("X", "q")) == unitary("X", "q")

    def test_unitary_validates_arity(self):
        with pytest.raises(Exception):
            unitary("CX", "q")

    def test_unitary_matrix_validates(self):
        with pytest.raises(SemanticsError):
            unitary_matrix(np.ones((2, 2)), "BAD", "q")
        with pytest.raises(SemanticsError):
            unitary_matrix(np.eye(2), "I", "q", "p")

    def test_measurement_completeness_checked(self):
        with pytest.raises(SemanticsError):
            Measurement("bad", ("q",), np.eye(2), np.eye(2))

    def test_basis_measurement(self):
        m = basis_measurement_on("q")
        assert m.qubits == ("q",)


class TestAnalyses:
    def test_mentioned_qubits(self):
        s = seq(
            init("q1"),
            unitary("CX", "q2", "q3"),
            If(basis_measurement_on("q4"), unitary("X", "q5"), skip()),
            While(basis_measurement_on("q6"), unitary("X", "q7")),
            borrow("a", unitary("X", "a")),
        )
        assert mentioned_qubits(s) == frozenset(
            {"q1", "q2", "q3", "q4", "q5", "q6", "q7", "a"}
        )

    def test_placeholders(self):
        s = borrow("a", unitary("X", "a"), borrow("b", unitary("X", "b")))
        assert placeholders(s) == frozenset({"a", "b"})


class TestSubstitution:
    def test_renames_operands(self):
        s = seq(unitary("CX", "a", "q"), init("a"))
        renamed = substitute(s, {"a": "q3"})
        assert mentioned_qubits(renamed) == frozenset({"q3", "q"})

    def test_renames_measurement_guards(self):
        s = If(basis_measurement_on("a"), skip(), skip())
        renamed = substitute(s, {"a": "q1"})
        assert renamed.measurement.qubits == ("q1",)

    def test_capture_rejected(self):
        s = borrow("a", unitary("X", "a"))
        with pytest.raises(SemanticsError):
            substitute(s, {"a": "q1"})
        with pytest.raises(SemanticsError):
            substitute(s, {"q1": "a"})

    def test_empty_mapping_is_identity(self):
        s = unitary("X", "q")
        assert substitute(s, {}) is s


class TestWellFormedness:
    UNIVERSE = ["q1", "q2", "q3"]

    def test_accepts_valid(self):
        s = borrow("a", unitary("CX", "a", "q1"))
        check_well_formed(s, self.UNIVERSE)

    def test_unknown_qubit_rejected(self):
        with pytest.raises(SemanticsError):
            check_well_formed(unitary("X", "zz"), self.UNIVERSE)

    def test_placeholder_outside_scope_rejected(self):
        s = seq(borrow("a", skip()), unitary("X", "a"))
        with pytest.raises(SemanticsError):
            check_well_formed(s, self.UNIVERSE)

    def test_nested_same_placeholder_rejected(self):
        s = borrow("a", borrow("a", skip()))
        with pytest.raises(SemanticsError):
            check_well_formed(s, self.UNIVERSE)

    def test_placeholder_shadowing_universe_rejected(self):
        s = borrow("q1", skip())
        with pytest.raises(SemanticsError):
            check_well_formed(s, self.UNIVERSE)

    def test_branches_checked(self):
        bad = If(basis_measurement_on("q1"), unitary("X", "nope"), skip())
        with pytest.raises(SemanticsError):
            check_well_formed(bad, self.UNIVERSE)


class TestToCircuit:
    def test_lowering(self):
        s = seq(unitary("CX", "a", "b"), unitary("X", "b"))
        circuit = to_circuit(s, ["a", "b"])
        assert [g.name for g in circuit] == ["CX", "X"]
        assert circuit.labels == ["a", "b"]

    def test_rejects_control_flow(self):
        s = If(basis_measurement_on("a"), skip(), skip())
        with pytest.raises(SemanticsError):
            to_circuit(s, ["a"])

    def test_rejects_unknown_name(self):
        with pytest.raises(SemanticsError):
            to_circuit(unitary("X", "zz"), ["a"])

    def test_rejects_duplicate_order(self):
        with pytest.raises(SemanticsError):
            to_circuit(skip(), ["a", "a"])

    def test_custom_matrix_gate(self):
        mat = np.diag([1.0, 1.0j])
        s = unitary_matrix(mat, "SQ", "a")
        circuit = to_circuit(s, ["a"])
        assert np.allclose(circuit.gates[0].local_matrix(), mat)
