"""Tests for the fluent program builder."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang import Borrow, Skip, basis_measurement_on, seq, unitary
from repro.lang.ast import If, While
from repro.lang.dsl import ProgramBuilder
from repro.semantics import programs_equivalent
from repro.verify import program_is_safe


class TestStraightLine:
    def test_gates(self):
        b = ProgramBuilder()
        b.x("q1").cx("q1", "q2").ccx("q1", "q2", "q3")
        program = b.build()
        expected = seq(
            unitary("X", "q1"),
            unitary("CX", "q1", "q2"),
            unitary("CCX", "q1", "q2", "q3"),
        )
        assert program == expected

    def test_empty_is_skip(self):
        assert ProgramBuilder().build() == Skip()

    def test_reset_and_matrix(self):
        b = ProgramBuilder()
        b.reset("q")
        b.apply(np.diag([1.0, 1.0j]), "S", "q")
        program = b.build()
        assert len(program.items) == 2


class TestBorrowBlock:
    def test_fresh_placeholder(self):
        b = ProgramBuilder()
        with b.borrow() as a:
            b.x(a)
            b.x(a)
        program = b.build()
        assert isinstance(program, Borrow)
        assert program.placeholder.startswith("_a")

    def test_named_placeholder(self):
        b = ProgramBuilder()
        with b.borrow("anc") as a:
            b.cx("q", a)
            b.cx("q", a)
        program = b.build()
        assert program.placeholder == "anc"
        assert program_is_safe(program, ["q", "p1"])

    def test_nested_borrows_get_distinct_names(self):
        b = ProgramBuilder()
        with b.borrow() as a1:
            b.x(a1)
            with b.borrow() as a2:
                b.cx(a1, a2)
        program = b.build()
        assert a1 != a2  # noqa: F821 — names captured in the with blocks

    def test_unclosed_block_detected(self):
        b = ProgramBuilder()
        cm = b.borrow()
        cm.__enter__()
        with pytest.raises(SemanticsError):
            b.build()


class TestControlFlowBlocks:
    def test_if_measures_one(self):
        b = ProgramBuilder()
        with b.if_measures_one("q"):
            b.x("p")
        program = b.build()
        assert isinstance(program, If)
        assert program.else_branch == Skip()

    def test_if_else(self):
        b = ProgramBuilder()
        with b.if_else(basis_measurement_on("q")) as (then, other):
            then.x("p")
            other.x("r")
        program = b.build()
        assert isinstance(program, If)
        assert program.then_branch == unitary("X", "p")
        assert program.else_branch == unitary("X", "r")

    def test_while_block(self):
        b = ProgramBuilder()
        with b.while_measures_one("q"):
            b.x("q")
        program = b.build()
        assert isinstance(program, While)

    def test_equivalence_with_manual_ast(self):
        b = ProgramBuilder()
        b.x("q1")
        with b.borrow("a") as a:
            b.cx("q1", a)
            b.cx("q1", a)
        built = b.build()
        manual = seq(
            unitary("X", "q1"),
            Borrow("a", seq(unitary("CX", "q1", "a"), unitary("CX", "q1", "a"))),
        )
        assert programs_equivalent(built, manual, ["q1", "q2", "q3"])
