"""Tests for the idle-qubit analysis against the Figure 4.2 rules.

The implementation computes ``idle(S) = universe - mentioned(S)``; here
we re-implement the paper's structural rules literally and check both
agree on randomly generated programs, plus the worked example of
Section 4.2.
"""

import random

from repro.lang import (
    borrow,
    idle,
    init,
    seq,
    skip,
    unitary,
)
from repro.lang.ast import (
    Borrow,
    If,
    Init,
    Seq,
    Skip,
    Statement,
    UnitaryStmt,
    While,
    basis_measurement_on,
)

UNIVERSE = frozenset({"q1", "q2", "q3", "q4", "q5"})


def idle_structural(stmt: Statement, universe: frozenset) -> frozenset:
    """Literal transcription of Figure 4.2."""
    if isinstance(stmt, Skip):
        return universe
    if isinstance(stmt, Init):
        return universe - {stmt.qubit}
    if isinstance(stmt, UnitaryStmt):
        return universe - set(stmt.qubits)
    if isinstance(stmt, Seq):
        result = universe
        for item in stmt.items:
            result = result & idle_structural(item, universe)
        return result
    if isinstance(stmt, If):
        return (
            idle_structural(stmt.then_branch, universe)
            & idle_structural(stmt.else_branch, universe)
        ) - set(stmt.measurement.qubits)
    if isinstance(stmt, While):
        return idle_structural(stmt.body, universe) - set(
            stmt.measurement.qubits
        )
    if isinstance(stmt, Borrow):
        return idle_structural(stmt.body, universe)
    raise AssertionError(stmt)


def random_program(rng: random.Random, depth: int, names) -> Statement:
    roll = rng.random()
    if depth == 0 or roll < 0.3:
        kind = rng.choice(["skip", "init", "x", "cx"])
        if kind == "skip":
            return skip()
        if kind == "init":
            return init(rng.choice(names))
        if kind == "x":
            return unitary("X", rng.choice(names))
        a, b = rng.sample(names, 2)
        return unitary("CX", a, b)
    if roll < 0.55:
        return seq(
            random_program(rng, depth - 1, names),
            random_program(rng, depth - 1, names),
        )
    if roll < 0.75:
        return If(
            basis_measurement_on(rng.choice(names)),
            random_program(rng, depth - 1, names),
            random_program(rng, depth - 1, names),
        )
    if roll < 0.9:
        return While(
            basis_measurement_on(rng.choice(names)),
            random_program(rng, depth - 1, names),
        )
    fresh = f"a{depth}_{rng.randrange(1000)}"
    return Borrow(
        fresh, random_program(rng, depth - 1, names + [fresh])
    )


class TestFigure42Rules:
    def test_skip_is_fully_idle(self):
        assert idle(skip(), UNIVERSE) == UNIVERSE

    def test_unitary_removes_operands(self):
        assert idle(unitary("CX", "q1", "q2"), UNIVERSE) == frozenset(
            {"q3", "q4", "q5"}
        )

    def test_if_removes_guard(self):
        s = If(basis_measurement_on("q1"), unitary("X", "q2"), skip())
        assert idle(s, UNIVERSE) == frozenset({"q3", "q4", "q5"})

    def test_borrow_is_transparent(self):
        s = borrow("a", unitary("CX", "a", "q1"))
        assert idle(s, UNIVERSE) == frozenset({"q2", "q3", "q4", "q5"})

    def test_placeholders_do_not_subtract(self):
        s = unitary("CX", "a", "q1")  # 'a' not in universe
        assert idle(s, UNIVERSE) == frozenset({"q2", "q3", "q4", "q5"})

    def test_section_42_worked_example(self):
        """idle(S1) = {q3} and idle(S2[q3/a1]) = {q3} from the paper."""
        s1_body = seq(
            unitary("CCX", "q1", "q2", "a1"),
            unitary("CCX", "a1", "q4", "q5"),
            unitary("CCX", "q1", "q2", "a1"),
            unitary("CCX", "a1", "q4", "q5"),
            borrow(
                "a2",
                seq(
                    unitary("CCX", "q4", "q5", "a2"),
                    unitary("CCX", "a2", "q2", "q1"),
                    unitary("CCX", "q4", "q5", "a2"),
                    unitary("CCX", "a2", "q2", "q1"),
                ),
            ),
        )
        assert idle(s1_body, UNIVERSE) == frozenset({"q3"})

    def test_agrees_with_structural_rules_randomly(self):
        rng = random.Random(7)
        names = sorted(UNIVERSE)
        for _ in range(300):
            program = random_program(rng, rng.randint(0, 4), list(names))
            assert idle(program, UNIVERSE) == idle_structural(
                program, UNIVERSE
            )
