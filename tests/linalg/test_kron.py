"""Tests for operator embedding and qubit reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QubitError
from repro.linalg import (
    apply_unitary,
    embed_operator,
    identity,
    kron_all,
    random_unitary,
    reorder_qubits,
)

CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
X = np.array([[0, 1], [1, 0]], dtype=complex)


class TestKronAll:
    def test_empty_product_is_scalar_identity(self):
        assert kron_all([]).shape == (1, 1)

    def test_two_factor_product(self):
        assert np.allclose(kron_all([X, X]), np.kron(X, X))

    def test_accepts_generator(self):
        assert kron_all(X for _ in range(2)).shape == (4, 4)


class TestEmbedOperator:
    def test_identity_embedding(self):
        assert np.allclose(embed_operator(CX, [0, 1], 2), CX)

    def test_x_on_each_wire_of_three(self):
        for q in range(3):
            full = embed_operator(X, [q], 3)
            for state in range(8):
                vec = np.zeros(8)
                vec[state] = 1.0
                out = full @ vec
                expected = state ^ (1 << (2 - q))  # qubit 0 = MSB
                assert abs(out[expected] - 1) < 1e-12

    def test_reversed_cnot_wires(self):
        # control = qubit 1, target = qubit 0
        rev = embed_operator(CX, [1, 0], 2)
        vec = np.zeros(4)
        vec[0b01] = 1.0  # q0=0, q1=1
        out = rev @ vec
        assert abs(out[0b11] - 1) < 1e-12

    def test_non_adjacent_wires(self):
        full = embed_operator(CX, [0, 2], 3)
        vec = np.zeros(8)
        vec[0b100] = 1.0  # q0=1, q2=0
        out = full @ vec
        assert abs(out[0b101] - 1) < 1e-12

    def test_full_width_shortcut_copies(self):
        out = embed_operator(CX, [0, 1], 2)
        out[0, 0] = 99.0
        assert CX[0, 0] == 1.0

    def test_rejects_duplicate_positions(self):
        with pytest.raises(QubitError):
            embed_operator(CX, [0, 0], 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(QubitError):
            embed_operator(X, [3], 2)

    def test_rejects_wrong_shape(self):
        with pytest.raises(QubitError):
            embed_operator(X, [0, 1], 3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=123456))
    def test_embedding_preserves_unitarity(self, seed):
        rng = np.random.default_rng(seed)
        op = random_unitary(2, rng)
        positions = list(rng.permutation(4)[:2])
        full = embed_operator(op, positions, 4)
        assert np.allclose(full @ full.conj().T, identity(4), atol=1e-9)

    def test_commutes_with_composition(self, rng):
        u = random_unitary(1, rng)
        v = random_unitary(1, rng)
        left = embed_operator(u @ v, [1], 3)
        right = embed_operator(u, [1], 3) @ embed_operator(v, [1], 3)
        assert np.allclose(left, right)

    def test_disjoint_embeddings_commute(self, rng):
        u = embed_operator(random_unitary(1, rng), [0], 3)
        v = embed_operator(random_unitary(1, rng), [2], 3)
        assert np.allclose(u @ v, v @ u)


class TestReorderQubits:
    def test_identity_order(self):
        assert np.allclose(reorder_qubits(CX, [0, 1]), CX)

    def test_swap_order_on_x_tensor_identity(self):
        xi = np.kron(X, np.eye(2))
        swapped = reorder_qubits(xi, [1, 0])
        assert np.allclose(swapped, np.kron(np.eye(2), X))

    def test_double_reorder_is_identity(self, rng):
        op = random_unitary(3, rng)
        order = [2, 0, 1]
        inverse = [order.index(q) for q in range(3)]
        once = reorder_qubits(op, order)
        assert np.allclose(reorder_qubits(once, inverse), op)

    def test_rejects_bad_shape(self):
        with pytest.raises(QubitError):
            reorder_qubits(np.eye(3), [0, 1])


class TestApplyUnitary:
    def test_on_ket(self):
        ket = np.zeros(4)
        ket[0b10] = 1.0  # q0=1
        out = apply_unitary(ket, X, [1], 2)
        assert abs(out[0b11] - 1) < 1e-12

    def test_on_density(self):
        rho = np.zeros((4, 4), dtype=complex)
        rho[0, 0] = 1.0
        out = apply_unitary(rho, X, [0], 2)
        assert abs(out[0b10, 0b10] - 1) < 1e-12

    def test_rejects_tensor_input(self):
        with pytest.raises(QubitError):
            apply_unitary(np.zeros((2, 2, 2)), X, [0], 2)
