"""Tests for partial trace and reduced states."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QubitError
from repro.linalg import (
    bell_phi,
    density,
    kron_all,
    partial_trace,
    random_density,
    reduced_state,
)


class TestPartialTrace:
    def test_product_state_factors(self, rng):
        a = random_density(1, rng)
        b = random_density(1, rng)
        rho = np.kron(a, b)
        assert np.allclose(partial_trace(rho, [0], 2), a)
        assert np.allclose(partial_trace(rho, [1], 2), b)

    def test_bell_marginal_is_maximally_mixed(self):
        rho = density(bell_phi())
        for keep in ([0], [1]):
            assert np.allclose(partial_trace(rho, keep, 2), np.eye(2) / 2)

    def test_keep_order_controls_output_wires(self, rng):
        a = random_density(1, rng)
        b = random_density(1, rng)
        c = random_density(1, rng)
        rho = kron_all([a, b, c])
        keep_ab = partial_trace(rho, [0, 1], 3)
        keep_ba = partial_trace(rho, [1, 0], 3)
        assert np.allclose(keep_ab, np.kron(a, b))
        assert np.allclose(keep_ba, np.kron(b, a))

    def test_trace_preserved(self, rng):
        rho = random_density(3, rng)
        reduced = partial_trace(rho, [1], 3)
        assert reduced.trace() == pytest.approx(rho.trace(), abs=1e-10)

    def test_keep_everything_is_identity(self, rng):
        rho = random_density(2, rng)
        assert np.allclose(partial_trace(rho, [0, 1], 2), rho)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=99999))
    def test_result_is_psd(self, seed):
        rng = np.random.default_rng(seed)
        rho = random_density(3, rng)
        reduced = partial_trace(rho, [0, 2], 3)
        assert np.linalg.eigvalsh(reduced).min() > -1e-10

    def test_rejects_duplicates(self, rng):
        with pytest.raises(QubitError):
            partial_trace(random_density(2, rng), [0, 0], 2)

    def test_rejects_bad_qubit(self, rng):
        with pytest.raises(QubitError):
            partial_trace(random_density(2, rng), [2], 2)

    def test_rejects_bad_shape(self):
        with pytest.raises(QubitError):
            partial_trace(np.eye(3), [0], 2)


class TestReducedState:
    def test_normalises(self, rng):
        rho = random_density(2, rng) * 0.3  # partial density
        reduced = reduced_state(rho, [0], 2)
        assert reduced.trace() == pytest.approx(1.0, abs=1e-10)

    def test_zero_trace_rejected(self):
        with pytest.raises(QubitError):
            reduced_state(np.zeros((4, 4)), [0], 2)
