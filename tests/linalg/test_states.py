"""Tests for standard states and comparison helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QubitError
from repro.linalg import (
    BASIS_B,
    VERIFICATION_KETS,
    basis_ket,
    bell_phi,
    bit_ket,
    density,
    fidelity,
    is_density_operator,
    ket0,
    ket1,
    ket_minus,
    ket_plus,
    ket_plus_i,
    matrices_close,
    purity,
    random_density,
    random_ket,
)


class TestNamedStates:
    def test_kets_are_normalised(self):
        for ket in VERIFICATION_KETS:
            assert abs(np.linalg.norm(ket) - 1) < 1e-12

    def test_plus_minus_orthogonal(self):
        assert abs(np.vdot(ket_plus, ket_minus)) < 1e-12

    def test_minus_decomposes_over_basis_b(self):
        # The linear-algebra fact behind the Theorem 6.1 proof:
        # |-><-| = |0><0| + |1><1| - |+><+| (the |+i><+i| coefficient is
        # zero), so a |-> run ties the |0>, |1> and |+> output factors
        # together.
        minus = density(ket_minus)
        reconstructed = BASIS_B[0] + BASIS_B[1] - BASIS_B[2]
        assert np.allclose(minus, reconstructed)

    def test_basis_b_spans_one_qubit_operators(self):
        stacked = np.stack([rho.reshape(4) for rho in BASIS_B])
        assert np.linalg.matrix_rank(stacked) == 4

    def test_bell_is_maximally_entangled(self):
        rho = density(bell_phi())
        assert abs(purity(rho) - 1) < 1e-12
        reduced = rho.reshape(2, 2, 2, 2).trace(axis1=1, axis2=3)
        assert np.allclose(reduced, np.eye(2) / 2)


class TestConstructors:
    def test_basis_ket(self):
        ket = basis_ket(5, 3)
        assert ket[5] == 1.0 and np.count_nonzero(ket) == 1

    def test_basis_ket_range_check(self):
        with pytest.raises(QubitError):
            basis_ket(8, 3)

    def test_bit_ket_msb_convention(self):
        assert np.allclose(bit_ket([1, 0]), basis_ket(0b10, 2))

    def test_bit_ket_rejects_non_bits(self):
        with pytest.raises(QubitError):
            bit_ket([0, 2])

    def test_density_of_ket0(self):
        assert np.allclose(density(ket0), [[1, 0], [0, 0]])


class TestPredicates:
    def test_density_detection(self):
        assert is_density_operator(density(ket_plus_i))
        assert is_density_operator(np.eye(2) / 2)
        assert not is_density_operator(np.eye(2))  # trace 2
        assert not is_density_operator(np.array([[0, 1], [0, 0]]))

    def test_partial_density_allowed(self):
        assert is_density_operator(density(ket1) * 0.25)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=99999))
    def test_random_density_is_density(self, seed):
        rng = np.random.default_rng(seed)
        assert is_density_operator(random_density(2, rng))

    def test_purity_bounds(self, rng):
        assert abs(purity(density(random_ket(2, rng))) - 1) < 1e-9
        assert purity(np.eye(4) / 4) == pytest.approx(0.25)


class TestFidelity:
    def test_identical_states(self, rng):
        rho = random_density(2, rng)
        assert fidelity(rho, rho) == pytest.approx(1.0, abs=1e-8)

    def test_orthogonal_states(self):
        assert fidelity(density(ket0), density(ket1)) == pytest.approx(
            0.0, abs=1e-10
        )

    def test_pure_state_formula(self, rng):
        psi = random_ket(1, rng)
        phi = random_ket(1, rng)
        expected = abs(np.vdot(psi, phi)) ** 2
        assert fidelity(density(psi), density(phi)) == pytest.approx(
            expected, abs=1e-8
        )

    def test_symmetry(self, rng):
        a = random_density(1, rng)
        b = random_density(1, rng)
        assert fidelity(a, b) == pytest.approx(fidelity(b, a), abs=1e-8)


class TestMatricesClose:
    def test_equal(self):
        assert matrices_close(np.eye(2), np.eye(2))

    def test_shape_mismatch(self):
        assert not matrices_close(np.eye(2), np.eye(4))

    def test_tolerance(self):
        assert matrices_close(np.eye(2), np.eye(2) + 1e-12)
        assert not matrices_close(np.eye(2), np.eye(2) + 1e-3)
