"""Exhaustive functional tests for the Cuccaro and Takahashi register
adders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import cuccaro_add_registers, takahashi_add_registers
from repro.circuits import apply_to_bits
from repro.errors import CircuitError

ADDERS = [
    pytest.param(cuccaro_add_registers, id="cuccaro"),
    pytest.param(takahashi_add_registers, id="takahashi"),
]


def run_adder(layout, n, a, b):
    bits = [0] * layout.circuit.num_qubits
    for i in range(n):
        bits[i] = (a >> i) & 1
        bits[n + i] = (b >> i) & 1
    out = apply_to_bits(layout.circuit, bits)
    got_a = sum(out[i] << i for i in range(n))
    got_b = sum(out[n + i] << i for i in range(n))
    return got_a, got_b, out


@pytest.mark.parametrize("builder", ADDERS)
class TestExhaustiveSmall:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_all_inputs(self, builder, n):
        layout = builder(n)
        for a in range(2**n):
            for b in range(2**n):
                got_a, got_b, out = run_adder(layout, n, a, b)
                assert got_b == (a + b) % 2**n
                assert got_a == a  # operand preserved
                for wire in layout.clean_ancillas:
                    assert out[wire] == 0

    def test_rejects_zero_width(self, builder):
        with pytest.raises(CircuitError):
            builder(0)


@pytest.mark.parametrize("builder", ADDERS)
class TestRandomLarge:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_wide_random_instances(self, builder, data):
        n = data.draw(st.integers(min_value=5, max_value=48))
        a = data.draw(st.integers(min_value=0, max_value=2**n - 1))
        b = data.draw(st.integers(min_value=0, max_value=2**n - 1))
        layout = builder(n)
        got_a, got_b, _ = run_adder(layout, n, a, b)
        assert got_b == (a + b) % 2**n
        assert got_a == a


class TestStructure:
    def test_cuccaro_uses_one_ancilla(self):
        layout = cuccaro_add_registers(8)
        assert len(layout.clean_ancillas) == 1

    def test_takahashi_uses_none(self):
        layout = takahashi_add_registers(8)
        assert layout.clean_ancillas == []

    def test_both_linear_size(self):
        for builder in (cuccaro_add_registers, takahashi_add_registers):
            small = len(builder(10).circuit.gates)
            big = len(builder(20).circuit.gates)
            assert big < 2.5 * small
