"""Tests for the verbatim Figure 6.2 carry benchmark circuit."""

import pytest

from repro.adders import haner_carry_benchmark
from repro.adders.haner import haner_carry_strip
from repro.circuits import Circuit, apply_to_bits
from repro.errors import CircuitError
from repro.verify import verify_circuit


def run(layout, s, q_n, dirt):
    n = (layout.circuit.num_qubits + 1) // 2
    bits = [0] * layout.circuit.num_qubits
    for i in range(n - 1):
        bits[i] = (s >> i) & 1
    bits[n - 1] = q_n
    for i in range(n - 1):
        bits[n + i] = (dirt >> i) & 1
    return bits, apply_to_bits(layout.circuit, bits)


class TestSemantics:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_computes_not_of_carry_of_all_ones(self, n):
        """q_n ^= NOT(msb of s + (1...1)) == [s == 0], as derived from
        the paper's description of the sum's most significant bit."""
        layout = haner_carry_benchmark(n)
        for s in range(2 ** (n - 1)):
            for q_n in (0, 1):
                _, out = run(layout, s, q_n, 0)
                expected = q_n ^ (1 if s == 0 else 0)
                assert out[n - 1] == expected

    @pytest.mark.parametrize("n", [3, 5])
    def test_everything_else_restored(self, n):
        layout = haner_carry_benchmark(n)
        for s in (0, 1, 2 ** (n - 1) - 1):
            for dirt in (0, 1, 2 ** (n - 1) - 1):
                bits, out = run(layout, s, 1, dirt)
                assert out[: n - 1] == bits[: n - 1]
                assert out[n:] == bits[n:]

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_output_independent_of_dirty_values(self, n):
        layout = haner_carry_benchmark(n)
        for s in range(2 ** (n - 1)):
            outputs = set()
            for dirt in range(2 ** (n - 1)):
                _, out = run(layout, s, 0, dirt)
                outputs.add(out[n - 1])
            assert len(outputs) == 1

    def test_minimum_size(self):
        with pytest.raises(CircuitError):
            haner_carry_benchmark(2)

    def test_gate_count_linear(self):
        assert len(haner_carry_benchmark(50).circuit.gates) < 12 * 50


class TestSafety:
    @pytest.mark.parametrize("backend", ["bdd", "cdcl"])
    def test_all_dirty_ancillas_safe(self, backend):
        layout = haner_carry_benchmark(5)
        report = verify_circuit(
            layout.circuit, layout.dirty_ancillas, backend=backend
        )
        assert report.all_safe

    def test_mutated_circuit_detected(self):
        """Failure injection: dropping one uncompute gate must flag at
        least one dirty ancilla, with a replayable counterexample."""
        layout = haner_carry_benchmark(5)
        broken = Circuit(
            layout.circuit.num_qubits, layout.circuit.gates[:-1],
            labels=layout.circuit.labels,
        )
        report = verify_circuit(broken, layout.dirty_ancillas, backend="bdd")
        assert not report.all_safe
        failing = [v for v in report.verdicts if not v.safe]
        assert failing and failing[0].counterexample is not None


class TestCarryStrip:
    def test_strip_needs_matching_ancillas(self):
        with pytest.raises(CircuitError):
            haner_carry_strip(Circuit(4), [0, 1], [2], constant=3)

    @pytest.mark.parametrize("constant", [0, 1, 2, 3])
    def test_forward_backward_is_identity(self, constant):
        circuit = Circuit(4)
        haner_carry_strip(circuit, [0, 1], [2, 3], constant, forward=True)
        haner_carry_strip(circuit, [0, 1], [2, 3], constant, forward=False)
        from repro.circuits import truth_table

        table = truth_table(circuit)
        assert all(int(table[i]) == i for i in range(16))

    @pytest.mark.parametrize("constant", [0, 1, 5, 7])
    def test_forward_pass_computes_carries(self, constant):
        m = 3
        circuit = Circuit(2 * m)
        haner_carry_strip(
            circuit, list(range(m)), list(range(m, 2 * m)), constant
        )
        for x_val in range(2**m):
            bits = [0] * (2 * m)
            for i in range(m):
                bits[i] = (x_val >> i) & 1
            out = apply_to_bits(circuit, bits)
            total = x_val + (constant % 2**m)
            for i in range(m):
                carry_out_of_bit_i = (
                    ((x_val & ((2 ** (i + 1)) - 1))
                     + (constant & ((2 ** (i + 1)) - 1)))
                    >> (i + 1)
                ) & 1
                assert out[m + i] == carry_out_of_bit_i, (constant, x_val, i)
