"""Tests for the Figure 1.1 cost-table machinery (experiment E1)."""

import pytest

from repro.adders import adder_cost_rows
from repro.adders.costs import fit_growth


class TestCostRows:
    def test_all_four_columns_present(self):
        rows = adder_cost_rows([8])
        assert {row.adder for row in rows} == {
            "cuccaro",
            "takahashi",
            "draper",
            "haner",
        }

    def test_ancilla_contract_matches_figure_11(self):
        rows = {row.adder: row for row in adder_cost_rows([16])}
        n = 16
        # Cuccaro: n+1 clean; Takahashi: n clean; Draper: 0;
        # Häner strip: n-1 dirty (see DESIGN.md substitution note).
        assert rows["cuccaro"].clean_ancillas == n + 1
        assert rows["takahashi"].clean_ancillas == n
        assert rows["draper"].clean_ancillas == 0
        assert rows["draper"].dirty_ancillas == 0
        assert rows["haner"].dirty_ancillas == n - 1
        assert rows["haner"].clean_ancillas == 0

    def test_row_rendering(self):
        row = adder_cost_rows([8])[0]
        assert "size=" in str(row) and "n=8" in str(row)


class TestGrowthFits:
    WIDTHS = [8, 16, 32, 64]

    def exponent(self, adder, metric):
        rows = [r for r in adder_cost_rows(self.WIDTHS) if r.adder == adder]
        return fit_growth(
            [r.n for r in rows], [getattr(r, metric) for r in rows]
        )

    @pytest.mark.parametrize("adder", ["cuccaro", "takahashi", "haner"])
    def test_linear_size_adders(self, adder):
        assert 0.85 < self.exponent(adder, "size") < 1.15

    def test_draper_quadratic_size(self):
        assert 1.7 < self.exponent("draper", "size") < 2.2

    @pytest.mark.parametrize(
        "adder", ["cuccaro", "takahashi", "draper", "haner"]
    )
    def test_linear_depth(self, adder):
        assert 0.8 < self.exponent(adder, "depth") < 1.3

    def test_fit_growth_validates(self):
        with pytest.raises(ValueError):
            fit_growth([1], [1])
