"""Functional tests for all four constant-adder constructions (the
Figure 1.1 columns) plus their ancilla contracts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import (
    cuccaro_constant_adder,
    draper_constant_adder,
    haner_ripple_constant_adder,
    takahashi_constant_adder,
)
from repro.circuits import apply_to_bits, circuit_unitary
from repro.verify import verify_circuit

CLASSICAL_BUILDERS = [
    pytest.param(cuccaro_constant_adder, id="cuccaro"),
    pytest.param(takahashi_constant_adder, id="takahashi"),
]


@pytest.mark.parametrize("builder", CLASSICAL_BUILDERS)
class TestClassicalConstantAdders:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_exhaustive(self, builder, n):
        for c in range(2**n):
            layout = builder(n, c)
            for x_val in range(2**n):
                bits = layout.encode_target(
                    x_val, [0] * layout.circuit.num_qubits
                )
                out = apply_to_bits(layout.circuit, bits)
                assert layout.decode_target(out) == (x_val + c) % 2**n
                for wire in layout.clean_ancillas:
                    assert out[wire] == 0

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_wide_random(self, builder, data):
        n = data.draw(st.integers(min_value=4, max_value=32))
        c = data.draw(st.integers(min_value=0, max_value=2**n - 1))
        x_val = data.draw(st.integers(min_value=0, max_value=2**n - 1))
        layout = builder(n, c)
        bits = layout.encode_target(x_val, [0] * layout.circuit.num_qubits)
        out = apply_to_bits(layout.circuit, bits)
        assert layout.decode_target(out) == (x_val + c) % 2**n


class TestDraper:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_unitary_maps_basis_correctly(self, n):
        for c in {0, 1, 2**n - 1, 5 % 2**n}:
            layout = draper_constant_adder(n, c)
            unitary = circuit_unitary(layout.circuit)
            for x_val in range(2**n):
                col = _state_index(x_val, n)
                target = _state_index((x_val + c) % 2**n, n)
                amplitude = unitary[target, col]
                assert abs(abs(amplitude) - 1) < 1e-8

    def test_no_ancillas(self):
        layout = draper_constant_adder(6, 13)
        assert not layout.clean_ancillas and not layout.dirty_ancillas

    def test_quadratic_size(self):
        small = len(draper_constant_adder(8, 1).circuit.gates)
        big = len(draper_constant_adder(16, 1).circuit.gates)
        assert big > 3 * small  # ~4x for Θ(n²)

    def test_not_classical(self):
        from repro.circuits import is_classical_circuit

        assert not is_classical_circuit(draper_constant_adder(3, 1).circuit)


def _state_index(value: int, n: int) -> int:
    """Little-endian value -> computational-basis index (qubit 0 = MSB)."""
    return sum(((value >> i) & 1) << (n - 1 - i) for i in range(n))


class TestHanerRipple:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_exhaustive_with_dirty_ancillas(self, n):
        for c in {0, 1, 2**n - 1, 5 % 2**n}:
            layout = haner_ripple_constant_adder(n, c)
            total = layout.circuit.num_qubits
            for x_val in range(2**n):
                for garbage in range(2 ** (n - 1)):
                    bits = [0] * total
                    for i in range(n):
                        bits[i] = (x_val >> i) & 1
                    for i in range(n - 1):
                        bits[2 * n + i] = (garbage >> i) & 1
                    out = apply_to_bits(layout.circuit, bits)
                    y = sum(out[n + i] << i for i in range(n))
                    assert y == (x_val + c) % 2**n
                    # inputs and dirty ancillas restored
                    assert out[:n] == bits[:n]
                    assert out[2 * n :] == bits[2 * n :]

    def test_dirty_ancillas_verified_safe(self):
        layout = haner_ripple_constant_adder(5, 11)
        report = verify_circuit(
            layout.circuit, layout.dirty_ancillas, backend="bdd"
        )
        assert report.all_safe

    def test_linear_size(self):
        small = len(haner_ripple_constant_adder(10, 5).circuit.gates)
        big = len(haner_ripple_constant_adder(20, 5).circuit.gates)
        assert big < 2.6 * small

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_wide_random_with_garbage(self, data):
        n = data.draw(st.integers(min_value=4, max_value=24))
        c = data.draw(st.integers(min_value=0, max_value=2**n - 1))
        x_val = data.draw(st.integers(min_value=0, max_value=2**n - 1))
        garbage = data.draw(st.integers(min_value=0, max_value=2 ** (n - 1) - 1))
        layout = haner_ripple_constant_adder(n, c)
        bits = [0] * layout.circuit.num_qubits
        for i in range(n):
            bits[i] = (x_val >> i) & 1
        for i in range(n - 1):
            bits[2 * n + i] = (garbage >> i) & 1
        out = apply_to_bits(layout.circuit, bits)
        assert sum(out[n + i] << i for i in range(n)) == (x_val + c) % 2**n
        assert out[2 * n :] == bits[2 * n :]
