"""Tests for circuit cost metrics."""

from repro.circuits import Circuit, circuit_costs, cnot, depth, size, toffoli, x
from repro.circuits.metrics import gate_histogram, toffoli_count, width


class TestSizeDepthWidth:
    def test_empty(self):
        c = Circuit(3)
        assert size(c) == 0 and depth(c) == 0 and width(c) == 0

    def test_parallel_gates_share_a_level(self):
        c = Circuit(4).extend([x(0), x(1), x(2), x(3)])
        assert depth(c) == 1 and size(c) == 4

    def test_serial_chain(self):
        c = Circuit(1).extend([x(0), x(0), x(0)])
        assert depth(c) == 3

    def test_staggered_depth(self):
        # cnot(0,1) then cnot(1,2): must serialise on qubit 1.
        c = Circuit(3).extend([cnot(0, 1), cnot(1, 2)])
        assert depth(c) == 2

    def test_independent_pairs_parallel(self):
        c = Circuit(4).extend([cnot(0, 1), cnot(2, 3)])
        assert depth(c) == 1

    def test_width_counts_touched_only(self):
        c = Circuit(10).extend([cnot(0, 9)])
        assert width(c) == 2


class TestHistograms:
    def test_gate_histogram(self):
        c = Circuit(3).extend([x(0), x(1), toffoli(0, 1, 2)])
        assert gate_histogram(c) == {"X": 2, "CCX": 1}

    def test_toffoli_count(self):
        c = Circuit(3).extend([toffoli(0, 1, 2), cnot(0, 1), toffoli(0, 1, 2)])
        assert toffoli_count(c) == 2

    def test_costs_bundle(self):
        c = Circuit(3).extend([x(0), toffoli(0, 1, 2)])
        costs = circuit_costs(c)
        assert costs.size == 2
        assert costs.depth == 2
        assert costs.width == 3
        assert "CCX" in str(costs)
