"""Tests for OpenQASM 2.0 interchange."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuits import Circuit, circuit_unitary, cnot, hadamard, mcx, x
from repro.circuits.gates import cphase, phase, s_gate, swap, toffoli
from repro.circuits.qasm import from_qasm, iter_qasm_gates, to_qasm
from repro.errors import CircuitError
from tests.conftest import classical_circuit_strategy, fig13_circuit


class TestExport:
    def test_header(self):
        text = to_qasm(Circuit(3))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text

    def test_standard_gates(self):
        circuit = Circuit(3).extend(
            [x(0), hadamard(1), cnot(0, 1), toffoli(0, 1, 2), swap(0, 2)]
        )
        text = to_qasm(circuit)
        for expected in ("x q[0];", "h q[1];", "cx q[0],q[1];",
                         "ccx q[0],q[1],q[2];", "swap q[0],q[2];"):
            assert expected in text

    def test_parametric_gates(self):
        circuit = Circuit(2).extend([phase(0.5, 0), cphase(0.25, 0, 1)])
        text = to_qasm(circuit)
        assert "p(0.5) q[0];" in text
        assert "cp(0.25) q[0],q[1];" in text

    def test_wide_mcx_rejected(self):
        with pytest.raises(CircuitError):
            to_qasm(Circuit(5).append(mcx([0, 1, 2, 3], 4)))

    def test_custom_matrix_rejected(self):
        from repro.circuits import unitary_gate

        gate = unitary_gate(np.eye(2), [0], "CUSTOM")
        with pytest.raises(CircuitError):
            to_qasm(Circuit(1).append(gate))


class TestImport:
    def test_round_trip_fig13(self):
        original = fig13_circuit()
        restored = from_qasm(to_qasm(original))
        assert [(g.name, g.qubits) for g in restored.gates] == [
            (g.name, g.qubits) for g in original.gates
        ]

    def test_round_trip_unitary_equal(self):
        circuit = Circuit(2).extend(
            [hadamard(0), cnot(0, 1), s_gate(1), phase(0.7, 0)]
        )
        restored = from_qasm(to_qasm(circuit))
        assert np.allclose(
            circuit_unitary(restored), circuit_unitary(circuit)
        )

    def test_pi_expressions(self):
        text = (
            "OPENQASM 2.0;\nqreg q[1];\np(pi/2) q[0];\n"
        )
        circuit = from_qasm(text)
        assert circuit.gates[0].params[0] == pytest.approx(np.pi / 2)

    def test_comments_and_blank_lines(self):
        text = "OPENQASM 2.0;\n// c\n\nqreg q[2];\ncx q[0],q[1]; // tail\n"
        assert len(from_qasm(text).gates) == 1

    def test_errors(self):
        with pytest.raises(CircuitError):
            from_qasm("x q[0];")  # gate before qreg
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nfrob q[0];")
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\ncx q[0];")
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nqreg q[2];")
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\np(import) q[0];")
        with pytest.raises(CircuitError):
            from_qasm("")

    @settings(max_examples=25, deadline=None)
    @given(classical_circuit_strategy(4, max_gates=8))
    def test_random_classical_round_trips(self, circuit):
        # MCX with 3 controls exists in the strategy; skip those circuits.
        if any(len(g.qubits) > 3 for g in circuit.gates):
            return
        restored = from_qasm(to_qasm(circuit))
        assert [(g.name, g.qubits) for g in restored.gates] == [
            (g.name, g.qubits) for g in circuit.gates
        ]


class TestStream:
    """``iter_qasm_gates`` — the streaming path ``from_qasm`` drains."""

    def test_streamed_gates_equal_offline(self):
        text = to_qasm(fig13_circuit())
        offline = from_qasm(text)
        assert list(iter_qasm_gates(text)) == offline.gates

    def test_num_qubits_known_after_the_header(self):
        stream = iter_qasm_gates(
            "OPENQASM 2.0;\nqreg q[3];\nx q[0];\ncx q[0],q[1];\n"
        )
        assert stream.num_qubits is None
        first = next(stream)
        assert first.name == "X"
        assert stream.num_qubits == 3

    def test_gates_arrive_before_a_later_bad_line(self):
        text = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\nfrob q[0];\n"
        stream = iter_qasm_gates(text)
        assert next(stream).name == "CX"
        with pytest.raises(CircuitError, match="line 4"):
            next(stream)

    def test_gate_before_qreg_rejected(self):
        with pytest.raises(CircuitError):
            next(iter_qasm_gates("OPENQASM 2.0;\nx q[0];\n"))

    def test_missing_qreg_reported_at_stream_end(self):
        stream = iter_qasm_gates("OPENQASM 2.0;\n// empty\n")
        with pytest.raises(CircuitError, match="no qreg"):
            list(stream)

    @settings(max_examples=25, deadline=None)
    @given(classical_circuit_strategy(4, max_gates=8))
    def test_stream_round_trips_random_circuits(self, circuit):
        if any(len(g.qubits) > 3 for g in circuit.gates):
            return
        stream = iter_qasm_gates(to_qasm(circuit))
        assert [(g.name, g.qubits) for g in stream] == [
            (g.name, g.qubits) for g in circuit.gates
        ]
        assert stream.num_qubits == circuit.num_qubits
