"""Tests for the Figure 3.1 width-reduction pass (experiment E4)."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    borrow_dirty_qubits,
    circuit_unitary,
    cnot,
    toffoli,
    x,
)
from repro.errors import CircuitError
from repro.verify import classical_safe_uncomputation
from tests.conftest import fig31_circuit


def _unitary_on_kept_wires(circuit, kept):
    """Full unitary restricted by tracing nothing — used for equivalence."""
    return circuit_unitary(circuit)


class TestFigure31:
    def test_width_drops_from_seven_to_five(self):
        plan = borrow_dirty_qubits(fig31_circuit(), ancillas=[5, 6])
        assert plan.original_width == 7
        assert plan.final_width == 5
        assert not plan.unplaced

    def test_q3_hosts_both_ancillas(self):
        plan = borrow_dirty_qubits(fig31_circuit(), ancillas=[5, 6])
        assert plan.assignment == {5: 2, 6: 2}

    def test_rewritten_circuit_equivalent_on_working_qubits(self):
        original = fig31_circuit()
        plan = borrow_dirty_qubits(original, ancillas=[5, 6])
        # The rewritten circuit must act on q1..q5 exactly like the
        # original does (for any dirty value, since ancillas are safe).
        u_new = circuit_unitary(plan.circuit)
        # Build the reference: original unitary with ancillas in |0>.
        u_old = circuit_unitary(original)
        # Compare action on all basis states of the 5 working qubits
        # with ancillas fixed to zero: index layout: q1..q5,a1,a2.
        for s in range(2**5):
            old_in = s << 2  # a1 = a2 = 0
            col_old = u_old[:, old_in]
            out_old = int(np.argmax(np.abs(col_old)))
            assert abs(abs(col_old[out_old]) - 1) < 1e-9
            # ancillas restored to zero
            assert out_old & 0b11 == 0
            col_new = u_new[:, s]
            out_new = int(np.argmax(np.abs(col_new)))
            assert out_new == out_old >> 2

    def test_safety_check_hook_accepts_safe(self):
        plan = borrow_dirty_qubits(
            fig31_circuit(),
            ancillas=[5, 6],
            safety_check=lambda c, q: classical_safe_uncomputation(c, q).safe,
        )
        assert plan.final_width == 5


class TestSafetyGating:
    def _unsafe_circuit(self):
        # The ancilla (wire 2) is flipped and never restored.
        return Circuit(3).extend([cnot(0, 1), x(2)])

    def test_unsafe_errors_by_default(self):
        with pytest.raises(CircuitError):
            borrow_dirty_qubits(
                self._unsafe_circuit(),
                ancillas=[2],
                safety_check=lambda c, q: classical_safe_uncomputation(c, q).safe,
            )

    def test_unsafe_skip_keeps_wire(self):
        plan = borrow_dirty_qubits(
            self._unsafe_circuit(),
            ancillas=[2],
            safety_check=lambda c, q: classical_safe_uncomputation(c, q).safe,
            on_unsafe="skip",
        )
        assert plan.unplaced == [2]
        assert plan.final_width == 3

    def test_invalid_on_unsafe(self):
        with pytest.raises(CircuitError):
            borrow_dirty_qubits(Circuit(1), [0], on_unsafe="ignore")


class TestPlacementRules:
    def test_no_host_available(self):
        # Every working qubit is busy throughout.
        c = Circuit(3)
        c.extend([cnot(0, 1), toffoli(0, 1, 2), cnot(0, 1)])
        plan = borrow_dirty_qubits(c, ancillas=[2])
        assert plan.unplaced == [2]
        assert plan.final_width == 3

    def test_untouched_ancilla_simply_removed(self):
        c = Circuit(3).extend([cnot(0, 1)])
        plan = borrow_dirty_qubits(c, ancillas=[2])
        assert plan.final_width == 2
        assert plan.assignment == {}

    def test_overlapping_ancillas_need_distinct_hosts(self):
        # Two ancillas busy at the same time: one host cannot serve both.
        c = Circuit(5)
        c.extend(
            [
                cnot(0, 3),  # ancilla 3 period begins
                cnot(1, 4),  # ancilla 4 period begins (overlaps)
                cnot(0, 3),
                cnot(1, 4),
            ]
        )
        plan = borrow_dirty_qubits(c, ancillas=[3, 4])
        hosts = set(plan.assignment.values())
        assert len(hosts) == len(plan.assignment)

    def test_ancilla_out_of_range(self):
        with pytest.raises(CircuitError):
            borrow_dirty_qubits(Circuit(2), [5])

    def test_wire_map_is_compact(self):
        plan = borrow_dirty_qubits(fig31_circuit(), ancillas=[5, 6])
        assert sorted(plan.wire_map.values()) == list(range(5))

    def test_labels_follow_survivors(self):
        plan = borrow_dirty_qubits(fig31_circuit(), ancillas=[5, 6])
        assert plan.circuit.labels == ["q1", "q2", "q3", "q4", "q5"]

    def test_report_renders(self):
        plan = borrow_dirty_qubits(fig31_circuit(), ancillas=[5, 6])
        text = str(plan)
        assert "width 7 -> 5" in text
