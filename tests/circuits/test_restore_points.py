"""The restore-point analysis and the WindowSet type.

The soundness stakes: a release point the analysis wrongly certifies
would hand a borrowed wire back mid-computation with garbage on it, so
the tests here pin the conservative direction hard — non-identity
segments, spoiled ancillas and undecidable shapes must all collapse to
the whole-period window.
"""

import pytest

from repro.circuits import (
    ActivityInterval,
    Circuit,
    WindowSet,
    cnot,
    hadamard,
    restore_segments,
    solver_restore_checker,
    toffoli,
    x,
)
from repro.errors import CircuitError
from repro.testing import random_reversible_circuit, segmented_guest_job


class TestWindowSet:
    def test_single_segment_roundtrip(self):
        ws = WindowSet.whole(ActivityInterval(2, 5))
        assert (ws.first, ws.last) == (2, 5)
        assert ws.hull == ActivityInterval(2, 5)
        assert len(ws) == 1 and ws.gaps() == ()

    def test_ordering_and_gaps_validated(self):
        with pytest.raises(CircuitError, match="at least one"):
            WindowSet(())
        with pytest.raises(CircuitError, match="gap"):
            WindowSet.of((0, 1), (2, 3))  # contiguous: one segment
        with pytest.raises(CircuitError, match="gap"):
            WindowSet.of((4, 5), (0, 1))  # unsorted
        with pytest.raises(CircuitError, match="empty"):
            WindowSet.of((3, 2))

    def test_overlap_is_per_segment(self):
        a = WindowSet.of((0, 1), (8, 9))
        assert a.overlaps(WindowSet.of((8, 12)))
        assert a.overlaps(ActivityInterval(1, 2))
        assert not a.overlaps(WindowSet.of((3, 6)))  # fits the gap
        assert not a.overlaps(WindowSet.of((2, 3), (11, 12)))

    def test_shift_and_lengths(self):
        a = WindowSet.of((0, 1), (8, 9))
        shifted = a.shifted(5)
        assert shifted == WindowSet.of((5, 6), (13, 14))
        assert a.length == 4  # covered rounds
        assert a.hull.length == 10
        assert a.gaps() == (ActivityInterval(2, 7),)

    def test_contains_index(self):
        a = WindowSet.of((0, 1), (8, 9))
        assert a.contains_index(8)
        assert not a.contains_index(4)

    def test_str_joins_segments(self):
        assert str(WindowSet.of((0, 1), (8, 9))) == "[0, 1]∪[8, 9]"


def two_block_circuit(gap=4):
    """Ancilla 1: two CX;CX identity blocks around a busy-wire gap."""
    c = Circuit(2)
    c.extend([cnot(0, 1), cnot(0, 1)])
    c.extend([x(0)] * gap)
    c.extend([cnot(0, 1), cnot(0, 1)])
    return c


class TestRestoreSegments:
    def test_two_identity_blocks_split(self):
        c = two_block_circuit(gap=4)
        assert restore_segments(c, 1) == WindowSet.of((0, 1), (6, 7))

    def test_single_block_stays_whole(self):
        c = Circuit(2).extend([cnot(0, 1), cnot(0, 1)])
        assert restore_segments(c, 1) == WindowSet.of((0, 1))

    def test_compute_uncompute_straddle_not_split(self):
        """An ancilla left dirty across the gap (classic V ... V⁻¹
        shape) has no valid release point: the value mid-gap is
        garbage, so the window must stay whole."""
        c = Circuit(3)
        c.extend([cnot(0, 1), toffoli(0, 1, 2)])  # compute, a1 dirty
        c.extend([x(0)] * 3)  # gap: wire 1 holds garbage
        c.extend([toffoli(0, 1, 2), cnot(0, 1)])  # uncompute
        assert restore_segments(c, 1) == WindowSet.of((0, 6))

    def test_internal_gap_of_one_block_not_split(self):
        """Gates that skip the ancilla *inside* a block do not create
        release points: the prefix up to the gap is not an identity."""
        c = Circuit(3)
        c.extend([cnot(0, 1), cnot(0, 2), cnot(0, 2), cnot(0, 1)])
        # Ancilla 1 touched at 0 and 3; prefix [0, 0] is not identity.
        assert restore_segments(c, 1) == WindowSet.of((0, 3))

    def test_non_classical_block_not_certified(self):
        c = Circuit(2)
        c.extend([hadamard(1), hadamard(1)])  # identity, but not X-family
        c.extend([x(0)] * 3)
        c.extend([cnot(0, 1), cnot(0, 1)])
        assert restore_segments(c, 1) == WindowSet.of((0, 6))

    def test_uncertified_slice_merges_across_its_gap(self):
        """The greedy scan: a slice that fails to certify at one gap
        is retried, merged, at the next — the emitted segment [6, 9]
        spans the internal gap and certifies as a whole."""
        c = Circuit(2)
        c.extend([cnot(0, 1), cnot(0, 1)])  # certified block: [0, 1]
        c.extend([x(0)] * 4)
        c.append(cnot(0, 1))  # [6, 6] alone is not an identity ...
        c.extend([x(0)] * 2)
        c.append(cnot(0, 1))  # ... but merged [6, 9] is a palindrome
        assert restore_segments(c, 1) == WindowSet.of((0, 1), (6, 9))

    def test_certified_prefix_withdrawn_when_tail_never_certifies(self):
        """A release point is only sound if everything after it also
        certifies: with an uncertifiable tail the earlier certified
        block must NOT be emitted — the window stays whole."""
        c = Circuit(2)
        c.extend([cnot(0, 1), cnot(0, 1)])  # certified block: [0, 1]
        c.extend([x(0)] * 4)
        c.extend([cnot(0, 1), x(1)])  # tail leaves the ancilla dirty
        assert restore_segments(c, 1) == WindowSet.of((0, 7))

    def test_untouched_ancilla_rejected(self):
        with pytest.raises(CircuitError, match="never touched"):
            restore_segments(Circuit(2).append(x(0)), 1)
        with pytest.raises(CircuitError, match="outside"):
            restore_segments(Circuit(2), 5)

    def test_generated_segmented_guest_splits_per_block(self):
        job = segmented_guest_job("g", prelude=3, span=2, gap=5, blocks=3)
        ws = restore_segments(job.circuit, 1)
        assert [(seg.first, seg.last) for seg in ws.segments] == [
            (3, 6),
            (12, 15),
            (21, 24),
        ]

    @pytest.mark.parametrize("seed", range(10))
    def test_spoiled_generator_ancilla_never_segmentable(self, seed):
        """Acceptance pin: the trailing flip makes the final residue a
        non-identity, so the whole decomposition must be withdrawn —
        structurally and under the solver-backed checker alike."""
        circuit, _ = random_reversible_circuit(
            seed, num_data=3, num_ancillas=2, spoiled=[3]
        )
        assert len(restore_segments(circuit, 3)) == 1
        checker = solver_restore_checker(backend="bdd")
        assert len(restore_segments(circuit, 3, segment_check=checker)) == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_generator_blocks_are_structural_identities(self, seed):
        """Each generated ancilla has exactly one C;C⁻¹ block, so its
        window set is that single block — never split, never widened."""
        circuit, ancillas = random_reversible_circuit(seed, 4, 2)
        for a in ancillas:
            ws = restore_segments(circuit, a)
            assert len(ws) == 1


class TestSolverBackedCheck:
    def test_solver_certifies_non_palindromic_identity(self):
        """[CX(0,1); CX(2,1); CX(0,1); CX(2,1)] restores ancilla 1 for
        every input but is not a palindrome — only the semantic check
        can split here."""
        c = Circuit(3)
        c.extend([cnot(0, 1), cnot(2, 1), cnot(0, 1), cnot(2, 1)])
        c.extend([x(0)] * 3)
        c.extend([cnot(0, 1), cnot(0, 1)])
        assert restore_segments(c, 1) == WindowSet.of((0, 8))
        checker = solver_restore_checker(backend="bdd")
        assert restore_segments(c, 1, segment_check=checker) == (
            WindowSet.of((0, 3), (7, 8))
        )

    def test_solver_rejects_non_identity(self):
        c = Circuit(2)
        c.extend([cnot(0, 1), x(1)])  # leaves the ancilla flipped
        c.extend([x(0)] * 3)
        c.extend([cnot(0, 1), cnot(0, 1)])
        checker = solver_restore_checker(backend="bdd")
        assert len(restore_segments(c, 1, segment_check=checker)) == 1
