"""Experiment E2: the Figure 1.3 CCCNOT identity."""

import numpy as np

from repro.circuits import Circuit, circuit_unitary, mcx, truth_table
from repro.verify import (
    classical_safe_uncomputation,
    unitary_acts_identity_on,
    verify_circuit,
)
from tests.conftest import fig13_circuit


class TestFigure13:
    def test_equals_cccnot_tensor_identity(self):
        """Example 3.2: the 4-Toffoli circuit *is* CCCNOT ⊗ I_a."""
        u = circuit_unitary(fig13_circuit())
        reference = circuit_unitary(
            Circuit(5).append(mcx([0, 1, 3], 4))
        )
        assert np.allclose(u, reference)

    def test_dirty_qubit_satisfies_definition_31(self):
        u = circuit_unitary(fig13_circuit())
        assert unitary_acts_identity_on(u, 2, 5)

    def test_working_qubits_are_not_identity(self):
        u = circuit_unitary(fig13_circuit())
        assert not unitary_acts_identity_on(u, 4, 5)  # the target

    def test_classical_two_state_check(self):
        assert classical_safe_uncomputation(fig13_circuit(), 2).safe

    def test_all_backends_agree_safe(self):
        for backend in ("cdcl", "dpll", "bdd", "bdd-reversed", "brute"):
            report = verify_circuit(fig13_circuit(), [2], backend=backend)
            assert report.all_safe, backend

    def test_truth_table_restores_dirty_bit(self):
        table = truth_table(fig13_circuit())
        for state in range(32):
            assert ((state >> 2) & 1) == ((int(table[state]) >> 2) & 1)

    def test_implements_three_controlled_not_on_basis(self):
        table = truth_table(fig13_circuit())
        for state in range(32):
            controls_on = all((state >> (4 - w)) & 1 for w in (0, 1, 3))
            flipped = int(table[state]) != state
            assert flipped == controls_on
