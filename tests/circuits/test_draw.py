"""Tests for ASCII circuit rendering."""

from repro.circuits import Circuit, cnot, draw_circuit, hadamard, x
from tests.conftest import fig13_circuit


class TestDrawing:
    def test_empty_register(self):
        assert draw_circuit(Circuit(0)) == "(empty register)"

    def test_empty_circuit_draws_wires(self):
        text = draw_circuit(Circuit(2, labels=["top", "bot"]))
        assert "top:" in text and "bot:" in text

    def test_controls_and_targets(self):
        text = draw_circuit(Circuit(2).append(cnot(0, 1)))
        lines = text.splitlines()
        assert "●" in lines[0]
        assert "X" in lines[2]
        assert "│" in lines[1]

    def test_x_gate_has_no_connector(self):
        text = draw_circuit(Circuit(2).append(x(0)))
        assert "│" not in text

    def test_named_box_for_non_classical(self):
        text = draw_circuit(Circuit(1).append(hadamard(0)))
        assert "H" in text

    def test_figure_13_layout(self):
        text = draw_circuit(fig13_circuit())
        lines = text.splitlines()
        assert lines[0].startswith("q1:")
        assert lines[4].lstrip().startswith("a:")
        # four gate columns
        assert lines[4].count("X") + lines[4].count("●") == 4

    def test_parallel_gates_share_column(self):
        both = draw_circuit(Circuit(2).extend([x(0), x(1)]))
        serial = draw_circuit(Circuit(1).extend([x(0), x(0)]))
        # parallel: single column; serial: two columns on one wire
        assert both.splitlines()[0].count("X") == 1
        assert serial.splitlines()[0].count("X") == 2

    def test_crossing_idle_wire_marked(self):
        text = draw_circuit(Circuit(3).append(cnot(0, 2)))
        assert "┼" in text.splitlines()[2]

    def test_wrapping_into_banks(self):
        circuit = Circuit(1).extend([x(0)] * 100)
        text = draw_circuit(circuit, max_width=40)
        assert text.count("q0:") > 1

    def test_labels_used(self):
        text = draw_circuit(
            Circuit(2, labels=["alpha", "b"]).append(cnot(0, 1))
        )
        assert "alpha:" in text and "    b:" in text
