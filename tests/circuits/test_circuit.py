"""Tests for the Circuit container."""

import numpy as np
import pytest

from repro.circuits import Circuit, circuit_unitary, cnot, hadamard, toffoli, x
from repro.errors import CircuitError


class TestConstruction:
    def test_out_of_range_gate_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2).append(toffoli(0, 1, 2))

    def test_negative_width_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(-1)

    def test_label_count_must_match(self):
        with pytest.raises(CircuitError):
            Circuit(2, labels=["a"])

    def test_extend_returns_self(self):
        c = Circuit(2)
        assert c.extend([x(0), x(1)]) is c
        assert len(c) == 2


class TestCompositionAndInverse:
    def test_compose(self):
        a = Circuit(2).append(x(0))
        b = Circuit(2).append(cnot(0, 1))
        ab = a.compose(b)
        assert [g.name for g in ab] == ["X", "CX"]

    def test_compose_width_mismatch(self):
        with pytest.raises(CircuitError):
            Circuit(2).compose(Circuit(3))

    def test_inverse_undoes(self, rng):
        c = Circuit(3).extend(
            [hadamard(0), cnot(0, 1), toffoli(0, 1, 2), x(2)]
        )
        u = circuit_unitary(c)
        v = circuit_unitary(c.inverse())
        assert np.allclose(v @ u, np.eye(8), atol=1e-9)

    def test_remap(self):
        c = Circuit(2).extend([cnot(0, 1)])
        moved = c.remap({0: 2, 1: 0}, 3)
        assert moved.gates[0].qubits == (2, 0)


class TestIntrospection:
    def test_qubits_touched_and_idle(self):
        c = Circuit(4).extend([cnot(0, 2)])
        assert c.qubits_touched() == {0, 2}
        assert c.idle_qubits() == {1, 3}

    def test_labels(self):
        c = Circuit(2, labels=["alpha", "beta"])
        assert c.label_of(0) == "alpha"
        assert Circuit(1).label_of(0) == "q0"

    def test_iteration_and_indexing(self):
        c = Circuit(2).extend([x(0), x(1)])
        assert list(c)[1].qubits == (1,)
        assert c[0].qubits == (0,)

    def test_str_truncates(self):
        c = Circuit(1).extend([x(0)] * 50)
        text = str(c)
        assert "more" in text
