"""Tests for the statevector simulator, cross-validated against the
dense unitary and classical simulators."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuits import (
    Circuit,
    apply_to_bits,
    circuit_unitary,
    cnot,
    hadamard,
    run_on_basis_state,
    run_statevector,
    toffoli,
    x,
)
from repro.circuits.statevector import apply_gate_to_ket
from repro.errors import CircuitError, QubitError
from repro.linalg import basis_ket, random_unitary
from tests.conftest import classical_circuit_strategy


class TestBasics:
    def test_default_initial_state(self):
        out = run_statevector(Circuit(2))
        assert np.allclose(out, basis_ket(0, 2))

    def test_x_flips(self):
        out = run_statevector(Circuit(2).append(x(0)))
        assert np.allclose(out, basis_ket(0b10, 2))

    def test_ghz_preparation(self):
        circuit = Circuit(3).extend([hadamard(0), cnot(0, 1), cnot(1, 2)])
        out = run_statevector(circuit)
        expected = (basis_ket(0, 3) + basis_ket(7, 3)) / np.sqrt(2)
        assert np.allclose(out, expected)

    def test_initial_state_validation(self):
        with pytest.raises(QubitError):
            run_statevector(Circuit(1), np.array([1.0, 1.0]))  # unnormalised
        with pytest.raises(QubitError):
            run_statevector(Circuit(2), np.array([1.0, 0.0]))  # wrong size

    def test_width_cap(self):
        with pytest.raises(CircuitError):
            run_statevector(Circuit(23))

    def test_basis_state_runner(self):
        out = run_on_basis_state(Circuit(2).append(cnot(0, 1)), 0b10)
        assert np.allclose(out, basis_ket(0b11, 2))
        with pytest.raises(QubitError):
            run_on_basis_state(Circuit(2), 7)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense_unitary(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(3)
        for _ in range(4):
            wires = list(rng.permutation(3)[:2])
            circuit.append(
                Circuit(3)
                .append(cnot(wires[0], wires[1]))
                .gates[0]
            )
            circuit.append(hadamard(int(rng.integers(0, 3))))
        u = circuit_unitary(circuit)
        for col in (0, 3, 5):
            out = run_on_basis_state(circuit, col)
            assert np.allclose(out, u[:, col])

    @settings(max_examples=20, deadline=None)
    @given(classical_circuit_strategy(4, max_gates=8))
    def test_matches_classical_simulation(self, circuit):
        n = circuit.num_qubits
        for index in (0, 5, 9, 15):
            bits = [(index >> (n - 1 - i)) & 1 for i in range(n)]
            out_bits = apply_to_bits(circuit, bits)
            packed = 0
            for b in out_bits:
                packed = (packed << 1) | b
            out = run_on_basis_state(circuit, index)
            assert abs(abs(out[packed]) - 1) < 1e-9

    def test_norm_preserved_on_random_circuit(self, rng):
        from repro.circuits import unitary_gate

        circuit = Circuit(4)
        for _ in range(5):
            wires = list(rng.permutation(4)[:2])
            circuit.append(
                unitary_gate(random_unitary(2, rng), wires, "R")
            )
        out = run_statevector(circuit)
        assert abs(np.linalg.norm(out) - 1) < 1e-9


class TestApplyGateToKet:
    def test_non_adjacent_wires(self):
        ket = basis_ket(0b101, 3)  # q0=1, q2=1
        out = apply_gate_to_ket(ket, toffoli(0, 2, 1), 3)
        assert np.allclose(out, basis_ket(0b111, 3))

    def test_shape_check(self):
        with pytest.raises(QubitError):
            apply_gate_to_ket(np.zeros(3), x(0), 2)

    def test_moderately_wide_register(self):
        n = 16
        circuit = Circuit(n)
        for i in range(n - 1):
            circuit.append(cnot(i, i + 1))
        out = run_on_basis_state(circuit, 1 << (n - 1))  # q0 = 1
        assert abs(abs(out[(1 << n) - 1]) - 1) < 1e-9
