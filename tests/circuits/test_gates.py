"""Tests for gate objects."""

import numpy as np
import pytest

from repro.circuits import (
    Gate,
    ccnot,
    cnot,
    cphase,
    gate_from_name,
    hadamard,
    mcx,
    phase,
    s_gate,
    swap,
    t_gate,
    toffoli,
    unitary_gate,
    x,
)
from repro.errors import CircuitError


class TestConstruction:
    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            cnot(1, 1)

    def test_empty_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Gate("X", ())

    def test_mcx_degenerates(self):
        assert mcx([], 0).name == "X"
        assert mcx([1], 0).name == "CX"
        assert mcx([1, 2], 0).name == "CCX"
        assert mcx([1, 2, 3], 0).name == "MCX"

    def test_ccnot_alias(self):
        assert ccnot(0, 1, 2) == toffoli(0, 1, 2)


class TestClassification:
    def test_classical_gates(self):
        assert x(0).is_classical
        assert cnot(0, 1).is_classical
        assert toffoli(0, 1, 2).is_classical
        assert mcx([0, 1, 2], 3).is_classical
        assert not hadamard(0).is_classical

    def test_controls_and_target(self):
        gate = mcx([3, 1, 2], 0)
        assert gate.controls == (3, 1, 2)
        assert gate.target == 0

    def test_non_classical_has_no_split(self):
        with pytest.raises(CircuitError):
            _ = hadamard(0).controls


class TestMatrices:
    def test_x_matrix(self):
        assert np.allclose(x(0).local_matrix(), [[0, 1], [1, 0]])

    def test_toffoli_matrix_is_permutation(self):
        mat = toffoli(0, 1, 2).local_matrix()
        assert np.allclose(mat @ mat, np.eye(8))
        assert np.allclose(np.abs(mat).sum(axis=0), np.ones(8))

    def test_mcx_matrix_swaps_last_rows(self):
        mat = mcx([0, 1, 2], 3).local_matrix()
        assert mat[14, 15] == 1 and mat[15, 14] == 1
        assert np.allclose(mat[:14, :14], np.eye(14))

    def test_phase_matrix(self):
        mat = phase(np.pi, 0).local_matrix()
        assert np.allclose(mat, np.diag([1, -1]))

    def test_cphase_matrix(self):
        mat = cphase(np.pi / 2, 0, 1).local_matrix()
        assert np.allclose(mat, np.diag([1, 1, 1, 1j]))

    def test_s_squared_is_z(self):
        s = s_gate(0).local_matrix()
        assert np.allclose(s @ s, np.diag([1, -1]))

    def test_t_fourth_is_z(self):
        t = t_gate(0).local_matrix()
        assert np.allclose(np.linalg.matrix_power(t, 4), np.diag([1, -1]))

    def test_unknown_gate_has_no_matrix(self):
        with pytest.raises(CircuitError):
            Gate("FROB", (0,)).local_matrix()


class TestDagger:
    def test_self_inverse_gates(self):
        for gate in (x(0), cnot(0, 1), toffoli(0, 1, 2), swap(0, 1), hadamard(0)):
            assert gate.dagger() == gate

    def test_s_dagger(self):
        assert s_gate(0).dagger().name == "SDG"
        assert s_gate(0).dagger().dagger() == s_gate(0)

    def test_phase_dagger_negates(self):
        assert phase(0.5, 0).dagger().params == (-0.5,)

    def test_custom_matrix_dagger(self):
        mat = np.diag([1, 1j])
        gate = unitary_gate(mat, [0], "SQ")
        dag = gate.dagger()
        assert np.allclose(dag.local_matrix(), mat.conj().T)

    def test_dagger_matrix_is_inverse(self):
        for gate in (s_gate(0), t_gate(0), phase(0.7, 0), cphase(1.1, 0, 1)):
            product = gate.local_matrix() @ gate.dagger().local_matrix()
            assert np.allclose(product, np.eye(product.shape[0]))


class TestRemapAndNames:
    def test_remap(self):
        gate = toffoli(0, 1, 2).remap({0: 5, 2: 7})
        assert gate.qubits == (5, 1, 7)

    def test_gate_from_name_aliases(self):
        assert gate_from_name("CNOT", [0, 1]).name == "CX"
        assert gate_from_name("CCNOT", [0, 1, 2]).name == "CCX"
        assert gate_from_name("x", [0]).name == "X"

    def test_gate_from_name_arity_check(self):
        with pytest.raises(CircuitError):
            gate_from_name("CX", [0])
        with pytest.raises(CircuitError):
            gate_from_name("NOPE", [0])
        with pytest.raises(CircuitError):
            gate_from_name("MCX", [0])

    def test_str(self):
        assert str(cnot(0, 1)) == "CX[0, 1]"
        assert "PHASE" in str(phase(0.5, 2))


class TestUnitaryGate:
    def test_rejects_non_unitary(self):
        with pytest.raises(CircuitError):
            unitary_gate(np.ones((2, 2)), [0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(CircuitError):
            unitary_gate(np.eye(2), [0, 1])
