"""Tests for activity intervals and idle windows."""

from repro.circuits import (
    ActivityInterval,
    Circuit,
    activity_intervals,
    cnot,
    idle_qubits_during,
    x,
)


class TestActivityIntervals:
    def test_untouched_qubits_absent(self):
        c = Circuit(3).append(x(0))
        intervals = activity_intervals(c)
        assert set(intervals) == {0}

    def test_first_and_last(self):
        c = Circuit(3).extend([x(0), cnot(0, 1), x(0), x(2)])
        intervals = activity_intervals(c)
        assert intervals[0] == ActivityInterval(0, 2)
        assert intervals[1] == ActivityInterval(1, 1)
        assert intervals[2] == ActivityInterval(3, 3)


class TestOverlap:
    def test_overlapping(self):
        assert ActivityInterval(0, 3).overlaps(ActivityInterval(3, 5))
        assert ActivityInterval(2, 4).overlaps(ActivityInterval(0, 9))

    def test_disjoint(self):
        assert not ActivityInterval(0, 2).overlaps(ActivityInterval(3, 4))

    def test_contains_index(self):
        assert ActivityInterval(1, 3).contains_index(2)
        assert not ActivityInterval(1, 3).contains_index(4)


class TestIdleWindows:
    def test_fig31_q3_idle_during_both_routines(self):
        from tests.conftest import fig31_circuit

        c = fig31_circuit()
        intervals = activity_intervals(c)
        a1_period = intervals[5]
        a2_period = intervals[6]
        working = set(range(5))
        # q3 (wire 2) is busy only in the opening CNOT, so it is idle in
        # both ancilla periods — the paper's reuse argument.
        assert 2 in idle_qubits_during(c, a1_period, working)
        assert 2 in idle_qubits_during(c, a2_period, working)
        # The engaged working qubits are not idle.
        assert 0 not in idle_qubits_during(c, a1_period, working)
        assert 3 not in idle_qubits_during(c, a1_period, working)

    def test_untouched_qubit_always_idle(self):
        c = Circuit(3).extend([x(0), x(0)])
        idle = idle_qubits_during(c, ActivityInterval(0, 1))
        assert idle == {1, 2}

    def test_candidates_filter(self):
        c = Circuit(3).extend([x(0)])
        idle = idle_qubits_during(c, ActivityInterval(0, 0), candidates={0, 1})
        assert idle == {1}
