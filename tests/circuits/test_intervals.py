"""Tests for activity intervals and idle windows."""

from repro.circuits import (
    ActivityInterval,
    Circuit,
    activity_intervals,
    cnot,
    idle_qubits_during,
    x,
)


class TestActivityIntervals:
    def test_untouched_qubits_absent(self):
        c = Circuit(3).append(x(0))
        intervals = activity_intervals(c)
        assert set(intervals) == {0}

    def test_first_and_last(self):
        c = Circuit(3).extend([x(0), cnot(0, 1), x(0), x(2)])
        intervals = activity_intervals(c)
        assert intervals[0] == ActivityInterval(0, 2)
        assert intervals[1] == ActivityInterval(1, 1)
        assert intervals[2] == ActivityInterval(3, 3)


class TestOverlap:
    def test_overlapping(self):
        assert ActivityInterval(0, 3).overlaps(ActivityInterval(3, 5))
        assert ActivityInterval(2, 4).overlaps(ActivityInterval(0, 9))

    def test_disjoint(self):
        assert not ActivityInterval(0, 2).overlaps(ActivityInterval(3, 4))

    def test_contains_index(self):
        assert ActivityInterval(1, 3).contains_index(2)
        assert not ActivityInterval(1, 3).contains_index(4)


class TestIdleWindows:
    def test_fig31_q3_idle_during_both_routines(self):
        from tests.conftest import fig31_circuit

        c = fig31_circuit()
        intervals = activity_intervals(c)
        a1_period = intervals[5]
        a2_period = intervals[6]
        working = set(range(5))
        # q3 (wire 2) is busy only in the opening CNOT, so it is idle in
        # both ancilla periods — the paper's reuse argument.
        assert 2 in idle_qubits_during(c, a1_period, working)
        assert 2 in idle_qubits_during(c, a2_period, working)
        # The engaged working qubits are not idle.
        assert 0 not in idle_qubits_during(c, a1_period, working)
        assert 3 not in idle_qubits_during(c, a1_period, working)

    def test_untouched_qubit_always_idle(self):
        c = Circuit(3).extend([x(0), x(0)])
        idle = idle_qubits_during(c, ActivityInterval(0, 1))
        assert idle == {1, 2}

    def test_candidates_filter(self):
        c = Circuit(3).extend([x(0)])
        idle = idle_qubits_during(c, ActivityInterval(0, 0), candidates={0, 1})
        assert idle == {1}


class TestIncrementalTouchIndex:
    """The streaming touch index must match the offline functions on
    every prefix — the parity that keeps the incremental conflict
    model honest."""

    def _corpus(self):
        from repro.testing import random_reversible_circuit

        for seed in range(40, 46):
            yield random_reversible_circuit(
                seed, num_data=5, num_ancillas=2, segment_gates=3,
                middle_gates=6,
            )[0]

    def test_matches_offline_on_every_prefix(self):
        from repro.circuits import (
            IncrementalTouchIndex,
            touch_indices,
        )

        for circuit in self._corpus():
            index = IncrementalTouchIndex(circuit.num_qubits)
            prefix = Circuit(circuit.num_qubits)
            for gate in circuit.gates:
                index.append(gate)
                prefix.append(gate)
                offline_touches = touch_indices(prefix)
                offline_intervals = activity_intervals(prefix)
                for q in range(circuit.num_qubits):
                    assert index.touches_of(q) == (
                        offline_touches.get(q, [])
                    )
                    assert index.interval(q) == offline_intervals.get(q)

    def test_busy_in_matches_interval_probe(self):
        from repro.circuits import IncrementalTouchIndex, WindowSet

        index = IncrementalTouchIndex(3)
        for gate in [x(0), cnot(0, 1), x(2), x(0)]:
            index.append(gate)
        assert index.busy_in(0, WindowSet.of((0, 1)))
        assert not index.busy_in(2, WindowSet.of((0, 1)))
        assert index.busy_in(2, WindowSet.of((0, 0), (2, 3)))
        assert not index.busy_in(1, WindowSet.of((2, 3)))

    def test_last_touch_of_untouched_wire_is_none(self):
        from repro.circuits import IncrementalTouchIndex

        index = IncrementalTouchIndex(2)
        assert index.last_touch(1) is None
        index.append(x(0))
        assert index.last_touch(0) == 0
        assert index.last_touch(1) is None


class TestRestoreScanParity:
    """restore_segments replays a RestoreScan, so the two agree by
    construction — these tests pin the replayed scan's own contract."""

    def test_streaming_window_matches_offline_on_prefixes(self):
        from repro.circuits import RestoreScan, restore_segments
        from repro.testing import random_reversible_circuit

        for seed in range(40, 46):
            circuit, ancillas = random_reversible_circuit(
                seed, num_data=5, num_ancillas=2, segment_gates=3,
                middle_gates=6,
            )
            for a in ancillas:
                scan = RestoreScan(circuit.num_qubits, circuit.gates, a)
                prefix = Circuit(circuit.num_qubits)
                for i, gate in enumerate(circuit.gates):
                    prefix.append(gate)
                    if a in gate.qubits:
                        scan.observe(i)
                        assert scan.window() == restore_segments(
                            prefix, a
                        )

    def test_repeated_index_is_a_no_op(self):
        from repro.circuits import RestoreScan

        gates = [x(1), x(0), x(1)]
        scan = RestoreScan(2, gates, 1)
        scan.observe(0)
        scan.observe(0)
        scan.observe(2)
        assert scan.window() is not None

    def test_descending_index_raises(self):
        import pytest

        from repro.circuits import RestoreScan
        from repro.errors import CircuitError

        scan = RestoreScan(2, [x(1), x(1)], 1)
        scan.observe(1)
        with pytest.raises(CircuitError):
            scan.observe(0)
