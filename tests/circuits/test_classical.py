"""Tests for classical permutation simulation."""

import pytest
from hypothesis import given, settings

from repro.circuits import (
    Circuit,
    apply_to_bits,
    circuit_unitary,
    cnot,
    hadamard,
    is_classical_circuit,
    mcx,
    toffoli,
    truth_table,
    x,
)
from repro.errors import VerificationError
from tests.conftest import classical_circuit_strategy


class TestApplyToBits:
    def test_x(self):
        c = Circuit(2).append(x(1))
        assert apply_to_bits(c, [0, 0]) == [0, 1]

    def test_cnot_control_off(self):
        c = Circuit(2).append(cnot(0, 1))
        assert apply_to_bits(c, [0, 1]) == [0, 1]

    def test_cnot_control_on(self):
        c = Circuit(2).append(cnot(0, 1))
        assert apply_to_bits(c, [1, 0]) == [1, 1]

    def test_mcx_needs_all_controls(self):
        c = Circuit(4).append(mcx([0, 1, 2], 3))
        assert apply_to_bits(c, [1, 1, 0, 0]) == [1, 1, 0, 0]
        assert apply_to_bits(c, [1, 1, 1, 0]) == [1, 1, 1, 1]

    def test_rejects_non_classical(self):
        c = Circuit(1).append(hadamard(0))
        with pytest.raises(VerificationError):
            apply_to_bits(c, [0])

    def test_rejects_wrong_length(self):
        with pytest.raises(VerificationError):
            apply_to_bits(Circuit(2), [0])

    def test_rejects_non_bits(self):
        with pytest.raises(VerificationError):
            apply_to_bits(Circuit(1), [2])

    def test_scales_to_thousands_of_qubits(self):
        n = 2000
        c = Circuit(n)
        for i in range(n - 1):
            c.append(cnot(i, i + 1))
        bits = [1] + [0] * (n - 1)
        out = apply_to_bits(c, bits)
        assert out == [1] * n


class TestTruthTable:
    def test_is_permutation(self):
        c = Circuit(3).extend([toffoli(0, 1, 2), cnot(0, 2), x(1)])
        table = truth_table(c)
        assert sorted(table.tolist()) == list(range(8))

    def test_matches_unitary(self):
        c = Circuit(3).extend([toffoli(0, 1, 2), x(0), cnot(1, 2)])
        table = truth_table(c)
        unitary = circuit_unitary(c)
        for col in range(8):
            assert abs(unitary[int(table[col]), col] - 1) < 1e-12

    @settings(max_examples=25, deadline=None)
    @given(classical_circuit_strategy(4))
    def test_truth_table_agrees_with_bit_simulation(self, circuit):
        table = truth_table(circuit)
        n = circuit.num_qubits
        for state in (0, 1, 5, 9, 15):
            bits = [(state >> (n - 1 - i)) & 1 for i in range(n)]
            out = apply_to_bits(circuit, bits)
            packed = 0
            for b in out:
                packed = (packed << 1) | b
            assert packed == int(table[state])

    def test_caps_width(self):
        with pytest.raises(VerificationError):
            truth_table(Circuit(30))


class TestClassification:
    def test_is_classical(self):
        assert is_classical_circuit(Circuit(2).append(cnot(0, 1)))
        assert not is_classical_circuit(Circuit(1).append(hadamard(0)))
