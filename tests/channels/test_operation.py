"""Tests for the QuantumOperation algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import QuantumOperation, initialization
from repro.channels.operation import dedup_operations
from repro.errors import QubitError
from repro.linalg import density, ket0, ket1, random_density, random_unitary


def x_op(n=1, qubit=0):
    from repro.channels import unitary_operation

    return unitary_operation(np.array([[0, 1], [1, 0]]), [qubit], n)


class TestConstruction:
    def test_identity(self):
        ident = QuantumOperation.identity(2)
        rho = density(np.kron(ket0, ket1))
        assert np.allclose(ident(rho), rho)

    def test_zero(self):
        zero = QuantumOperation.zero(1)
        assert np.allclose(zero(density(ket0)), 0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(QubitError):
            QuantumOperation([np.eye(2)], 2)

    def test_rejects_empty_kraus(self):
        with pytest.raises(QubitError):
            QuantumOperation([], 1)

    def test_rejects_trace_increasing(self):
        with pytest.raises(QubitError):
            QuantumOperation([np.eye(2) * 2], 1)


class TestAlgebra:
    def test_composition_order(self, rng):
        u = random_unitary(1, rng)
        v = random_unitary(1, rng)
        first = QuantumOperation.from_unitary(u, 1)
        second = QuantumOperation.from_unitary(v, 1)
        rho = random_density(1, rng)
        composed = second @ first
        assert np.allclose(composed(rho), v @ (u @ rho @ u.conj().T) @ v.conj().T)

    def test_sum_is_branching(self, rng):
        init = initialization(0, 1)
        rho = random_density(1, rng)
        split = QuantumOperation(
            [k * np.sqrt(0.5) for k in init.kraus], 1
        )
        total = split + split
        assert np.allclose(total(rho), init(rho))

    def test_tensor(self, rng):
        u = random_unitary(1, rng)
        a = QuantumOperation.from_unitary(u, 1)
        b = QuantumOperation.identity(1)
        prod = a.tensor(b)
        assert prod.num_qubits == 2
        rho = random_density(2, rng)
        expected_u = np.kron(u, np.eye(2))
        assert np.allclose(prod(rho), expected_u @ rho @ expected_u.conj().T)

    def test_dimension_mismatch(self):
        with pytest.raises(QubitError):
            QuantumOperation.identity(1) @ QuantumOperation.identity(2)
        with pytest.raises(QubitError):
            QuantumOperation.identity(1) + QuantumOperation.identity(2)

    def test_apply_to_ket(self):
        op = x_op()
        out = op.apply_to_ket(ket0)
        assert np.allclose(out, density(ket1))


class TestPredicates:
    def test_unitary_is_trace_preserving(self, rng):
        op = QuantumOperation.from_unitary(random_unitary(2, rng), 2)
        assert op.is_trace_preserving()
        assert op.is_trace_nonincreasing()

    def test_measurement_branch_is_trace_decreasing(self):
        branch = QuantumOperation([np.diag([1.0, 0.0])], 1)
        assert not branch.is_trace_preserving()
        assert branch.is_trace_nonincreasing()

    def test_initialization_trace_preserving(self):
        assert initialization(0, 2).is_trace_preserving()


class TestCpOrder:
    def test_prefix_below_total(self):
        # E_F <= E_F + E_T: the while-loop prefix-sum monotonicity.
        branch_f = QuantumOperation([np.diag([1.0, 0.0])], 1)
        branch_t = QuantumOperation([np.diag([0.0, 1.0])], 1)
        total = branch_f + branch_t
        assert branch_f.cp_leq(total)
        assert not total.cp_leq(branch_f)

    def test_reflexive(self, rng):
        op = QuantumOperation.from_unitary(random_unitary(1, rng), 1)
        assert op.cp_leq(op)


class TestEqualityAndDedup:
    def test_close_to_ignores_kraus_representation(self):
        # |0><0|, |0><1| vs a rotated Kraus pair of the same channel.
        init = initialization(0, 1)
        k0, k1 = init.kraus
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        rotated = QuantumOperation(
            [h[0, 0] * k0 + h[0, 1] * k1, h[1, 0] * k0 + h[1, 1] * k1], 1
        )
        assert init.close_to(rotated)

    def test_key_distinguishes_channels(self):
        assert QuantumOperation.identity(1).key() != x_op().key()

    def test_dedup(self, rng):
        u = random_unitary(1, rng)
        a = QuantumOperation.from_unitary(u, 1)
        b = QuantumOperation.from_unitary(u.copy(), 1)
        c = QuantumOperation.identity(1)
        unique = dedup_operations([a, b, c, c])
        assert len(unique) == 2

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=9999))
    def test_superoperator_characterises_action(self, seed):
        rng = np.random.default_rng(seed)
        op = QuantumOperation.from_unitary(random_unitary(1, rng), 1)
        rho = random_density(1, rng)
        via_super = (op.superoperator() @ rho.reshape(4, 1)).reshape(2, 2)
        # Natural representation convention: vec is row-major kron.
        expected = op(rho)
        assert np.allclose(via_super, expected)


class TestChoi:
    def test_choi_psd_and_trace(self, rng):
        op = QuantumOperation.from_unitary(random_unitary(1, rng), 1)
        choi = op.choi()
        assert np.linalg.eigvalsh(choi).min() > -1e-10
        assert choi.trace() == pytest.approx(2.0, abs=1e-9)
