"""Tests for initialization, unitary, and measurement primitives."""

import numpy as np
import pytest

from repro.channels import (
    basis_measurement,
    initialization,
    measurement_branch,
    unitary_operation,
)
from repro.channels.primitives import check_binary_measurement
from repro.errors import QubitError
from repro.linalg import (
    bell_phi,
    density,
    ket0,
    ket1,
    ket_plus,
    partial_trace,
    random_density,
)


class TestInitialization:
    def test_resets_plus_state(self):
        init = initialization(0, 1)
        assert np.allclose(init(density(ket_plus)), density(ket0))

    def test_resets_one(self):
        init = initialization(0, 1)
        assert np.allclose(init(density(ket1)), density(ket0))

    def test_matches_paper_definition(self, rng):
        # E(rho) = |0><0| rho |0><0| + |0><1| rho |1><0|
        rho = random_density(1, rng)
        init = initialization(0, 1)
        p00 = np.outer(ket0, ket0.conj())
        p01 = np.outer(ket0, ket1.conj())
        expected = p00 @ rho @ p00.conj().T + p01 @ rho @ p01.conj().T
        assert np.allclose(init(rho), expected)

    def test_breaks_entanglement_but_keeps_marginal(self):
        init = initialization(0, 2)
        rho = density(bell_phi())
        out = init(rho)
        assert np.allclose(partial_trace(out, [0], 2), density(ket0))
        assert np.allclose(partial_trace(out, [1], 2), np.eye(2) / 2)

    def test_only_touches_its_qubit(self, rng):
        init = initialization(1, 2)
        a = random_density(1, rng)
        b = random_density(1, rng)
        out = init(np.kron(a, b))
        assert np.allclose(out, np.kron(a, density(ket0)))


class TestUnitaryOperation:
    def test_x_flip(self):
        op = unitary_operation(np.array([[0, 1], [1, 0]]), [0], 1)
        assert np.allclose(op(density(ket0)), density(ket1))

    def test_embedded_on_chosen_wire(self):
        op = unitary_operation(np.array([[0, 1], [1, 0]]), [1], 2)
        rho = density(np.kron(ket0, ket0))
        out = op(rho)
        assert np.allclose(out, density(np.kron(ket0, ket1)))


class TestMeasurement:
    def test_branch_probabilities_encoded_in_trace(self):
        branches = basis_measurement(0, 1)
        rho = density(ket_plus)
        assert branches[True](rho).trace() == pytest.approx(0.5)
        assert branches[False](rho).trace() == pytest.approx(0.5)

    def test_branches_sum_to_trace_preserving(self):
        branches = basis_measurement(0, 2)
        total = branches[True] + branches[False]
        assert total.is_trace_preserving()

    def test_post_measurement_state(self):
        branches = basis_measurement(0, 1)
        out = branches[True](density(ket_plus))
        assert np.allclose(out / out.trace(), density(ket1))

    def test_measurement_branch_on_subset(self, rng):
        m = np.outer(ket0, ket0.conj())
        op = measurement_branch(m, [1], 2)
        rho = random_density(2, rng)
        out = op(rho)
        assert out.trace().real <= rho.trace().real + 1e-10

    def test_completeness_checker(self):
        m_true = np.outer(ket1, ket1.conj())
        m_false = np.outer(ket0, ket0.conj())
        check_binary_measurement(m_true, m_false)
        with pytest.raises(QubitError):
            check_binary_measurement(m_true, m_true)

    def test_completeness_shape_mismatch(self):
        with pytest.raises(QubitError):
            check_binary_measurement(np.eye(2), np.eye(4))
