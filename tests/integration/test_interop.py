"""Cross-subsystem integration: QASM interchange, drawing, the builder
DSL, and program-level verification on the paper's running examples."""


from repro.adders import haner_carry_benchmark
from repro.circuits import draw_circuit, from_qasm, to_qasm
from repro.lang import borrow, seq, unitary
from repro.lang.dsl import ProgramBuilder
from repro.verify import (
    classical_safe_uncomputation,
    verify_borrows_in_program,
    verify_circuit,
)
from tests.conftest import fig13_circuit


class TestQasmInterop:
    def test_haner_benchmark_round_trips_and_verifies(self):
        layout = haner_carry_benchmark(5)
        text = to_qasm(layout.circuit)
        imported = from_qasm(text)
        # labels are lost over QASM; the wires and gates are identical
        assert [(g.name, g.qubits) for g in imported.gates] == [
            (g.name, g.qubits) for g in layout.circuit.gates
        ]
        report = verify_circuit(imported, layout.dirty_ancillas, backend="bdd")
        assert report.all_safe

    def test_externally_authored_circuit_can_be_checked(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        ccx q[0],q[1],q[2];
        cx q[2],q[0];
        ccx q[0],q[1],q[2];
        """
        circuit = from_qasm(text)
        result = classical_safe_uncomputation(circuit, 2)
        assert not result.safe  # single read of the dirty scratch


class TestDrawingIntegration:
    def test_fig13_drawing_is_stable(self):
        text = draw_circuit(fig13_circuit())
        assert text.count("●") == 8  # four Toffolis, two controls each
        assert text.count("X") == 4

    def test_benchmark_circuit_draws_without_error(self):
        layout = haner_carry_benchmark(6)
        text = draw_circuit(layout.circuit, max_width=100)
        assert "q1:" in text and "a5:" in text


class TestDslToVerification:
    def test_dsl_program_through_scalable_verifier(self):
        b = ProgramBuilder()
        b.x("q1")
        with b.borrow("scratch") as a:
            b.ccx("q1", "q2", a)
            b.ccx(a, "q3", "q4")
            b.ccx("q1", "q2", a)
            b.ccx(a, "q3", "q4")
        program = b.build()
        report = verify_borrows_in_program(
            program, ["q1", "q2", "q3", "q4", "q5"], backend="bdd"
        )
        assert report.all_safe

    def test_figure_44_borrows_via_program_verifier(self):
        """Both Figure 4.4 borrows, checked by the scalable path:
        corrected reading safe, verbatim reading's a2 unsafe (D2)."""

        def program(corrected):
            target_first = "a2" if corrected else "q2"
            s2 = seq(
                unitary("CCX", "q4", "q5", target_first),
                unitary("CCX", "a2", "q2", "q1"),
                unitary("CCX", "q4", "q5", target_first),
                unitary("CCX", "a2", "q2", "q1"),
            )
            s1 = seq(
                unitary("CCX", "q1", "q2", "a1"),
                unitary("CCX", "a1", "q4", "q5"),
                unitary("CCX", "q1", "q2", "a1"),
                unitary("CCX", "a1", "q4", "q5"),
                borrow("a2", s2),
            )
            return seq(unitary("CX", "q2", "q3"), borrow("a1", s1))

        universe = ["q1", "q2", "q3", "q4", "q5"]
        good = verify_borrows_in_program(program(True), universe)
        assert good.all_safe

        bad = verify_borrows_in_program(program(False), universe)
        verdicts = {b.placeholder: b.safe for b in bad.borrows}
        assert verdicts["a2"] is False
