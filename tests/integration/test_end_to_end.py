"""Integration tests: the full pipeline from .qbr source or circuit
builders through verification, mutation detection, and width reduction."""

import pytest

from repro import verify_qbr
from repro.adders import haner_carry_benchmark, haner_ripple_constant_adder
from repro.circuits import Circuit, apply_to_bits, borrow_dirty_qubits
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source, mcx_qbr_source
from repro.mcx import gidney_mcx
from repro.verify import classical_safe_uncomputation, verify_circuit


class TestArtifactVerification:
    @pytest.mark.parametrize("backend", ["bdd", "cdcl"])
    def test_adder_program_all_safe(self, backend):
        report = verify_qbr(adder_qbr_source(8), backend=backend)
        assert report.all_safe and len(report.verdicts) == 7

    @pytest.mark.parametrize("backend", ["bdd", "cdcl"])
    def test_mcx_program_safe(self, backend):
        report = verify_qbr(mcx_qbr_source(5), backend=backend)
        assert report.all_safe

    def test_verify_qbr_accepts_elaborated_program(self):
        program = elaborate(adder_qbr_source(5))
        report = verify_qbr(program, backend="bdd")
        assert report.all_safe


class TestMutationDetection:
    """Failure injection: every single-gate deletion that breaks safety
    is caught, and every counterexample replays on the simulator."""

    def test_adder_gate_deletions(self):
        layout = haner_carry_benchmark(4)
        base = layout.circuit
        flagged = 0
        for drop in range(len(base.gates)):
            mutated = Circuit(
                base.num_qubits,
                base.gates[:drop] + base.gates[drop + 1 :],
                labels=base.labels,
            )
            report = verify_circuit(
                mutated, layout.dirty_ancillas, backend="bdd"
            )
            oracle = all(
                classical_safe_uncomputation(mutated, q).safe
                for q in layout.dirty_ancillas
            )
            assert report.all_safe == oracle, f"gate {drop}"
            if not report.all_safe:
                flagged += 1
        assert flagged > len(base.gates) // 2

    def test_mcx_gate_deletions_sampled(self):
        layout = gidney_mcx(3)
        base = layout.circuit
        for drop in range(0, len(base.gates), 3):
            mutated = Circuit(
                base.num_qubits,
                base.gates[:drop] + base.gates[drop + 1 :],
                labels=base.labels,
            )
            report = verify_circuit(mutated, [layout.ancilla], backend="cdcl")
            oracle = classical_safe_uncomputation(mutated, layout.ancilla).safe
            assert report.all_safe == oracle


class TestVerifyThenBorrow:
    def test_adder_ancillas_can_share_hosts_after_verification(self):
        """End-to-end Section 3 story: verify the dirty ancillas, then
        reuse idle qubits to shrink the register."""
        layout = haner_ripple_constant_adder(4, 11)
        report = verify_circuit(
            layout.circuit, layout.dirty_ancillas, backend="bdd"
        )
        assert report.all_safe
        plan = borrow_dirty_qubits(
            layout.circuit,
            layout.dirty_ancillas,
            safety_check=lambda c, q: classical_safe_uncomputation(c, q).safe,
        )
        # hosts may or may not exist depending on idleness; the pass must
        # at least keep functionality when it rewires.
        total = plan.circuit.num_qubits
        for x_val in (0, 3, 9, 15):
            bits = [0] * total
            for i in range(4):
                bits[plan.wire_map[i]] = (x_val >> i) & 1
            out = apply_to_bits(plan.circuit, bits)
            y = sum(out[plan.wire_map[4 + i]] << i for i in range(4))
            assert y == (x_val + 11) % 16


class TestScaleSmoke:
    def test_adder_at_fifty_qubits_bdd(self):
        report = verify_qbr(adder_qbr_source(50), backend="bdd")
        assert report.all_safe
        assert report.num_qubits == 99

    def test_mcx_at_201_qubits_cdcl(self):
        report = verify_qbr(mcx_qbr_source(100), backend="cdcl")
        assert report.all_safe
        assert report.num_qubits == 201
