"""Tests for the online multi-programming path: admit / release /
cross-program lending / lazy verification / batch replay."""

import pytest

from repro.circuits import Circuit, cnot, x
from repro.circuits.borrowing import borrow_dirty_qubits
from repro.errors import CircuitError
from repro.mcx import cccnot_with_dirty_ancilla
from repro.multiprog import BorrowRequest, MultiProgrammer, QuantumJob


def cccnot_job(name="alpha"):
    circuit = Circuit(5, labels=["q1", "q2", "a", "q3", "q4"]).extend(
        cccnot_with_dirty_ancilla([0, 1, 3], 4, 2)
    )
    return QuantumJob(name, circuit, [BorrowRequest(2)])


def sampler_job(name="beta", width=4):
    circuit = Circuit(width).extend([cnot(0, 1), x(0)])
    return QuantumJob(name, circuit, [])


def rogue_job(name="rogue"):
    """An ancilla that is NOT safely uncomputed (left flipped)."""
    circuit = Circuit(2, labels=["w", "anc"]).extend([cnot(0, 1), x(1)])
    return QuantumJob(name, circuit, [BorrowRequest(1)])


class TestAdmit:
    def test_admission_occupies_machine_wires(self):
        mp = MultiProgrammer(8)
        admission = mp.admit(sampler_job())
        assert mp.residents == ("beta",)
        assert mp.occupancy == 4
        assert mp.free_qubits == 4
        assert all(0 <= w < 8 for w in admission.wires)

    def test_untouched_wires_become_lendable(self):
        mp = MultiProgrammer(8)
        mp.admit(sampler_job())  # wires 2, 3 of the job are idle
        assert len(mp.lendable_wires) == 2

    def test_safe_ancilla_borrows_cotenant_wire(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job())
        admission = mp.admit(cccnot_job())
        # the CCCNOT job has no internal idle host, so its verified
        # ancilla lands on a lent co-tenant wire: 4 fresh wires, not 5
        assert len(admission.cross_hosts) == 1
        assert len(admission.fresh_wires) == 4
        assert admission.qubits_saved == 1
        assert mp.occupancy == 8

    def test_without_cotenant_no_cross_borrow(self):
        mp = MultiProgrammer(12)
        admission = mp.admit(cccnot_job())
        assert admission.cross_hosts == {}
        assert len(admission.fresh_wires) == 5

    def test_unsafe_ancilla_never_crosses_program_boundary(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job())
        admission = mp.admit(rogue_job())
        assert admission.safety == {1: False}
        assert admission.cross_hosts == {}
        assert len(admission.fresh_wires) == 2

    def test_unsafe_request_wire_never_hosts_a_guest(self):
        # Wire 2 is an unsafe ancilla (left flipped); wire 3 is a safe
        # one whose only idle window sits over wire 2.  The admission
        # must match the batch path: a requested-but-unplaceable wire
        # stays OFF the host list, so neither ancilla is placed.
        circuit = Circuit(4).extend(
            [cnot(0, 2), x(2), cnot(0, 3), x(1), x(1), cnot(0, 3)]
        )
        job = QuantumJob(
            "mixed", circuit, [BorrowRequest(2), BorrowRequest(3)]
        )
        mp = MultiProgrammer(8)
        admission = mp.admit(job, lazy_verify=False)
        assert admission.plan.assignment == {}
        assert admission.plan.final_width == 4

    def test_over_capacity_rejected(self):
        mp = MultiProgrammer(6)
        mp.admit(sampler_job())
        with pytest.raises(CircuitError, match="free qubits"):
            mp.admit(cccnot_job())
        # the failed admission left no residue
        assert mp.residents == ("beta",)
        assert mp.occupancy == 4

    def test_duplicate_resident_rejected(self):
        mp = MultiProgrammer(10)
        mp.admit(sampler_job())
        with pytest.raises(CircuitError, match="already resident"):
            mp.admit(sampler_job())

    def test_strategy_knob_per_admission(self):
        mp = MultiProgrammer(10, strategy="greedy")
        admission = mp.admit(cccnot_job(), strategy="interval-graph")
        assert admission.strategy == "interval-graph"
        assert admission.plan.strategy == "interval-graph"

    def test_lazy_verification_skips_hostless_ancillas(self):
        # Empty machine, no lendable wires, and the CCCNOT circuit has
        # no internal idle host: the ancilla cannot be placed anywhere,
        # so no solver runs at all.
        mp = MultiProgrammer(10)
        admission = mp.admit(cccnot_job())
        assert admission.safety == {}
        assert mp.verifier.cache_misses == 0

    def test_eager_verification_on_request(self):
        mp = MultiProgrammer(10)
        admission = mp.admit(cccnot_job(), lazy_verify=False)
        assert admission.safety == {2: True}
        assert mp.verifier.cache_misses == 1

    def test_wire_of_maps_original_wires(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job())
        admission = mp.admit(cccnot_job())
        seen = {admission.wire_of(w) for w in range(5)}
        assert len(seen) == 5  # distinct machine wires incl. the borrow
        borrowed = set(admission.cross_hosts.values())
        assert borrowed <= seen


class TestRelease:
    def test_release_frees_wires(self):
        mp = MultiProgrammer(8)
        mp.admit(sampler_job())
        freed = mp.release("beta")
        assert len(freed) == 4
        assert mp.occupancy == 0
        assert mp.residents == ()

    def test_release_unknown_job(self):
        with pytest.raises(CircuitError, match="no resident"):
            MultiProgrammer(4).release("ghost")

    def test_release_makes_room_for_next_arrival(self):
        mp = MultiProgrammer(6)
        mp.admit(sampler_job())
        with pytest.raises(CircuitError):
            mp.admit(cccnot_job())
        mp.release("beta")
        admission = mp.admit(cccnot_job())
        assert len(admission.fresh_wires) == 5

    def test_lent_wire_stays_occupied_until_guest_leaves(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job())
        guest = mp.admit(cccnot_job())
        lent = set(guest.cross_hosts.values())
        freed = set(mp.release("beta"))
        assert lent.isdisjoint(freed)  # guest still on the lent wire
        assert mp.occupancy == 5  # 4 fresh + the lent wire
        freed_later = set(mp.release("alpha"))
        assert lent <= freed_later
        assert mp.occupancy == 0

    def test_owner_release_withdraws_lendable_offer(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job())
        assert mp.lendable_wires
        mp.release("beta")
        assert mp.lendable_wires == ()

    def test_guest_release_restores_lendable_offer(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job())
        before = mp.lendable_wires
        mp.admit(cccnot_job())
        assert len(mp.lendable_wires) == len(before) - 1
        mp.release("alpha")
        assert mp.lendable_wires == before


class TestSnapshot:
    def test_snapshot_renders(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job())
        mp.admit(cccnot_job())
        text = mp.snapshot()
        assert "busy" in text and "beta" in text and "alpha" in text

    def test_admission_lookup(self):
        mp = MultiProgrammer(8)
        mp.admit(sampler_job())
        assert mp.admission("beta").name == "beta"
        with pytest.raises(CircuitError):
            mp.admission("ghost")


class TestBatchReplay:
    def test_schedule_round_trips_borrow_dirty_qubits(self):
        """Acceptance: the batch path reproduces the old composite
        pass (compat with the historical borrow_dirty_qubits API)."""
        jobs = [cccnot_job(), sampler_job()]
        mp = MultiProgrammer(10)
        result = mp.schedule(jobs)

        composite, offsets = mp._merge(jobs)
        reference = borrow_dirty_qubits(composite, [offsets["alpha"] + 2])
        assert result.plan.assignment == reference.assignment
        assert result.final_width == reference.final_width
        assert result.plan.wire_map == reference.wire_map
        assert [str(g) for g in result.composite.gates] == [
            str(g) for g in reference.circuit.gates
        ]

    def test_schedule_leaves_live_machine_untouched(self):
        mp = MultiProgrammer(12)
        mp.admit(sampler_job("resident"))
        mp.schedule([cccnot_job(), sampler_job()])
        assert mp.residents == ("resident",)
        assert mp.occupancy == 4

    def test_schedule_records_admissions(self):
        mp = MultiProgrammer(10)
        result = mp.schedule([cccnot_job(), sampler_job()])
        assert [a.name for a in result.admissions] == ["alpha", "beta"]

    def test_schedule_with_strategy(self):
        mp = MultiProgrammer(10, strategy="lookahead")
        result = mp.schedule([cccnot_job(), sampler_job()])
        assert result.plan.strategy == "lookahead"
        assert result.qubits_saved >= 1

    def test_scheduler_verdicts_memoised_across_calls(self):
        mp = MultiProgrammer(10)
        mp.schedule([cccnot_job(), sampler_job()])
        misses = mp.verifier.cache_misses
        mp.schedule([cccnot_job(), sampler_job()])
        assert mp.verifier.cache_misses == misses
        assert mp.verifier.cache_hits >= 1
