"""Admission-queue semantics + randomized property tests.

The deterministic classes pin the queue contract (head-of-line FIFO,
backfill overtaking, timeouts, cancellation, stats).  The property
classes push 100+ seeded random traces through submit/release/backfill
with the :class:`OccupancyInvariantChecker` asserting the global
safety contract after *every* event; a failure records and prints the
reproducing seed (``failing-seeds.txt``, overridable via the
``PROPERTY_SEED_LOG`` environment variable — CI uploads it as an
artifact).
"""

import os

import pytest

from repro.circuits import Circuit, cnot, hadamard, x
from repro.errors import CapacityError, CircuitError, VerificationError
from repro.multiprog import (
    BackfillPolicy,
    BorrowRequest,
    FifoPolicy,
    MultiProgrammer,
    QuantumJob,
    QueuePolicy,
    available_policies,
    make_policy,
    policy_class,
    register_policy,
)
from repro.testing import (
    OccupancyInvariantChecker,
    TraceEvent,
    lender_job,
    random_arrival_trace,
    replay_trace,
    windowed_guest_job,
)
from repro.verify import BatchVerifier

SEED_LOG = os.environ.get("PROPERTY_SEED_LOG", "failing-seeds.txt")

#: Traces are regenerated from the same seeds across policies, so one
#: memoising verifier makes most solver work a cache hit.
SHARED_VERIFIER = BatchVerifier(backend="bdd", max_workers=1)

TRACE_JOBS = 8


def busy_job(name, width):
    """A job with no idle wires (nothing to lend, nothing to borrow)."""
    circuit = Circuit(width)
    if width == 1:
        circuit.append(x(0))
    else:
        circuit.extend([cnot(i, i + 1) for i in range(width - 1)])
    return QuantumJob(name, circuit, [])


def hungry_job(name):
    """5 wires, one request: passes the static submit bound on a
    4-qubit machine (5 - 1 = 4) but can never actually be admitted
    there — the ancilla is active across the whole circuit, so it has
    no internal host and, on an empty machine, no lender either."""
    circuit = Circuit(5).extend(
        [cnot(0, 4), cnot(1, 2), cnot(2, 3), cnot(0, 4)]
    )
    return QuantumJob(name, circuit, [BorrowRequest(4)])


def make_programmer(machine=12, policy="fifo", lending="windowed"):
    return MultiProgrammer(
        machine,
        queue_policy=policy,
        verifier=SHARED_VERIFIER,
        lending=lending,
    )


def record_seed(seed, context, error):
    with open(SEED_LOG, "a") as handle:
        handle.write(f"{context} seed={seed}: {error}\n")


def run_seeded(
    seed, policy, check=True, timeout_probability=0.3, lending="windowed"
):
    """Replay one seeded trace; on any failure, log + print the seed."""
    trace = random_arrival_trace(
        seed, num_jobs=TRACE_JOBS, timeout_probability=timeout_probability
    )
    programmer = make_programmer(policy=policy, lending=lending)
    checker = OccupancyInvariantChecker(programmer) if check else None
    try:
        log = replay_trace(programmer, trace, checker=checker)
    except Exception as error:  # noqa: BLE001 - reported with the seed
        record_seed(seed, f"replay[{policy},{lending}]", error)
        pytest.fail(
            f"seed {seed} ({policy}, {lending}): {error}\nreproduce with "
            f"replay_trace(MultiProgrammer(12, queue_policy={policy!r}, "
            f"lending={lending!r}), "
            f"random_arrival_trace({seed}, num_jobs={TRACE_JOBS}, "
            f"timeout_probability={timeout_probability}))"
        )
    return programmer, checker, log, trace


class TestPolicyRegistry:
    def test_builtin_policies_registered(self):
        assert available_policies() == (
            "backfill",
            "fifo",
            "priority",
            "sjf",
        )
        assert policy_class("fifo") is FifoPolicy
        assert isinstance(make_policy("backfill"), BackfillPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(CircuitError, match="registered"):
            make_policy("round-robin")
        with pytest.raises(CircuitError):
            MultiProgrammer(4, queue_policy="nope")

    def test_policy_instance_accepted(self):
        mp = MultiProgrammer(4, queue_policy=BackfillPolicy())
        assert mp.queue_policy.name == "backfill"

    def test_non_policy_class_rejected(self):
        with pytest.raises(CircuitError, match="subclass"):
            register_policy("bad")(dict)

    def test_duplicate_name_rejected(self):
        with pytest.raises(CircuitError, match="already registered"):

            @register_policy("fifo")
            class Impostor(QueuePolicy):
                def drain(self, entries, try_admit):
                    return []


class TestSubmit:
    def test_fitting_arrival_admitted(self):
        mp = make_programmer(machine=4)
        outcome = mp.submit(busy_job("a", 3))
        assert outcome.admitted and outcome.admission.name == "a"
        assert mp.pending() == ()

    def test_full_machine_queues(self):
        mp = make_programmer(machine=4)
        mp.submit(busy_job("a", 3))
        outcome = mp.submit(busy_job("b", 2))
        assert outcome.status == "queued" and outcome.position == 0
        assert mp.pending() == ("b",)
        assert mp.residents == ("a",)

    def test_fifo_never_overtakes(self):
        mp = make_programmer(machine=4, policy="fifo")
        mp.submit(busy_job("a", 3))
        mp.submit(busy_job("b", 2))
        outcome = mp.submit(busy_job("c", 1))  # would fit the free wire
        assert outcome.status == "queued"
        assert mp.pending() == ("b", "c")

    def test_backfill_overtakes(self):
        mp = make_programmer(machine=4, policy="backfill")
        mp.submit(busy_job("a", 3))
        mp.submit(busy_job("b", 2))
        outcome = mp.submit(busy_job("c", 1))
        assert outcome.admitted
        assert mp.pending() == ("b",)

    def test_impossible_job_rejected_not_queued(self):
        mp = make_programmer(machine=2)
        with pytest.raises(CapacityError):
            mp.submit(busy_job("wide", 3))
        assert mp.pending() == ()
        assert mp.stats()["rejected"] == 1

    def test_impossible_job_rejected_even_behind_a_fifo_queue(self):
        """The static width bound runs even when strict fifo skips the
        immediate admit attempt — a provably-unadmittable job must not
        silently head-block the queue."""
        mp = make_programmer(machine=6, policy="fifo")
        mp.submit(busy_job("a", 4))
        mp.submit(busy_job("b", 5))  # queued: fifo now skips attempts
        with pytest.raises(CapacityError):
            mp.submit(busy_job("wide", 10))
        assert mp.pending() == ("b",)
        assert mp.stats()["rejected"] == 1

    def test_nonclassical_job_rejected_even_behind_a_fifo_queue(self):
        """A job outside the verifiable fragment fails at submission
        (never from a later drain pass, where it would poison every
        subsequent release)."""
        mp = make_programmer(machine=6, policy="fifo")
        mp.submit(busy_job("a", 4))
        mp.submit(busy_job("b", 5))  # queued
        rogue = QuantumJob(
            "rogue",
            Circuit(2).extend([hadamard(0), cnot(0, 1)]),
            [BorrowRequest(1)],
        )
        with pytest.raises(VerificationError):
            mp.submit(rogue)
        mp.release("a")  # the queue must still drain normally
        assert mp.residents == ("b",)

    def test_duplicate_names_rejected(self):
        mp = make_programmer(machine=4)
        mp.submit(busy_job("a", 3))
        with pytest.raises(CircuitError, match="already resident"):
            mp.submit(busy_job("a", 1))
        mp.submit(busy_job("b", 2))
        with pytest.raises(CircuitError, match="already queued"):
            mp.submit(busy_job("b", 1))

    def test_bad_timeout_rejected(self):
        mp = make_programmer(machine=4)
        with pytest.raises(CircuitError, match="timeout"):
            mp.submit(busy_job("a", 1), timeout=0)


class TestBackfillPass:
    def test_release_admits_fifo_head(self):
        mp = make_programmer(machine=4, policy="fifo")
        mp.submit(busy_job("a", 4))
        mp.submit(busy_job("b", 3))
        mp.submit(busy_job("c", 2))
        mp.release("a")
        assert mp.residents == ("b",)  # head admitted, c blocked (1 free)
        assert mp.pending() == ("c",)
        mp.release("b")
        assert mp.residents == ("c",)
        assert mp.pending() == ()

    def test_fifo_head_of_line_blocks_release_too(self):
        mp = make_programmer(machine=6, policy="fifo")
        mp.submit(busy_job("a", 2))
        mp.submit(busy_job("e", 2))
        mp.submit(busy_job("b", 5))  # queued: needs 5
        mp.submit(busy_job("c", 2))  # queued behind b
        mp.release("e")  # 4 free: c fits, b does not — fifo admits neither
        assert mp.pending() == ("b", "c")
        assert mp.residents == ("a",)

    def test_backfill_slips_past_blocked_head(self):
        mp = make_programmer(machine=6, policy="backfill")
        mp.submit(busy_job("a", 2))
        mp.submit(busy_job("e", 2))
        mp.submit(busy_job("b", 5))  # queued
        outcome = mp.submit(busy_job("c", 2))  # admitted right away
        assert outcome.admitted
        mp.release("e")
        mp.release("a")
        assert mp.pending() == ("b",)  # still blocked by c's 2 wires
        mp.release("c")
        assert mp.residents == ("b",)

    def test_impossible_queued_job_dropped_at_empty_drain(self):
        mp = make_programmer(machine=4)
        mp.submit(busy_job("a", 4))
        mp.submit(hungry_job("hungry"))  # passes the static bound
        assert mp.pending() == ("hungry",)
        mp.release("a")  # empty-machine drain proves impossibility
        assert mp.pending() == ()
        assert mp.residents == ()
        assert mp.stats()["rejected"] == 1

    def test_fifo_queue_survives_impossible_head(self):
        mp = make_programmer(machine=4, policy="fifo")
        mp.submit(busy_job("a", 4))
        mp.submit(hungry_job("hungry"))
        mp.submit(busy_job("b", 2))
        mp.release("a")  # hungry is dropped, b must still be admitted
        assert mp.residents == ("b",)
        assert mp.pending() == ()

    def test_bad_strategy_entry_dropped_not_poisonous(self):
        """A queued entry whose admission raises for a non-capacity
        reason is dropped as rejected at the drain pass instead of
        propagating out of release() forever.  (With an empty queue the
        immediate attempt surfaces the error at submit time; here the
        fifo gate skips that attempt, so the drain pass is the first to
        see it.)"""
        mp = make_programmer(machine=4, policy="fifo")
        mp.submit(busy_job("a", 4))
        mp.submit(busy_job("f", 2))  # queue non-empty: no more attempts
        mp.submit(busy_job("bad", 2), strategy="no-such-strategy")
        mp.submit(busy_job("b", 2))
        mp.release("a")  # must not raise, and must not wedge the queue
        # One release, one fixpoint drain: f admitted, bad dropped,
        # and b admitted by the follow-up pass the drop unblocked.
        assert mp.residents == ("f", "b")
        assert mp.pending() == ()
        assert mp.stats()["rejected"] == 1


class TestShortestJobFirst:
    def test_sjf_drains_narrow_before_wide(self):
        mp = make_programmer(machine=6, policy="sjf")
        mp.submit(busy_job("a", 6))
        mp.submit(busy_job("wide", 5))  # queued first, but wide
        mp.submit(busy_job("mid", 3))
        mp.submit(busy_job("tiny", 1))
        mp.release("a")  # 6 free: sjf admits tiny, mid, then wide fails
        assert mp.residents == ("tiny", "mid")
        assert mp.pending() == ("wide",)
        mp.release("tiny")
        mp.release("mid")
        assert mp.residents == ("wide",)

    def test_sjf_key_is_reduced_width(self):
        """A wide job whose ancilla requests shrink it sorts by the
        reduced width, not the raw wire count."""
        mp = make_programmer(machine=4, policy="sjf")
        mp.submit(busy_job("a", 4))
        mp.submit(busy_job("plain", 3))  # reduced width 3, queued first
        mp.submit(hungry_job("shrunk"))  # 5 wires - 1 request = 4... still wider
        mp.submit(busy_job("narrow", 2))  # reduced width 2
        mp.release("a")
        # narrow (2) leads mid-queue despite arriving last.
        assert mp.residents[0] == "narrow"

    def test_sjf_overtakes_like_backfill(self):
        mp = make_programmer(machine=4, policy="sjf")
        mp.submit(busy_job("a", 3))
        mp.submit(busy_job("b", 2))  # queued
        outcome = mp.submit(busy_job("c", 1))
        assert outcome.admitted


class TestPriorityPolicy:
    def test_high_priority_drains_first(self):
        mp = make_programmer(machine=6, policy="priority")
        mp.submit(busy_job("a", 6))
        mp.submit(busy_job("low", 3), priority=1)
        mp.submit(busy_job("high", 3), priority=5)
        mp.release("a")  # both fit one at a time; high first
        assert mp.residents == ("high", "low")

    def test_equal_priority_falls_back_to_arrival_order(self):
        mp = make_programmer(machine=6, policy="priority")
        mp.submit(busy_job("a", 6))
        mp.submit(busy_job("first", 3))
        mp.submit(busy_job("second", 3))
        mp.release("a")
        assert mp.residents == ("first", "second")

    def test_priority_ignored_by_other_policies(self):
        mp = make_programmer(machine=6, policy="fifo")
        mp.submit(busy_job("a", 6))
        mp.submit(busy_job("head", 4), priority=0)
        mp.submit(busy_job("vip", 4), priority=99)
        mp.release("a")  # strict fifo: head first, vip waits
        assert mp.residents == ("head",)
        assert mp.pending() == ("vip",)


class TestTimeoutsAndCancel:
    def test_timeout_expires_after_events(self):
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))
        mp.submit(busy_job("b", 1), timeout=1)
        assert mp.pending() == ("b",)
        mp.submit(busy_job("c", 1))  # next event: b's deadline passes
        assert mp.pending() == ("c",)
        stats = mp.stats()
        assert stats["expired"] == 1
        mp.release("a")  # b must not resurrect
        assert mp.residents == ("c",)

    def test_unexpired_timeout_still_admits(self):
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))
        mp.submit(busy_job("b", 1), timeout=5)
        mp.release("a")  # within budget: admitted normally
        assert mp.residents == ("b",)
        assert mp.stats()["expired"] == 0

    def test_cancel_removes_queued_job(self):
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))
        mp.submit(busy_job("b", 1))
        job = mp.cancel("b")
        assert job.name == "b"
        assert mp.pending() == ()
        assert mp.stats()["cancelled"] == 1

    def test_cancel_unknown_rejected(self):
        """The two failure modes are distinguishable: a resident job
        points the caller at release(), an unknown name says so."""
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))  # resident, not queued
        with pytest.raises(CircuitError, match="resident.*release"):
            mp.cancel("a")
        with pytest.raises(CircuitError, match="no queued job"):
            mp.cancel("ghost")

    def test_release_of_queued_job_distinguished(self):
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))
        mp.submit(busy_job("b", 2))  # queued behind a
        with pytest.raises(CircuitError, match="queued.*cancel"):
            mp.release("b")
        with pytest.raises(CircuitError, match="no resident job"):
            mp.release("ghost")


class TestStats:
    def test_wait_accounting(self):
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))  # clock 1
        mp.submit(busy_job("b", 2))  # clock 2, queued
        mp.release("a")  # clock 3, b admitted: waited 1 event
        stats = mp.stats()
        assert stats["admitted_from_queue"] == 1
        assert stats["mean_wait_events"] == 1.0
        assert stats["clock"] == 3

    def test_expired_jobs_count_toward_mean_wait(self):
        """An entry that times out waited too — mean wait covers it,
        not just the admitted-from-queue survivors."""
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))  # clock 1
        mp.submit(busy_job("b", 2), timeout=2)  # clock 2, queued
        mp.submit(busy_job("c", 1))  # clock 3, queued (fifo blocks)
        mp.submit(busy_job("d", 1))  # clock 4: b expires, waited 2
        stats = mp.stats()
        assert stats["expired"] == 1
        assert stats["admitted_from_queue"] == 0
        assert stats["total_wait_events"] == 2
        assert stats["mean_wait_events"] == 2.0

    def test_release_records_backfilled_names(self):
        """release() keeps returning freed wires, but the names its
        drain admitted are recorded instead of silently dropped."""
        mp = make_programmer(machine=4, policy="fifo")
        mp.submit(busy_job("a", 4))
        mp.submit(busy_job("b", 2))
        mp.submit(busy_job("c", 2))
        freed = mp.release("a")
        assert freed == (0, 1, 2, 3)
        assert mp.last_backfilled == ("b", "c")
        assert mp.stats()["last_backfilled"] == ["b", "c"]
        # The record is per event: a release that backfills nothing
        # clears it rather than leaving the stale provenance around.
        mp.release("b")
        assert mp.last_backfilled == ()
        assert mp.stats()["last_backfilled"] == []

    def test_counters_conserve_jobs(self):
        mp = make_programmer(machine=4, policy="backfill")
        mp.submit(busy_job("a", 3))
        mp.submit(busy_job("b", 3))  # queued
        mp.submit(busy_job("c", 1))  # backfilled past b
        mp.cancel("b")
        mp.submit(hungry_job("hungry"))  # queued while the machine is busy
        mp.release("a")
        mp.release("c")  # empty-machine drain proves hungry impossible
        stats = mp.stats()
        assert stats["submitted"] == 4
        assert stats["admitted"] == 2
        assert stats["cancelled"] == 1
        assert stats["rejected"] == 1
        assert (
            stats["admitted"]
            + stats["expired"]
            + stats["cancelled"]
            + stats["rejected"]
            + stats["pending"]
            == stats["submitted"]
        )

    def test_snapshot_mentions_queue(self):
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))
        mp.submit(busy_job("b", 1), timeout=3)
        text = mp.snapshot()
        assert "queued" in text and "b" in text and "expires" in text


class TestClockConsistency:
    """Every submission is one logical event — rejections included.

    The historical bug: the static fail-fast paths (oversized width,
    non-classical circuit) raised *before* ticking the clock or
    running the expiry pass, so a queued timeout counted rejected
    submissions as zero events while counting every other submission
    as one.  These pin the uniform-tick semantics.
    """

    def test_oversized_reject_ticks_the_clock(self):
        mp = make_programmer(machine=2)
        mp.submit(busy_job("a", 2))  # clock 1
        mp.submit(busy_job("b", 1), timeout=2)  # clock 2, expires at 4
        with pytest.raises(CapacityError):
            mp.submit(busy_job("wide", 3))  # clock 3: a rejection event
        mp.submit(busy_job("c", 1))  # clock 4: b expires *here*
        stats = mp.stats()
        assert stats["clock"] == 4
        assert stats["expired"] == 1
        assert mp.pending() == ("c",)

    def test_nonclassical_reject_ticks_and_counts(self):
        mp = make_programmer(machine=4)
        mp.submit(busy_job("a", 4))  # clock 1
        mp.submit(busy_job("b", 1), timeout=2)  # clock 2, expires at 4
        rogue = QuantumJob(
            "rogue",
            Circuit(2).extend([hadamard(0), cnot(0, 1)]),
            [BorrowRequest(1)],
        )
        with pytest.raises(VerificationError):
            mp.submit(rogue)  # clock 3
        with pytest.raises(CapacityError):
            mp.submit(busy_job("wide", 9))  # clock 4: b expires
        stats = mp.stats()
        assert stats["clock"] == 4
        assert stats["expired"] == 1
        assert stats["submitted"] == 4
        assert stats["rejected"] == 2
        # Conservation holds across every rejection flavour.
        assert (
            stats["admitted"]
            + stats["expired"]
            + stats["cancelled"]
            + stats["rejected"]
            + stats["pending"]
            == stats["submitted"]
        )

    @pytest.mark.parametrize("seed", range(0, 60, 3))
    @pytest.mark.parametrize("policy", ["fifo", "backfill"])
    def test_front_loaded_reject_is_outcome_invariant(self, seed, policy):
        """Differential replay: the same trace with an oversized reject
        prepended (while no timed job is queued yet, so every later
        deadline shifts uniformly with the clock) must admit and expire
        exactly the same jobs at the same relative schedule."""
        trace = random_arrival_trace(seed, num_jobs=TRACE_JOBS)
        spiked = [
            TraceEvent("submit", job=busy_job("oversized", 13))
        ] + list(trace)

        plain = replay_trace(make_programmer(policy=policy), trace)
        with_reject = replay_trace(make_programmer(policy=policy), spiked)

        assert with_reject.rejected == ["oversized"]
        assert with_reject.admitted == plain.admitted, (
            f"seed {seed}: a front-loaded reject changed admissions"
        )
        for key in ("admitted", "expired", "cancelled", "pending"):
            assert with_reject.stats[key] == plain.stats[key], (
                f"seed {seed}: {key} drifted across the reject"
            )
        assert with_reject.stats["submitted"] == plain.stats["submitted"] + 1
        assert with_reject.stats["rejected"] == plain.stats["rejected"] + 1
        assert with_reject.stats["clock"] == plain.stats["clock"] + 1


class TestBackfillProvenance:
    """replay_trace attributes every queue admission to its event."""

    def test_release_backfills_are_attributed(self):
        mp = make_programmer(machine=4, policy="fifo")
        log = replay_trace(
            mp,
            [
                TraceEvent("submit", job=busy_job("a", 4)),
                TraceEvent("submit", job=busy_job("b", 2)),
                TraceEvent("submit", job=busy_job("c", 2)),
                TraceEvent("release", pick=0),
            ],
        )
        assert log.backfills == [("release a", ("b", "c"))]
        assert log.backfilled_by == {"b": "release a", "c": "release a"}

    def test_submit_backfills_are_attributed(self):
        mp = make_programmer(machine=6, policy="backfill")
        log = replay_trace(
            mp,
            [
                TraceEvent("submit", job=lender_job("host", 5, touched=3)),
                TraceEvent(
                    "submit", job=windowed_guest_job("guest", span=2)
                ),
                TraceEvent("release", pick=0),
            ],
        )
        # Whatever the admission route, every backfilled name must be
        # attributed to exactly the event whose drain admitted it.
        for event, names in log.backfills:
            for name in names:
                assert log.backfilled_by[name] == event
                assert name in log.admitted

    @pytest.mark.parametrize("seed", range(0, 40, 4))
    def test_provenance_covers_exactly_the_queue_admissions(self, seed):
        """Fleet-wide accounting identity on seeded traces: the names
        attributed across all backfill events are exactly the admitted
        jobs that were not admitted immediately at submission."""
        trace = random_arrival_trace(seed, num_jobs=TRACE_JOBS)
        mp = make_programmer(policy="fifo")
        log = replay_trace(mp, trace)
        attributed = [
            name for _, names in log.backfills for name in names
        ]
        assert len(attributed) == len(set(attributed)), (
            f"seed {seed}: a job was backfilled twice"
        )
        immediate = {
            line.split()[1].rstrip(":")
            for line in log.events
            if line.startswith("submit") and line.endswith("admitted")
        }
        assert set(attributed) == set(log.admitted) - immediate, (
            f"seed {seed}: backfill provenance does not cover the "
            f"queue admissions"
        )
        assert log.stats["admitted_from_queue"] == len(attributed)


class TestRandomTraceInvariants:
    """100+ seeded traces, the occupancy contract checked per event."""

    @pytest.mark.parametrize("seed", range(110))
    def test_invariants_hold_through_random_trace(self, seed):
        policy = "backfill" if seed % 2 else "fifo"
        programmer, checker, log, trace = run_seeded(seed, policy)
        assert checker.checks == len(trace)
        stats = log.stats
        assert (
            stats["admitted"]
            + stats["expired"]
            + stats["cancelled"]
            + stats["rejected"]
            + stats["pending"]
            == stats["submitted"]
        ), f"seed {seed}: queue counters leak jobs"
        assert len(log.admitted) == stats["admitted"]

    @pytest.mark.parametrize("seed", range(0, 110, 5))
    def test_fifo_admits_in_arrival_order(self, seed):
        _, _, log, _ = run_seeded(seed, "fifo")
        arrival = {name: i for i, name in enumerate(log.jobs)}
        indices = [arrival[name] for name in log.admitted]
        assert indices == sorted(indices), (
            f"seed {seed}: fifo admitted out of arrival order "
            f"{log.admitted}"
        )


class TestWindowedLendingProperties:
    """The 110-trace class above already runs with windowed lending on
    (the default) — so the checker's lease-disjointness derivation is
    exercised per event there.  This class keeps the whole-residency
    mode honest under the same harness and pins the windowed-vs-whole
    throughput relation."""

    @pytest.mark.parametrize("seed", range(0, 110, 5))
    def test_invariants_hold_with_whole_residency_lending(self, seed):
        policy = "backfill" if seed % 2 else "fifo"
        programmer, checker, _, trace = run_seeded(
            seed, policy, lending="whole"
        )
        assert programmer.lending == "whole"
        assert checker.checks == len(trace)

    @pytest.mark.parametrize("seed", range(0, 110, 5))
    def test_invariants_hold_with_segmented_lending(self, seed):
        """Under segmented lending the checker re-runs the restore-
        point analysis from scratch for every lease, so these traces
        pin the scheduler's segmentation against an independent
        derivation after every event."""
        policy = "sjf" if seed % 2 else "priority"
        programmer, checker, _, trace = run_seeded(
            seed, policy, lending="segmented"
        )
        assert programmer.lending == "segmented"
        assert checker.checks == len(trace)

    @pytest.mark.parametrize("seed", range(0, 100, 2))
    def test_windowed_admits_at_least_whole_residency(self, seed):
        """On a drained, timeout-free trace, relaxing one-guest-per-
        wire to window-disjoint leases can only admit more: every
        queued job is eventually retried against an emptying machine,
        and a job that fits under whole-residency fits under windowed
        lending a fortiori."""
        _, _, whole_log, _ = run_seeded(
            seed,
            "backfill",
            check=False,
            timeout_probability=0.0,
            lending="whole",
        )
        _, _, windowed_log, _ = run_seeded(
            seed,
            "backfill",
            check=False,
            timeout_probability=0.0,
            lending="windowed",
        )
        if len(windowed_log.admitted) < len(whole_log.admitted):
            record_seed(seed, "lending-differential", "windowed < whole")
            pytest.fail(
                f"seed {seed}: windowed lending admitted "
                f"{len(windowed_log.admitted)} < whole-residency "
                f"{len(whole_log.admitted)}"
            )
        # A drained timeout-free trace admits every admissible job
        # under either mode, so the sets must in fact coincide.
        assert set(windowed_log.admitted) == set(whole_log.admitted)

    @pytest.mark.parametrize("seed", range(0, 100, 4))
    def test_segmented_admits_at_least_windowed(self, seed):
        """The top of the lending lattice: on a drained, timeout-free
        trace, refining whole-period windows into restore segments can
        only admit more — every window that fits un-segmented fits
        segmented a fortiori."""
        logs = {}
        for lending in ("whole", "windowed", "segmented"):
            _, _, log, _ = run_seeded(
                seed,
                "backfill",
                check=False,
                timeout_probability=0.0,
                lending=lending,
            )
            logs[lending] = log
        counts = {k: len(v.admitted) for k, v in logs.items()}
        if not (
            counts["segmented"] >= counts["windowed"] >= counts["whole"]
        ):
            record_seed(
                seed, "segmented-differential", f"chain broken: {counts}"
            )
            pytest.fail(
                f"seed {seed}: admitted counts violate "
                f"segmented >= windowed >= whole: {counts}"
            )
        assert set(logs["segmented"].admitted) == set(
            logs["windowed"].admitted
        )


class TestDifferential:
    """Backfill dominates FIFO on throughput, and the online plans are
    reproduced by the batch ``schedule()`` replay."""

    @pytest.mark.parametrize("seed", range(100))
    def test_backfill_never_admits_fewer_than_fifo(self, seed):
        """Fully draining the queue (no timeouts racing the drain),
        out-of-order admission can only add jobs, never lose them.
        Under timeouts the policies trade off (a backfilled job can
        hold wires that let someone else expire), which is exactly what
        the queueing benchmark measures — so the *dominance* claim is
        asserted on drained, timeout-free traces."""
        _, _, fifo_log, _ = run_seeded(
            seed, "fifo", check=False, timeout_probability=0.0
        )
        _, _, back_log, _ = run_seeded(
            seed, "backfill", check=False, timeout_probability=0.0
        )
        if len(back_log.admitted) < len(fifo_log.admitted):
            record_seed(seed, "differential", "backfill < fifo")
            pytest.fail(
                f"seed {seed}: backfill admitted {len(back_log.admitted)} "
                f"< fifo {len(fifo_log.admitted)}"
            )
        # Every job fits the empty machine here, so a full drain admits
        # the lot under either policy.
        assert set(back_log.admitted) == set(fifo_log.admitted)

    @pytest.mark.parametrize("seed", range(0, 100, 4))
    def test_schedule_replay_reproduces_online_plans(self, seed):
        """The per-job width-reduction plan of every admitted job is
        reproduced exactly when the admitted set replays through the
        batch ``schedule()`` (greedy strategy, shared verifier)."""
        programmer, _, log, _ = run_seeded(seed, "backfill")
        if not log.admitted:
            pytest.skip("trace admitted nothing")
        result = make_programmer().schedule(
            log.admitted_jobs, require_fit=False
        )
        for adm in result.admissions:
            plan = log.plans[adm.name]
            assert adm.plan.assignment == plan.assignment, (
                f"seed {seed}: job {adm.name} batch assignment "
                f"{adm.plan.assignment} != online {plan.assignment}"
            )
            assert adm.plan.final_width == plan.final_width

    @pytest.mark.parametrize("seed", range(0, 100, 10))
    def test_schedule_replay_is_deterministic(self, seed):
        _, _, log, _ = run_seeded(seed, "fifo", check=False)
        if not log.admitted:
            pytest.skip("trace admitted nothing")
        first = make_programmer().schedule(
            log.admitted_jobs, require_fit=False
        )
        second = make_programmer().schedule(
            log.admitted_jobs, require_fit=False
        )
        assert [str(g) for g in first.composite.gates] == [
            str(g) for g in second.composite.gates
        ]
        assert first.plan.assignment == second.plan.assignment
