"""Prefix admission: :meth:`MultiProgrammer.admit_stream` end to end.

Deterministic fixtures walk the whole refinement ladder — extend a
lease in place, move it to another offered wire, revoke it onto a
fresh wire, revoke the job to the queue — and the close-time full
re-verification that catches a tail breaking a prefix-proven lease.
A seeded property test then drives random reversible circuits through
the stream gate by gate, with the occupancy invariant checker run
after *every* feed: the scheduler-wide contract must hold between any
two gates, not just at admission boundaries.

The guests mirror ``test_lending_windows``: a lender whose untouched
wires become offers, and guests whose requested ancilla is touched
only by a restoring ``CX;CX`` segment at a controlled position.
"""

import random

import pytest

from repro.circuits import Circuit, cnot, hadamard, x
from repro.errors import CircuitError, VerificationError
from repro.multiprog import BorrowRequest, MultiProgrammer, QuantumJob
from repro.testing import OccupancyInvariantChecker, random_reversible_circuit

#: A safe, restoring prefix for a 2-wire guest requesting ancilla 1.
SAFE_PREFIX = [cnot(0, 1), cnot(0, 1)]


def lender(width=5, name="lender"):
    """Touches wires 0..2 only: wires 3..width-1 become offers."""
    circuit = Circuit(width).extend([cnot(0, 1), cnot(1, 2)])
    return QuantumJob(name, circuit, [])


def late_guest(name="B", pre=4):
    """Offline guest whose ancilla window is exactly [pre, pre+1]."""
    circuit = Circuit(2)
    circuit.extend([x(0)] * pre)
    circuit.extend([cnot(0, 1), cnot(0, 1)])
    return QuantumJob(name, circuit, [BorrowRequest(1)])


class TestPrefixAdmission:
    @pytest.mark.parametrize("lending", ["windowed", "segmented", "whole"])
    def test_safe_prefix_earns_a_lease(self, lending):
        mp = MultiProgrammer(9, lending=lending, max_workers=1)
        mp.admit(lender())
        handle = mp.admit_stream("guest", 2, [1], prefix=SAFE_PREFIX)
        assert handle.name == "guest"
        assert not handle.closed and not handle.revoked
        assert list(handle.admission.leases) == [1]
        assert "guest" in mp.residents
        assert mp.stats()["streaming"]["admissions"] == 1
        OccupancyInvariantChecker(mp).check()

    def test_empty_prefix_admits_on_width_alone(self):
        mp = MultiProgrammer(6, max_workers=1)
        handle = mp.admit_stream("bare", 3)
        assert handle.admission.leases == {}
        assert len(handle.admission.wires) == 3
        handle.feed(x(0))
        assert handle.close() is handle.admission
        OccupancyInvariantChecker(mp).check()

    def test_duplicate_names_rejected(self):
        mp = MultiProgrammer(4, max_workers=1)
        mp.admit(QuantumJob("busy", Circuit(3).extend([cnot(0, 1)]), []))
        with pytest.raises(CircuitError, match="already resident"):
            mp.admit_stream("busy", 1)
        assert mp.submit(
            QuantumJob("dup", Circuit(2).extend([x(0)]), [])
        ).status == "queued"
        with pytest.raises(CircuitError, match="already queued"):
            mp.admit_stream("dup", 1)

    def test_feed_after_close_rejected(self):
        mp = MultiProgrammer(4, max_workers=1)
        handle = mp.admit_stream("g", 1, prefix=[x(0)])
        first = handle.close()
        assert handle.close() is first  # idempotent
        with pytest.raises(CircuitError, match="closed"):
            handle.feed(x(0))

    def test_non_classical_gate_rejected_when_borrowing(self):
        mp = MultiProgrammer(9, max_workers=1)
        mp.admit(lender())
        handle = mp.admit_stream("g", 2, [1], prefix=SAFE_PREFIX)
        with pytest.raises(VerificationError, match="classical"):
            handle.feed(hadamard(0))


class TestRefinementLadder:
    def test_lease_extends_in_place(self):
        mp = MultiProgrammer(9, max_workers=1)
        mp.admit(lender())
        handle = mp.admit_stream("guest", 2, [1], prefix=SAFE_PREFIX)
        wire = handle.admission.cross_hosts[1]
        before = handle.admission.leases[1].window
        handle.extend([x(0), x(0)])  # untouched ancilla: no refinement
        assert mp.stats()["streaming"]["refinements"] == 0
        handle.extend([cnot(0, 1), cnot(0, 1)])
        after = handle.admission.leases[1]
        assert after.wire == wire  # same host, larger window
        assert after.window.last > before.last
        assert mp.stats()["streaming"]["refinements"] == 2
        OccupancyInvariantChecker(mp).check()
        assert handle.close() is handle.admission
        OccupancyInvariantChecker(mp).check()

    def test_overlap_with_a_sibling_moves_the_lease(self):
        mp = MultiProgrammer(9, max_workers=1)
        mp.admit(lender())  # offers wires for leases
        handle = mp.admit_stream("guest", 2, [1], prefix=SAFE_PREFIX)
        shared = handle.admission.cross_hosts[1]
        sibling = mp.admit(late_guest())  # window [4, 5], same wire
        assert sibling.cross_hosts[1] == shared
        handle.extend([x(0), x(0)])
        # Touching the ancilla at index 4 grows the window into the
        # sibling's [4, 5]: extend-in-place fails, the lease moves.
        handle.feed(cnot(0, 1))
        moved = handle.admission.leases[1]
        assert moved.wire != shared
        assert handle.admission.cross_hosts[1] == moved.wire
        assert [l.guest for l in mp.lease_table()[shared]] == ["B"]
        assert mp.stats()["streaming"]["refinements"] >= 1
        OccupancyInvariantChecker(mp).check()
        handle.feed(cnot(0, 1))  # restore before close
        assert handle.close() is handle.admission
        OccupancyInvariantChecker(mp).check()

    def test_no_host_revokes_the_lease_to_a_fresh_wire(self):
        # A 4-wide lender offers exactly one wire, so when the grown
        # window collides with the sibling there is nowhere to move.
        mp = MultiProgrammer(8, max_workers=1)
        mp.admit(lender(width=4))
        handle = mp.admit_stream("guest", 2, [1], prefix=SAFE_PREFIX)
        leased = handle.admission.cross_hosts[1]
        mp.admit(late_guest())
        handle.extend([x(0), x(0), cnot(0, 1)])
        assert handle.admission.leases == {}
        assert handle.admission.cross_hosts == {}
        assert handle.admission.wires[1] != leased
        assert mp.stats()["streaming"]["lease_revocations"] == 1
        OccupancyInvariantChecker(mp).check()
        handle.feed(cnot(0, 1))
        assert handle.close() is handle.admission
        OccupancyInvariantChecker(mp).check()

    def test_dry_pool_revokes_the_job_to_the_queue(self):
        # Machine exactly full: lender 4 + guest fresh 1 + sibling
        # fresh 1.  The collision finds no move target and no fresh
        # wire, so the whole job is revoked — and close() resubmits
        # the complete circuit, which queues behind the residents.
        mp = MultiProgrammer(6, max_workers=1)
        mp.admit(lender(width=4))
        handle = mp.admit_stream("guest", 2, [1], prefix=SAFE_PREFIX)
        mp.admit(late_guest())
        handle.extend([x(0), x(0), cnot(0, 1)])
        assert handle.revoked
        assert handle.admission is None
        assert "guest" not in mp.residents
        assert mp.stats()["streaming"]["revoked_to_queue"] == 1
        OccupancyInvariantChecker(mp).check()
        handle.feed(cnot(0, 1))  # the stream keeps accepting gates
        assert handle.close() is None
        assert handle.outcome.status == "queued"
        assert "guest" in mp.pending()
        mp.release("B")
        assert "guest" in mp.last_backfilled
        assert "guest" in mp.residents
        OccupancyInvariantChecker(mp).check()

    def test_close_revokes_a_lease_the_tail_broke(self):
        mp = MultiProgrammer(9, max_workers=1)
        mp.admit(lender())
        handle = mp.admit_stream("guest", 2, [1], prefix=SAFE_PREFIX)
        leased = handle.admission.cross_hosts[1]
        handle.feed(cnot(0, 1))  # third CX: the ancilla stays flipped
        admission = handle.close()
        assert admission is handle.admission
        assert admission.safety[1] is False
        assert admission.leases == {}
        assert admission.wires[1] != leased
        assert mp.stats()["streaming"]["lease_revocations"] == 1
        OccupancyInvariantChecker(mp).check()


class TestStreamInvariantProperty:
    """Random circuits, invariant-checked between every two gates."""

    @pytest.mark.parametrize("lending", ["windowed", "segmented"])
    @pytest.mark.parametrize("seed", range(5))
    def test_invariants_hold_at_every_feed(self, seed, lending):
        rng = random.Random(seed)
        mp = MultiProgrammer(16, lending=lending, max_workers=1)
        mp.admit(lender())
        circuit, ancillas = random_reversible_circuit(
            seed + 300,
            num_data=4,
            num_ancillas=2,
            segment_gates=2,
            middle_gates=4,
        )
        split = rng.randrange(1, len(circuit.gates))
        handle = mp.admit_stream(
            "stream",
            circuit.num_qubits,
            list(ancillas),
            prefix=circuit.gates[:split],
        )
        OccupancyInvariantChecker(mp).check()
        tenants = []
        for step, gate in enumerate(circuit.gates[split:]):
            handle.feed(gate)
            OccupancyInvariantChecker(mp).check()
            if step % 3 == 2 and len(tenants) < 3:
                name = f"t{step}"
                mp.admit(
                    QuantumJob(name, Circuit(1).extend([x(0)]), [])
                )
                tenants.append(name)
                OccupancyInvariantChecker(mp).check()
            elif step % 5 == 4 and tenants:
                mp.release(tenants.pop(0))
                OccupancyInvariantChecker(mp).check()
        handle.close()
        OccupancyInvariantChecker(mp).check()
        streaming = mp.stats()["streaming"]
        assert streaming["admissions"] == 1
        assert streaming["jobs"]["stream"]["gates"] == len(circuit.gates)
