"""Fleet-tier routing: placement policies, migration, deadlines,
overflow, the service front end, and seeded property traces with the
fleet invariant checker on.

Deterministic classes pin the routing contract shard by shard; the
property classes replay seeded :func:`random_fleet_trace` sequences
through a 2-shard router under every registered placement policy, with
:class:`FleetInvariantChecker` re-deriving both the per-shard occupancy
contract and the fleet bookkeeping after every event, and compare
fleet throughput against a single-shard baseline on the same trace.
"""

import os

import pytest

from repro.circuits import Circuit, cnot, x
from repro.errors import CapacityError, CircuitError, InvariantViolation
from repro.multiprog import (
    BorrowRequest,
    FleetRouter,
    FleetService,
    MultiProgrammer,
    PlacementPolicy,
    QuantumJob,
    ShardSpec,
    available_placements,
    make_placement,
    placement_class,
    register_placement,
)
from repro.multiprog.fleet import (
    BestFitWidthPlacement,
    FamilyAffinityPlacement,
    LeastLoadedPlacement,
)
from repro.testing import (
    FleetInvariantChecker,
    random_fleet_trace,
    replay_trace,
)
from repro.verify import BatchVerifier

SEED_LOG = os.environ.get("PROPERTY_SEED_LOG", "failing-seeds.txt")

#: One memoising verifier across every router in the module — traces
#: re-use circuits heavily (that is the point of the fleet trace).
SHARED_VERIFIER = BatchVerifier(backend="bdd", max_workers=1)


def busy_job(name, width):
    circuit = Circuit(width)
    if width == 1:
        circuit.append(x(0))
    else:
        circuit.extend([cnot(i, i + 1) for i in range(width - 1)])
    return QuantumJob(name, circuit, [])


def hungry_job(name):
    """Reduced width 4: statically eligible for a 4-qubit shard but
    never actually admittable there (no internal host, and lending
    cannot beat the 4-fresh-wires floor on a 4-qubit machine)."""
    circuit = Circuit(5).extend(
        [cnot(0, 4), cnot(1, 2), cnot(2, 3), cnot(0, 4)]
    )
    return QuantumJob(name, circuit, [BorrowRequest(4)])


def make_router(sizes, placement="least-loaded", **options):
    options.setdefault("verifier", SHARED_VERIFIER)
    options.setdefault("check_invariants", True)
    return FleetRouter(list(sizes), placement=placement, **options)


def record_seed(seed, context, error):
    with open(SEED_LOG, "a") as handle:
        handle.write(f"{context} seed={seed}: {error}\n")


class TestPlacementRegistry:
    def test_builtin_placements_registered(self):
        assert available_placements() == (
            "best-fit-width",
            "family-affinity",
            "least-loaded",
        )
        assert placement_class("least-loaded") is LeastLoadedPlacement
        assert isinstance(make_placement("best-fit-width"), BestFitWidthPlacement)

    def test_unknown_placement_rejected(self):
        with pytest.raises(CircuitError, match="registered"):
            make_placement("round-robin")
        with pytest.raises(CircuitError):
            FleetRouter([4, 4], placement="nope")

    def test_custom_placement_pluggable(self):
        @register_placement("reverse-order")
        class ReverseOrder(PlacementPolicy):
            def rank(self, job, shards):
                return list(shards)[::-1]

        try:
            router = make_router([4, 4], placement="reverse-order")
            outcome = router.submit(busy_job("a", 2))
            assert outcome.shard == "shard1"
        finally:
            from repro.multiprog.fleet import _REGISTRY

            _REGISTRY.pop("reverse-order")

    def test_placement_instance_accepted(self):
        router = make_router([4, 4], placement=LeastLoadedPlacement())
        assert router.placement.name == "least-loaded"


class TestFleetConstruction:
    def test_int_spec_and_prebuilt_shards(self):
        prebuilt = MultiProgrammer(5, verifier=SHARED_VERIFIER)
        router = FleetRouter(
            [3, ShardSpec(4, name="tuned", lending="segmented"), prebuilt],
            verifier=SHARED_VERIFIER,
        )
        assert list(router.shards) == ["shard0", "tuned", "shard2"]
        assert router.shards["tuned"].lending == "segmented"
        assert router.shards["shard2"] is prebuilt
        assert router.machine_size == 12
        assert router.free_qubits == 12

    def test_shards_share_one_verifier(self):
        router = make_router([4, 4])
        first, second = router.shards.values()
        assert first.verifier is second.verifier is router.verifier

    def test_empty_fleet_rejected(self):
        with pytest.raises(CircuitError, match="at least one shard"):
            FleetRouter([])

    def test_duplicate_shard_names_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            FleetRouter([ShardSpec(4, name="a"), ShardSpec(4, name="a")])

    def test_occupied_prebuilt_shard_rejected(self):
        occupied = MultiProgrammer(4, verifier=SHARED_VERIFIER)
        occupied.submit(busy_job("x", 2))
        with pytest.raises(CircuitError, match="empty"):
            FleetRouter([occupied])


class TestPlacementPolicies:
    def test_least_loaded_balances(self):
        router = make_router([6, 6])
        assert router.submit(busy_job("a", 4)).shard == "shard0"
        assert router.submit(busy_job("b", 2)).shard == "shard1"
        # shard1 is now the emptier one (2/6 vs 4/6).
        assert router.submit(busy_job("c", 2)).shard == "shard1"

    def test_best_fit_width_picks_tightest(self):
        router = make_router([9, 4], placement="best-fit-width")
        # A width-4 job fits shard1 exactly; least-loaded would have
        # sent it to the emptier-by-fraction shard0.
        assert router.submit(busy_job("a", 4)).shard == "shard1"
        assert router.submit(busy_job("b", 3)).shard == "shard0"

    def test_family_affinity_follows_the_fingerprint(self):
        router = make_router([8, 8], placement="family-affinity")
        template = busy_job("a", 3)
        assert router.submit(template).shard == "shard0"
        router.submit(busy_job("filler", 5))  # tilts load toward shard1
        repeat = QuantumJob("a2", template.circuit, [])
        # Least-loaded would pick shard1 (5/8 vs 3/8 busy — shard0 is
        # emptier; tie-break aside, make the load unequal both ways):
        outcome = router.submit(repeat)
        assert outcome.shard == "shard0"  # the family's home
        affinity = router.placement
        assert isinstance(affinity, FamilyAffinityPlacement)
        fingerprint = template.circuit.fingerprint()
        assert affinity._affinity[
            fingerprint[: affinity.prefix_length]
        ] == "shard0"

    def test_policies_see_only_eligible_shards(self):
        router = make_router([2, 6])
        outcome = router.submit(busy_job("wide", 5))
        assert outcome.shard == "shard1"
        with pytest.raises(CapacityError, match="widest shard"):
            router.submit(busy_job("huge", 7))
        assert router.fleet_stats()["rejected"] == 1


class TestQueueingAndMigration:
    def test_queues_on_best_shard_then_migrates(self):
        router = make_router([4, 6])
        router.submit(busy_job("a", 4))
        router.submit(busy_job("b", 6))
        outcome = router.submit(busy_job("c", 4))
        assert outcome.status == "queued" and outcome.shard == "shard0"
        # b's release frees shard1; c was queued on shard0 but admits
        # on shard1 the moment it frees capacity.
        router.release("b")
        assert router.resident_shards()["c"] == "shard1"
        stats = router.fleet_stats()
        assert stats["migrations"] == 1
        assert stats["admitted_from_queue"] == 1
        assert router.last_backfilled == ("c",)

    def test_local_backfill_preferred_over_migration(self):
        router = make_router([4, 4])
        router.submit(busy_job("a", 4))
        router.submit(busy_job("b", 4))
        router.submit(busy_job("c", 4))  # queued
        router.release("a")
        # c admits on its own shard's drain: a backfill, not a migration.
        assert router.fleet_stats()["migrations"] == 0
        assert router.fleet_stats()["admitted_from_queue"] == 1
        assert "c" in router.residents

    def test_shard_timeouts_stay_authoritative(self):
        """A queued job's logical timeout counts its host shard's own
        events, exactly as on a single machine."""
        router = make_router([2, 2])
        router.submit(busy_job("a", 2))
        router.submit(busy_job("b", 2))
        outcome = router.submit(busy_job("c", 2), timeout=1)
        home = outcome.shard
        # One more event on the host shard expires c.
        victim = "a" if home == router.resident_shards()["a"] else "b"
        router.release(victim)
        assert "c" not in router.pending()
        shard_stats = router.fleet_stats()["shards"][home]
        assert shard_stats["expired"] == 1

    def test_replay_trace_drives_the_router(self):
        trace = random_fleet_trace(7, num_jobs=12)
        router = make_router([6, 6])
        checker = FleetInvariantChecker(router)
        log = replay_trace(router, trace, checker)
        assert checker.checks == len(trace)
        assert log.stats["admitted"] == len(log.admitted)


class TestOverflowQueue:
    def test_unqueueable_job_waits_at_fleet_level(self):
        router = make_router([1, 4])
        router.submit(busy_job("w", 1))
        outcome = router.submit(hungry_job("g"))
        assert outcome.status == "queued" and outcome.shard is None
        stats = router.fleet_stats()
        assert stats["overflow_queued"] == 1
        assert router.pending() == ("g",)
        assert router.queued_shards() == {"g": None}

    def test_overflow_rejected_on_idle_fleet(self):
        router = make_router([1, 4])
        with pytest.raises(CapacityError, match="idle"):
            router.submit(hungry_job("g"))
        assert router.fleet_stats()["rejected"] == 1

    def test_overflow_dropped_when_fleet_empties(self):
        router = make_router([1, 4])
        router.submit(busy_job("w", 1))
        router.submit(hungry_job("g"))
        router.release("w")  # empty fleet: the impossibility proof
        stats = router.fleet_stats()
        assert stats["rejected"] == 1
        assert router.pending() == ()

    def test_overflow_logical_timeout_counts_fleet_events(self):
        router = make_router([1, 4])
        router.submit(busy_job("w", 1))
        router.submit(hungry_job("g"), timeout=2)
        router.submit(busy_job("x", 1))  # fleet event: g still waiting
        assert "g" in router.pending()
        router.submit(busy_job("y", 1))  # second event: g expires
        assert "g" not in router.pending()
        assert router.fleet_stats()["expired"] == 1

    def test_overflow_drain_admits_when_capacity_appears(self):
        """White-box: the overflow drain admits through the same
        placement ranking as a fresh submission (the realistic trigger
        — a future allocator or machine model where lending beats
        empty-machine admission — is not constructible with today's
        merging allocator, so the drain mechanics are pinned directly)."""
        from repro.multiprog.fleet import _OverflowEntry

        router = make_router([1, 4])
        router.submit(busy_job("w", 1))
        router._overflow.append(
            _OverflowEntry(
                job=busy_job("late", 3),
                strategy=None,
                priority=0,
                enqueued_event=router.events,
                expires_event=None,
            )
        )
        router.release("w")  # any event drains the overflow queue
        assert "late" in router.residents
        stats = router.fleet_stats()
        assert stats["overflow_admitted"] == 1
        assert stats["admitted_from_queue"] == 1


class TestWallClockDeadlines:
    def make_clocked(self, sizes, **options):
        now = [0.0]
        router = make_router(sizes, clock=lambda: now[0], **options)
        return router, now

    def test_deadline_expires_queued_job(self):
        router, now = self.make_clocked([4])
        router.submit(busy_job("a", 4))
        router.submit(busy_job("b", 3), deadline_s=5.0)
        now[0] = 4.9
        router.submit(busy_job("c", 1))  # evaluated lazily: still alive
        assert "b" in router.pending()
        now[0] = 5.0
        router.submit(busy_job("d", 1))
        assert "b" not in router.pending()
        stats = router.fleet_stats()
        assert stats["deadline_expired"] == 1
        # The shard records the withdrawal as a cancellation.
        assert stats["shards"]["shard0"]["cancelled"] == 1

    def test_deadline_cleared_on_admission(self):
        router, now = self.make_clocked([4])
        router.submit(busy_job("a", 4))
        router.submit(busy_job("b", 3), deadline_s=5.0)
        router.release("a")  # b admitted before its deadline
        now[0] = 100.0
        router.submit(busy_job("c", 1))
        assert "b" in router.residents
        assert router.fleet_stats()["deadline_expired"] == 0
        assert router.fleet_stats()["deadlines_tracked"] == 0

    def test_deadline_on_overflow_entry(self):
        router, now = self.make_clocked([1, 4])
        router.submit(busy_job("w", 1))
        router.submit(hungry_job("g"), deadline_s=2.0)
        now[0] = 3.0
        router.submit(busy_job("x", 1))
        assert "g" not in router.pending()
        assert router.fleet_stats()["deadline_expired"] == 1

    def test_logical_clock_ignores_wall_time(self):
        """The logical tier must replay identically whatever the wall
        clock does — deadlines only ever *remove* queued entries."""
        router, now = self.make_clocked([2, 2])
        router.submit(busy_job("a", 2))
        router.submit(busy_job("b", 2))
        router.submit(busy_job("c", 2), timeout=3)
        now[0] = 1e9  # no deadlines tracked: nothing may change
        router.release("a")
        assert "c" in router.residents

    def test_bad_deadline_rejected(self):
        router, _ = self.make_clocked([4])
        with pytest.raises(CircuitError, match="deadline_s"):
            router.submit(busy_job("a", 2), deadline_s=0.0)


class TestFleetErrors:
    def test_release_of_queued_and_unknown(self):
        router = make_router([2])
        router.submit(busy_job("a", 2))
        router.submit(busy_job("b", 2))
        with pytest.raises(CircuitError, match="queued, not resident"):
            router.release("b")
        with pytest.raises(CircuitError, match="no resident job"):
            router.release("ghost")

    def test_cancel_distinguishes_resident(self):
        router = make_router([2, 2])
        router.submit(busy_job("a", 2))
        router.submit(busy_job("b", 2))
        router.submit(busy_job("c", 2))
        assert router.cancel("c").name == "c"
        with pytest.raises(CircuitError, match="resident on shard"):
            router.cancel("a")
        with pytest.raises(CircuitError, match="no queued job"):
            router.cancel("ghost")

    def test_duplicate_names_rejected_fleet_wide(self):
        router = make_router([2, 2])
        router.submit(busy_job("a", 2))
        with pytest.raises(CircuitError, match="already resident"):
            router.submit(busy_job("a", 1))
        router.submit(busy_job("b", 2))
        router.submit(busy_job("c", 2))
        with pytest.raises(CircuitError, match="already queued"):
            router.submit(busy_job("c", 1))

    def test_checker_catches_planted_desync(self):
        router = make_router([2, 2], check_invariants=False)
        router.submit(busy_job("a", 2))
        checker = FleetInvariantChecker(router)
        checker.check()
        router._resident_on["a"] = "shard1"  # plant a routing lie
        with pytest.raises(InvariantViolation, match="resident map"):
            checker.check()


class TestIntrospection:
    def test_fleet_stats_aggregates(self):
        router = make_router([4, 6])
        router.submit(busy_job("a", 4))
        router.submit(busy_job("b", 3))
        stats = router.fleet_stats()
        assert stats["machine_size"] == 10
        assert stats["occupancy"] == 7
        assert stats["free_qubits"] == 3
        assert stats["placement"] == "least-loaded"
        assert set(stats["shards"]) == {"shard0", "shard1"}
        assert stats["shards"]["shard1"]["residents"] == 1
        assert router.stats() == stats

    def test_shard_tables_mirror_shards(self):
        router = make_router([4, 4])
        router.submit(busy_job("a", 3))
        tables = router.shard_tables()
        assert tables["shard0"]["residents"] == ["a"]
        assert tables["shard0"]["occupancy"] == 3
        assert tables["shard1"]["residents"] == []
        assert set(tables["shard0"]["occupancy_table"]) == {0, 1, 2}

    def test_snapshot_mentions_every_tier(self):
        router = make_router([1, 4])
        router.submit(busy_job("w", 1))
        router.submit(hungry_job("g"))  # shard1 empty: overflow
        router.submit(busy_job("q", 4))
        router.submit(busy_job("q2", 4))
        text = router.snapshot()
        assert "fleet: 2 shards" in text
        assert "shard0" in text and "shard1" in text
        assert "overflow: g" in text


class TestFleetService:
    def test_flush_routes_in_arrival_order(self):
        service = FleetService(
            shards=[6, 6], verifier=SHARED_VERIFIER
        )
        service.enqueue(busy_job("a", 4))
        service.enqueue(busy_job("b", 4))
        service.enqueue(busy_job("c", 6))
        assert service.buffered == 3
        results = service.flush()
        assert [r.name for r in results] == ["a", "b", "c"]
        assert [r.status for r in results] == [
            "admitted",
            "admitted",
            "queued",
        ]
        assert service.buffered == 0

    def test_rejection_does_not_shed_the_burst(self):
        service = FleetService(shards=[4], verifier=SHARED_VERIFIER)
        service.enqueue(busy_job("a", 2))
        service.enqueue(busy_job("wide", 9))
        service.enqueue(busy_job("b", 2))
        results = service.flush()
        assert [r.status for r in results] == [
            "admitted",
            "rejected",
            "admitted",
        ]
        assert "widest shard" in results[1].error
        assert service.status()["flushed_results"] == {
            "admitted": 2,
            "rejected": 1,
        }

    def test_batch_size_auto_flushes(self):
        service = FleetService(
            shards=[6], batch_size=2, verifier=SHARED_VERIFIER
        )
        service.enqueue(busy_job("a", 2))
        assert service.buffered == 1
        service.enqueue(busy_job("b", 2))
        assert service.buffered == 0
        assert "a" in service.router.residents

    def test_submit_and_release_flush_first(self):
        service = FleetService(shards=[6], verifier=SHARED_VERIFIER)
        service.enqueue(busy_job("a", 3))
        outcome = service.submit(busy_job("b", 3))
        assert outcome.admitted
        assert list(service.router.residents) == ["a", "b"]
        service.enqueue(busy_job("c", 3))
        service.release("a")
        assert "c" in service.router.pending() or "c" in service.router.residents

    def test_cancel_reaches_buffer_and_fleet(self):
        service = FleetService(shards=[2], verifier=SHARED_VERIFIER)
        service.enqueue(busy_job("a", 2))
        assert service.cancel("a").name == "a"
        assert service.buffered == 0
        service.submit(busy_job("b", 2))
        service.submit(busy_job("c", 2))
        assert service.cancel("c").name == "c"

    def test_construction_contract(self):
        with pytest.raises(CircuitError, match="router or shards"):
            FleetService()
        router = make_router([2])
        with pytest.raises(CircuitError, match="not both"):
            FleetService(router, shards=[2])
        with pytest.raises(CircuitError, match="batch_size"):
            FleetService(shards=[2], batch_size=0)
        with pytest.raises(CircuitError, match="buffered"):
            service = FleetService(shards=[4], verifier=SHARED_VERIFIER)
            service.enqueue(busy_job("a", 2))
            service.enqueue(busy_job("a", 2))


class TestFleetProperties:
    """Seeded traces through every placement policy, checker on."""

    def run_seeded(self, seed, placement, sizes=(11, 11)):
        trace = random_fleet_trace(seed, num_jobs=20)
        router = make_router(
            list(sizes), placement=placement, check_invariants=False
        )
        checker = FleetInvariantChecker(router)
        try:
            log = replay_trace(router, trace, checker)
        except Exception as error:  # noqa: BLE001 - reported with seed
            record_seed(seed, f"fleet[{placement}]", error)
            pytest.fail(
                f"seed {seed} ({placement}, {sizes}): {error}\n"
                f"reproduce with replay_trace(FleetRouter({list(sizes)}, "
                f"placement={placement!r}), random_fleet_trace({seed}, "
                f"num_jobs=20), FleetInvariantChecker(router))"
            )
        return router, checker, log, trace

    @pytest.mark.parametrize("seed", range(24))
    def test_invariants_hold_through_fleet_traces(self, seed):
        placement = available_placements()[seed % 3]
        router, checker, log, trace = self.run_seeded(seed, placement)
        assert checker.checks == len(trace)
        stats = log.stats
        assert stats["admitted"] == len(log.admitted)
        # Routing conservation: everything submitted either was
        # admitted, rejected, expired somewhere, or still waits.
        shard_totals = stats["shards"].values()
        expired_everywhere = stats["expired"] + sum(
            s["expired"] for s in shard_totals
        )
        assert (
            stats["admitted"]
            + stats["rejected"]
            + stats["deadline_expired"]
            + expired_everywhere
            + stats["pending"]
            == stats["submitted"]
        ), f"seed {seed}: fleet counters leak jobs"

    @pytest.mark.parametrize("seed", range(0, 24, 2))
    def test_heterogeneous_fleet_invariants(self, seed):
        placement = available_placements()[seed % 3]
        router, checker, _, trace = self.run_seeded(
            seed, placement, sizes=(7, 11, 15)
        )
        assert checker.checks == len(trace)

    @pytest.mark.parametrize(
        "placement", ["least-loaded", "best-fit-width", "family-affinity"]
    )
    @pytest.mark.parametrize("seed", range(0, 12, 3))
    def test_two_shards_admit_at_least_the_larger_half(self, seed, placement):
        """On a drained trace, 2x11 shards under any placement policy
        must admit at least what one 11-qubit machine does alone —
        anything less means the router wasted a whole machine."""
        trace = random_fleet_trace(seed, num_jobs=20)
        router = make_router(
            [11, 11], placement=placement, check_invariants=False
        )
        fleet_log = replay_trace(router, trace)
        single = MultiProgrammer(11, verifier=SHARED_VERIFIER)
        single_log = replay_trace(single, trace)
        if fleet_log.stats["admitted"] < single_log.stats["admitted"]:
            record_seed(seed, f"fleet-vs-single[{placement}]", "fleet < single")
            pytest.fail(
                f"seed {seed}: fleet(2x11, {placement}) admitted "
                f"{fleet_log.stats['admitted']} < single(11) "
                f"{single_log.stats['admitted']}"
            )
