"""The lease-packer registry and the three built-in packing policies.

Packers see only *feasible* offers (the scheduler enforces window
disjointness before asking), so these tests drive them two ways: as
pure preference functions over crafted offer tables, and end-to-end
through ``MultiProgrammer`` admissions where the policy choice changes
which wire a lease lands on.
"""

import pytest

from repro.circuits import Circuit, WindowSet, cnot, x
from repro.errors import CircuitError
from repro.multiprog import (
    BorrowRequest,
    Lease,
    LeasePacker,
    MultiProgrammer,
    QuantumJob,
    available_packers,
    make_packer,
    packer_class,
    register_packer,
)
from repro.testing import OccupancyInvariantChecker


def lease(wire, *spans, guest="g", ancilla=1):
    return Lease(
        guest=guest, ancilla=ancilla, wire=wire, window=WindowSet.of(*spans)
    )


class TestPackerRegistry:
    def test_builtin_packers_registered(self):
        assert available_packers() == (
            "best-fit",
            "earliest-gap",
            "first-fit",
        )
        assert packer_class("first-fit").name == "first-fit"
        assert isinstance(make_packer("best-fit"), LeasePacker)

    def test_unknown_packer_rejected(self):
        with pytest.raises(CircuitError, match="registered"):
            make_packer("tetris")
        with pytest.raises(CircuitError):
            MultiProgrammer(4, lease_packer="tetris")

    def test_non_packer_class_rejected(self):
        with pytest.raises(CircuitError, match="subclass"):
            register_packer("bad")(dict)


class TestPackerChoices:
    WINDOW = WindowSet.of((10, 12))

    def test_all_decline_empty_offers(self):
        for name in available_packers():
            assert make_packer(name).choose(self.WINDOW, {}) is None

    def test_first_fit_takes_smallest_wire(self):
        offers = {7: (), 3: (lease(3, (0, 1)),), 5: ()}
        assert make_packer("first-fit").choose(self.WINDOW, offers) == 3

    def test_best_fit_takes_most_loaded_wire(self):
        offers = {
            3: (lease(3, (0, 1)),),
            5: (lease(5, (0, 4)), lease(5, (20, 24))),
            7: (),
        }
        assert make_packer("best-fit").choose(self.WINDOW, offers) == 5

    def test_best_fit_counts_rounds_not_leases(self):
        offers = {
            3: (lease(3, (0, 1)), lease(3, (4, 5))),  # 4 rounds
            5: (lease(5, (0, 8)),),  # 9 rounds
        }
        assert make_packer("best-fit").choose(self.WINDOW, offers) == 5

    def test_best_fit_tie_breaks_to_smallest_wire(self):
        offers = {5: (lease(5, (0, 1)),), 3: (lease(3, (4, 5)),)}
        assert make_packer("best-fit").choose(self.WINDOW, offers) == 3

    def test_earliest_gap_packs_after_latest_predecessor(self):
        offers = {
            3: (lease(3, (0, 1)),),  # gap since round 2
            5: (lease(5, (6, 8)),),  # gap since round 9: tighter
            7: (),  # no predecessor at all
        }
        assert make_packer("earliest-gap").choose(self.WINDOW, offers) == 5

    def test_earliest_gap_ignores_segments_after_the_window(self):
        offers = {
            3: (lease(3, (0, 1), (20, 21)),),
            5: (lease(5, (4, 5)),),
        }
        assert make_packer("earliest-gap").choose(self.WINDOW, offers) == 5


def lender_job(name="lender"):
    circuit = Circuit(4).extend([cnot(0, 1), x(0)])
    return QuantumJob(name, circuit, [])


def guest_job(name, pre, post=0):
    circuit = Circuit(2)
    circuit.extend([x(0)] * pre)
    circuit.extend([cnot(0, 1), cnot(0, 1)])
    circuit.extend([x(0)] * post)
    return QuantumJob(name, circuit, [BorrowRequest(1)])


class TestPackerInScheduler:
    def setup_machine(self, packer):
        mp = MultiProgrammer(12, lease_packer=packer)
        mp.admit(lender_job("l1"))  # offers two wires
        mp.admit(lender_job("l2"))  # offers two more
        a = mp.admit(guest_job("A", 0, post=6))  # [0, 1] on first wire
        return mp, a

    def test_first_fit_reuses_smallest_wire(self):
        mp, a = self.setup_machine("first-fit")
        b = mp.admit(guest_job("B", 4))  # disjoint [4, 5]
        assert b.cross_hosts[1] == a.cross_hosts[1]
        OccupancyInvariantChecker(mp).check()

    def test_best_fit_also_stacks_onto_loaded_wire(self):
        mp, a = self.setup_machine("best-fit")
        b = mp.admit(guest_job("B", 4))
        assert b.cross_hosts[1] == a.cross_hosts[1]
        OccupancyInvariantChecker(mp).check()

    def test_per_admission_packer_override(self):
        mp, a = self.setup_machine("first-fit")
        # A best-fit override packs onto the loaded wire; the scheduler
        # default (first-fit) would have done the same here, so push
        # the distinction: load a second wire more heavily first.
        wire_a = a.cross_hosts[1]
        c = mp.admit(guest_job("C", 0, post=6), packer="earliest-gap")
        assert c.cross_hosts[1] != wire_a  # [0,1] clashes with A anyway
        d = mp.admit(guest_job("D", 8), packer="best-fit")
        assert d.cross_hosts[1] in (wire_a, c.cross_hosts[1])
        OccupancyInvariantChecker(mp).check()

    def test_stats_report_packer(self):
        mp = MultiProgrammer(4, lease_packer="earliest-gap")
        assert mp.stats()["packer"] == "earliest-gap"

    def test_packer_instance_accepted(self):
        packer = make_packer("best-fit")
        mp = MultiProgrammer(4, lease_packer=packer)
        assert mp.lease_packer is packer

    def test_modes_agree_under_whole_lending(self):
        """Under whole-residency lending every feasible wire is
        lease-free, so all packers behave identically (first-fit)."""
        for name in available_packers():
            mp = MultiProgrammer(12, lending="whole", lease_packer=name)
            mp.admit(lender_job("l1"))
            a = mp.admit(guest_job("A", 0, post=6))
            b = mp.admit(guest_job("B", 4))
            assert a.cross_hosts[1] != b.cross_hosts[1]
            OccupancyInvariantChecker(mp).check()
