"""Tests for the Section 7 multi-programming scheduler."""

import pytest

from repro.circuits import Circuit, cnot, hadamard, x
from repro.errors import CircuitError, VerificationError
from repro.mcx import cccnot_with_dirty_ancilla
from repro.multiprog import BorrowRequest, MultiProgrammer, QuantumJob


def cccnot_job(name="alpha"):
    circuit = Circuit(5, labels=["q1", "q2", "a", "q3", "q4"]).extend(
        cccnot_with_dirty_ancilla([0, 1, 3], 4, 2)
    )
    return QuantumJob(name, circuit, [BorrowRequest(2)])


def light_job(name="beta", width=3):
    circuit = Circuit(width).append(cnot(0, 1))
    return QuantumJob(name, circuit, [])


class TestScheduling:
    def test_safe_ancilla_borrows_cotenant_qubit(self):
        result = MultiProgrammer(8).schedule([cccnot_job(), light_job()])
        assert result.qubits_saved == 1
        assert result.safety[("alpha", 2)] is True
        assert result.fits_machine

    def test_unsafe_ancilla_kept_private(self):
        bad = QuantumJob(
            "gamma",
            Circuit(2, labels=["w", "anc"]).append(x(1)),
            [BorrowRequest(1)],
        )
        result = MultiProgrammer(12).schedule([cccnot_job(), bad])
        assert result.safety[("gamma", 1)] is False
        # the unsafe ancilla wire survives as a private wire
        assert result.final_width == result.naive_width - 1  # only alpha's

    def test_machine_capacity_enforced(self):
        with pytest.raises(CircuitError):
            MultiProgrammer(4).schedule([cccnot_job(), light_job()])

    def test_require_fit_false_reports_anyway(self):
        result = MultiProgrammer(4).schedule(
            [cccnot_job(), light_job()], require_fit=False
        )
        assert not result.fits_machine

    def test_summary_text(self):
        result = MultiProgrammer(10).schedule([cccnot_job(), light_job()])
        text = result.summary()
        assert "saved=" in text and "alpha" in text

    def test_gate_counts_preserved(self):
        jobs = [cccnot_job(), light_job()]
        result = MultiProgrammer(10).schedule(jobs)
        assert len(result.composite.gates) == sum(
            len(j.circuit.gates) for j in jobs
        )

    def test_labels_are_namespaced(self):
        result = MultiProgrammer(10).schedule([cccnot_job(), light_job()])
        assert any(
            label.startswith("alpha.") for label in result.composite.labels
        )


class TestValidation:
    def test_no_jobs(self):
        with pytest.raises(CircuitError):
            MultiProgrammer(4).schedule([])

    def test_duplicate_names(self):
        with pytest.raises(CircuitError):
            MultiProgrammer(12).schedule([light_job("x"), light_job("x")])

    def test_bad_ancilla_wire(self):
        with pytest.raises(CircuitError):
            QuantumJob("j", Circuit(2), [BorrowRequest(5)])

    def test_non_classical_job_with_requests_rejected(self):
        circuit = Circuit(2).append(hadamard(0))
        job = QuantumJob("h", circuit, [BorrowRequest(1)])
        with pytest.raises(VerificationError):
            MultiProgrammer(4).schedule([job])

    def test_machine_size_positive(self):
        with pytest.raises(CircuitError):
            MultiProgrammer(0)

    def test_non_classical_job_without_requests_ok(self):
        circuit = Circuit(2).append(hadamard(0))
        job = QuantumJob("h", circuit, [])
        result = MultiProgrammer(8).schedule([job, light_job()])
        assert result.fits_machine
