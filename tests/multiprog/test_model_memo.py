"""Model memoisation and the pluggable restore-point certifier.

The scheduler rebuilds an interval-conflict model for every admission
attempt of a job; on drain-heavy traces (the same job re-tried each
release event) that dominated admission cost.  ``memoise_models``
caches models by ``(circuit fingerprint, request wires)``;
``restore_check="solver"`` swaps the structural palindrome certifier
for the scheduler's shared solver-backed one.  Both knobs must be
observable in ``stats()`` and change nothing about the decisions."""

import pytest

from repro.circuits import Circuit, cnot, x
from repro.errors import CircuitError
from repro.mcx import cccnot_with_dirty_ancilla
from repro.multiprog import BorrowRequest, MultiProgrammer, QuantumJob
from repro.testing import OccupancyInvariantChecker


def cccnot_job(name="alpha"):
    circuit = Circuit(5, labels=["q1", "q2", "a", "q3", "q4"]).extend(
        cccnot_with_dirty_ancilla([0, 1, 3], 4, 2)
    )
    return QuantumJob(name, circuit, [BorrowRequest(2)])


def sampler_job(name="beta", width=4):
    circuit = Circuit(width).extend([cnot(0, 1), x(0)])
    return QuantumJob(name, circuit, [])


def semantic_identity_job(name="sem"):
    """Ancilla restored twice by *semantic* (non-palindromic) identity
    blocks: ``X a; CX d,a; X a; CX d,a`` is the identity on ``a`` but
    no mirror palindrome, so the structural certifier sees one whole
    window while the solver certifier finds the release point."""
    gates = [
        x(2), cnot(0, 2), x(2), cnot(0, 2),
        cnot(0, 1),
        x(2), cnot(0, 2), x(2), cnot(0, 2),
    ]
    return QuantumJob(
        name,
        Circuit(3, labels=["d", "w", "anc"]).extend(gates),
        [BorrowRequest(2)],
    )


class TestMemoisation:
    def test_cache_hits_on_requeued_job(self):
        """A queued job re-tried at each release event reuses one
        model: misses stay at the number of distinct jobs."""
        mp = MultiProgrammer(6)
        mp.submit(cccnot_job("a1"))
        mp.submit(cccnot_job("a2"))  # queued: machine full
        mp.submit(cccnot_job("a3"))  # queued
        assert mp.pending() == ("a2", "a3")
        mp.release("a1")  # a2 admitted, a3 re-tried
        mp.release("a2")  # a3 admitted
        stats = mp.stats()
        assert stats["model_cache_hits"] >= 1
        # one miss per distinct (fingerprint, requests) — the three
        # jobs share a circuit, so exactly one miss.
        assert stats["model_cache_misses"] == 1

    def test_identical_circuits_share_one_model(self):
        mp = MultiProgrammer(16)
        mp.admit(cccnot_job("a1"))
        mp.admit(cccnot_job("a2"))
        assert mp.stats()["model_cache_misses"] == 1
        assert mp.stats()["model_cache_hits"] == 1

    def test_distinct_circuits_do_not_collide(self):
        """Different fingerprints get different cache rows (a job with
        no borrow request never builds a model at all)."""
        mp = MultiProgrammer(16)
        mp.admit(cccnot_job())
        mp.admit(sampler_job())  # no requests: no model, no miss
        mp.admit(semantic_identity_job())
        stats = mp.stats()
        assert stats["model_cache_misses"] == 2
        assert stats["model_cache_hits"] == 0

    def test_memoised_and_unmemoised_schedules_agree(self):
        jobs = lambda: [  # noqa: E731 - tiny fixture factory
            cccnot_job("a1"), sampler_job("b1"), cccnot_job("a2"),
        ]
        memo = MultiProgrammer(12).schedule(jobs())
        plain = MultiProgrammer(12, memoise_models=False).schedule(jobs())
        assert memo.qubits_saved == plain.qubits_saved
        assert memo.final_width == plain.final_width
        assert memo.safety == plain.safety

    def test_memoise_off_counts_nothing(self):
        mp = MultiProgrammer(16, memoise_models=False)
        mp.admit(cccnot_job("a1"))
        mp.admit(cccnot_job("a2"))
        stats = mp.stats()
        assert stats["model_cache_hits"] == 0
        assert stats["model_cache_misses"] == 0

    def test_invariants_hold_with_memoised_models(self):
        mp = MultiProgrammer(12, lending="segmented")
        check = OccupancyInvariantChecker(mp)
        mp.submit(sampler_job())
        check()
        mp.submit(cccnot_job("a1"))
        check()
        mp.submit(cccnot_job("a2"))
        check()
        mp.release("beta")
        check()
        assert mp.stats()["model_cache_hits"] >= 1


class TestRestoreCheckKnob:
    def test_stats_reports_the_certifier(self):
        assert MultiProgrammer(8).stats()["restore_check"] == "structural"
        assert (
            MultiProgrammer(8, restore_check="solver").stats()[
                "restore_check"
            ]
            == "solver"
        )

    def test_default_resolves_by_lending_mode(self):
        """Segmented lending defaults to the solver certifier (the
        bench's restore_check record puts its admission overhead at
        ~0%); the other modes keep the free structural check."""
        assert (
            MultiProgrammer(8, lending="segmented").stats()[
                "restore_check"
            ]
            == "solver"
        )
        for lending in ("whole", "windowed"):
            assert (
                MultiProgrammer(8, lending=lending).stats()[
                    "restore_check"
                ]
                == "structural"
            )

    def test_invalid_restore_check_rejected(self):
        with pytest.raises(CircuitError, match="restore_check"):
            MultiProgrammer(8, restore_check="psychic")

    def test_solver_certifier_segments_semantic_identity(self):
        """Under segmented lending the solver certifier must split the
        non-palindromic identity job's window where the structural one
        cannot — observable as the lease window's segment count."""
        structural = MultiProgrammer(
            8, lending="segmented", restore_check="structural"
        )
        solver = MultiProgrammer(
            8, lending="segmented", restore_check="solver"
        )
        job = semantic_identity_job()
        s_model = structural._job_model(job)
        v_model = solver._job_model(job)
        assert len(s_model.windows[2]) == 1
        assert len(v_model.windows[2]) == 2

    def test_solver_scheduler_passes_invariants(self):
        """The invariant checker re-derives lease windows with the
        scheduler's own certifier — a solver-backed trace must pass."""
        mp = MultiProgrammer(
            12, lending="segmented", restore_check="solver"
        )
        check = OccupancyInvariantChecker(mp)
        mp.submit(sampler_job())
        check()
        mp.submit(semantic_identity_job())
        check()
        mp.submit(cccnot_job())
        check()
        mp.release("beta")
        check()
        assert check.checks == 4

    def test_structural_and_solver_agree_on_palindromes(self):
        """Mirror-palindrome uncomputation is certified by both."""
        jobs = lambda: [cccnot_job(), sampler_job()]  # noqa: E731
        structural = MultiProgrammer(12).schedule(jobs())
        solver = MultiProgrammer(12, restore_check="solver").schedule(
            jobs()
        )
        assert structural.qubits_saved == solver.qubits_saved
        assert structural.safety == solver.safety
