"""Static discharge: checker-proven borrows skip the solver entirely.

The acceptance differential for the borrow checker: one program, two
admissions.  With ``trust_checker=True`` (opt-in; the default is the
conservative ``False``) the scoped-block
proof rides along as a certified :class:`BorrowRequest`, the scheduler's
lazy verification gate discharges the obligation statically
(``stats()['static_discharged'] > 0``) and the shared
:class:`BatchVerifier` records **zero** solver calls.  The identical
program admitted unchecked pays at least one solver call for the same
wire.
"""

import pytest

from repro.alloc.model import build_model
from repro.alloc.verified import VerifiedStrategy
from repro.lang.surface import elaborate, job_from_qbr
from repro.multiprog.scheduler import BorrowRequest, MultiProgrammer, QuantumJob

# q5 is busy only at the circuit edges, so a candidate host exists for
# the borrowed wire and the lazy gate actually owes a solver obligation
# (an obligation the checker's proof then discharges).
EDGE_HOST_PROGRAM = """\
borrow@ q1; borrow@ q2; borrow@ q3; alloc q4; borrow@ q5;
CNOT[q1, q5];
borrow a {
  within { CCNOT[q1, q2, a]; }
  apply  { CCNOT[a, q3, q4]; }
}
CNOT[q2, q5];
"""


def admit_edge_program(trust_checker):
    scheduler = MultiProgrammer(8)
    job = job_from_qbr("edge", EDGE_HOST_PROGRAM, trust_checker=trust_checker)
    admission = scheduler.admit(job)
    return scheduler, admission


def test_certified_admission_discharges_statically():
    scheduler, admission = admit_edge_program(trust_checker=True)
    assert admission is not None
    assert scheduler.stats()["static_discharged"] == 1
    assert scheduler.verifier.cache_misses == 0


def test_unchecked_admission_pays_a_solver_call():
    scheduler, admission = admit_edge_program(trust_checker=False)
    assert admission is not None
    assert scheduler.stats()["static_discharged"] == 0
    assert scheduler.verifier.cache_misses >= 1


def test_differential_same_admission_outcome():
    # The proof changes who certifies the borrow, never the placement.
    certified, adm_c = admit_edge_program(trust_checker=True)
    unchecked, adm_u = admit_edge_program(trust_checker=False)
    assert adm_c.qubits_saved == adm_u.qubits_saved
    assert certified.occupancy == unchecked.occupancy


def test_verified_strategy_honors_precertified_wires():
    program = elaborate(EDGE_HOST_PROGRAM)
    model = build_model(program.circuit, program.dirty_wires)

    strategy = VerifiedStrategy(precertified=program.proven_wires)
    placement = strategy.plan(model)
    assert strategy.static_discharged == 1
    assert strategy.verifier.cache_misses == 0
    assert strategy.last_safety == {program.proven_wires[0]: True}

    baseline = VerifiedStrategy()
    baseline_placement = baseline.plan(model)
    assert baseline.static_discharged == 0
    assert baseline.verifier.cache_misses >= 1
    assert placement.assignment == baseline_placement.assignment


def test_verified_strategy_via_scheduler_strategy_option():
    scheduler = MultiProgrammer(8, strategy="verified")
    job = job_from_qbr("edge", EDGE_HOST_PROGRAM, trust_checker=True)
    admission = scheduler.admit(job)
    assert admission is not None
    assert scheduler.stats()["static_discharged"] >= 1
    assert scheduler.verifier.cache_misses == 0


def test_uncertified_request_default():
    request = BorrowRequest(wire=3)
    assert request.certified is False


def test_stats_exposes_counter_before_any_admission():
    scheduler = MultiProgrammer(4)
    assert scheduler.stats()["static_discharged"] == 0


def test_certification_does_not_bypass_unrelated_obligations():
    # A job mixing one certified and one uncertified dirty wire must
    # still pay for the uncertified one.
    program = elaborate(
        "borrow@ q1; borrow@ q2; alloc t; borrow@ q5;\n"
        "CNOT[q1, q5];\n"
        "borrow a {\n"
        "  within { CNOT[q1, a]; }\n"
        "  apply  { CCNOT[a, q2, t]; }\n"
        "}\n"
        "borrow d;\n"
        "CNOT[q1, d]; CNOT[q1, d];\n"
        "release d;\n"
        "CNOT[q2, q5];"
    )
    requests = [
        BorrowRequest(w, certified=w in set(program.proven_wires))
        for w in program.dirty_wires
    ]
    job = QuantumJob(name="mixed", circuit=program.circuit, ancilla_requests=requests)
    scheduler = MultiProgrammer(10)
    admission = scheduler.admit(job, lazy_verify=False)
    assert admission is not None
    stats = scheduler.stats()
    assert stats["static_discharged"] == 1
    # The uncertified wire still reached the solver.
    assert scheduler.verifier.cache_misses >= 1
