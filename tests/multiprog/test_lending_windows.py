"""Deterministic tests for time-sliced (windowed) lending.

The jobs here are built so their lending windows land at known gate
indices: a *guest* is a 2-wire circuit whose requested ancilla is
touched only by a ``CX;CX`` segment (restored for every input, hence
verified safe) at a controlled position, while wire 0 stays busy
throughout so the ancilla never has an internal candidate host.  A
*lender* is a 4-wire job whose wires 2 and 3 are idle and therefore
offered to co-tenants.
"""

import pytest

from repro.circuits import Circuit, cnot, x
from repro.errors import CircuitError
from repro.multiprog import (
    BorrowRequest,
    Lease,
    MultiProgrammer,
    QuantumJob,
)
from repro.testing import OccupancyInvariantChecker


def lender_job(name="lender"):
    """4 wires, only 0 and 1 touched: wires 2 and 3 become offers."""
    circuit = Circuit(4).extend([cnot(0, 1), x(0)])
    return QuantumJob(name, circuit, [])


def guest_job(name, pre, post=0):
    """One safe ancilla with lending window exactly ``[pre, pre+1]``.

    ``pre``/``post`` pad wire 0 with ``X`` gates around the ancilla's
    ``CX;CX`` segment, so wire 0 is active across the whole circuit and
    the ancilla has no internal host — its only hope is a lease.
    """
    circuit = Circuit(2)
    circuit.extend([x(0)] * pre)
    circuit.extend([cnot(0, 1), cnot(0, 1)])
    circuit.extend([x(0)] * post)
    return QuantumJob(name, circuit, [BorrowRequest(1)])


def two_ancilla_guest(name="twin"):
    """Two safe ancillas with disjoint windows [0,1] and [2,3] and no
    internal host (wire 0 busy throughout)."""
    circuit = Circuit(3).extend(
        [cnot(0, 1), cnot(0, 1), cnot(0, 2), cnot(0, 2)]
    )
    return QuantumJob(
        name, circuit, [BorrowRequest(1), BorrowRequest(2)]
    )


class TestWindowedLeases:
    def test_disjoint_windows_share_one_wire(self):
        mp = MultiProgrammer(9)
        mp.admit(lender_job())
        a = mp.admit(guest_job("A", 0, post=6))  # window [0, 1]
        b = mp.admit(guest_job("B", 4))  # window [4, 5]
        # Both lease the same (smallest) offered wire.
        assert a.cross_hosts == b.cross_hosts
        wire = a.cross_hosts[1]
        leases = mp.lease_table()[wire]
        assert [lease.guest for lease in leases] == ["A", "B"]
        assert [(lease.window.first, lease.window.last) for lease in leases] == [
            (0, 1),
            (4, 5),
        ]
        OccupancyInvariantChecker(mp).check()

    def test_overlapping_window_takes_another_wire(self):
        mp = MultiProgrammer(9)
        mp.admit(lender_job())
        a = mp.admit(guest_job("A", 0, post=6))  # window [0, 1]
        c = mp.admit(guest_job("C", 1, post=4))  # window [1, 2]
        assert a.cross_hosts[1] != c.cross_hosts[1]
        OccupancyInvariantChecker(mp).check()

    def test_whole_residency_never_shares(self):
        mp = MultiProgrammer(9, lending="whole")
        mp.admit(lender_job())
        a = mp.admit(guest_job("A", 0, post=6))
        b = mp.admit(guest_job("B", 4))
        assert a.cross_hosts[1] != b.cross_hosts[1]
        for leases in mp.lease_table().values():
            assert len(leases) == 1
        OccupancyInvariantChecker(mp).check()

    def test_bad_lending_mode_rejected(self):
        with pytest.raises(CircuitError, match="lending"):
            MultiProgrammer(4, lending="sometimes")

    def test_one_guest_multiplexes_two_ancillas_onto_one_wire(self):
        mp = MultiProgrammer(8)
        mp.admit(lender_job())
        adm = mp.admit(two_ancilla_guest())
        assert set(adm.cross_hosts) == {1, 2}
        assert len(set(adm.cross_hosts.values())) == 1
        assert adm.qubits_saved == 2
        assert mp.total_leases == 2
        OccupancyInvariantChecker(mp).check()

    def test_release_retires_only_that_guests_leases(self):
        mp = MultiProgrammer(9)
        mp.admit(lender_job())
        a = mp.admit(guest_job("A", 0, post=6))
        mp.admit(guest_job("B", 4))
        wire = a.cross_hosts[1]
        mp.release("A")
        leases = mp.lease_table()[wire]
        assert [lease.guest for lease in leases] == ["B"]
        # The freed window is leasable again.
        d = mp.admit(guest_job("D", 0, post=6))  # window [0, 1]
        assert d.cross_hosts[1] == wire
        OccupancyInvariantChecker(mp).check()

    def test_shared_wire_freed_only_after_last_holder_leaves(self):
        mp = MultiProgrammer(9)
        mp.admit(lender_job())
        a = mp.admit(guest_job("A", 0, post=6))
        wire = a.cross_hosts[1]
        mp.admit(guest_job("B", 4))
        assert wire not in mp.release("lender")  # guests still on it
        assert wire not in mp.release("A")  # B still on it
        assert wire in mp.release("B")
        assert mp.occupancy == 0

    def test_submit_clock_offsets_windows(self):
        """Two guests with identical local windows share a wire once
        their admission rounds push the windows apart."""
        mp = MultiProgrammer(9)
        mp.submit(lender_job())  # round 1
        a = mp.submit(guest_job("A", 0)).admission  # round 2: [2, 3]
        for name in ("p1", "p2", "p3"):  # tick the clock along
            mp.submit(QuantumJob(name, Circuit(1).extend([x(0)]), []))
        b = mp.submit(guest_job("B", 0)).admission  # round 6: [6, 7]
        assert a.gate_offset == 2 and b.gate_offset == 6
        assert a.cross_hosts[1] == b.cross_hosts[1]
        windows = [
            (lease.window.first, lease.window.last)
            for lease in mp.lease_table()[a.cross_hosts[1]]
        ]
        assert windows == [(2, 3), (6, 7)]
        OccupancyInvariantChecker(mp).check()

    def test_unsafe_ancilla_never_leases(self):
        circuit = Circuit(2).extend([cnot(0, 1), x(1), x(0), x(0)])
        rogue = QuantumJob("rogue", circuit, [BorrowRequest(1)])
        mp = MultiProgrammer(9)
        mp.admit(lender_job())
        adm = mp.admit(rogue)
        assert adm.leases == {} and adm.cross_hosts == {}
        OccupancyInvariantChecker(mp).check()

    def test_lendable_wires_lists_only_lease_free_offers(self):
        mp = MultiProgrammer(9)
        mp.admit(lender_job())
        before = mp.lendable_wires
        assert len(before) == 2
        a = mp.admit(guest_job("A", 0, post=6))
        assert mp.lendable_wires == tuple(
            w for w in before if w != a.cross_hosts[1]
        )
        # The leased wire is still *offered* (per-window availability).
        assert set(before) <= set(mp.idle_offers())

    def test_lease_is_introspectable(self):
        mp = MultiProgrammer(9)
        mp.admit(lender_job())
        adm = mp.admit(guest_job("A", 2, post=2))
        lease = adm.leases[1]
        assert isinstance(lease, Lease)
        assert lease.guest == "A" and lease.ancilla == 1
        assert (lease.window.first, lease.window.last) == (2, 3)
        assert "A:a1" in str(lease)


class TestSegmentedLeases:
    """Deterministic segmented-lending semantics: a lease covers only
    its guest's restore segments, and other guests thread the gaps."""

    def segmented_guest(self, name):
        from repro.testing import segmented_guest_job

        # Segments [0, 1] and [8, 9] around a 6-round restore gap.
        return segmented_guest_job(name, prelude=0, span=1, gap=6)

    def test_lease_covers_only_the_segments(self):
        mp = MultiProgrammer(9, lending="segmented")
        mp.admit(lender_job())
        adm = mp.admit(self.segmented_guest("A"))
        lease = adm.leases[1]
        assert [
            (seg.first, seg.last) for seg in lease.window.segments
        ] == [(0, 1), (8, 9)]
        OccupancyInvariantChecker(mp).check()

    def test_guest_threads_through_the_restore_gap(self):
        mp = MultiProgrammer(9, lending="segmented")
        mp.admit(lender_job())
        a = mp.admit(self.segmented_guest("A"))
        b = mp.admit(guest_job("B", 3, post=2))  # window [3, 4]: the gap
        assert a.cross_hosts[1] == b.cross_hosts[1]
        OccupancyInvariantChecker(mp).check()

    def test_windowed_mode_blocks_the_gap(self):
        mp = MultiProgrammer(9, lending="windowed")
        mp.admit(lender_job())
        a = mp.admit(self.segmented_guest("A"))
        assert len(a.leases[1].window) == 1  # hull, not segments
        b = mp.admit(guest_job("B", 3, post=2))
        assert a.cross_hosts[1] != b.cross_hosts[1]
        OccupancyInvariantChecker(mp).check()

    def test_segment_clash_takes_another_wire(self):
        mp = MultiProgrammer(9, lending="segmented")
        mp.admit(lender_job())
        a = mp.admit(self.segmented_guest("A"))
        c = mp.admit(guest_job("C", 1, post=4))  # window [1, 2] hits [0, 1]
        assert a.cross_hosts[1] != c.cross_hosts[1]
        OccupancyInvariantChecker(mp).check()

    def test_release_frees_segmented_lease(self):
        mp = MultiProgrammer(9, lending="segmented")
        mp.admit(lender_job())
        a = mp.admit(self.segmented_guest("A"))
        wire = a.cross_hosts[1]
        mp.release("A")
        assert wire not in mp.lease_table()
        d = mp.admit(self.segmented_guest("D"))
        assert d.cross_hosts[1] == wire
        OccupancyInvariantChecker(mp).check()


class TestLendingTrace:
    """The seeded lending-regime trace (the ``lending`` benchmark
    workload) under the invariant checker and the throughput claim."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("lending", ["windowed", "segmented"])
    def test_invariants_hold_through_lending_trace(self, seed, lending):
        from repro.testing import (
            random_lending_trace,
            replay_trace,
        )

        mp = MultiProgrammer(
            11, queue_policy="backfill", lending=lending, max_workers=1
        )
        checker = OccupancyInvariantChecker(mp)
        trace = random_lending_trace(seed, num_jobs=20)
        replay_trace(mp, trace, checker=checker)
        assert checker.checks == len(trace)

    def test_lending_modes_strictly_ordered_on_bench_trace(self):
        """Pins the benchmark acceptance live: seed-1, 50 jobs, 11
        qubits, fifo — each lending refinement admits strictly more
        (``segmented > windowed > whole``), and no policy inverts the
        non-strict ordering."""
        from repro.testing import random_lending_trace, replay_trace

        admitted = {}
        for policy in ("fifo", "backfill"):
            for lending in ("whole", "windowed", "segmented"):
                mp = MultiProgrammer(
                    11,
                    queue_policy=policy,
                    lending=lending,
                    max_workers=1,
                )
                log = replay_trace(
                    mp, random_lending_trace(1, num_jobs=50)
                )
                admitted[(policy, lending)] = len(log.admitted)
        assert (
            admitted[("fifo", "segmented")]
            > admitted[("fifo", "windowed")]
            > admitted[("fifo", "whole")]
        ), admitted
        assert (
            admitted[("backfill", "segmented")]
            >= admitted[("backfill", "windowed")]
            >= admitted[("backfill", "whole")]
        ), admitted


class TestWindowedThroughput:
    def test_windowed_admits_where_whole_residency_cannot(self):
        """The headline effect: with every offered wire already lent,
        whole-residency lending turns the next guest away while
        windowed lending multiplexes it onto an existing lease's
        wire."""

        def run(lending):
            mp = MultiProgrammer(7, lending=lending)
            mp.admit(lender_job())  # 4 wires, offers 2
            mp.admit(guest_job("A", 0, post=6))  # 1 fresh + lease
            mp.admit(guest_job("C", 1, post=4))  # 1 fresh + lease
            # 6 wires busy, 1 free: B (2 wires) fits only if its
            # ancilla can lease — and both offers are lent out.
            try:
                mp.admit(guest_job("B", 4))
            except CircuitError:
                return mp, False
            return mp, True

        mp, admitted = run("windowed")
        assert admitted
        OccupancyInvariantChecker(mp).check()
        _, admitted = run("whole")
        assert not admitted
