"""Tests for the Barenco-family MCX decompositions."""

import pytest

from repro.circuits import Circuit, truth_table
from repro.errors import CircuitError
from repro.mcx import cccnot_with_dirty_ancilla, mcx_clean_ladder, mcx_dirty_chain
from repro.verify import verify_circuit


def check_mcx_behaviour(circuit, controls, target, clean_wires=()):
    """All basis inputs: target flips iff all controls set; everything
    else (including dirty ancillas) restored.  ``clean_wires`` restricts
    inputs to those wires being 0."""
    n = circuit.num_qubits
    table = truth_table(circuit)
    target_bit = 1 << (n - 1 - target)
    for state in range(2**n):
        if any((state >> (n - 1 - w)) & 1 for w in clean_wires):
            continue
        out = int(table[state])
        all_on = all((state >> (n - 1 - w)) & 1 for w in controls)
        assert bool((out ^ state) & target_bit) == all_on, bin(state)
        assert (out ^ state) & ~target_bit == 0, bin(state)


class TestCccnot:
    def test_figure_13_behaviour(self):
        gates = cccnot_with_dirty_ancilla([0, 1, 2], 3, 4)
        circuit = Circuit(5).extend(gates)
        check_mcx_behaviour(circuit, [0, 1, 2], 3)

    def test_uses_four_toffolis(self):
        assert len(cccnot_with_dirty_ancilla([0, 1, 2], 3, 4)) == 4

    def test_ancilla_safe(self):
        circuit = Circuit(5).extend(cccnot_with_dirty_ancilla([0, 1, 2], 3, 4))
        assert verify_circuit(circuit, [4], backend="bdd").all_safe

    def test_requires_three_controls(self):
        with pytest.raises(CircuitError):
            cccnot_with_dirty_ancilla([0, 1], 2, 3)


class TestCleanLadder:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_behaviour(self, k):
        ancillas = list(range(k + 1, k + 1 + max(k - 2, 0)))
        circuit = Circuit(k + 1 + len(ancillas)).extend(
            mcx_clean_ladder(list(range(k)), k, ancillas)
        )
        check_mcx_behaviour(circuit, list(range(k)), k, clean_wires=ancillas)

    @pytest.mark.parametrize("k", [3, 4, 5, 8])
    def test_toffoli_count_is_2k_minus_3(self, k):
        gates = mcx_clean_ladder(
            list(range(k)), k, list(range(k + 1, 2 * k - 1))
        )
        assert len(gates) == 2 * k - 3

    def test_ancilla_count_validated(self):
        with pytest.raises(CircuitError):
            mcx_clean_ladder([0, 1, 2], 3, [])

    def test_needs_two_controls(self):
        with pytest.raises(CircuitError):
            mcx_clean_ladder([0], 1, [])

    def test_ancillas_not_safe_as_dirty(self):
        """The clean ladder is the paper's contrast case: its ancillas
        require |0> and are NOT safely uncomputed as dirty qubits."""
        k = 4
        ancillas = [5, 6]
        circuit = Circuit(7).extend(
            mcx_clean_ladder(list(range(k)), k, ancillas)
        )
        report = verify_circuit(circuit, ancillas, backend="bdd")
        assert not report.all_safe


class TestDirtyChain:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_behaviour_for_all_ancilla_values(self, k):
        ancillas = list(range(k + 1, k + 1 + max(k - 2, 0)))
        circuit = Circuit(k + 1 + len(ancillas)).extend(
            mcx_dirty_chain(list(range(k)), k, ancillas)
        )
        check_mcx_behaviour(circuit, list(range(k)), k)

    @pytest.mark.parametrize("k", [3, 4, 5, 8])
    def test_toffoli_count_is_4k_minus_8(self, k):
        gates = mcx_dirty_chain(
            list(range(k)), k, list(range(k + 1, 2 * k - 1))
        )
        assert len(gates) == max(4 * (k - 2), 1)

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_all_ancillas_safe(self, k):
        ancillas = list(range(k + 1, 2 * k - 1))
        circuit = Circuit(2 * k - 1).extend(
            mcx_dirty_chain(list(range(k)), k, ancillas)
        )
        assert verify_circuit(circuit, ancillas, backend="bdd").all_safe

    def test_validation(self):
        with pytest.raises(CircuitError):
            mcx_dirty_chain([0], 1, [])
        with pytest.raises(CircuitError):
            mcx_dirty_chain([0, 1, 2], 3, [])
