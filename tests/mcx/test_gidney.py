"""Tests for the mcx.qbr construction (Figure 10.4)."""

import pytest

from repro.circuits import truth_table
from repro.circuits.metrics import toffoli_count
from repro.errors import CircuitError
from repro.mcx import gidney_mcx
from repro.verify import verify_circuit


class TestCorrectedConstruction:
    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_implements_n_controlled_not(self, m):
        layout = gidney_mcx(m)
        circuit = layout.circuit
        n_wires = circuit.num_qubits
        table = truth_table(circuit)
        target_bit = 1 << (n_wires - 1 - layout.target)
        for state in range(2**n_wires):
            out = int(table[state])
            all_on = all(
                (state >> (n_wires - 1 - w)) & 1 for w in layout.controls
            )
            assert bool((out ^ state) & target_bit) == all_on
            assert (out ^ state) & ~target_bit == 0

    @pytest.mark.parametrize("m", [3, 4, 5, 10, 50])
    def test_toffoli_count(self, m):
        assert toffoli_count(gidney_mcx(m).circuit) == 16 * (m - 2)

    @pytest.mark.parametrize("m", [3, 4, 5])
    @pytest.mark.parametrize("backend", ["bdd", "cdcl"])
    def test_dirty_ancilla_safe(self, m, backend):
        layout = gidney_mcx(m)
        report = verify_circuit(layout.circuit, [layout.ancilla], backend=backend)
        assert report.all_safe

    def test_controls_count(self):
        layout = gidney_mcx(6)
        assert layout.n == 11 and len(layout.controls) == 11

    def test_minimum_m(self):
        with pytest.raises(CircuitError):
            gidney_mcx(2)


class TestVerbatimListing:
    """The paper's printed loops (documented discrepancy D1)."""

    def test_identity_for_m_above_3(self):
        layout = gidney_mcx(4, verbatim=True)
        table = truth_table(layout.circuit)
        assert all(int(table[s]) == s for s in range(2 ** layout.circuit.num_qubits))

    def test_matches_corrected_for_m3(self):
        a = [(g.name, g.qubits) for g in gidney_mcx(3).circuit.gates]
        b = [(g.name, g.qubits) for g in gidney_mcx(3, verbatim=True).circuit.gates]
        assert a == b

    @pytest.mark.parametrize("m", [4, 5])
    def test_ancilla_still_safe(self, m):
        """Safety (what Figure 6.4 measures) holds even for the
        degenerate verbatim circuit."""
        layout = gidney_mcx(m, verbatim=True)
        report = verify_circuit(layout.circuit, [layout.ancilla], backend="bdd")
        assert report.all_safe

    def test_same_toffoli_count(self):
        for m in (4, 6):
            assert toffoli_count(
                gidney_mcx(m, verbatim=True).circuit
            ) == toffoli_count(gidney_mcx(m).circuit)
