"""Tests for the hash-consed Boolean DAG."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfn import ExprBuilder
from repro.errors import BooleanError


@pytest.fixture
def b():
    return ExprBuilder()


class TestInterning:
    def test_vars_are_unique(self, b):
        assert b.var("x") is b.var("x")
        assert b.var("x") is not b.var("y")

    def test_structural_identity(self, b):
        x, y = b.var("x"), b.var("y")
        assert b.and_([x, y]) is b.and_([y, x])  # sorted children
        assert b.xor_([x, y]) is b.xor_([y, x])

    def test_cross_builder_rejected(self):
        b1, b2 = ExprBuilder(), ExprBuilder()
        with pytest.raises(BooleanError):
            b1.and_([b1.var("x"), b2.var("x")])


class TestSimplification:
    def test_xor_pair_cancellation(self, b):
        """The paper's x ⊕ x = 0 rule (Figure 6.1)."""
        x, y = b.var("x"), b.var("y")
        assert b.xor_([x, x]).is_false
        assert b.xor_([x, y, x]) is y

    def test_xor_triple(self, b):
        x = b.var("x")
        assert b.xor_([x, x, x]) is x

    def test_xor_constant_folding(self, b):
        x = b.var("x")
        assert b.xor_([x, b.true, b.true]) is x
        assert b.xor_([b.true, b.false]) is b.true

    def test_not_is_xor_with_one(self, b):
        x = b.var("x")
        negated = b.not_(x)
        assert negated.kind == "xor"
        assert b.not_(negated) is x

    def test_and_identity_and_annihilator(self, b):
        x = b.var("x")
        assert b.and_([x, b.true]) is x
        assert b.and_([x, b.false]).is_false
        assert b.and_([]) is b.true

    def test_and_idempotent(self, b):
        x, y = b.var("x"), b.var("y")
        assert b.and_([x, x, y]) is b.and_([x, y])

    def test_and_complement_is_false(self, b):
        x = b.var("x")
        assert b.and_([x, b.not_(x)]).is_false

    def test_or_rules(self, b):
        x = b.var("x")
        assert b.or_([x, b.false]) is x
        assert b.or_([x, b.true]) is b.true
        assert b.or_([]) is b.false
        assert b.or_([x, x]) is x

    def test_flattening(self, b):
        x, y, z = b.var("x"), b.var("y"), b.var("z")
        nested = b.and_([x, b.and_([y, z])])
        flat = b.and_([x, y, z])
        assert nested is flat

    def test_implies(self, b):
        x, y = b.var("x"), b.var("y")
        imp = b.implies(x, y)
        assert b.evaluate(imp, {"x": True, "y": False}) is False
        assert b.evaluate(imp, {"x": False, "y": False}) is True

    def test_simplify_xor_off_keeps_duplicates(self):
        b = ExprBuilder(simplify_xor=False)
        x = b.var("x")
        doubled = b.xor_([x, x])
        assert not doubled.is_false
        assert b.evaluate(doubled, {"x": True}) is False


class TestSemanticOperations:
    def test_evaluate_requires_assignment(self, b):
        with pytest.raises(BooleanError):
            b.evaluate(b.var("x"), {})

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 7))
    def test_cofactor_agrees_with_evaluate(self, bits):
        b = ExprBuilder()
        x, y, z = b.var("x"), b.var("y"), b.var("z")
        expr = b.xor_([b.and_([x, y]), b.or_([y, z]), b.not_(x)])
        env = {
            "x": bool(bits & 1),
            "y": bool(bits & 2),
            "z": bool(bits & 4),
        }
        for value in (False, True):
            cof = b.cofactor(expr, "y", value)
            env2 = dict(env, y=value)
            assert b.evaluate(cof, env2) == b.evaluate(expr, env2)

    def test_substitute_composition(self, b):
        x, y = b.var("x"), b.var("y")
        expr = b.and_([x, b.not_(y)])
        swapped = b.substitute(expr, {"x": y, "y": x})
        assert b.evaluate(swapped, {"x": False, "y": True}) is True

    def test_variables_collection(self, b):
        expr = b.xor_([b.var("p"), b.and_([b.var("q"), b.var("p")])])
        assert expr.variables() == frozenset({"p", "q"})

    def test_dag_size_counts_shared_nodes_once(self, b):
        x, y = b.var("x"), b.var("y")
        shared = b.and_([x, y])
        expr = b.xor_([shared, b.or_([shared, x])])
        # nodes: x, y, and, or, xor (true not reachable)
        assert expr.dag_size() == 5


class TestPrinting:
    def test_render(self, b):
        expr = b.xor_([b.var("a"), b.and_([b.var("q1"), b.var("q2")])])
        text = b.to_string(expr)
        assert "a" in text and "&" in text and "^" in text

    def test_truncation(self, b):
        big = b.or_([b.var(f"v{i}") for i in range(100)])
        assert len(b.to_string(big, limit=50)) == 50


class TestExhaustiveEquivalence:
    def test_demorgan(self, b):
        x, y = b.var("x"), b.var("y")
        left = b.not_(b.and_([x, y]))
        right = b.or_([b.not_(x), b.not_(y)])
        for vx, vy in itertools.product([False, True], repeat=2):
            env = {"x": vx, "y": vy}
            assert b.evaluate(left, env) == b.evaluate(right, env)

    def test_xor_as_inequality(self, b):
        x, y = b.var("x"), b.var("y")
        expr = b.xor_([x, y])
        for vx, vy in itertools.product([False, True], repeat=2):
            assert b.evaluate(expr, {"x": vx, "y": vy}) == (vx != vy)
