"""Tests for CNF structures and the Tseitin transformation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfn import Cnf, ExprBuilder, TseitinEncoder, tseitin_encode
from repro.errors import BooleanError
from repro.sat import brute_force_solve


class TestCnf:
    def test_literal_validation(self):
        cnf = Cnf()
        v = cnf.new_var()
        cnf.add_clause([v, -v])
        with pytest.raises(BooleanError):
            cnf.add_clause([0])
        with pytest.raises(BooleanError):
            cnf.add_clause([v + 5])

    def test_dimacs_render(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 2 1"
        assert "1 -2 0" in text


def _models(expr, builder):
    """All satisfying assignments of an expression by enumeration."""
    names = sorted(expr.variables())
    models = set()
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        if builder.evaluate(expr, env):
            models.add(bits)
    return names, models


class TestTseitin:
    def test_equisatisfiable_simple(self):
        b = ExprBuilder()
        expr = b.and_([b.var("x"), b.not_(b.var("y"))])
        cnf, varmap = tseitin_encode(expr)
        result = brute_force_solve(cnf)
        assert result.is_sat
        assert result.model[varmap["x"]] is True
        assert result.model[varmap["y"]] is False

    def test_unsat_preserved(self):
        b = ExprBuilder(simplify_xor=False)
        x = b.var("x")
        expr = b.and_([b.xor_([x, x]), b.true])
        cnf, _ = tseitin_encode(expr)
        assert brute_force_solve(cnf).is_unsat

    def test_wide_xor_is_linear_clauses(self):
        b = ExprBuilder()
        expr = b.xor_([b.var(f"v{i}") for i in range(20)])
        cnf, _ = tseitin_encode(expr)
        # chained binary XORs: ~4 clauses per link, far below 2**20
        assert len(cnf.clauses) < 100

    def test_shared_nodes_encoded_once(self):
        b = ExprBuilder()
        x, y = b.var("x"), b.var("y")
        shared = b.and_([x, y])
        encoder = TseitinEncoder()
        lit1 = encoder.literal(shared)
        lit2 = encoder.literal(b.or_([shared, x]))
        assert encoder.literal(shared) == lit1
        assert lit1 != lit2

    def test_decode_model_defaults_unseen_to_false(self):
        b = ExprBuilder()
        encoder = TseitinEncoder()
        encoder.assert_true(b.var("x"))
        decoded = encoder.decode_model({})
        assert decoded == {"x": False}

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_model_count_preserved_on_projection(self, seed):
        """Tseitin is equisatisfiable *and* model-preserving on inputs."""
        import random

        rng = random.Random(seed)
        b = ExprBuilder()
        pool = [b.var(f"v{i}") for i in range(4)]
        for _ in range(5):
            op = rng.choice(["and", "or", "xor", "not"])
            if op == "not":
                pool.append(b.not_(rng.choice(pool)))
            else:
                args = [rng.choice(pool) for _ in range(rng.randint(2, 3))]
                pool.append(getattr(b, op + "_")(args))
        expr = pool[-1]
        names, truth_models = _models(expr, b)
        cnf, varmap = tseitin_encode(expr)
        sat = brute_force_solve(cnf)
        assert sat.is_sat == bool(truth_models)
        if sat.is_sat and names:
            projected = tuple(
                sat.model.get(varmap.get(name, 0), False) for name in names
            )
            assert projected in truth_models
