"""Tests for the vectorised truth-table kernels (repro.boolfn.bitset).

The kernel's contract is exact agreement with pointwise evaluation:
bit ``i`` of a row is the expression's value under assignment ``i``.
Random DAGs are checked bit-for-bit against ``ExprBuilder.evaluate``,
and the solver entry point against assignment enumeration.
"""

import random

import pytest

from repro.boolfn import ExprBuilder
from repro.boolfn.bitset import (
    bitset_solve,
    count_satisfying,
    model_from_index,
    truth_table,
    variable_row,
)
from repro.errors import BooleanError, SolverError


def random_expr(builder, rng, names, depth=4):
    if depth == 0 or rng.random() < 0.2:
        leaf = builder.var(rng.choice(names))
        return builder.not_(leaf) if rng.random() < 0.3 else leaf
    op = rng.choice((builder.and_, builder.or_, builder.xor_))
    width = rng.randint(2, 3)
    return op([random_expr(builder, rng, names, depth - 1) for _ in range(width)])


class TestVariableRow:
    @pytest.mark.parametrize("num_vars", (1, 2, 5, 8))
    def test_bit_i_is_assignment_i(self, num_vars):
        for position in range(num_vars):
            row = variable_row(position, num_vars)
            for index in range(1 << num_vars):
                assert (row >> index) & 1 == (index >> position) & 1

    def test_out_of_range_position_rejected(self):
        with pytest.raises(BooleanError):
            variable_row(3, 3)
        with pytest.raises(BooleanError):
            variable_row(-1, 3)


class TestTruthTable:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_pointwise_evaluation(self, seed):
        rng = random.Random(seed)
        builder = ExprBuilder()
        expr = random_expr(builder, rng, ["a", "b", "c", "d"])
        table, order = truth_table(expr)
        for index in range(1 << len(order)):
            assignment = model_from_index(index, order)
            assert (table >> index) & 1 == builder.evaluate(expr, assignment), (
                index,
                assignment,
            )

    def test_constants(self):
        builder = ExprBuilder()
        table, order = truth_table(builder.const(True))
        assert order == () and table == 1
        table, _ = truth_table(builder.const(False))
        assert table == 0

    def test_explicit_order_shares_indexing_between_cones(self):
        builder = ExprBuilder()
        a, b = builder.var("a"), builder.var("b")
        order = ("a", "b")
        conj, _ = truth_table(builder.and_([a, b]), order)
        left, _ = truth_table(a, order)
        right, _ = truth_table(b, order)
        assert conj == left & right

    def test_order_missing_a_cone_variable_rejected(self):
        builder = ExprBuilder()
        expr = builder.and_([builder.var("a"), builder.var("b")])
        with pytest.raises(BooleanError):
            truth_table(expr, ("a",))


class TestBitsetSolve:
    @pytest.mark.parametrize("seed", range(10))
    def test_verdict_matches_enumeration(self, seed):
        rng = random.Random(seed + 100)
        builder = ExprBuilder()
        expr = random_expr(builder, rng, ["p", "q", "r"])
        names = sorted(expr.variables())
        expected = any(
            builder.evaluate(expr, model_from_index(i, names))
            for i in range(1 << len(names))
        )
        result, witness = bitset_solve(expr)
        assert result.is_sat == expected
        if expected:
            assert builder.evaluate(expr, witness)
        else:
            assert witness is None

    def test_witness_is_lowest_assignment_index(self):
        # a | b is first satisfied at index 1 (a=1, b=0): deterministic,
        # matching the enumeration order the brute oracle reports.
        builder = ExprBuilder()
        _, witness = bitset_solve(
            builder.or_([builder.var("a"), builder.var("b")])
        )
        assert witness == {"a": True, "b": False}

    def test_unsat_contradiction(self):
        builder = ExprBuilder()
        a = builder.var("a")
        result, witness = bitset_solve(builder.and_([a, builder.not_(a)]))
        assert result.is_unsat and witness is None

    def test_cone_width_cap_enforced(self):
        builder = ExprBuilder()
        wide = builder.or_([builder.var(f"v{k}") for k in range(6)])
        with pytest.raises(SolverError):
            bitset_solve(wide, max_vars=5)

    def test_decisions_stat_counts_assignments(self):
        builder = ExprBuilder()
        expr = builder.xor_([builder.var("a"), builder.var("b")])
        result, _ = bitset_solve(expr)
        assert result.stats.decisions == 4


class TestCountSatisfying:
    def test_known_counts(self):
        builder = ExprBuilder()
        a, b = builder.var("a"), builder.var("b")
        assert count_satisfying(builder.xor_([a, b])) == 2
        assert count_satisfying(builder.and_([a, b])) == 1
        assert count_satisfying(builder.or_([a, b])) == 3

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_enumeration(self, seed):
        rng = random.Random(seed + 200)
        builder = ExprBuilder()
        expr = random_expr(builder, rng, ["x", "y", "z"])
        names = sorted(expr.variables())
        expected = sum(
            builder.evaluate(expr, model_from_index(i, names))
            for i in range(1 << len(names))
        )
        assert count_satisfying(expr) == expected
