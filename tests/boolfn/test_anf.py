"""Tests for ANF expansion and rendering."""

import pytest

from repro.boolfn import AnfOverflowError, ExprBuilder, anf_to_string, to_anf
from repro.boolfn.anf import anf_equal


@pytest.fixture
def b():
    return ExprBuilder()


class TestExpansion:
    def test_variable(self, b):
        assert to_anf(b.var("x")) == frozenset({frozenset({"x"})})

    def test_constants(self, b):
        assert to_anf(b.true) == frozenset({frozenset()})
        assert to_anf(b.false) == frozenset()

    def test_figure_61_formula(self, b):
        # b_a after the first Toffoli: a ^ q1 q2.
        expr = b.xor_([b.var("a"), b.and_([b.var("q1"), b.var("q2")])])
        assert anf_to_string(to_anf(expr)) == "a ^ q1&q2"

    def test_or_expansion(self, b):
        # x | y = x ^ y ^ xy
        expr = b.or_([b.var("x"), b.var("y")])
        assert to_anf(expr) == frozenset(
            {frozenset({"x"}), frozenset({"y"}), frozenset({"x", "y"})}
        )

    def test_negation(self, b):
        expr = b.not_(b.var("x"))
        assert anf_to_string(to_anf(expr)) == "1 ^ x"

    def test_distribution_cancels(self, b):
        # (x ^ y)(x ^ y) = x ^ y  (GF(2) squaring)
        xy = b.xor_([b.var("x"), b.var("y")])
        b2 = ExprBuilder(simplify_xor=False)
        xy2 = b2.xor_([b2.var("x"), b2.var("y")])
        product = b2.and_([xy2, b2.xor_([b2.var("x"), b2.var("y"), b2.false])])
        # even without builder simplification, ANF canonicalises
        assert to_anf(product) == to_anf(xy2)

    def test_budget_overflow(self, b):
        terms = [
            b.xor_([b.var(f"x{i}"), b.var(f"y{i}")]) for i in range(12)
        ]
        with pytest.raises(AnfOverflowError):
            to_anf(b.and_(terms), budget=64)


class TestRendering:
    def test_zero(self):
        assert anf_to_string(frozenset()) == "0"

    def test_sorted_by_degree(self, b):
        expr = b.xor_(
            [b.and_([b.var("p"), b.var("q")]), b.var("z"), b.true]
        )
        assert anf_to_string(to_anf(expr)) == "1 ^ z ^ p&q"

    def test_anf_equality_is_semantic(self, b):
        left = b.or_([b.var("x"), b.var("y")])
        right = b.xor_(
            [b.var("x"), b.var("y"), b.and_([b.var("x"), b.var("y")])]
        )
        assert anf_equal(to_anf(left), to_anf(right))
