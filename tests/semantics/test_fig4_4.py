"""Experiment E5: the Figure 4.4 nested-borrow program.

The paper computes ``⟦S⟧ = {E2}``: with five working qubits, both nested
borrows can only take q3, so the semantics collapses to the single
unitary implemented by the Figure 3.1 circuit.
"""


from repro.channels import QuantumOperation
from repro.circuits import circuit_unitary
from repro.lang import borrow, idle, seq, substitute, unitary
from repro.semantics import Interpretation
from repro.verify import program_is_safe
from tests.conftest import fig31_circuit, fig44_verbatim_second_routine

UNIVERSE = ["q1", "q2", "q3", "q4", "q5"]


def fig44_program(corrected: bool = True):
    """The Figure 4.4 program; ``corrected`` selects the a2-as-accumulator
    reading consistent with Figure 3.1 (see conftest for the discrepancy)."""
    if corrected:
        s2 = seq(
            unitary("CCX", "q4", "q5", "a2"),
            unitary("CCX", "a2", "q2", "q1"),
            unitary("CCX", "q4", "q5", "a2"),
            unitary("CCX", "a2", "q2", "q1"),
        )
    else:
        s2 = seq(
            unitary("CCX", "q4", "q5", "q2"),
            unitary("CCX", "a2", "q2", "q1"),
            unitary("CCX", "q4", "q5", "q2"),
            unitary("CCX", "a2", "q2", "q1"),
        )
    s1 = seq(
        unitary("CCX", "q1", "q2", "a1"),
        unitary("CCX", "a1", "q4", "q5"),
        unitary("CCX", "q1", "q2", "a1"),
        unitary("CCX", "a1", "q4", "q5"),
        borrow("a2", s2),
    )
    return seq(unitary("CX", "q2", "q3"), borrow("a1", s1))


class TestIdleScopes:
    def test_idle_s1_is_q3(self):
        program = fig44_program()
        inner_borrow = program.items[1]
        assert idle(inner_borrow.body, UNIVERSE) == frozenset({"q3"})

    def test_idle_s2_after_substitution_is_q3(self):
        program = fig44_program()
        s1 = substitute(program.items[1].body, {"a1": "q3"})
        nested = s1.items[-1]
        assert idle(nested.body, UNIVERSE) == frozenset({"q3"})


class TestSemanticsCollapse:
    def test_singleton_semantics(self):
        interp = Interpretation(UNIVERSE)
        ops = interp.denote(fig44_program())
        assert len(ops) == 1

    def test_singleton_even_for_verbatim_variant(self):
        # The collapse comes from the singleton idle pool, not safety.
        interp = Interpretation(UNIVERSE)
        ops = interp.denote(fig44_program(corrected=False))
        assert len(ops) == 1

    def test_equals_borrowed_circuit_unitary(self):
        interp = Interpretation(UNIVERSE)
        op = interp.denote(fig44_program())[0]
        # Reference: Figure 3.1c — the circuit with both ancillas mapped
        # onto q3 (wire 2).
        circuit = fig31_circuit()
        remapped = circuit.remap({5: 2, 6: 2}, 7)
        # drop the two unused ancilla wires by rebuilding on 5 wires
        from repro.circuits import Circuit

        five = Circuit(5)
        for gate in remapped.gates:
            five.append(gate)
        ref = QuantumOperation.from_unitary(circuit_unitary(five), 5)
        assert op.close_to(ref)


class TestSafety:
    def test_corrected_program_is_safe(self):
        assert program_is_safe(fig44_program(), UNIVERSE)

    def test_verbatim_variant_is_unsafe(self):
        """Documented discrepancy D2: as printed, a2 controls the final
        CCCNOT and is not safely uncomputed."""
        assert not program_is_safe(fig44_program(corrected=False), UNIVERSE)

    def test_verbatim_circuit_counterexample(self):
        from repro.verify import classical_safe_uncomputation

        circuit = fig44_verbatim_second_routine()
        result = classical_safe_uncomputation(circuit, 6)
        assert not result.safe
        assert result.failed_condition == "plus-restoration"
