"""Tests for the denotational semantics (Figure 4.3)."""

import numpy as np
import pytest

from repro.channels import QuantumOperation
from repro.circuits import Circuit, circuit_unitary, cnot
from repro.errors import SemanticsError
from repro.lang import (
    basis_measurement_on,
    borrow,
    init,
    seq,
    skip,
    unitary,
)
from repro.lang.ast import If, While
from repro.linalg import bit_ket, density, ket0, ket1, ket_plus
from repro.semantics import (
    Interpretation,
    denote,
    operations_equal,
    programs_equivalent,
    set_of_operations_equal,
)


class TestPrimitives:
    def test_skip_is_identity(self):
        ops = denote(skip(), ["q"])
        assert len(ops) == 1
        assert operations_equal(ops[0], QuantumOperation.identity(1))

    def test_init(self):
        ops = denote(init("q"), ["q"])
        out = ops[0](density(ket_plus))
        assert np.allclose(out, density(ket0))

    def test_unitary_embeds_on_named_wire(self):
        ops = denote(unitary("X", "p"), ["q", "p"])
        rho = density(bit_ket([0, 0]))
        out = ops[0](rho)
        assert np.allclose(out, density(bit_ket([0, 1])))

    def test_unknown_qubit(self):
        with pytest.raises(SemanticsError):
            denote(unitary("X", "zz"), ["q"])

    def test_universe_size_cap(self):
        with pytest.raises(SemanticsError):
            Interpretation([f"q{i}" for i in range(11)])

    def test_duplicate_universe(self):
        with pytest.raises(SemanticsError):
            Interpretation(["q", "q"])


class TestSequencing:
    def test_composition_order(self):
        # X then init: state ends at |0>.
        ops = denote(seq(unitary("X", "q"), init("q")), ["q"])
        out = ops[0](density(ket0))
        assert np.allclose(out, density(ket0))
        # init then X: state ends at |1>.
        ops = denote(seq(init("q"), unitary("X", "q")), ["q"])
        out = ops[0](density(ket0))
        assert np.allclose(out, density(ket1))


class TestIf:
    def test_if_is_branch_sum(self):
        prog = If(
            basis_measurement_on("q"),
            unitary("X", "p"),
            skip(),
        )
        ops = denote(prog, ["q", "p"])
        assert len(ops) == 1
        assert ops[0].is_trace_preserving()
        rho = density(np.kron(ket_plus, ket0))
        out = ops[0](rho)
        # q measured: 50% |1>|1>, 50% |0>|0>
        assert out[0b11, 0b11] == pytest.approx(0.5)
        assert out[0b00, 0b00] == pytest.approx(0.5)

    def test_if_with_nondeterministic_branch(self):
        # the then-branch borrows one of two idle qubits unsafely:
        # the if denotes two operations.
        prog = If(
            basis_measurement_on("q"),
            borrow("a", unitary("CX", "q", "a")),
            skip(),
        )
        ops = denote(prog, ["q", "p1", "p2"])
        assert len(ops) == 2


class TestWhile:
    def test_loop_body_runs_until_guard_false(self):
        # while q: flip q — from |1> this flips once then exits.
        prog = While(basis_measurement_on("q"), unitary("X", "q"))
        ops = denote(prog, ["q"])
        assert len(ops) == 1
        out = ops[0](density(ket1))
        assert np.allclose(out, density(ket0))

    def test_loop_never_entered(self):
        prog = While(basis_measurement_on("q"), unitary("X", "q"))
        out = denote(prog, ["q"])[0](density(ket0))
        assert np.allclose(out, density(ket0))

    def test_nonterminating_loop_loses_trace(self):
        # while q: skip — from |1> never exits: semantics is the zero map
        # on that branch (truncated sum).
        prog = While(basis_measurement_on("q"), skip())
        out = denote(prog, ["q"])[0](density(ket1))
        assert out.trace() == pytest.approx(0.0, abs=1e-12)

    def test_probabilistic_termination_converges(self):
        # while q: H q — leaks half the mass out each round.
        import numpy as np

        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        from repro.lang import unitary_matrix

        prog = While(basis_measurement_on("q"), unitary_matrix(h, "H", "q"))
        interp = Interpretation(
            ["q"], max_while_iterations=40, check_loop_convergence=True
        )
        out = interp.denote(prog)[0](density(ket1))
        assert out.trace().real == pytest.approx(1.0, abs=1e-6)
        assert np.allclose(out / out.trace(), density(ket0), atol=1e-6)

    def test_convergence_check_raises_when_truncated_early(self):
        # The H-loop leaks mass geometrically; five iterations leave a
        # residual term far above the tolerance.
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        from repro.lang import unitary_matrix

        prog = While(basis_measurement_on("q"), unitary_matrix(h, "H", "q"))
        interp = Interpretation(
            ["q"], max_while_iterations=5, check_loop_convergence=True
        )
        with pytest.raises(SemanticsError):
            interp.denote(prog)

    def test_instantly_converging_loop_passes_check(self):
        # while q: skip — every n >= 1 term is the zero map, so even a
        # shallow truncation is exact.
        prog = While(basis_measurement_on("q"), skip())
        interp = Interpretation(
            ["q"], max_while_iterations=3, check_loop_convergence=True
        )
        assert len(interp.denote(prog)) == 1


class TestBorrow:
    def test_union_over_idle_qubits(self):
        # unsafe borrow: X on the placeholder — distinct op per choice.
        prog = borrow("a", unitary("X", "a"))
        ops = denote(prog, ["q1", "q2", "q3"])
        assert len(ops) == 3

    def test_safe_borrow_collapses(self):
        # X;X on the placeholder: identity regardless of choice.
        prog = borrow("a", unitary("X", "a"), unitary("X", "a"))
        ops = denote(prog, ["q1", "q2", "q3"])
        assert len(ops) == 1

    def test_stuck_when_no_idle_qubit(self):
        prog = borrow("a", unitary("CX", "a", "q1"))
        assert denote(prog, ["q1"]) == []

    def test_stuck_propagates_through_seq(self):
        prog = seq(unitary("X", "q1"), borrow("a", unitary("CX", "a", "q1")))
        assert denote(prog, ["q1"]) == []

    def test_borrowed_qubit_excludes_used_ones(self):
        prog = borrow("a", unitary("CX", "a", "q1"))
        ops = denote(prog, ["q1", "q2"])
        # only q2 can be borrowed
        expected = Circuit(2).append(cnot(1, 0))
        ref = QuantumOperation.from_unitary(circuit_unitary(expected), 2)
        assert len(ops) == 1 and operations_equal(ops[0], ref)


class TestEquivalence:
    def test_programs_equivalent(self):
        double_x = seq(unitary("X", "q"), unitary("X", "q"))
        assert programs_equivalent(double_x, skip(), ["q", "p"])
        assert not programs_equivalent(unitary("X", "q"), skip(), ["q"])

    def test_set_equality_is_order_insensitive(self):
        a = denote(borrow("a", unitary("X", "a")), ["q1", "q2"])
        b = list(reversed(a))
        assert set_of_operations_equal(a, b)

    def test_set_equality_detects_size_mismatch(self):
        a = denote(borrow("a", unitary("X", "a")), ["q1", "q2"])
        assert not set_of_operations_equal(a, a[:1])
