"""Property-based invariants of the denotational semantics."""

import random

import pytest

from repro.channels.operation import dedup_operations
from repro.lang import borrow, init, seq, skip, unitary
from repro.lang.ast import If, basis_measurement_on
from repro.semantics import Interpretation, set_of_operations_equal

UNIVERSE = ["q1", "q2", "q3"]


def random_program(rng: random.Random, depth: int):
    roll = rng.random()
    names = UNIVERSE
    if depth == 0 or roll < 0.35:
        kind = rng.choice(["skip", "init", "x", "cx"])
        if kind == "skip":
            return skip()
        if kind == "init":
            return init(rng.choice(names))
        if kind == "x":
            return unitary("X", rng.choice(names))
        a, b = rng.sample(names, 2)
        return unitary("CX", a, b)
    if roll < 0.6:
        return seq(
            random_program(rng, depth - 1), random_program(rng, depth - 1)
        )
    if roll < 0.8:
        return If(
            basis_measurement_on(rng.choice(names)),
            random_program(rng, depth - 1),
            random_program(rng, depth - 1),
        )
    body = random_program(rng, depth - 1)
    placeholder = f"a{depth}_{rng.randrange(10**6)}"
    if rng.random() < 0.5:
        # make the placeholder actually used
        body = seq(body, unitary("X", placeholder))
    return borrow(placeholder, body)


@pytest.fixture(scope="module")
def interp():
    return Interpretation(UNIVERSE)


class TestInvariants:
    def test_all_operations_trace_nonincreasing(self, interp):
        rng = random.Random(11)
        for _ in range(40):
            program = random_program(rng, rng.randint(0, 3))
            for op in interp.denote(program):
                assert op.is_trace_nonincreasing()

    def test_measurement_free_programs_trace_preserving(self, interp):
        rng = random.Random(12)
        for _ in range(30):
            # depth-limited programs without If (roll ranges avoided by
            # regenerating until no If appears is wasteful; build directly)
            items = []
            for _ in range(rng.randint(1, 5)):
                kind = rng.choice(["init", "x", "cx"])
                if kind == "init":
                    items.append(init(rng.choice(UNIVERSE)))
                elif kind == "x":
                    items.append(unitary("X", rng.choice(UNIVERSE)))
                else:
                    a, b = rng.sample(UNIVERSE, 2)
                    items.append(unitary("CX", a, b))
            program = seq(*items)
            for op in interp.denote(program):
                assert op.is_trace_preserving()

    def test_denote_is_deduplicated(self, interp):
        rng = random.Random(13)
        for _ in range(25):
            program = random_program(rng, rng.randint(0, 3))
            ops = interp.denote(program)
            assert len(dedup_operations(ops)) == len(ops)

    def test_skip_is_identity_of_sequencing(self, interp):
        rng = random.Random(14)
        for _ in range(25):
            program = random_program(rng, rng.randint(0, 2))
            left = interp.denote(seq(program, skip()))
            right = interp.denote(program)
            assert set_of_operations_equal(left, right)

    def test_borrow_cardinality_bounded_by_pool(self, interp):
        rng = random.Random(15)
        for _ in range(25):
            body = random_program(rng, 1)
            placeholder = f"b_{rng.randrange(10**6)}"
            program = borrow(placeholder, seq(body, unitary("X", placeholder)))
            from repro.lang import idle

            pool = idle(program.body, UNIVERSE)
            ops = interp.denote(program)
            assert len(ops) <= max(len(pool), 1)

    def test_double_borrow_of_unused_placeholder_collapses(self, interp):
        program = borrow("a", skip())
        ops = interp.denote(program)
        assert len(ops) == 1  # identity regardless of the choice
