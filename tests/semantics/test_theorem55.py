"""Theorem 5.5: a program is safe iff its semantics is deterministic
(``|⟦S⟧| <= 1``) on sufficiently large universes."""

import random

from repro.lang import borrow, init, seq, skip, unitary
from repro.lang.ast import If, basis_measurement_on
from repro.verify import program_is_safe
from repro.verify.channel import semantics_is_deterministic

UNIVERSE = ["q1", "q2", "q3", "q4"]


class TestBothDirections:
    def test_safe_program_is_deterministic(self):
        # CX twice on the borrowed qubit: identity -> safe.
        prog = seq(
            unitary("X", "q1"),
            borrow("a", unitary("CX", "q1", "a"), unitary("CX", "q1", "a")),
        )
        assert program_is_safe(prog, UNIVERSE)
        assert semantics_is_deterministic(prog, UNIVERSE)

    def test_unsafe_program_is_nondeterministic(self):
        prog = borrow("a", unitary("X", "a"))
        assert not program_is_safe(prog, UNIVERSE)
        assert not semantics_is_deterministic(prog, UNIVERSE)

    def test_stuck_program_counts_as_deterministic(self):
        # |⟦S⟧| = 0: every borrow option is exhausted.
        prog = borrow(
            "a",
            unitary("CX", "a", "q1"),
            unitary("CX", "a", "q2"),
            unitary("CX", "a", "q3"),
            unitary("CX", "a", "q4"),
        )
        assert semantics_is_deterministic(prog, UNIVERSE)

    def test_example_52_q_safe_but_program_unsafe(self):
        """Example 5.2: q is safely uncomputed, the borrow is not."""
        from repro.verify import program_safely_uncomputes

        prog = seq(
            unitary("X", "q1"),
            borrow("a", unitary("X", "q1"), unitary("X", "a")),
        )
        assert program_safely_uncomputes(prog, "q1", UNIVERSE)
        assert not program_is_safe(prog, UNIVERSE)
        assert not semantics_is_deterministic(prog, UNIVERSE)


def random_borrow_program(rng, safe):
    """A borrow whose body either restores the placeholder or not."""
    target = rng.choice(["q1", "q2"])
    if safe:
        body = [
            unitary("CX", target, "a"),
            unitary("X", "a"),
            unitary("X", "a"),
            unitary("CX", target, "a"),
        ]
    else:
        body = [unitary("CX", target, "a"), unitary("X", "a")]
    prefix = [unitary("X", target)] if rng.random() < 0.5 else []
    return seq(*prefix, borrow("a", *body))


class TestRandomised:
    def test_equivalence_on_random_programs(self):
        rng = random.Random(3)
        for _ in range(20):
            safe = rng.random() < 0.5
            prog = random_borrow_program(rng, safe)
            assert program_is_safe(prog, UNIVERSE) == safe
            assert semantics_is_deterministic(prog, UNIVERSE) == safe


class TestControlFlowSafety:
    def test_safe_borrow_inside_if(self):
        prog = If(
            basis_measurement_on("q1"),
            borrow("a", unitary("X", "a"), unitary("X", "a")),
            skip(),
        )
        assert program_is_safe(prog, UNIVERSE)
        assert semantics_is_deterministic(prog, UNIVERSE)

    def test_unsafe_borrow_inside_if(self):
        prog = If(
            basis_measurement_on("q1"),
            borrow("a", unitary("X", "a")),
            skip(),
        )
        assert not program_is_safe(prog, UNIVERSE)
        assert not semantics_is_deterministic(prog, UNIVERSE)

    def test_init_on_borrowed_qubit_is_unsafe(self):
        # Resetting a dirty qubit destroys its state: not identity.
        prog = borrow("a", init("a"))
        assert not program_is_safe(prog, UNIVERSE)
