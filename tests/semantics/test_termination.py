"""Tests for the spectral termination analysis (Section 7 companion)."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang import basis_measurement_on, borrow, seq, skip, unitary
from repro.lang.ast import If, While, unitary_matrix
from repro.semantics import (
    Interpretation,
    loop_terminates_almost_surely,
    program_loops_terminate,
)

H = np.array([[1, 1], [1, -1]]) / np.sqrt(2)


class TestSingleLoops:
    def test_flip_loop_terminates(self):
        # while q: X[q] — exits after exactly one iteration.
        loop = While(basis_measurement_on("q"), unitary("X", "q"))
        verdict = loop_terminates_almost_surely(loop, ["q"])
        assert verdict.terminates
        assert verdict.spectral_radius < 1e-6

    def test_skip_loop_diverges(self):
        loop = While(basis_measurement_on("q"), skip())
        verdict = loop_terminates_almost_surely(loop, ["q"])
        assert not verdict.terminates
        assert verdict.spectral_radius == pytest.approx(1.0, abs=1e-9)

    def test_divergence_witness_is_trapped_state(self):
        loop = While(basis_measurement_on("q"), skip())
        verdict = loop_terminates_almost_surely(loop, ["q"])
        assert verdict.witness is not None
        # the witness must be |1><1|: measured T forever.
        assert verdict.witness[1, 1] == pytest.approx(1.0, abs=1e-6)

    def test_hadamard_loop_terminates_probabilistically(self):
        loop = While(
            basis_measurement_on("q"), unitary_matrix(H, "H", "q")
        )
        verdict = loop_terminates_almost_surely(loop, ["q"])
        assert verdict.terminates
        # each round keeps probability 1/2; the superoperator's
        # spectral radius is the squared Kraus eigenvalue: 0.5
        assert verdict.spectral_radius == pytest.approx(0.5, abs=1e-6)

    def test_guard_on_other_qubit_diverges(self):
        # while q: X[p] — q never changes; diverges from q=1.
        loop = While(basis_measurement_on("q"), unitary("X", "p"))
        verdict = loop_terminates_almost_surely(loop, ["q", "p"])
        assert not verdict.terminates

    def test_nondeterministic_body_rejected(self):
        loop = While(
            basis_measurement_on("q"),
            borrow("a", unitary("X", "a")),
        )
        with pytest.raises(SemanticsError):
            loop_terminates_almost_surely(loop, ["q", "p1", "p2"])


class TestWholePrograms:
    def test_loop_free_program(self):
        program = seq(unitary("X", "q"), unitary("CX", "q", "p"))
        assert program_loops_terminate(program, ["q", "p"])

    def test_nested_divergent_loop_found(self):
        program = seq(
            unitary("X", "q"),
            If(
                basis_measurement_on("p"),
                While(basis_measurement_on("q"), skip()),
                skip(),
            ),
        )
        assert not program_loops_terminate(program, ["q", "p"])

    def test_terminating_loop_inside_borrow(self):
        program = borrow(
            "a",
            While(basis_measurement_on("q"), unitary("X", "q")),
        )
        assert program_loops_terminate(program, ["q", "p1"])

    def test_shared_interpretation(self):
        interp = Interpretation(["q"])
        loop = While(basis_measurement_on("q"), unitary("X", "q"))
        verdict = loop_terminates_almost_surely(
            loop, ["q"], interpretation=interp
        )
        assert verdict.terminates
        assert "terminates" in str(verdict)
