"""Experiment E11 — ablations of the design choices in DESIGN.md §5.

A1  hash-consed x⊕x=0 simplification during formula tracking
    (Figure 6.1's rule): turning it off inflates the formulas the
    backends must decide — an order of magnitude at n = 20.
A2  clause learning: plain DPLL vs CDCL on the same CNF — three orders
    of magnitude by n = 10 on the adder family.
A3  BDD variable order: circuit order vs reversed on both benchmark
    families, plus the classic interleaved-vs-separated witness where
    order changes the BDD size exponentially.
"""

import time

import pytest

from repro.bdd import FALSE_NODE, Bdd
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source, mcx_qbr_source
from repro.verify import track_circuit, verify_circuit

from benchmarks.conftest import run_once


class TestA1Simplification:
    @pytest.mark.parametrize("simplify", [True, False], ids=["on", "off"])
    def test_cdcl_with_and_without_xor_rule(self, benchmark, simplify):
        program = elaborate(adder_qbr_source(14))

        def verify():
            return verify_circuit(
                program.circuit,
                program.dirty_wires,
                backend="cdcl",
                simplify_xor=simplify,
            )

        report = run_once(benchmark, verify)
        assert report.all_safe
        tracked = track_circuit(program.circuit, simplify_xor=simplify)
        benchmark.extra_info["formula_nodes"] = tracked.builder.node_count

    def test_simplification_shrinks_formulas(self):
        program = elaborate(adder_qbr_source(20))
        with_rule = track_circuit(program.circuit, simplify_xor=True)
        without = track_circuit(program.circuit, simplify_xor=False)
        # Hash-consing keeps the DAGs shared either way, so total node
        # inflation is moderate (~1.5x at n=20)...
        assert without.builder.node_count > 1.2 * with_rule.builder.node_count
        # ...but the *per-qubit* formulas the solver must decide blow up:
        # without the rule, cancelled history accumulates in every b_q.
        wire = program.dirty_wires[len(program.dirty_wires) // 2]
        assert (
            without.formula_of(wire).dag_size()
            > 2 * with_rule.formula_of(wire).dag_size()
        )


class TestA2ClauseLearning:
    @pytest.mark.parametrize("backend", ["cdcl", "dpll"])
    @pytest.mark.parametrize("n", [6, 8])
    def test_adder_verification(self, benchmark, backend, n):
        program = elaborate(adder_qbr_source(n))

        def verify():
            return verify_circuit(
                program.circuit, program.dirty_wires, backend=backend
            )

        report = run_once(benchmark, verify)
        assert report.all_safe

    def test_learning_wins_by_orders_of_magnitude(self):
        program = elaborate(adder_qbr_source(9))
        timings = {}
        for backend in ("cdcl", "dpll"):
            start = time.perf_counter()
            verify_circuit(program.circuit, program.dirty_wires, backend=backend)
            timings[backend] = time.perf_counter() - start
        assert timings["dpll"] > 5 * timings["cdcl"], timings


class TestA3VariableOrder:
    @pytest.mark.parametrize("backend", ["bdd", "bdd-reversed"])
    @pytest.mark.parametrize(
        "family,size", [("adder", 100), ("mcx", 250)]
    )
    def test_both_orders_on_both_families(self, benchmark, backend, family, size):
        source = (
            adder_qbr_source(size) if family == "adder" else mcx_qbr_source(size)
        )
        program = elaborate(source)

        def verify():
            return verify_circuit(
                program.circuit, program.dirty_wires, backend=backend
            )

        report = run_once(benchmark, verify)
        assert report.all_safe

    def test_order_can_matter_exponentially(self, benchmark):
        """The textbook witness: OR of a_i AND b_i has a linear BDD under
        the interleaved order and an exponential one when the a's and
        b's are separated."""
        k = 10

        def build(order):
            bdd = Bdd(order)
            acc = FALSE_NODE
            for i in range(k):
                acc = bdd.apply_or(
                    acc, bdd.apply_and(bdd.var(f"a{i}"), bdd.var(f"b{i}"))
                )
            return bdd.size(acc)

        interleaved = [x for i in range(k) for x in (f"a{i}", f"b{i}")]
        separated = [f"a{i}" for i in range(k)] + [f"b{i}" for i in range(k)]

        sizes = run_once(
            benchmark, lambda: (build(interleaved), build(separated))
        )
        good, bad = sizes
        benchmark.extra_info["interleaved_nodes"] = good
        benchmark.extra_info["separated_nodes"] = bad
        assert bad > 20 * good
