"""Regenerate the paper's tables and the machine-readable perf record.

Standalone companion to the pytest-benchmark harness: prints

* Figure 1.1  — adder cost table;
* Figure 10.2 — adder verification seconds per qubit count, per backend;
* Figure 10.3 — MCX verification seconds per qubit count, per backend;

and always writes two machine-readable perf records so successive PRs
can track the trajectory:

* ``BENCH_verify.json`` — per-backend solver seconds on a fixed
  ≥12-dirty-qubit circuit plus the sequential-loop vs. batch-engine
  wall-time comparison;
* ``BENCH_alloc.json`` — final width and wall time of every registered
  allocation strategy on the Figure 3.1 example and the 13-dirty-qubit
  adder, the lazy vs. eager verification comparison, a ≥8-job online
  multi-programming workload per strategy, the seeded 50-job queueing
  trace per queue policy (fifo / backfill / sjf / priority), and the
  seeded 50-job *lending* trace per (policy, lending-mode) pair —
  whole vs. windowed vs. segmented admitted counts — and the seeded
  50-job *fleet* trace routed through single-machine baselines and a
  2x11 :class:`FleetRouter` under every placement policy; together
  the numbers the bench-regression gate guards.

The *sequential loop* baseline is the pre-batch caller pattern (one
:func:`verify_circuit` call per dirty qubit, re-tracking and re-encoding
the circuit each time — what the multi-programming scheduler used to do
per borrow).  The batch row runs the same checks through one
:class:`repro.verify.batch.BatchVerifier` call.

Run:  python benchmarks/run_paper_tables.py [--quick] [--bench-only]
                                            [--bench-json PATH]
                                            [--alloc-json PATH]
"""

from __future__ import annotations

import json
import sys
import time

from repro.adders import haner_ripple_constant_adder
from repro.adders.costs import adder_cost_rows
from repro.alloc import (
    IncrementalConflictModel,
    LookaheadStrategy,
    StreamingAllocator,
    allocate,
    available_strategies,
    build_model,
    stream_allocate,
)
from repro.circuits import Circuit, cnot, from_qasm, iter_qasm_gates, toffoli, x
from repro.errors import SolverError
from repro.lang.surface import elaborate, iter_program
from repro.lang.surface.sources import adder_qbr_source, mcx_qbr_source
from repro.mcx import cccnot_with_dirty_ancilla
from repro.multiprog import (
    BorrowRequest,
    FleetRouter,
    MultiProgrammer,
    QuantumJob,
    available_placements,
    available_policies,
)
from repro.testing import (
    random_arrival_trace,
    random_fleet_trace,
    random_lending_trace,
    random_reversible_circuit,
    replay_trace,
)
from repro.verify import BatchVerifier, available_backends, verify_circuit

QUICK = "--quick" in sys.argv
BENCH_ONLY = "--bench-only" in sys.argv

#: Fixed workload of the BENCH_verify.json record: adder.qbr with 13
#: dirty carry ancillas (the acceptance floor is >= 12).
BENCH_ADDER_N = 14

#: Sweep rows collected for BENCH_verify.json as figures run.
_figure_rows: dict = {}


def _flag_path(flag: str, default: str) -> str:
    if flag in sys.argv:
        index = sys.argv.index(flag) + 1
        if index >= len(sys.argv) or sys.argv[index].startswith("--"):
            sys.exit(f"error: {flag} requires a path argument")
        return sys.argv[index]
    return default


def _bench_json_path() -> str:
    return _flag_path("--bench-json", "BENCH_verify.json")


def _alloc_json_path() -> str:
    return _flag_path("--alloc-json", "BENCH_alloc.json")


def figure_1_1() -> None:
    print("=== Figure 1.1: constant-adder costs (measured at n = 64) ===")
    rows = {row.adder: row for row in adder_cost_rows([64])}
    print(f"{'':14}{'cuccaro':>10}{'takahashi':>12}{'draper':>10}{'haner':>10}")
    for metric in ("size", "depth"):
        values = [getattr(rows[a], metric) for a in
                  ("cuccaro", "takahashi", "draper", "haner")]
        print(f"{metric:<14}" + "".join(f"{v:>10}" for v in [values[0], values[1]])
              + f"{values[2]:>10}{values[3]:>10}")
    ancillas = [
        f"{rows['cuccaro'].clean_ancillas}(clean)",
        f"{rows['takahashi'].clean_ancillas}(clean)",
        "0",
        f"{rows['haner'].dirty_ancillas}(dirty)",
    ]
    print(f"{'ancillas':<14}" + "".join(f"{v:>10}" for v in ancillas[:2])
          + f"{ancillas[2]:>10}{ancillas[3]:>10}")
    print()


def _sweep(name, key, sources, backends) -> None:
    print(f"=== {name} ===")
    header = f"{'Duration (s)':<14}" + "".join(
        f"{label:>14}" for label, _ in sources
    )
    print(header)
    rows = _figure_rows.setdefault(key, [])
    for backend, cap in backends:
        cells = []
        for label, source in sources:
            program = elaborate(source)
            if cap is not None and program.circuit.num_qubits > cap:
                cells.append(f"{'—':>14}")
                continue
            start = time.perf_counter()
            report = verify_circuit(
                program.circuit, program.dirty_wires, backend=backend
            )
            elapsed = time.perf_counter() - start
            flag = "" if report.all_safe else "!UNSAFE"
            cells.append(f"{elapsed:>13.2f}{flag:1}")
            rows.append({
                "backend": backend,
                "qubits": program.circuit.num_qubits,
                "dirty_qubits": len(program.dirty_wires),
                "wall_seconds": round(elapsed, 4),
                "solver_seconds": round(report.solver_seconds, 4),
                "all_safe": report.all_safe,
            })
        print(f"{backend:<14}" + "".join(cells))
    print()


def figure_10_2() -> None:
    ns = [50, 75, 100] if QUICK else [50, 75, 100, 125, 150, 175, 200]
    sources = [(f"{n} qubits", adder_qbr_source(n)) for n in ns]
    backends = [("bdd", None), ("cdcl", 160 if not QUICK else 110)]
    _sweep(
        "Figure 10.2: adder.qbr verification (all n-1 dirty ancillas)",
        "fig10_2",
        sources,
        backends,
    )


def figure_10_3() -> None:
    ms = [250, 500, 750] if QUICK else [250, 500, 750, 1000, 1250, 1500, 1750]
    sources = [(f"{2 * m - 1} qubits", mcx_qbr_source(m)) for m in ms]
    backends = [("cdcl", None), ("bdd", 1600)]
    _sweep(
        "Figure 10.3: mcx.qbr verification (one dirty ancilla)",
        "fig10_3",
        sources,
        backends,
    )


#: Largest adder each backend gets in the per-backend table.  Brute
#: and bitset enumerate truth tables, whose cone width crosses the
#: bitset kernel's 20-variable ceiling past n=10 (n=10 is up from
#: brute's historical n=4 — the bitset fast path moved its wall).
#: Reduced workloads are recorded per row so the JSON stays honest.
_BACKEND_ADDER_CAP = {"brute": 10, "bitset": 10}

#: Backends kept registered but retired from the default bench
#: workload: dpll has no clause learning (~30x per +2 qubits past its
#: n=8/3s cap) and only ever dragged the verify record — see the
#: docstring note in repro/verify/backends/dpll.py.
_BENCH_RETIRED = ("dpll",)


def per_backend_solver_seconds() -> list:
    """Solver seconds of every registered backend on its largest
    tractable adder workload (``qubits`` recorded per row).  Retired
    backends (:data:`_BENCH_RETIRED`) stay registered and tested but
    are skipped here."""
    rows = []
    for backend in available_backends():
        if backend in _BENCH_RETIRED:
            print(f"  {backend:<14} retired from the bench workload", flush=True)
            continue
        n = min(BENCH_ADDER_N, _BACKEND_ADDER_CAP.get(backend, BENCH_ADDER_N))
        program = elaborate(adder_qbr_source(n))
        start = time.perf_counter()
        try:
            report = verify_circuit(
                program.circuit, program.dirty_wires, backend=backend
            )
        except SolverError as error:
            rows.append({"backend": backend, "adder_n": n, "error": str(error)})
            print(f"  {backend:<14} n={n:<3} (failed: {error})", flush=True)
            continue
        wall = time.perf_counter() - start
        rows.append({
            "backend": backend,
            "adder_n": n,
            "dirty_qubits": len(program.dirty_wires),
            "wall_seconds": round(wall, 4),
            "solver_seconds": round(report.solver_seconds, 4),
            "all_safe": report.all_safe,
        })
        print(
            f"  {backend:<14} n={n:<3} solver={report.solver_seconds:>8.3f}s "
            f"wall={wall:>8.3f}s",
            flush=True,
        )
    return rows


def sequential_vs_batch(program, backend: str) -> dict:
    """The headline comparison: per-qubit verify_circuit loop vs. one
    BatchVerifier call over the same dirty qubits.  Records parallel
    *efficiency* (speedup / workers) so a "1.11x with 8 threads" result
    reads as the 14% efficiency it is, not as a win."""
    start = time.perf_counter()
    sequential_verdicts = []
    for qubit in program.dirty_wires:
        report = verify_circuit(program.circuit, [qubit], backend=backend)
        sequential_verdicts.extend(report.verdicts)
    sequential_wall = time.perf_counter() - start

    verifier = BatchVerifier(backend=backend)
    start = time.perf_counter()
    batch_report = verifier.verify_circuit(
        program.circuit, program.dirty_wires
    )
    batch_wall = time.perf_counter() - start

    agree = [v.safe for v in sequential_verdicts] == [
        v.safe for v in batch_report.verdicts
    ]
    speedup = (
        round(sequential_wall / batch_wall, 2) if batch_wall > 0 else None
    )
    workers = verifier.max_workers
    row = {
        "backend": backend,
        "dirty_qubits": len(program.dirty_wires),
        "sequential_wall_seconds": round(sequential_wall, 4),
        "batch_wall_seconds": round(batch_wall, 4),
        "speedup": speedup,
        "workers": workers,
        "efficiency": round(speedup / workers, 3)
        if speedup is not None else None,
        "verdicts_agree": agree,
    }
    print(
        f"  {backend:<14} sequential={sequential_wall:>8.3f}s "
        f"batch={batch_wall:>8.3f}s speedup={row['speedup']}x "
        f"efficiency={row['efficiency']}"
    )
    return row


def front_bitset_vs_brute() -> dict:
    """Front 1: the bitset truth-table kernel vs. the historical brute
    CNF enumeration, on the n=4 adder the old brute wall was measured
    on.  ``bitset_max_vars=0`` disables brute's bitset fast path, so
    the baseline is the genuine pre-kernel code path."""
    from repro.verify.backends.brute import BruteCheckerBackend
    from repro.verify.tracking import track_circuit

    program = elaborate(adder_qbr_source(4))
    qubits = sorted(program.dirty_wires)

    old = BruteCheckerBackend(
        track_circuit(program.circuit), bitset_max_vars=0
    )
    start = time.perf_counter()
    old_safe = all(old.check_qubit(q).safe for q in qubits)
    old_wall = time.perf_counter() - start

    start = time.perf_counter()
    report = verify_circuit(
        program.circuit, qubits, backend="bitset"
    )
    new_wall = time.perf_counter() - start

    row = {
        "front": "bitset_vs_brute",
        "adder_n": 4,
        "obligations": len(qubits),
        "old_brute_wall_seconds": round(old_wall, 4),
        "bitset_wall_seconds": round(new_wall, 4),
        "speedup": round(old_wall / new_wall, 1) if new_wall > 0 else None,
        "verdicts_agree": old_safe == report.all_safe,
    }
    print(
        f"  bitset_vs_brute    old={old_wall:>8.3f}s new={new_wall:>8.3f}s "
        f"speedup={row['speedup']}x"
    )
    return row


def front_incremental_vs_fresh(program) -> dict:
    """Front 2: one long-lived probing solver vs. a fresh CDCL instance
    per obligation, over the full per-qubit batch.  Interleaved repeats
    with a median keep the strict `incremental < fresh` gate out of
    runner-jitter territory."""
    from repro.verify.backends.cdcl import CdclCheckerBackend
    from repro.verify.tracking import track_circuit

    qubits = sorted(program.dirty_wires)
    repeats = 3 if QUICK else 5

    def run(incremental: bool) -> float:
        checker = CdclCheckerBackend(
            track_circuit(program.circuit), incremental=incremental
        )
        start = time.perf_counter()
        for qubit in qubits:
            checker.check_qubit(qubit)
        return time.perf_counter() - start

    fresh_walls, incremental_walls = [], []
    for _ in range(repeats):
        fresh_walls.append(run(False))
        incremental_walls.append(run(True))
    fresh = sorted(fresh_walls)[repeats // 2]
    incremental = sorted(incremental_walls)[repeats // 2]
    row = {
        "front": "incremental_vs_fresh",
        "adder_n": BENCH_ADDER_N,
        "obligations": len(qubits),
        "repeats": repeats,
        "fresh_solver_seconds": round(fresh, 4),
        "incremental_solver_seconds": round(incremental, 4),
        "ratio": round(incremental / fresh, 3) if fresh > 0 else None,
    }
    print(
        f"  incremental_vs_fresh fresh={fresh:>7.3f}s "
        f"incremental={incremental:>7.3f}s ratio={row['ratio']}"
    )
    return row


def front_process_vs_thread() -> dict:
    """Front 3: the process-pool executor vs. the thread pool on a
    CPU-bound multi-circuit batch.  Pure-Python solving holds the GIL,
    so threads add nothing; processes scale with cores — which is why
    the row records ``cpu_count`` and the gate only binds on machines
    with enough of them."""
    import os

    from repro.verify import BatchVerifier, VerificationJob

    ns = (13, 14, 15, 16) if QUICK else (15, 16, 17, 18)
    workers = 4
    jobs = []
    for n in ns:
        program = elaborate(adder_qbr_source(n))
        jobs.append(
            VerificationJob(
                program.circuit, tuple(sorted(program.dirty_wires))
            )
        )

    def run(executor: str) -> float:
        with BatchVerifier(
            backend="cdcl",
            executor=executor,
            max_workers=workers,
            replay=False,
        ) as verifier:
            if executor == "process":
                # Spin the pool up outside the timed region: the row
                # measures steady-state batch throughput, not fork cost.
                verifier._process_pool()
            start = time.perf_counter()
            reports = verifier.verify_circuits(jobs)
            wall = time.perf_counter() - start
        assert all(report.all_safe for report in reports)
        return wall

    thread_wall = run("thread")
    process_wall = run("process")
    row = {
        "front": "process_vs_thread",
        "adder_ns": list(ns),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "thread_wall_seconds": round(thread_wall, 4),
        "process_wall_seconds": round(process_wall, 4),
        "speedup": round(thread_wall / process_wall, 2)
        if process_wall > 0 else None,
    }
    print(
        f"  process_vs_thread  thread={thread_wall:>7.3f}s "
        f"process={process_wall:>7.3f}s speedup={row['speedup']}x "
        f"(cpus={row['cpu_count']})"
    )
    return row


def bench_verify(path: str) -> None:
    program = elaborate(adder_qbr_source(BENCH_ADDER_N))
    workload = (
        f"adder.qbr n={BENCH_ADDER_N} "
        f"({len(program.dirty_wires)} dirty carry ancillas); "
        f"reduced workloads: brute/bitset n=10 "
        f"(brute raised from its historical n=4 wall); "
        f"dpll retired from the bench (still registered)"
    )
    print(f"=== BENCH_verify: {workload} ===", flush=True)
    print("per-backend solver seconds:", flush=True)
    backend_rows = per_backend_solver_seconds()
    print("solver-speed fronts:", flush=True)
    fronts = [
        front_bitset_vs_brute(),
        front_incremental_vs_fresh(program),
        front_process_vs_thread(),
    ]
    print("sequential loop vs. batch engine:", flush=True)
    comparison = [
        sequential_vs_batch(program, backend) for backend in ("bdd", "cdcl")
    ]
    payload = {
        "schema": "bench-verify/v2",
        "generated_by": "benchmarks/run_paper_tables.py",
        "workload": workload,
        "quick": QUICK,
        "backends": backend_rows,
        "fronts": fronts,
        "sequential_vs_batch": comparison,
        "figures": _figure_rows,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    print()


# --------------------------------------------------------------------- #
# BENCH_alloc: the borrow-allocation subsystem
# --------------------------------------------------------------------- #


def _fig31_circuit() -> Circuit:
    """The Figure 3.1a running example (see tests/conftest.py)."""
    c = Circuit(7, labels=["q1", "q2", "q3", "q4", "q5", "a1", "a2"])
    c.append(cnot(1, 2))
    c.extend(
        [toffoli(0, 1, 5), toffoli(5, 3, 4), toffoli(0, 1, 5), toffoli(5, 3, 4)]
    )
    c.extend(
        [toffoli(3, 4, 6), toffoli(6, 1, 0), toffoli(3, 4, 6), toffoli(6, 1, 0)]
    )
    return c


def _strategy_rows(label: str, circuit: Circuit, dirty) -> list:
    """Final width + wall seconds of every registered strategy."""
    rows = []
    for name in available_strategies():
        strategy = (
            LookaheadStrategy() if name == "lookahead" else name
        )
        start = time.perf_counter()
        plan = allocate(circuit, list(dirty), strategy=strategy)
        wall = time.perf_counter() - start
        row = {
            "strategy": name,
            "final_width": plan.final_width,
            "placed": len(plan.assignment),
            "unplaced": len(plan.unplaced),
            "wall_seconds": round(wall, 4),
        }
        if name == "lookahead":
            row["optimal"] = strategy.last_optimal
        rows.append(row)
        print(
            f"  {label:<10} {name:<15} width={plan.final_width:<4} "
            f"placed={len(plan.assignment):<3} wall={wall:>8.4f}s"
        )
    return rows


def _lazy_vs_eager_verification(circuit: Circuit, dirty) -> dict:
    """The tentpole comparison: the seed verified every requested
    ancilla up front; the ``verified`` strategy only pays for ancillas
    that actually have a candidate host."""
    eager = BatchVerifier(backend="bdd")
    start = time.perf_counter()
    eager.verify_circuit(circuit, list(dirty))
    eager_wall = time.perf_counter() - start

    lazy = BatchVerifier(backend="bdd")
    start = time.perf_counter()
    allocate(circuit, list(dirty), strategy="verified", verifier=lazy)
    lazy_wall = time.perf_counter() - start

    row = {
        "dirty_qubits": len(dirty),
        "eager_wall_seconds": round(eager_wall, 4),
        "eager_solver_runs": eager.cache_misses,
        "lazy_wall_seconds": round(lazy_wall, 4),
        "lazy_solver_runs": lazy.cache_misses,
    }
    print(
        f"  verification: eager={eager_wall:.4f}s "
        f"({eager.cache_misses} solver runs) vs "
        f"lazy={lazy_wall:.4f}s ({lazy.cache_misses} runs)"
    )
    return row


def _online_jobs() -> list:
    """A mixed ≥8-job arrival sequence for the online scheduler."""
    jobs = []
    for i in range(3):
        circuit = Circuit(5).extend(
            cccnot_with_dirty_ancilla([0, 1, 3], 4, 2)
        )
        jobs.append(QuantumJob(f"oracle-{i}", circuit, [BorrowRequest(2)]))
    for i in range(2):
        layout = haner_ripple_constant_adder(3 + i, 5)
        jobs.append(
            QuantumJob(
                f"adder-{i}",
                layout.circuit,
                [BorrowRequest(w) for w in layout.dirty_ancillas],
            )
        )
    for i in range(3):
        circuit = Circuit(4).extend([cnot(0, 1), x(0), cnot(0, 1)])
        jobs.append(QuantumJob(f"sampler-{i}", circuit, []))
    return jobs


def _online_workload(strategy: str) -> dict:
    """Admit 8 jobs, release the first half, admit them again —
    exercising occupancy, lending and verdict memoisation."""
    jobs = _online_jobs()
    machine = sum(job.circuit.num_qubits for job in jobs)
    programmer = MultiProgrammer(machine, strategy=strategy)
    start = time.perf_counter()
    for job in jobs:
        programmer.admit(job)
    peak = programmer.occupancy
    for job in jobs[: len(jobs) // 2]:
        programmer.release(job.name)
    for job in jobs[: len(jobs) // 2]:
        programmer.admit(job)
    wall = time.perf_counter() - start
    cross = sum(
        len(programmer.admission(job.name).cross_hosts) for job in jobs
    )
    row = {
        "strategy": strategy,
        "jobs": len(jobs),
        "machine": machine,
        "wall_seconds": round(wall, 4),
        "peak_occupancy": peak,
        "final_occupancy": programmer.occupancy,
        "cross_borrows": cross,
        "solver_runs": programmer.verifier.cache_misses,
        "cache_hits": programmer.verifier.cache_hits,
    }
    print(
        f"  online     {strategy:<15} wall={wall:>8.4f}s "
        f"peak={peak:<4} cross_borrows={cross:<3} "
        f"solver_runs={programmer.verifier.cache_misses}"
    )
    return row


#: The queueing record's fixed workload: one seeded ≥50-job arrival
#: trace (repro.testing) with jobs up to 9 wires against a 12-qubit
#: machine — wide arrivals block a strict FIFO head while narrower
#: jobs' timeouts run out, which is exactly the regime backfill is
#: for.  Replayed under every registered queue policy.
QUEUE_TRACE_SEED = 1
QUEUE_TRACE_JOBS = 50
QUEUE_MACHINE = 12


def _queueing_workload(policy: str) -> dict:
    """Replay the fixed seeded trace under one queue policy.

    The trace is regenerated from the seed for each policy, so every
    policy sees byte-identical jobs and the admitted/wait numbers are
    directly comparable; verdict memoisation is intentionally NOT
    shared across policies so each row's wall time is honest.  Mean
    wait can legitimately be *higher* under backfill — it admits jobs
    FIFO would have let expire, and those waited longest.
    """
    trace = random_arrival_trace(
        QUEUE_TRACE_SEED,
        num_jobs=QUEUE_TRACE_JOBS,
        timeout_probability=0.4,
        max_data=7,
        max_ancillas=2,
    )
    programmer = MultiProgrammer(
        QUEUE_MACHINE, queue_policy=policy, max_workers=1
    )
    start = time.perf_counter()
    log = replay_trace(programmer, trace)
    wall = time.perf_counter() - start
    stats = log.stats
    row = {
        "policy": policy,
        "jobs": QUEUE_TRACE_JOBS,
        "machine": QUEUE_MACHINE,
        "trace_events": len(trace),
        "admitted": stats["admitted"],
        "admitted_from_queue": stats["admitted_from_queue"],
        "expired": stats["expired"],
        "rejected": stats["rejected"],
        "mean_wait_events": stats["mean_wait_events"],
        "wall_seconds": round(wall, 4),
        "admitted_per_second": round(stats["admitted"] / wall, 2)
        if wall > 0
        else None,
        "solver_runs": programmer.verifier.cache_misses,
    }
    print(
        f"  queueing   {policy:<15} admitted={stats['admitted']:<3} "
        f"(queue {stats['admitted_from_queue']}, "
        f"expired {stats['expired']}) "
        f"mean_wait={stats['mean_wait_events']:<6} "
        f"wall={wall:>8.4f}s"
    )
    return row


#: The lending record's fixed workload: the seed-1 50-job lending
#: trace (repro.testing.random_lending_trace: every 8th arrival is a
#: 5-wire lender offering 2 idle wires, the rest are guests whose safe
#: ancillas can only be hosted by a cross-program lease — 70% of them
#: segmented guests whose two identity blocks straddle a long restore
#: gap) against an 11-qubit machine.  Offers are scarce by
#: construction, so whole-residency lending runs out of lease-free
#: wires, windowed lending multiplexes them, and segmented lending
#: additionally threads guests through the restore gaps — replayed
#: under every registered queue policy and all three lending modes so
#: the admitted counts are directly comparable (and CI-gated:
#: windowed must never admit fewer than whole, segmented never fewer
#: than windowed, and segmented must beat windowed outright under at
#: least one policy).
LENDING_TRACE_SEED = 1
LENDING_TRACE_JOBS = 50
LENDING_MACHINE = 11
LENDING_MODES = ("whole", "windowed", "segmented")


def _lending_workload(policy: str, lending: str) -> dict:
    """Replay the fixed seeded lending trace under one (policy,
    lending-mode) pair.  Deterministic counts, honest wall times (no
    verifier sharing across rows)."""
    trace = random_lending_trace(
        LENDING_TRACE_SEED, num_jobs=LENDING_TRACE_JOBS
    )
    programmer = MultiProgrammer(
        LENDING_MACHINE,
        queue_policy=policy,
        lending=lending,
        max_workers=1,
    )
    start = time.perf_counter()
    log = replay_trace(programmer, trace)
    wall = time.perf_counter() - start
    stats = log.stats
    row = {
        "policy": policy,
        "lending": lending,
        "jobs": LENDING_TRACE_JOBS,
        "machine": LENDING_MACHINE,
        "admitted": stats["admitted"],
        "expired": stats["expired"],
        "leases_granted": programmer.total_leases,
        "wall_seconds": round(wall, 4),
    }
    print(
        f"  lending    {policy:<9} {lending:<9} "
        f"admitted={stats['admitted']:<3} "
        f"leases={programmer.total_leases:<3} "
        f"expired={stats['expired']:<3} wall={wall:>8.4f}s"
    )
    return row


# --------------------------------------------------------------------- #
# Fleet routing (repro.multiprog.fleet)
# --------------------------------------------------------------------- #

#: The fleet record's fixed workload: one seeded 50-job fleet trace
#: (recurring circuit families included — the signal family-affinity
#: placement routes on), replayed through a single 11-qubit machine
#: (the baseline a half-fleet must never lose to), one monolithic
#: 22-qubit router, and a 2x11 fleet under every registered placement
#: policy.  The CI gate binds fleet(2x11) admitted >= single(11)
#: admitted for each policy.
FLEET_TRACE_SEED = 1
FLEET_TRACE_JOBS = 50
FLEET_SHARD = 11


def _fleet_trace() -> list:
    return random_fleet_trace(FLEET_TRACE_SEED, num_jobs=FLEET_TRACE_JOBS)


def _fleet_row(label: str, shards: list, placement: str) -> dict:
    """Replay the fixed fleet trace through one router configuration.

    The trace is regenerated from the seed per row, so every
    configuration sees byte-identical jobs; no verifier sharing across
    rows, so each wall time is honest."""
    trace = _fleet_trace()
    router = FleetRouter(shards, placement=placement, max_workers=1)
    start = time.perf_counter()
    log = replay_trace(router, trace)
    wall = time.perf_counter() - start
    stats = log.stats
    row = {
        "label": label,
        "shards": list(shards),
        "placement": placement,
        "jobs": FLEET_TRACE_JOBS,
        "admitted": stats["admitted"],
        "admitted_from_queue": stats["admitted_from_queue"],
        "migrations": stats["migrations"],
        "rejected": stats["rejected"],
        "wall_seconds": round(wall, 4),
    }
    print(
        f"  fleet      {label:<22} admitted={stats['admitted']:<3} "
        f"(queue {stats['admitted_from_queue']}, "
        f"migrations {stats['migrations']}) wall={wall:>8.4f}s"
    )
    return row


def _fleet_section() -> dict:
    """The ``fleet`` record: single-shard baselines plus a 2x11 fleet
    per placement policy, all on one pinned trace."""
    rows = [
        _fleet_row(f"single{FLEET_SHARD}", [FLEET_SHARD], "least-loaded"),
        _fleet_row(
            f"single{2 * FLEET_SHARD}",
            [2 * FLEET_SHARD],
            "least-loaded",
        ),
    ]
    rows.extend(
        _fleet_row(
            f"fleet2x{FLEET_SHARD}[{placement}]",
            [FLEET_SHARD, FLEET_SHARD],
            placement,
        )
        for placement in available_placements()
    )
    return {"seed": FLEET_TRACE_SEED, "rows": rows}


# --------------------------------------------------------------------- #
# Streaming allocation (repro.alloc.streaming)
# --------------------------------------------------------------------- #

#: Seeds of the streaming record's fixed workloads.  The large
#: generated circuit is what the incremental-vs-rescan gate binds on;
#: the lookahead sweep replays a 20-circuit corpus (seeds
#: STREAM_CORPUS_BASE..+N) at every horizon.
STREAM_SEED = 7
STREAM_CORPUS_BASE = 100

#: Horizons of the plan-quality sweep; ``None`` is ∞ and is recorded
#: as the string ``"inf"`` (JSON has no infinity).
STREAM_LOOKAHEADS = (0, 8, 64, None)


def _stream_workloads() -> list:
    """``(label, circuit, ancillas)`` rows for incremental-vs-rescan:
    a 200+-gate generated circuit (144 gates in quick mode) and a wide
    adder."""
    seg, mid = (6, 30) if QUICK else (12, 60)
    generated, gen_ancillas = random_reversible_circuit(
        STREAM_SEED,
        num_data=12,
        num_ancillas=6,
        segment_gates=seg,
        middle_gates=mid,
    )
    rows = [
        (f"generated-{len(generated.gates)}", generated, gen_ancillas)
    ]
    n = 12 if QUICK else 16
    adder = elaborate(adder_qbr_source(n))
    rows.append(
        (f"adder{n}", adder.circuit, tuple(sorted(adder.dirty_wires)))
    )
    return rows


def _stream_rescan_row(label: str, circuit: Circuit, ancillas) -> dict:
    """Per-gate model maintenance, two ways.

    The *rescan* path is the pre-streaming caller pattern: after every
    arriving gate, rebuild the conflict model from scratch over the
    whole prefix (O(gates) per gate, quadratic overall).  The
    *incremental* path appends each gate to one
    :class:`IncrementalConflictModel`, answers the same per-touch
    window query the streaming allocator makes, and snapshots the full
    model once at the end.  Both finish with identical models (checked
    and recorded), so the speedup is pure data-structure win.
    """
    ancilla_set = set(ancillas)

    start = time.perf_counter()
    grow = Circuit(circuit.num_qubits, labels=circuit.labels)
    rescan_model = None
    for gate in circuit.gates:
        grow.append(gate)
        rescan_model = build_model(grow, ancillas)
    rescan_wall = time.perf_counter() - start

    start = time.perf_counter()
    engine = IncrementalConflictModel(
        circuit.num_qubits, ancillas, labels=circuit.labels
    )
    for gate in circuit.gates:
        engine.append(gate)
        for a in set(gate.qubits) & ancilla_set:
            engine.window(a)
    incremental_model = engine.snapshot()
    incremental_wall = time.perf_counter() - start

    agree = (
        rescan_model.windows == incremental_model.windows
        and rescan_model.candidates == incremental_model.candidates
        and rescan_model.conflicts == incremental_model.conflicts
    )
    speedup = (
        round(rescan_wall / incremental_wall, 1)
        if incremental_wall > 0
        else None
    )
    row = {
        "workload": label,
        "gates": len(circuit.gates),
        "ancillas": len(ancillas),
        "rescan_wall_seconds": round(rescan_wall, 4),
        "incremental_wall_seconds": round(incremental_wall, 4),
        "speedup": speedup,
        "models_agree": agree,
    }
    print(
        f"  streaming  {label:<15} rescan={rescan_wall:>8.4f}s "
        f"incremental={incremental_wall:>8.4f}s speedup={speedup}x"
    )
    return row


def _stream_throughput_row(circuit: Circuit, ancillas) -> dict:
    """Gates/second of a live :class:`StreamingAllocator` (lookahead 8,
    the middle of the sweep) over the large generated workload."""
    allocator = StreamingAllocator(
        circuit.num_qubits, ancillas, lookahead=8, labels=circuit.labels
    )
    start = time.perf_counter()
    for gate in circuit.gates:
        allocator.feed(gate)
    plan = allocator.close()
    wall = time.perf_counter() - start
    row = {
        "lookahead": 8,
        "gates": len(circuit.gates),
        "wall_seconds": round(wall, 4),
        "gates_per_second": round(len(circuit.gates) / wall, 1)
        if wall > 0
        else None,
        "final_width": plan.final_width,
        "stats": allocator.stats.as_dict(),
    }
    print(
        f"  streaming  throughput      {row['gates']} gates in "
        f"{wall:>8.4f}s = {row['gates_per_second']} gates/s"
    )
    return row


def _stream_lookahead_rows() -> list:
    """Plan quality vs horizon over a seeded corpus.

    Every circuit is replayed at each K; the ∞ row must reproduce the
    offline greedy plans exactly (``plans_match_offline`` — the
    differential contract, CI-gated), and every row's total width is
    directly comparable against ``offline_total_width``.
    """
    count = 8 if QUICK else 20
    corpus = [
        random_reversible_circuit(
            seed,
            num_data=6,
            num_ancillas=3,
            segment_gates=4,
            middle_gates=8,
        )
        for seed in range(STREAM_CORPUS_BASE, STREAM_CORPUS_BASE + count)
    ]
    offline = [
        allocate(circuit, ancillas, strategy="greedy")
        for circuit, ancillas in corpus
    ]
    offline_width = sum(plan.final_width for plan in offline)
    rows = []
    for lookahead in STREAM_LOOKAHEADS:
        plans = [
            stream_allocate(circuit, ancillas, lookahead=lookahead)
            for circuit, ancillas in corpus
        ]
        width = sum(plan.final_width for plan in plans)
        matches = all(
            plan.assignment == base.assignment
            and plan.unplaced == base.unplaced
            for plan, base in zip(plans, offline)
        )
        label = "inf" if lookahead is None else lookahead
        rows.append(
            {
                "lookahead": label,
                "circuits": len(corpus),
                "total_width": width,
                "offline_total_width": offline_width,
                "width_matches_offline": width == offline_width,
                "plans_match_offline": matches,
            }
        )
        print(
            f"  streaming  lookahead={label!s:<5} total_width={width:<4} "
            f"(offline {offline_width}) plans_match={matches}"
        )
    return rows


def _stream_segmented_parity() -> dict:
    """∞-lookahead differential under segmented windows and spoiled
    ancillas: every seeded plan must equal offline greedy, window sets
    included."""
    count = 6 if QUICK else 12
    matches = True
    for seed in range(STREAM_CORPUS_BASE, STREAM_CORPUS_BASE + count):
        circuit, ancillas = random_reversible_circuit(
            seed,
            num_data=5,
            num_ancillas=3,
            segment_gates=3,
            middle_gates=6,
            # Wire 5 is the first ancilla; spoiling it on odd seeds
            # exercises the never-segmented whole-window path too.
            spoiled=(5,) if seed % 2 else (),
        )
        base = allocate(
            circuit, ancillas, strategy="greedy", segmented=True
        )
        plan = stream_allocate(circuit, ancillas, segmented=True)
        matches = matches and (
            plan.assignment == base.assignment
            and plan.unplaced == base.unplaced
            and plan.windows == base.windows
            and plan.final_width == base.final_width
        )
    row = {"circuits": count, "matches_offline": matches}
    print(
        f"  streaming  segmented ∞-parity over {count} circuits: "
        f"matches={matches}"
    )
    return row


def _streaming_section() -> dict:
    workloads = _stream_workloads()
    large = workloads[0]
    return {
        "seed": STREAM_SEED,
        "incremental_vs_rescan": [
            _stream_rescan_row(label, circuit, ancillas)
            for label, circuit, ancillas in workloads
        ],
        "throughput": _stream_throughput_row(large[1], large[2]),
        "lookahead": _stream_lookahead_rows(),
        "segmented_parity": _stream_segmented_parity(),
    }


# --------------------------------------------------------------------- #
# Streaming front end (parse-while-allocate)
# --------------------------------------------------------------------- #

#: Repeats per wall-time measurement; medians go into the record so a
#: single noisy run cannot flip the overlapped-vs-staged comparison.
FRONTEND_REPEATS = 3 if QUICK else 5

#: How many times each pipeline runs inside one timed measurement —
#: the single-shot walls sit under the gate's noise floor, so the
#: rows record amplified (and therefore gateable) timings.
FRONTEND_AMPLIFY = 4 if QUICK else 12


def _median(values: list) -> float:
    return sorted(values)[len(values) // 2]


def _frontend_workloads() -> list:
    adder_n, mcx_n = (16, 12) if QUICK else (32, 20)
    return [
        (f"adder{adder_n}", adder_qbr_source(adder_n)),
        (f"mcx{mcx_n}", mcx_qbr_source(mcx_n)),
    ]


def _frontend_overlap_row(label: str, source: str) -> dict:
    """Staged vs overlapped front end over one ``.qbr`` workload.

    *Staged* is the pre-streaming caller pattern: elaborate the whole
    program, then feed the finished gate list to a
    :class:`StreamingAllocator`.  *Overlapped* feeds the allocator
    from :func:`iter_program` as each statement elaborates — the
    parse-while-allocate path.  Register width and dirty wires are
    precomputed outside both timed regions (both paths need them to
    build the allocator), and each measurement runs the pipeline
    ``FRONTEND_AMPLIFY`` times so the medians clear the gate's noise
    floor.
    """
    program = elaborate(source)
    width = program.circuit.num_qubits
    dirty = tuple(sorted(program.dirty_wires))

    staged_walls, overlapped_walls = [], []
    for _ in range(FRONTEND_REPEATS):
        start = time.perf_counter()
        for _ in range(FRONTEND_AMPLIFY):
            staged = elaborate(source)
            allocator = StreamingAllocator(width, dirty, lookahead=8)
            for gate in staged.circuit.gates:
                allocator.feed(gate)
            allocator.close()
        staged_walls.append(time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(FRONTEND_AMPLIFY):
            allocator = StreamingAllocator(width, dirty, lookahead=8)
            for gate in iter_program(source):
                allocator.feed(gate)
            allocator.close()
        overlapped_walls.append(time.perf_counter() - start)

    staged_wall = _median(staged_walls)
    overlapped_wall = _median(overlapped_walls)
    row = {
        "workload": label,
        "gates": len(program.circuit.gates),
        "repeats": FRONTEND_REPEATS,
        "amplify": FRONTEND_AMPLIFY,
        "staged_wall_seconds": round(staged_wall, 4),
        "overlapped_wall_seconds": round(overlapped_wall, 4),
        "overlap_ratio": round(overlapped_wall / staged_wall, 3)
        if staged_wall > 0
        else None,
    }
    print(
        f"  frontend   {label:<15} staged={staged_wall:>8.4f}s "
        f"overlapped={overlapped_wall:>8.4f}s "
        f"ratio={row['overlap_ratio']}"
    )
    return row


def _frontend_first_lease() -> dict:
    """Time to first lease of a prefix admission vs one full parse.

    A long OpenQASM program opens with a four-gate dirty-borrow block
    on wire 3 (provably safe on the prefix), followed by a tail that
    never touches it again.  The staged baseline must parse all of it
    before any admission decision; :meth:`MultiProgrammer.admit_stream`
    grants the cross-program lease after consuming only the prefix —
    the latency win the whole streaming front end exists for.
    """
    tail = 1200 if QUICK else 4000
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        "qreg q[4];",
        "ccx q[0],q[1],q[3];",
        "cx q[3],q[2];",
        "ccx q[0],q[1],q[3];",
        "cx q[3],q[2];",
    ]
    lines.extend("x q[0];" if i % 2 else "cx q[0],q[1];" for i in range(tail))
    text = "\n".join(lines) + "\n"
    prefix_gates = 4

    lender = Circuit(5)
    lender.append(cnot(0, 1))
    lender.append(cnot(1, 2))

    parse_walls, lease_walls = [], []
    lease_granted = True
    for _ in range(FRONTEND_REPEATS):
        start = time.perf_counter()
        parsed = from_qasm(text)
        parse_walls.append(time.perf_counter() - start)

        programmer = MultiProgrammer(9, max_workers=1)
        programmer.admit(QuantumJob("lender", lender))
        start = time.perf_counter()
        stream = iter_qasm_gates(text)
        prefix = [next(stream) for _ in range(prefix_gates)]
        handle = programmer.admit_stream(
            "guest", stream.num_qubits, [3], prefix=prefix
        )
        lease_walls.append(time.perf_counter() - start)
        lease_granted = lease_granted and bool(handle.admission.leases)
        handle.extend(stream)
        handle.close()

    row = {
        "gates": len(parsed.gates),
        "prefix_gates": prefix_gates,
        "repeats": FRONTEND_REPEATS,
        "staged_parse_wall_seconds": round(_median(parse_walls), 4),
        "time_to_first_lease_seconds": round(_median(lease_walls), 4),
        "lease_granted": lease_granted,
    }
    print(
        f"  frontend   first-lease     parse={row['staged_parse_wall_seconds']:>8.4f}s "
        f"first_lease={row['time_to_first_lease_seconds']:>8.4f}s "
        f"granted={lease_granted}"
    )
    return row


def _frontend_adaptive_rows() -> list:
    """Adaptive vs fixed lookahead over the seeded streaming corpus.

    Replays the lookahead sweep's corpus under ``fixed-0`` (commit at
    first sight: narrowest latency, most premature commits),
    ``fixed-8`` (the sweep's middle horizon) and the ``adaptive``
    policy (fresh per circuit — the registry string builds one per
    allocator).  The gate binds adaptive's total width to the best
    fixed row and its disturbance count (rollbacks + revocations) to
    fixed-0's.
    """
    count = 8 if QUICK else 20
    corpus = [
        random_reversible_circuit(
            seed,
            num_data=6,
            num_ancillas=3,
            segment_gates=4,
            middle_gates=8,
        )
        for seed in range(STREAM_CORPUS_BASE, STREAM_CORPUS_BASE + count)
    ]
    rows = []
    for label, lookahead in (
        ("fixed-0", 0),
        ("fixed-8", 8),
        ("adaptive", "adaptive"),
    ):
        width = rollbacks = revocations = replans = 0
        for circuit, ancillas in corpus:
            allocator = StreamingAllocator(
                circuit.num_qubits, ancillas, lookahead=lookahead
            )
            for gate in circuit.gates:
                allocator.feed(gate)
            plan = allocator.close()
            width += plan.final_width
            rollbacks += allocator.stats.rollbacks
            revocations += allocator.stats.revocations
            replans += allocator.stats.replans
        rows.append(
            {
                "policy": label,
                "circuits": count,
                "total_width": width,
                "rollbacks": rollbacks,
                "revocations": revocations,
                "disturbances": rollbacks + revocations,
                "replans": replans,
            }
        )
        print(
            f"  frontend   policy={label:<9} total_width={width:<4} "
            f"rollbacks={rollbacks:<3} revocations={revocations:<3} "
            f"replans={replans}"
        )
    return rows


def _streaming_frontend_section() -> dict:
    return {
        "workloads": [
            _frontend_overlap_row(label, source)
            for label, source in _frontend_workloads()
        ],
        "first_lease": _frontend_first_lease(),
        "adaptive": _frontend_adaptive_rows(),
    }


# --------------------------------------------------------------------- #
# Restore-check admission cost (structural vs solver)
# --------------------------------------------------------------------- #

#: The restore-check record's pinned workload: a large seeded lending
#: trace (timeouts off, so admission work — not queue churn —
#: dominates) replayed under segmented lending with each certifier.
RESTORE_TRACE_SEED = 2
RESTORE_TRACE_JOBS = 100 if QUICK else 300
RESTORE_MACHINE = 11


def _restore_check_row(restore_check: str) -> dict:
    walls = []
    for _ in range(FRONTEND_REPEATS):
        trace = random_lending_trace(
            RESTORE_TRACE_SEED, num_jobs=RESTORE_TRACE_JOBS, timeouts=False
        )
        programmer = MultiProgrammer(
            RESTORE_MACHINE,
            lending="segmented",
            restore_check=restore_check,
            max_workers=1,
        )
        start = time.perf_counter()
        log = replay_trace(programmer, trace)
        walls.append(time.perf_counter() - start)
    wall = _median(walls)
    row = {
        "restore_check": restore_check,
        "jobs": RESTORE_TRACE_JOBS,
        "machine": RESTORE_MACHINE,
        "admitted": len(log.admitted),
        "leases_granted": programmer.total_leases,
        "wall_seconds": round(wall, 4),
    }
    print(
        f"  restore    {restore_check:<11} admitted={row['admitted']:<4} "
        f"leases={row['leases_granted']:<4} wall={wall:>8.4f}s"
    )
    return row


def _restore_check_section() -> dict:
    """Admission cost of the solver-backed restore certifier.

    The measurement behind the scheduler's segmented-mode default: the
    solver certifier only runs where the structural palindrome check
    fails, and its verdicts share the scheduler's memoised verifier,
    so the overhead on the pinned trace is small — under the 10%
    budget that justified flipping ``lending="segmented"`` to
    ``restore_check="solver"`` by default.
    """
    rows = [
        _restore_check_row(check) for check in ("structural", "solver")
    ]
    structural, solver = rows
    overhead = (
        round(
            (solver["wall_seconds"] - structural["wall_seconds"])
            / structural["wall_seconds"],
            3,
        )
        if structural["wall_seconds"] > 0
        else None
    )
    print(f"  restore    solver overhead fraction: {overhead}")
    return {
        "seed": RESTORE_TRACE_SEED,
        "rows": rows,
        "solver_overhead_fraction": overhead,
        "segmented_default": "solver",
    }


def bench_alloc(path: str) -> None:
    fig31 = _fig31_circuit()
    adder = elaborate(adder_qbr_source(BENCH_ADDER_N))
    print(
        f"=== BENCH_alloc: fig 3.1 + adder.qbr n={BENCH_ADDER_N} "
        f"({len(adder.dirty_wires)} dirty) + "
        f"{len(_online_jobs())}-job online workload + "
        f"{QUEUE_TRACE_JOBS}-job queueing trace + "
        f"{LENDING_TRACE_JOBS}-job lending trace + "
        f"{FLEET_TRACE_JOBS}-job fleet trace ===",
        flush=True,
    )
    payload = {
        "schema": "bench-alloc/v1",
        "generated_by": "benchmarks/run_paper_tables.py",
        "quick": QUICK,
        "workloads": {
            "fig31": _strategy_rows("fig31", fig31, [5, 6]),
            f"adder{BENCH_ADDER_N}": _strategy_rows(
                f"adder{BENCH_ADDER_N}", adder.circuit, adder.dirty_wires
            ),
        },
        "lazy_vs_eager_verification": _lazy_vs_eager_verification(
            adder.circuit, adder.dirty_wires
        ),
        "online": [
            _online_workload(strategy)
            for strategy in available_strategies()
        ],
        "queueing": {
            "seed": QUEUE_TRACE_SEED,
            "rows": [
                _queueing_workload(policy)
                for policy in available_policies()
            ],
        },
        "lending": {
            "seed": LENDING_TRACE_SEED,
            "rows": [
                _lending_workload(policy, lending)
                for policy in available_policies()
                for lending in LENDING_MODES
            ],
        },
        "fleet": _fleet_section(),
        "streaming": _streaming_section(),
        "streaming_frontend": _streaming_frontend_section(),
        "restore_check": _restore_check_section(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    print()


if __name__ == "__main__":
    bench_path = _bench_json_path()  # validate flags before the sweeps
    alloc_path = _alloc_json_path()
    if not BENCH_ONLY:
        figure_1_1()
        figure_10_2()
        figure_10_3()
    bench_verify(bench_path)
    bench_alloc(alloc_path)
