"""Regenerate the paper's tables in their original layout.

Standalone companion to the pytest-benchmark harness: prints

* Figure 1.1  — adder cost table;
* Figure 10.2 — adder verification seconds per qubit count, per backend;
* Figure 10.3 — MCX verification seconds per qubit count, per backend.

The output of this script is the source of the measured columns in
EXPERIMENTS.md.

Run:  python benchmarks/run_paper_tables.py [--quick]
"""

from __future__ import annotations

import sys
import time

from repro.adders.costs import adder_cost_rows
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source, mcx_qbr_source
from repro.verify import verify_circuit

QUICK = "--quick" in sys.argv


def figure_1_1() -> None:
    print("=== Figure 1.1: constant-adder costs (measured at n = 64) ===")
    rows = {row.adder: row for row in adder_cost_rows([64])}
    print(f"{'':14}{'cuccaro':>10}{'takahashi':>12}{'draper':>10}{'haner':>10}")
    for metric in ("size", "depth"):
        values = [getattr(rows[a], metric) for a in
                  ("cuccaro", "takahashi", "draper", "haner")]
        print(f"{metric:<14}" + "".join(f"{v:>10}" for v in [values[0], values[1]])
              + f"{values[2]:>10}{values[3]:>10}")
    ancillas = [
        f"{rows['cuccaro'].clean_ancillas}(clean)",
        f"{rows['takahashi'].clean_ancillas}(clean)",
        "0",
        f"{rows['haner'].dirty_ancillas}(dirty)",
    ]
    print(f"{'ancillas':<14}" + "".join(f"{v:>10}" for v in ancillas[:2])
          + f"{ancillas[2]:>10}{ancillas[3]:>10}")
    print()


def _sweep(name, sources, backends) -> None:
    print(f"=== {name} ===")
    header = f"{'Duration (s)':<14}" + "".join(
        f"{label:>14}" for label, _ in sources
    )
    print(header)
    for backend, cap in backends:
        cells = []
        for label, source in sources:
            program = elaborate(source)
            if cap is not None and program.circuit.num_qubits > cap:
                cells.append(f"{'—':>14}")
                continue
            start = time.perf_counter()
            report = verify_circuit(
                program.circuit, program.dirty_wires, backend=backend
            )
            elapsed = time.perf_counter() - start
            flag = "" if report.all_safe else "!UNSAFE"
            cells.append(f"{elapsed:>13.2f}{flag:1}")
        print(f"{backend:<14}" + "".join(cells))
    print()


def figure_10_2() -> None:
    ns = [50, 75, 100] if QUICK else [50, 75, 100, 125, 150, 175, 200]
    sources = [(f"{n} qubits", adder_qbr_source(n)) for n in ns]
    backends = [("bdd", None), ("cdcl", 160 if not QUICK else 110)]
    _sweep(
        "Figure 10.2: adder.qbr verification (all n-1 dirty ancillas)",
        sources,
        backends,
    )


def figure_10_3() -> None:
    ms = [250, 500, 750] if QUICK else [250, 500, 750, 1000, 1250, 1500, 1750]
    sources = [(f"{2 * m - 1} qubits", mcx_qbr_source(m)) for m in ms]
    backends = [("cdcl", None), ("bdd", 1600)]
    _sweep(
        "Figure 10.3: mcx.qbr verification (one dirty ancilla)",
        sources,
        backends,
    )


if __name__ == "__main__":
    figure_1_1()
    figure_10_2()
    figure_10_3()
