"""Regenerate the paper's tables and the machine-readable perf record.

Standalone companion to the pytest-benchmark harness: prints

* Figure 1.1  — adder cost table;
* Figure 10.2 — adder verification seconds per qubit count, per backend;
* Figure 10.3 — MCX verification seconds per qubit count, per backend;

and always writes ``BENCH_verify.json`` — per-backend solver seconds on
a fixed ≥12-dirty-qubit circuit plus the sequential-loop vs. batch-engine
wall-time comparison — so successive PRs can track the perf trajectory.

The *sequential loop* baseline is the pre-batch caller pattern (one
:func:`verify_circuit` call per dirty qubit, re-tracking and re-encoding
the circuit each time — what the multi-programming scheduler used to do
per borrow).  The batch row runs the same checks through one
:class:`repro.verify.batch.BatchVerifier` call.

Run:  python benchmarks/run_paper_tables.py [--quick] [--bench-only]
                                            [--bench-json PATH]
"""

from __future__ import annotations

import json
import sys
import time

from repro.adders.costs import adder_cost_rows
from repro.errors import SolverError
from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source, mcx_qbr_source
from repro.verify import BatchVerifier, available_backends, verify_circuit

QUICK = "--quick" in sys.argv
BENCH_ONLY = "--bench-only" in sys.argv

#: Fixed workload of the BENCH_verify.json record: adder.qbr with 13
#: dirty carry ancillas (the acceptance floor is >= 12).
BENCH_ADDER_N = 14

#: Sweep rows collected for BENCH_verify.json as figures run.
_figure_rows: dict = {}


def _bench_json_path() -> str:
    if "--bench-json" in sys.argv:
        index = sys.argv.index("--bench-json") + 1
        if index >= len(sys.argv) or sys.argv[index].startswith("--"):
            sys.exit("error: --bench-json requires a path argument")
        return sys.argv[index]
    return "BENCH_verify.json"


def figure_1_1() -> None:
    print("=== Figure 1.1: constant-adder costs (measured at n = 64) ===")
    rows = {row.adder: row for row in adder_cost_rows([64])}
    print(f"{'':14}{'cuccaro':>10}{'takahashi':>12}{'draper':>10}{'haner':>10}")
    for metric in ("size", "depth"):
        values = [getattr(rows[a], metric) for a in
                  ("cuccaro", "takahashi", "draper", "haner")]
        print(f"{metric:<14}" + "".join(f"{v:>10}" for v in [values[0], values[1]])
              + f"{values[2]:>10}{values[3]:>10}")
    ancillas = [
        f"{rows['cuccaro'].clean_ancillas}(clean)",
        f"{rows['takahashi'].clean_ancillas}(clean)",
        "0",
        f"{rows['haner'].dirty_ancillas}(dirty)",
    ]
    print(f"{'ancillas':<14}" + "".join(f"{v:>10}" for v in ancillas[:2])
          + f"{ancillas[2]:>10}{ancillas[3]:>10}")
    print()


def _sweep(name, key, sources, backends) -> None:
    print(f"=== {name} ===")
    header = f"{'Duration (s)':<14}" + "".join(
        f"{label:>14}" for label, _ in sources
    )
    print(header)
    rows = _figure_rows.setdefault(key, [])
    for backend, cap in backends:
        cells = []
        for label, source in sources:
            program = elaborate(source)
            if cap is not None and program.circuit.num_qubits > cap:
                cells.append(f"{'—':>14}")
                continue
            start = time.perf_counter()
            report = verify_circuit(
                program.circuit, program.dirty_wires, backend=backend
            )
            elapsed = time.perf_counter() - start
            flag = "" if report.all_safe else "!UNSAFE"
            cells.append(f"{elapsed:>13.2f}{flag:1}")
            rows.append({
                "backend": backend,
                "qubits": program.circuit.num_qubits,
                "dirty_qubits": len(program.dirty_wires),
                "wall_seconds": round(elapsed, 4),
                "solver_seconds": round(report.solver_seconds, 4),
                "all_safe": report.all_safe,
            })
        print(f"{backend:<14}" + "".join(cells))
    print()


def figure_10_2() -> None:
    ns = [50, 75, 100] if QUICK else [50, 75, 100, 125, 150, 175, 200]
    sources = [(f"{n} qubits", adder_qbr_source(n)) for n in ns]
    backends = [("bdd", None), ("cdcl", 160 if not QUICK else 110)]
    _sweep(
        "Figure 10.2: adder.qbr verification (all n-1 dirty ancillas)",
        "fig10_2",
        sources,
        backends,
    )


def figure_10_3() -> None:
    ms = [250, 500, 750] if QUICK else [250, 500, 750, 1000, 1250, 1500, 1750]
    sources = [(f"{2 * m - 1} qubits", mcx_qbr_source(m)) for m in ms]
    backends = [("cdcl", None), ("bdd", 1600)]
    _sweep(
        "Figure 10.3: mcx.qbr verification (one dirty ancilla)",
        "fig10_3",
        sources,
        backends,
    )


#: Largest adder each backend gets in the per-backend table.  DPLL has
#: no clause learning (~30x per +2 qubits past n=8) and brute force
#: caps at 24 CNF variables, so both run a reduced companion workload —
#: recorded per row so the JSON stays honest.
_BACKEND_ADDER_CAP = {"dpll": 8, "brute": 4}


def per_backend_solver_seconds() -> list:
    """Solver seconds of every registered backend on its largest
    tractable adder workload (``qubits`` recorded per row)."""
    rows = []
    for backend in available_backends():
        n = min(BENCH_ADDER_N, _BACKEND_ADDER_CAP.get(backend, BENCH_ADDER_N))
        program = elaborate(adder_qbr_source(n))
        start = time.perf_counter()
        try:
            report = verify_circuit(
                program.circuit, program.dirty_wires, backend=backend
            )
        except SolverError as error:
            rows.append({"backend": backend, "adder_n": n, "error": str(error)})
            print(f"  {backend:<14} n={n:<3} (failed: {error})", flush=True)
            continue
        wall = time.perf_counter() - start
        rows.append({
            "backend": backend,
            "adder_n": n,
            "dirty_qubits": len(program.dirty_wires),
            "wall_seconds": round(wall, 4),
            "solver_seconds": round(report.solver_seconds, 4),
            "all_safe": report.all_safe,
        })
        print(
            f"  {backend:<14} n={n:<3} solver={report.solver_seconds:>8.3f}s "
            f"wall={wall:>8.3f}s",
            flush=True,
        )
    return rows


def sequential_vs_batch(program, backend: str) -> dict:
    """The headline comparison: per-qubit verify_circuit loop vs. one
    BatchVerifier call over the same dirty qubits."""
    start = time.perf_counter()
    sequential_verdicts = []
    for qubit in program.dirty_wires:
        report = verify_circuit(program.circuit, [qubit], backend=backend)
        sequential_verdicts.extend(report.verdicts)
    sequential_wall = time.perf_counter() - start

    verifier = BatchVerifier(backend=backend)
    start = time.perf_counter()
    batch_report = verifier.verify_circuit(
        program.circuit, program.dirty_wires
    )
    batch_wall = time.perf_counter() - start

    agree = [v.safe for v in sequential_verdicts] == [
        v.safe for v in batch_report.verdicts
    ]
    row = {
        "backend": backend,
        "dirty_qubits": len(program.dirty_wires),
        "sequential_wall_seconds": round(sequential_wall, 4),
        "batch_wall_seconds": round(batch_wall, 4),
        "speedup": round(sequential_wall / batch_wall, 2)
        if batch_wall > 0 else None,
        "verdicts_agree": agree,
    }
    print(
        f"  {backend:<14} sequential={sequential_wall:>8.3f}s "
        f"batch={batch_wall:>8.3f}s speedup={row['speedup']}x"
    )
    return row


def bench_verify(path: str) -> None:
    program = elaborate(adder_qbr_source(BENCH_ADDER_N))
    workload = (
        f"adder.qbr n={BENCH_ADDER_N} "
        f"({len(program.dirty_wires)} dirty carry ancillas)"
    )
    print(f"=== BENCH_verify: {workload} ===", flush=True)
    print("per-backend solver seconds:", flush=True)
    backend_rows = per_backend_solver_seconds()
    print("sequential loop vs. batch engine:", flush=True)
    comparison = [
        sequential_vs_batch(program, backend) for backend in ("bdd", "cdcl")
    ]
    payload = {
        "schema": "bench-verify/v1",
        "generated_by": "benchmarks/run_paper_tables.py",
        "workload": workload,
        "quick": QUICK,
        "backends": backend_rows,
        "sequential_vs_batch": comparison,
        "figures": _figure_rows,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    print()


if __name__ == "__main__":
    bench_path = _bench_json_path()  # validate flags before the sweeps
    if not BENCH_ONLY:
        figure_1_1()
        figure_10_2()
        figure_10_3()
    bench_verify(bench_path)
