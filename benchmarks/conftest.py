"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one paper artefact (see DESIGN.md §3).
Benchmarks run the measured operation exactly once via
``benchmark.pedantic`` — verification is deterministic, and single runs
keep the full sweep within minutes on a laptop.  Paper-facing numbers
(qubit counts, solver-only seconds, cost rows) are attached as
``extra_info`` so they appear in ``--benchmark-verbose`` output and in
saved JSON.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark ``fn`` with exactly one warm-free invocation."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
