"""Experiment E1 — Figure 1.1: cost table of four constant adders.

Regenerates the paper's table (size, depth, ancillas per construction)
from the actual implementations, measuring construction time and
asserting the asymptotic *shape*: Cuccaro/Takahashi/Häner-strip are
Θ(n) in size, Draper is Θ(n²); all are Θ(n) deep; ancilla counts are
n+1 clean / n clean / 0 / n-1 dirty (the Häner column uses the paper's
own benchmark carry-strip construction — substitution documented in
DESIGN.md §4 and EXPERIMENTS.md).
"""

import pytest

from repro.adders.costs import ADDER_BUILDERS, adder_cost_rows, fit_growth

from benchmarks.conftest import run_once

WIDTHS = [8, 16, 32, 64, 128]

EXPECTED_SIZE_EXPONENT = {
    "cuccaro": (0.85, 1.15),
    "takahashi": (0.85, 1.15),
    "draper": (1.7, 2.2),
    "haner": (0.85, 1.15),
}


@pytest.mark.parametrize("adder", sorted(ADDER_BUILDERS))
def test_fig1_1_adder_costs(benchmark, adder):
    builder = ADDER_BUILDERS[adder]

    def build_all():
        return [builder(n) for n in WIDTHS]

    run_once(benchmark, build_all)

    rows = [r for r in adder_cost_rows(WIDTHS) if r.adder == adder]
    for row in rows:
        benchmark.extra_info[f"n={row.n}"] = (
            f"size={row.size} depth={row.depth} "
            f"clean={row.clean_ancillas} dirty={row.dirty_ancillas}"
        )

    size_exp = fit_growth([r.n for r in rows], [r.size for r in rows])
    depth_exp = fit_growth([r.n for r in rows], [r.depth for r in rows])
    benchmark.extra_info["size_exponent"] = round(size_exp, 2)
    benchmark.extra_info["depth_exponent"] = round(depth_exp, 2)

    low, high = EXPECTED_SIZE_EXPONENT[adder]
    assert low < size_exp < high, f"{adder} size grows as n^{size_exp:.2f}"
    assert 0.8 < depth_exp < 1.3, f"{adder} depth grows as n^{depth_exp:.2f}"

    n = WIDTHS[-1]
    last = rows[-1]
    expected_ancillas = {
        "cuccaro": (n + 1, 0),
        "takahashi": (n, 0),
        "draper": (0, 0),
        "haner": (0, n - 1),
    }[adder]
    assert (last.clean_ancillas, last.dirty_ancillas) == expected_ancillas
