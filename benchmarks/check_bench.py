"""Bench-regression gate: diff fresh perf records against baselines.

CI regenerates ``BENCH_verify.json`` / ``BENCH_alloc.json`` into a
scratch directory and runs this script against the committed copies.
The gate fails (exit 1) on:

* a **wall-time regression** — any tracked timing more than
  ``WALL_TOLERANCE`` (default 25%) over its baseline.  Timings whose
  baseline is under ``WALL_FLOOR`` seconds are skipped: at that scale
  runner jitter dwarfs any real change, and a 0.01s -> 0.02s "2x
  regression" is noise, not signal;
* a **throughput drop** — fewer admitted jobs on the queueing or
  lending trace, fewer placed ancillas or a wider final width on any
  strategy workload, more lazy solver runs, a safe verdict flipping
  unsafe, or sequential/batch verdicts disagreeing.  These are exact
  deterministic counts, so no tolerance applies;
* a **vanished row** — a backend/strategy/policy present in the
  baseline but missing from the fresh record (silent coverage loss);
* the **solver-speed floors** — within the fresh verify record itself
  (schema v2 ``fronts`` rows): the bitset kernel must stay at least
  50x over the old per-row brute enumeration, the incremental probe
  path must be strictly faster than fresh-instance solving (ratio
  < 1.0), and the process executor must be at least 2x the thread
  executor when the runner has >= 4 CPUs (recorded but not enforced
  on smaller runners — the row carries ``cpu_count`` so the gate can
  tell);
* the **lending invariants** — within the fresh record itself:
  windowed lending admitting fewer jobs than whole-residency, or
  segmented lending fewer than windowed, under any policy; and
  segmented lending failing to admit *strictly more* than windowed
  under at least one policy (the restore-point analysis must keep
  paying for itself on the pinned trace);
* the **fleet floor** — within the fresh record's ``fleet`` section:
  under every registered placement policy, the 2x11 fleet must admit
  at least as many jobs from the pinned trace as one 11-qubit machine
  alone (a fleet that loses to one of its own shards wasted a whole
  machine), on top of the usual presence/throughput/wall diffs
  against the baseline rows;
* the **streaming floors** — within the fresh record's ``streaming``
  section: the incremental model engine must stay at least 2x over
  the per-gate rescan path on every workload (with both paths
  producing identical models), the ``lookahead=inf`` sweep row must
  reproduce the offline greedy plans exactly (the differential
  contract: equal total width *and* per-circuit plan equality,
  segmented mode included via ``segmented_parity``);
* the **streaming-frontend floors** — within the fresh record's
  ``streaming_frontend`` section: on every workload the overlapped
  parse-while-allocate pipeline must cost no more than the staged
  elaborate-then-feed baseline (wall tolerance applies, noise floor
  skips); the prefix admission must grant its cross-program lease
  with a time-to-first-lease strictly below one full staged parse of
  the same program; and the adaptive lookahead policy must match the
  best fixed horizon's total width while disturbing (rollbacks +
  revocations) no more than the zero-lookahead baseline;
* the **restore-check record** — the solver certifier must keep
  admitting and leasing at least what the structural one does on the
  pinned lending trace, at a wall cost within the usual tolerance —
  the measurement that justifies segmented lending's
  ``restore_check="solver"`` default.

A markdown summary of every comparison goes to stdout and, when the
``GITHUB_STEP_SUMMARY`` environment variable is set, to that file as
well (the job-summary panel in the Actions UI).

Run:
  python benchmarks/run_paper_tables.py --bench-only \\
      --bench-json fresh/BENCH_verify.json \\
      --alloc-json fresh/BENCH_alloc.json
  python benchmarks/check_bench.py \\
      --verify-baseline BENCH_verify.json \\
      --verify-fresh fresh/BENCH_verify.json \\
      --alloc-baseline BENCH_alloc.json \\
      --alloc-fresh fresh/BENCH_alloc.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Allowed fractional wall-time growth before the gate fails.
WALL_TOLERANCE = float(os.environ.get("BENCH_WALL_TOLERANCE", "0.25"))
#: Baselines under this many seconds are not timing-checked (noise).
WALL_FLOOR = float(os.environ.get("BENCH_WALL_FLOOR", "0.05"))


@dataclass
class Finding:
    """One compared metric: its values and the verdict."""

    metric: str
    baseline: object
    fresh: object
    ok: bool
    detail: str = ""

    @property
    def status(self) -> str:
        return "ok" if self.ok else "REGRESSION"


class Comparator:
    """Collects findings over one (baseline, fresh) record pair."""

    def __init__(self):
        self.findings: List[Finding] = []

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if not f.ok]

    def wall(self, metric: str, baseline, fresh) -> None:
        """Wall seconds: fresh may exceed baseline by WALL_TOLERANCE."""
        if baseline is None or fresh is None:
            return
        if baseline < WALL_FLOOR:
            self.findings.append(
                Finding(
                    metric, baseline, fresh, True,
                    f"baseline under the {WALL_FLOOR}s noise floor",
                )
            )
            return
        limit = baseline * (1.0 + WALL_TOLERANCE)
        self.findings.append(
            Finding(
                metric, baseline, fresh, fresh <= limit,
                f"limit {limit:.4f}s (+{WALL_TOLERANCE:.0%})",
            )
        )

    def at_least(self, metric: str, baseline, fresh, detail="") -> None:
        """Exact throughput count: fresh must not drop below baseline."""
        self.findings.append(
            Finding(metric, baseline, fresh, fresh >= baseline, detail)
        )

    def at_most(self, metric: str, baseline, fresh, detail="") -> None:
        """Exact cost count: fresh must not exceed baseline."""
        self.findings.append(
            Finding(metric, baseline, fresh, fresh <= baseline, detail)
        )

    def present(self, metric: str, row: Optional[dict]) -> bool:
        """A baseline row must still exist in the fresh record."""
        if row is None:
            self.findings.append(
                Finding(
                    metric, "present", "MISSING", False,
                    "row vanished from the fresh record",
                )
            )
            return False
        return True


def _by(rows, *keys) -> Dict[tuple, dict]:
    return {tuple(row.get(k) for k in keys): row for row in rows or ()}


def compare_verify(baseline: dict, fresh: dict) -> Comparator:
    """Gate checks over a BENCH_verify.json pair."""
    comp = Comparator()
    fresh_backends = _by(fresh.get("backends"), "backend")
    for key, base_row in _by(baseline.get("backends"), "backend").items():
        if "error" in base_row:
            continue
        name = f"verify.backends[{key[0]}]"
        fresh_row = fresh_backends.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.wall(
            f"{name}.wall_seconds",
            base_row.get("wall_seconds"),
            fresh_row.get("wall_seconds"),
        )
        if base_row.get("all_safe") is True:
            comp.findings.append(
                Finding(
                    f"{name}.all_safe", True,
                    fresh_row.get("all_safe"),
                    fresh_row.get("all_safe") is True,
                    "a safe workload must stay safe",
                )
            )
    # Solver-speed fronts (schema v2): presence is locked against the
    # baseline; the wins themselves are locked by absolute floors on
    # the *fresh* record, so they cannot silently erode run over run.
    fresh_fronts = _by(fresh.get("fronts"), "front")
    for key, _ in _by(baseline.get("fronts"), "front").items():
        comp.present(f"verify.fronts[{key[0]}]", fresh_fronts.get(key))
    bitset = fresh_fronts.get(("bitset_vs_brute",))
    if bitset is not None:
        speedup = bitset.get("speedup")
        comp.findings.append(
            Finding(
                "verify.fronts[bitset_vs_brute].speedup",
                ">= 50",
                speedup,
                isinstance(speedup, (int, float)) and speedup >= 50,
                "bitset kernel must stay >= 50x over the old brute wall",
            )
        )
        comp.findings.append(
            Finding(
                "verify.fronts[bitset_vs_brute].verdicts_agree",
                True,
                bitset.get("verdicts_agree"),
                bitset.get("verdicts_agree") is True,
                "kernel and enumeration must agree",
            )
        )
    incremental = fresh_fronts.get(("incremental_vs_fresh",))
    if incremental is not None:
        ratio = incremental.get("ratio")
        comp.findings.append(
            Finding(
                "verify.fronts[incremental_vs_fresh].ratio",
                "< 1.0",
                ratio,
                isinstance(ratio, (int, float)) and ratio < 1.0,
                "incremental probing must beat fresh-instance solving",
            )
        )
    process = fresh_fronts.get(("process_vs_thread",))
    if process is not None:
        cpus = process.get("cpu_count") or 0
        speedup = process.get("speedup")
        if cpus >= 4:
            ok = isinstance(speedup, (int, float)) and speedup >= 2.0
            detail = "process pool must be >= 2x threads with >= 4 cores"
        else:
            ok = True
            detail = (
                f"not enforced: {cpus} cpu(s) on this runner "
                "(needs >= 4 for multi-core scaling)"
            )
        comp.findings.append(
            Finding(
                "verify.fronts[process_vs_thread].speedup",
                ">= 2.0 (with >= 4 cpus)",
                speedup,
                ok,
                detail,
            )
        )
    fresh_cmp = _by(fresh.get("sequential_vs_batch"), "backend")
    for key, base_row in _by(
        baseline.get("sequential_vs_batch"), "backend"
    ).items():
        name = f"verify.sequential_vs_batch[{key[0]}]"
        fresh_row = fresh_cmp.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.wall(
            f"{name}.batch_wall_seconds",
            base_row.get("batch_wall_seconds"),
            fresh_row.get("batch_wall_seconds"),
        )
        comp.findings.append(
            Finding(
                f"{name}.verdicts_agree", True,
                fresh_row.get("verdicts_agree"),
                fresh_row.get("verdicts_agree") is True,
                "sequential and batch engines must agree",
            )
        )
    return comp


def compare_alloc(baseline: dict, fresh: dict) -> Comparator:
    """Gate checks over a BENCH_alloc.json pair."""
    comp = Comparator()
    fresh_workloads = fresh.get("workloads", {})
    for workload, base_rows in baseline.get("workloads", {}).items():
        fresh_rows = _by(fresh_workloads.get(workload), "strategy")
        for key, base_row in _by(base_rows, "strategy").items():
            name = f"alloc.{workload}[{key[0]}]"
            fresh_row = fresh_rows.get(key)
            if not comp.present(name, fresh_row):
                continue
            comp.at_most(
                f"{name}.final_width",
                base_row.get("final_width"),
                fresh_row.get("final_width"),
                "width reduction must not degrade",
            )
            comp.at_least(
                f"{name}.placed",
                base_row.get("placed"),
                fresh_row.get("placed"),
                "placed ancillas must not drop",
            )
            comp.wall(
                f"{name}.wall_seconds",
                base_row.get("wall_seconds"),
                fresh_row.get("wall_seconds"),
            )
    base_lazy = baseline.get("lazy_vs_eager_verification")
    fresh_lazy = fresh.get("lazy_vs_eager_verification")
    if base_lazy and comp.present("alloc.lazy_vs_eager", fresh_lazy):
        comp.at_most(
            "alloc.lazy_vs_eager.lazy_solver_runs",
            base_lazy.get("lazy_solver_runs"),
            fresh_lazy.get("lazy_solver_runs"),
            "lazy verification must not run more solvers",
        )
        comp.wall(
            "alloc.lazy_vs_eager.lazy_wall_seconds",
            base_lazy.get("lazy_wall_seconds"),
            fresh_lazy.get("lazy_wall_seconds"),
        )
    fresh_online = _by(fresh.get("online"), "strategy")
    for key, base_row in _by(baseline.get("online"), "strategy").items():
        name = f"alloc.online[{key[0]}]"
        fresh_row = fresh_online.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.wall(
            f"{name}.wall_seconds",
            base_row.get("wall_seconds"),
            fresh_row.get("wall_seconds"),
        )
    fresh_queue = _by(
        fresh.get("queueing", {}).get("rows"), "policy"
    )
    for key, base_row in _by(
        baseline.get("queueing", {}).get("rows"), "policy"
    ).items():
        name = f"alloc.queueing[{key[0]}]"
        fresh_row = fresh_queue.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.at_least(
            f"{name}.admitted",
            base_row.get("admitted"),
            fresh_row.get("admitted"),
            "admitted jobs must not drop",
        )
        comp.wall(
            f"{name}.wall_seconds",
            base_row.get("wall_seconds"),
            fresh_row.get("wall_seconds"),
        )
    fresh_lending = _by(
        fresh.get("lending", {}).get("rows"), "policy", "lending"
    )
    for key, base_row in _by(
        baseline.get("lending", {}).get("rows"), "policy", "lending"
    ).items():
        name = f"alloc.lending[{key[0]},{key[1]}]"
        fresh_row = fresh_lending.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.at_least(
            f"{name}.admitted",
            base_row.get("admitted"),
            fresh_row.get("admitted"),
            "admitted jobs must not drop",
        )
        comp.wall(
            f"{name}.wall_seconds",
            base_row.get("wall_seconds"),
            fresh_row.get("wall_seconds"),
        )
    # The lending-lattice invariants inside the fresh record itself:
    # each refinement must never admit fewer jobs than the mode it
    # generalises (windowed >= whole, segmented >= windowed), and
    # segmented lending must beat windowed outright under at least one
    # policy — otherwise the restore-point analysis stopped paying for
    # itself on the pinned trace.
    strict_pairs = []
    for (policy, lending), fresh_row in sorted(fresh_lending.items()):
        coarser = {"windowed": "whole", "segmented": "windowed"}.get(lending)
        if coarser is None:
            continue
        base_row = fresh_lending.get((policy, coarser))
        if base_row is None:
            continue
        comp.at_least(
            f"alloc.lending[{policy}].{lending}_vs_{coarser}",
            base_row.get("admitted"),
            fresh_row.get("admitted"),
            f"{lending} lending must admit >= {coarser}",
        )
        if lending == "segmented":
            strict_pairs.append(
                (policy, base_row.get("admitted"), fresh_row.get("admitted"))
            )
    if strict_pairs:
        wins = [p for p, base, seg in strict_pairs if seg > base]
        comp.findings.append(
            Finding(
                "alloc.lending.segmented_strictly_beats_windowed",
                "some policy",
                ", ".join(wins) or "none",
                bool(wins),
                "segmented must out-admit windowed under >= 1 policy",
            )
        )
    fresh_fleet = _by(fresh.get("fleet", {}).get("rows"), "label")
    for key, base_row in _by(baseline.get("fleet", {}).get("rows"), "label").items():
        name = f"alloc.fleet[{key[0]}]"
        fresh_row = fresh_fleet.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.at_least(
            f"{name}.admitted",
            base_row.get("admitted"),
            fresh_row.get("admitted"),
            "admitted jobs must not drop",
        )
        comp.wall(
            f"{name}.wall_seconds",
            base_row.get("wall_seconds"),
            fresh_row.get("wall_seconds"),
        )
    # The fleet-vs-single invariant inside the fresh record itself:
    # under every placement policy, the fleet must admit at least what
    # one machine of its own shard size does alone (the smallest
    # ``single*`` row, ``single11`` in the shipped record) — anything
    # less means the router wasted a whole machine.
    singles = [
        row
        for (label,), row in sorted(fresh_fleet.items())
        if str(label).startswith("single")
    ]
    single = singles[0] if singles else None
    if single is not None:
        for (label,), fresh_row in sorted(fresh_fleet.items()):
            if not str(label).startswith("fleet"):
                continue
            comp.at_least(
                f"alloc.fleet[{label}]_vs_{single['label']}",
                single.get("admitted"),
                fresh_row.get("admitted"),
                "a fleet must never admit less than one of its "
                "shards alone",
            )
    _compare_streaming(
        comp, baseline.get("streaming") or {}, fresh.get("streaming") or {}
    )
    _compare_streaming_frontend(
        comp,
        baseline.get("streaming_frontend") or {},
        fresh.get("streaming_frontend") or {},
    )
    _compare_restore_check(
        comp,
        baseline.get("restore_check") or {},
        fresh.get("restore_check") or {},
    )
    return comp


def _compare_streaming(comp: Comparator, baseline: dict, fresh: dict) -> None:
    """The ``streaming`` section: presence locked against the baseline,
    wins locked by absolute floors on the fresh record (same shape as
    the solver-speed fronts)."""
    fresh_rescan = _by(fresh.get("incremental_vs_rescan"), "workload")
    for key, _ in _by(baseline.get("incremental_vs_rescan"), "workload").items():
        comp.present(
            f"alloc.streaming.incremental_vs_rescan[{key[0]}]",
            fresh_rescan.get(key),
        )
    for key, row in sorted(fresh_rescan.items()):
        name = f"alloc.streaming.incremental_vs_rescan[{key[0]}]"
        speedup = row.get("speedup")
        comp.findings.append(
            Finding(
                f"{name}.speedup",
                ">= 2.0",
                speedup,
                isinstance(speedup, (int, float)) and speedup >= 2.0,
                "incremental model engine must stay >= 2x over the "
                "per-gate rescan path",
            )
        )
        comp.findings.append(
            Finding(
                f"{name}.models_agree",
                True,
                row.get("models_agree"),
                row.get("models_agree") is True,
                "incremental and rescan models must be identical",
            )
        )
    fresh_lookahead = _by(fresh.get("lookahead"), "lookahead")
    for key, _ in _by(baseline.get("lookahead"), "lookahead").items():
        comp.present(
            f"alloc.streaming.lookahead[{key[0]}]",
            fresh_lookahead.get(key),
        )
    if baseline.get("throughput") is not None:
        comp.present("alloc.streaming.throughput", fresh.get("throughput"))
    inf_row = fresh_lookahead.get(("inf",))
    if inf_row is not None:
        comp.findings.append(
            Finding(
                "alloc.streaming.lookahead[inf].width_matches_offline",
                True,
                inf_row.get("width_matches_offline"),
                inf_row.get("width_matches_offline") is True,
                "lookahead=∞ width must equal offline greedy width",
            )
        )
        comp.findings.append(
            Finding(
                "alloc.streaming.lookahead[inf].plans_match_offline",
                True,
                inf_row.get("plans_match_offline"),
                inf_row.get("plans_match_offline") is True,
                "lookahead=∞ must reproduce the offline greedy plans "
                "gate-for-gate",
            )
        )
    parity = fresh.get("segmented_parity")
    if baseline.get("segmented_parity") is not None:
        comp.present("alloc.streaming.segmented_parity", parity)
    if parity is not None:
        comp.findings.append(
            Finding(
                "alloc.streaming.segmented_parity.matches_offline",
                True,
                parity.get("matches_offline"),
                parity.get("matches_offline") is True,
                "segmented ∞-lookahead plans must equal offline greedy",
            )
        )


def _compare_streaming_frontend(
    comp: Comparator, baseline: dict, fresh: dict
) -> None:
    """The ``streaming_frontend`` section: presence locked against the
    baseline, the parse-while-allocate wins locked by floors on the
    fresh record itself."""
    fresh_workloads = _by(fresh.get("workloads"), "workload")
    for key, base_row in _by(baseline.get("workloads"), "workload").items():
        name = f"alloc.streaming_frontend.workloads[{key[0]}]"
        fresh_row = fresh_workloads.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.wall(
            f"{name}.overlapped_wall_seconds",
            base_row.get("overlapped_wall_seconds"),
            fresh_row.get("overlapped_wall_seconds"),
        )
    # Overlap floor on the fresh record: feeding the allocator from the
    # elaboration stream must cost no more than elaborating fully and
    # then feeding — the tolerance-gated "free overlap" contract.
    for key, row in sorted(fresh_workloads.items()):
        name = f"alloc.streaming_frontend.workloads[{key[0]}]"
        comp.wall(
            f"{name}.overlapped_vs_staged",
            row.get("staged_wall_seconds"),
            row.get("overlapped_wall_seconds"),
        )
    first = fresh.get("first_lease")
    if baseline.get("first_lease") is not None:
        comp.present("alloc.streaming_frontend.first_lease", first)
    if first is not None:
        comp.findings.append(
            Finding(
                "alloc.streaming_frontend.first_lease.lease_granted",
                True,
                first.get("lease_granted"),
                first.get("lease_granted") is True,
                "the prefix admission must grant its cross-program lease",
            )
        )
        parse = first.get("staged_parse_wall_seconds")
        lease = first.get("time_to_first_lease_seconds")
        comp.findings.append(
            Finding(
                "alloc.streaming_frontend.first_lease.beats_staged_parse",
                f"< {parse}",
                lease,
                isinstance(parse, (int, float))
                and isinstance(lease, (int, float))
                and lease < parse,
                "time to first lease must be strictly below one full "
                "staged parse of the same program",
            )
        )
    fresh_adaptive = _by(fresh.get("adaptive"), "policy")
    for key, _ in _by(baseline.get("adaptive"), "policy").items():
        comp.present(
            f"alloc.streaming_frontend.adaptive[{key[0]}]",
            fresh_adaptive.get(key),
        )
    adaptive = fresh_adaptive.get(("adaptive",))
    if adaptive is not None:
        for key, row in sorted(fresh_adaptive.items()):
            if not str(key[0]).startswith("fixed"):
                continue
            comp.at_most(
                f"alloc.streaming_frontend.adaptive.width_vs_{key[0]}",
                row.get("total_width"),
                adaptive.get("total_width"),
                "adaptive lookahead must match the best fixed horizon's "
                "width on the pinned corpus",
            )
        fixed0 = fresh_adaptive.get(("fixed-0",))
        if fixed0 is not None:
            comp.at_most(
                "alloc.streaming_frontend.adaptive.disturbances_vs_fixed-0",
                fixed0.get("disturbances"),
                adaptive.get("disturbances"),
                "adaptive must not disturb (rollback + revoke) more than "
                "the zero-lookahead baseline",
            )


def _compare_restore_check(
    comp: Comparator, baseline: dict, fresh: dict
) -> None:
    """The ``restore_check`` section: the solver certifier must keep
    matching the structural one's throughput, at tolerable cost — the
    record that justifies the segmented-mode default."""
    fresh_rows = _by(fresh.get("rows"), "restore_check")
    for key, base_row in _by(baseline.get("rows"), "restore_check").items():
        name = f"alloc.restore_check[{key[0]}]"
        fresh_row = fresh_rows.get(key)
        if not comp.present(name, fresh_row):
            continue
        comp.at_least(
            f"{name}.admitted",
            base_row.get("admitted"),
            fresh_row.get("admitted"),
            "admitted jobs must not drop",
        )
        comp.wall(
            f"{name}.wall_seconds",
            base_row.get("wall_seconds"),
            fresh_row.get("wall_seconds"),
        )
    structural = fresh_rows.get(("structural",))
    solver = fresh_rows.get(("solver",))
    if structural is not None and solver is not None:
        comp.at_least(
            "alloc.restore_check.solver_admitted_vs_structural",
            structural.get("admitted"),
            solver.get("admitted"),
            "the semantic certifier must never admit less than the "
            "syntactic one",
        )
        comp.at_least(
            "alloc.restore_check.solver_leases_vs_structural",
            structural.get("leases_granted"),
            solver.get("leases_granted"),
            "the semantic certifier must never lease less than the "
            "syntactic one",
        )
        comp.wall(
            "alloc.restore_check.solver_vs_structural_wall",
            structural.get("wall_seconds"),
            solver.get("wall_seconds"),
        )


def markdown_summary(comparators: Dict[str, Comparator]) -> str:
    lines = ["# Bench-regression gate", ""]
    total = regressions = 0
    for record, comp in comparators.items():
        lines.append(f"## {record}")
        lines.append("")
        lines.append("| metric | baseline | fresh | status | note |")
        lines.append("| --- | --- | --- | --- | --- |")
        for finding in comp.findings:
            total += 1
            if not finding.ok:
                regressions += 1
            status = "✅" if finding.ok else "❌ REGRESSION"
            lines.append(
                f"| {finding.metric} | {finding.baseline} | "
                f"{finding.fresh} | {status} | {finding.detail} |"
            )
        lines.append("")
    lines.append(
        f"**{total} checks, {regressions} regression(s)** "
        f"(wall tolerance +{WALL_TOLERANCE:.0%}, "
        f"noise floor {WALL_FLOOR}s)"
    )
    return "\n".join(lines)


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on bench regressions vs committed baselines."
    )
    parser.add_argument("--verify-baseline", default="BENCH_verify.json")
    parser.add_argument("--verify-fresh", required=True)
    parser.add_argument("--alloc-baseline", default="BENCH_alloc.json")
    parser.add_argument("--alloc-fresh")
    parser.add_argument(
        "--verify-only",
        action="store_true",
        help="gate only the verify record (solver-speed CI job)",
    )
    args = parser.parse_args(argv)
    if not args.verify_only and not args.alloc_fresh:
        parser.error("--alloc-fresh is required unless --verify-only is set")

    comparators = {
        "BENCH_verify": compare_verify(
            _load(args.verify_baseline), _load(args.verify_fresh)
        ),
    }
    if not args.verify_only:
        comparators["BENCH_alloc"] = compare_alloc(
            _load(args.alloc_baseline), _load(args.alloc_fresh)
        )
    summary = markdown_summary(comparators)
    print(summary)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as handle:
            handle.write(summary + "\n")

    regressions = [
        finding
        for comp in comparators.values()
        for finding in comp.regressions
    ]
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} bench regression(s):",
            file=sys.stderr,
        )
        for finding in regressions:
            print(
                f"  {finding.metric}: baseline={finding.baseline} "
                f"fresh={finding.fresh} ({finding.detail})",
                file=sys.stderr,
            )
        return 1
    print("\nOK: no bench regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
