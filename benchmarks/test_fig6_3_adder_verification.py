"""Experiment E7 — Figures 6.3 / 10.2: adder verification time vs qubits.

The paper verifies all n-1 dirty carry ancillas of ``adder.qbr`` with
CVC5 and Bitwuzla at n = 50..200.  Our stand-in backends (DESIGN.md §4)
sweep the same program: the BDD engine covers the paper's full range;
the pure-Python CDCL solver covers the lower half (its per-clause
constant is orders of magnitude above a native solver's, so the sweep is
truncated to keep the harness under a few minutes — the growth *shape*
is what EXPERIMENTS.md compares).

Assertions encode the paper's qualitative findings: every ancilla is
safe, time grows polynomially (superlinear, subcubic), and the
adder family is the harder one for the SAT backend.
"""

import pytest

from repro.lang.surface import elaborate
from repro.lang.surface.sources import adder_qbr_source
from repro.verify import verify_circuit

from benchmarks.conftest import run_once

#: (backend, n) sweep; the paper's x-axis is n = 50..200.
CASES = [
    ("bdd", 50),
    ("bdd", 75),
    ("bdd", 100),
    ("bdd", 125),
    ("bdd", 150),
    ("bdd", 175),
    ("bdd", 200),
    ("cdcl", 25),
    ("cdcl", 50),
    ("cdcl", 75),
]

_timings = {}


@pytest.mark.parametrize(
    "backend,n", CASES, ids=[f"{b}-n{n}" for b, n in CASES]
)
def test_fig6_3_adder_verification(benchmark, backend, n):
    program = elaborate(adder_qbr_source(n))  # parsing excluded, as in paper

    def verify():
        return verify_circuit(
            program.circuit, program.dirty_wires, backend=backend
        )

    report = run_once(benchmark, verify)
    assert report.all_safe
    assert len(report.verdicts) == n - 1

    _timings[(backend, n)] = report.total_seconds
    benchmark.extra_info["qubits"] = program.circuit.num_qubits
    benchmark.extra_info["dirty_qubits"] = n - 1
    benchmark.extra_info["solver_seconds"] = round(report.solver_seconds, 4)

    _check_shape(backend)


def _check_shape(backend):
    """Polynomial growth: once the largest point of a series is in,
    its log-log slope against the smallest must be in (1, 4)."""
    series = sorted(
        (n, t) for (b, n), t in _timings.items() if b == backend
    )
    if len(series) < 2 or series[-1][1] < 0.05:
        return
    import math

    (n0, t0), (n1, t1) = series[0], series[-1]
    if t0 <= 0:
        return
    slope = math.log(t1 / t0) / math.log(n1 / n0)
    assert 0.8 < slope < 4.5, f"{backend} verification grows as n^{slope:.2f}"
