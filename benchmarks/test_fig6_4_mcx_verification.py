"""Experiment E8 — Figures 6.4 / 10.3: MCX verification time vs qubits.

The paper verifies the single dirty ancilla of ``mcx.qbr`` at 499..3499
control qubits (m = 250..1750).  The CDCL backend covers the paper's
full range; the BDD backend covers the lower half (it is the slower
engine on this family — the same *asymmetric* backend behaviour the
paper reports for CVC5 vs Bitwuzla, with roles swapped relative to the
adder benchmark).
"""

import pytest

from repro.lang.surface import elaborate
from repro.lang.surface.sources import mcx_qbr_source
from repro.verify import verify_circuit

from benchmarks.conftest import run_once

#: (backend, m); the paper's x-axis is n = 2m-1 controls = 499..3499.
CASES = [
    ("cdcl", 250),
    ("cdcl", 500),
    ("cdcl", 750),
    ("cdcl", 1000),
    ("cdcl", 1250),
    ("cdcl", 1500),
    ("cdcl", 1750),
    ("bdd", 250),
    ("bdd", 500),
    ("bdd", 750),
]

_timings = {}


@pytest.mark.parametrize(
    "backend,m", CASES, ids=[f"{b}-q{2 * m - 1}" for b, m in CASES]
)
def test_fig6_4_mcx_verification(benchmark, backend, m):
    program = elaborate(mcx_qbr_source(m))

    def verify():
        return verify_circuit(
            program.circuit, program.dirty_wires, backend=backend
        )

    report = run_once(benchmark, verify)
    assert report.all_safe
    assert len(report.verdicts) == 1  # the single dirty ancilla

    _timings[(backend, m)] = report.total_seconds
    benchmark.extra_info["controls"] = 2 * m - 1
    benchmark.extra_info["total_qubits"] = program.circuit.num_qubits
    benchmark.extra_info["solver_seconds"] = round(report.solver_seconds, 4)


def test_fig6_4_mcx_cheaper_than_adder_for_cdcl():
    """Cross-benchmark shape check: per the paper, the MCX family is far
    cheaper to verify than the adder family at comparable scale for one
    backend (CVC5 there, CDCL here)."""
    import time

    from repro.lang.surface.sources import adder_qbr_source

    adder = elaborate(adder_qbr_source(30))
    start = time.perf_counter()
    verify_circuit(adder.circuit, adder.dirty_wires, backend="cdcl")
    adder_time = time.perf_counter() - start

    mcx = elaborate(mcx_qbr_source(250))  # 501 qubits vs adder's 59
    start = time.perf_counter()
    verify_circuit(mcx.circuit, mcx.dirty_wires, backend="cdcl")
    mcx_time = time.perf_counter() - start

    assert mcx_time < adder_time, (
        f"expected MCX (501 qubits, {mcx_time:.2f}s) cheaper than adder "
        f"(59 qubits, {adder_time:.2f}s) for CDCL"
    )
