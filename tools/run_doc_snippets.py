"""Execute the fenced ``python`` examples in ``docs/*.md``.

Keeps the documentation honest: every fenced code block tagged
``python`` is extracted and

* blocks containing doctest prompts (``>>>``) run under
  :mod:`doctest` — output shown in the docs must match the real
  implementation byte for byte;
* plain blocks are compiled (syntax check) so samples cannot rot into
  invalid Python.

Exit status is the number of failing blocks, so the ``docs`` CI job
(and ``tests/docs/test_doc_snippets.py``) fail when documentation and
code drift apart.

Run:  PYTHONPATH=src python tools/run_doc_snippets.py [docs/*.md ...]
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
#: ```python ... ``` fences; the info string may carry extra words.
FENCE = re.compile(
    r"^```python[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def iter_snippets(path: pathlib.Path):
    """Yield ``(line_number, code)`` for each python fence in ``path``."""
    text = path.read_text()
    for match in FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 2  # first code line
        yield line, match.group(1)


def run_snippet(path: pathlib.Path, line: int, code: str, globs: dict) -> str:
    """Run one snippet; return an error description or ``""`` on pass.

    ``globs`` is shared across the blocks of one file, so a document
    reads like a module docstring: an import in an early example stays
    in scope for the later ones.
    """
    name = f"{path.name}:{line}"
    if ">>>" in code:
        parser = doctest.DocTestParser()
        try:
            test = parser.get_doctest(code, globs, name, str(path), line)
        except ValueError as exc:
            return f"doctest parse error: {exc}"
        runner = doctest.DocTestRunner(
            optionflags=doctest.ELLIPSIS, verbose=False
        )
        failures = runner.run(test, clear_globs=False).failed
        globs.update(test.globs)
        return f"{failures} doctest failure(s)" if failures else ""
    try:
        compile(code, name, "exec")
    except SyntaxError as exc:
        return f"syntax error: {exc}"
    return ""


def main(argv: list[str]) -> int:
    paths = [pathlib.Path(p) for p in argv] or sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )
    checked = failed = 0
    for path in paths:
        globs: dict = {}
        for line, code in iter_snippets(path):
            checked += 1
            error = run_snippet(path, line, code, globs)
            status = "FAIL" if error else "ok"
            print(f"[{status}] {path.name}:{line} {error}".rstrip())
            if error:
                failed += 1
    print(f"{checked} snippet(s) checked, {failed} failure(s)")
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
