"""Setup shim for offline environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; modern installs use
``pip install -e .`` (PEP 517/660, src layout).  This file exists only
so ``python setup.py develop`` still provides an editable install where
pip's build isolation cannot download fresh setuptools/wheel.
"""

from setuptools import setup

setup()
