"""Cuccaro ripple-carry adder (MAJ/UMA construction).

``b ← a + b (mod 2**n)`` with one clean carry ancilla [Cuccaro et al.,
quant-ph/0410184].  The MAJ block turns ``(c_i, b_i, a_i)`` into
``(c_i ⊕ a_i, a_i ⊕ b_i, c_{i+1})``; UMA undoes the chain while writing
the sum bits.

The constant variant (Figure 1.1, first column) loads the constant into
an ``n``-qubit clean register with X gates, runs the register adder, and
unloads — ``n + 1`` clean ancillas in total.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot, toffoli, x
from repro.errors import CircuitError
from repro.adders.layout import AdderLayout


def _maj(circuit: Circuit, c: int, b: int, a: int) -> None:
    circuit.append(cnot(a, b))
    circuit.append(cnot(a, c))
    circuit.append(toffoli(c, b, a))


def _uma(circuit: Circuit, c: int, b: int, a: int) -> None:
    circuit.append(toffoli(c, b, a))
    circuit.append(cnot(a, c))
    circuit.append(cnot(c, b))


def cuccaro_add_registers(n: int) -> AdderLayout:
    """``b ← a + b (mod 2**n)``; ``a`` preserved, carry ancilla restored.

    Wire layout: ``a`` on wires ``0..n-1`` (little-endian), ``b`` on
    ``n..2n-1``, carry ancilla on wire ``2n``.
    """
    if n < 1:
        raise CircuitError("adder width must be at least 1")
    a = list(range(n))
    b = list(range(n, 2 * n))
    carry = 2 * n
    labels = (
        [f"a{i}" for i in range(n)]
        + [f"b{i}" for i in range(n)]
        + ["cin"]
    )
    circuit = Circuit(2 * n + 1, labels=labels)
    chain = [carry] + a  # carry wire for bit i is chain[i]
    for i in range(n):
        _maj(circuit, chain[i], b[i], a[i])
    for i in reversed(range(n)):
        _uma(circuit, chain[i], b[i], a[i])
    return AdderLayout(
        circuit,
        target=b,
        clean_ancillas=[carry],
        operand=a,
    )


def cuccaro_constant_adder(n: int, constant: int) -> AdderLayout:
    """``x ← x + constant (mod 2**n)`` with ``n + 1`` clean ancillas.

    Wire layout: constant register on ``0..n-1`` (clean), target ``x`` on
    ``n..2n-1``, carry ancilla on ``2n``.
    """
    if n < 1:
        raise CircuitError("adder width must be at least 1")
    constant %= 2**n
    base = cuccaro_add_registers(n)
    circuit = Circuit(
        base.circuit.num_qubits,
        labels=[f"c{i}" for i in range(n)]
        + [f"x{i}" for i in range(n)]
        + ["cin"],
    )
    loaded = [i for i in range(n) if (constant >> i) & 1]
    for wire in loaded:
        circuit.append(x(wire))
    circuit.extend(base.circuit.gates)
    for wire in loaded:
        circuit.append(x(wire))
    return AdderLayout(
        circuit,
        target=base.target,
        clean_ancillas=list(base.operand) + base.clean_ancillas,
    )
