"""Takahashi–Tani–Kunihiro adder: in-place addition without ancillas.

``b ← a + b (mod 2**n)`` using zero extra qubits [Takahashi et al. 2010].
The carry chain is rippled *through the a register itself*:

1. ``b_i ⊕= a_i``                      (all i)
2. ``a_{i+1} ⊕= a_i``                  (i = n-2 .. 0, downward)
3. ``a_{i+1} ⊕= a_i · b_i``            (i = 0 .. n-2, upward; after this
   wire ``a_{i+1}`` holds ``a_{i+1} ⊕ carry_{i+1}``)
4. downward sweep: ``b_{i+1} ⊕= a_{i+1}-wire`` (reads ``a ⊕ carry``) then
   uncompute the carry with the same Toffoli
5. undo step 2, then ``b_i ⊕= a_i`` for i ≥ 1 to complete
   ``s_i = a_i ⊕ b_i ⊕ carry_i``.

The constant variant needs only the ``n`` clean qubits holding the
constant (Figure 1.1, second column).
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot, toffoli, x
from repro.errors import CircuitError
from repro.adders.layout import AdderLayout


def takahashi_add_registers(n: int) -> AdderLayout:
    """``b ← a + b (mod 2**n)``; ``a`` preserved, no ancillas.

    Wire layout: ``a`` on ``0..n-1`` (little-endian), ``b`` on ``n..2n-1``.
    """
    if n < 1:
        raise CircuitError("adder width must be at least 1")
    a = list(range(n))
    b = list(range(n, 2 * n))
    labels = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
    circuit = Circuit(2 * n, labels=labels)
    if n == 1:
        circuit.append(cnot(a[0], b[0]))
        return AdderLayout(circuit, target=b, operand=a)

    for i in range(n):
        circuit.append(cnot(a[i], b[i]))
    for i in range(n - 2, -1, -1):
        circuit.append(cnot(a[i], a[i + 1]))
    for i in range(n - 1):
        circuit.append(toffoli(a[i], b[i], a[i + 1]))
    for i in range(n - 2, -1, -1):
        circuit.append(cnot(a[i + 1], b[i + 1]))
        circuit.append(toffoli(a[i], b[i], a[i + 1]))
    for i in range(n - 1):
        circuit.append(cnot(a[i], a[i + 1]))
    for i in range(1, n):
        circuit.append(cnot(a[i], b[i]))
    return AdderLayout(circuit, target=b, operand=a)


def takahashi_constant_adder(n: int, constant: int) -> AdderLayout:
    """``x ← x + constant (mod 2**n)`` with ``n`` clean ancillas.

    Wire layout: constant register on ``0..n-1`` (clean), target ``x`` on
    ``n..2n-1``.
    """
    if n < 1:
        raise CircuitError("adder width must be at least 1")
    constant %= 2**n
    base = takahashi_add_registers(n)
    circuit = Circuit(
        base.circuit.num_qubits,
        labels=[f"c{i}" for i in range(n)] + [f"x{i}" for i in range(n)],
    )
    loaded = [i for i in range(n) if (constant >> i) & 1]
    for wire in loaded:
        circuit.append(x(wire))
    circuit.extend(base.circuit.gates)
    for wire in loaded:
        circuit.append(x(wire))
    return AdderLayout(
        circuit,
        target=base.target,
        clean_ancillas=list(base.operand),
    )
