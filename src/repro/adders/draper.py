"""Draper QFT constant adder: add a classical constant in Fourier space.

``QFT → single-qubit phase rotations encoding c → QFT†`` [Draper,
quant-ph/0008033].  Zero ancillas, ``Θ(n²)`` gates (the QFT's controlled
rotations), ``Θ(n)`` depth — the third column of Figure 1.1.

Being built from Hadamards and phase rotations, this adder is *not* a
classical circuit, so the Section 6 SAT reduction does not apply to it;
its tests run through the dense unitary simulator.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cphase, hadamard, phase
from repro.errors import CircuitError
from repro.adders.layout import AdderLayout


def _qft_no_swap(circuit: Circuit, wires) -> None:
    """QFT without the final swaps (the adder undoes it symmetrically).

    ``wires`` is little-endian; after this block qubit ``j`` carries the
    phase ``exp(2*pi*i * x / 2**(j+1))`` on its ``|1>`` component.
    """
    for j in reversed(range(len(wires))):
        circuit.append(hadamard(wires[j]))
        for k in reversed(range(j)):
            angle = math.pi / (2 ** (j - k))
            circuit.append(cphase(angle, wires[k], wires[j]))


def _inverse_qft_no_swap(circuit: Circuit, wires) -> None:
    for j in range(len(wires)):
        for k in range(j):
            angle = -math.pi / (2 ** (j - k))
            circuit.append(cphase(angle, wires[k], wires[j]))
        circuit.append(hadamard(wires[j]))


def draper_constant_adder(n: int, constant: int) -> AdderLayout:
    """``x ← x + constant (mod 2**n)`` with zero ancillas.

    Wire layout: target ``x`` on ``0..n-1`` (little-endian).
    """
    if n < 1:
        raise CircuitError("adder width must be at least 1")
    constant %= 2**n
    wires = list(range(n))
    circuit = Circuit(n, labels=[f"x{i}" for i in range(n)])
    _qft_no_swap(circuit, wires)
    for j in range(n):
        angle = 2.0 * math.pi * constant / (2 ** (j + 1))
        angle %= 2.0 * math.pi
        if angle:
            circuit.append(phase(angle, wires[j]))
    _inverse_qft_no_swap(circuit, wires)
    return AdderLayout(circuit, target=wires)
