"""Häner-style dirty-ancilla carry circuits (Figure 6.2 / Figure 10.1).

:func:`haner_carry_benchmark` is a verbatim translation of the paper's
``adder.qbr`` benchmark program: it XORs ``NOT(carry of s + (11...1))``
— equivalently ``[s == 0]`` — into the top qubit ``q_n``, where ``s`` is
the value on ``q_1..q_{n-1}``, using ``n-1`` *dirty* carry ancillas
``a_1..a_{n-1}`` that are all safely uncomputed.  This is the exact
circuit whose verification Figures 6.3/10.2 time.

:func:`haner_carry_strip` generalises the same strip to an arbitrary
constant ``c`` (X gates appear only where the constant has a 1 bit),
and :func:`haner_ripple_constant_adder` assembles a full *out-of-place*
constant adder ``|x>|y> -> |x>|y XOR (x + c)>`` from it: the harvest
CNOTs target a separate output register, so every control wire keeps its
value and the dirty ancillas still uncompute safely.  (The paper's
1-dirty-qubit in-place Θ(n log n) recursion is future work; see
DESIGN.md §4.)
"""

from __future__ import annotations

from typing import List

from repro.adders.layout import AdderLayout
from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot, toffoli, x
from repro.errors import CircuitError


def haner_carry_benchmark(n: int) -> AdderLayout:
    """The verbatim ``adder.qbr`` circuit (Figure 6.2) for ``n`` qubits.

    Wire layout (matching the program's 1-based registers): ``q[i]`` on
    wire ``i-1`` for ``i = 1..n``; dirty ancilla ``a[i]`` on wire
    ``n + i - 1`` for ``i = 1..n-1``.
    """
    if n < 3:
        raise CircuitError("the Figure 6.2 benchmark needs n >= 3")

    def q(i: int) -> int:
        return i - 1

    def a(i: int) -> int:
        return n + i - 1

    labels = [f"q{i}" for i in range(1, n + 1)] + [
        f"a{i}" for i in range(1, n)
    ]
    c = Circuit(2 * n - 1, labels=labels)

    c.append(cnot(a(n - 1), q(n)))
    for i in range(n - 1, 1, -1):
        c.append(cnot(q(i), a(i)))
        c.append(x(q(i)))
        c.append(toffoli(a(i - 1), q(i), a(i)))
    c.append(cnot(q(1), a(1)))
    for i in range(2, n):
        c.append(toffoli(a(i - 1), q(i), a(i)))
    c.append(cnot(a(n - 1), q(n)))
    c.append(x(q(n)))

    # Reverse the circuit to uncompute the dirty carries.
    for i in range(n - 1, 1, -1):
        c.append(toffoli(a(i - 1), q(i), a(i)))
    c.append(cnot(q(1), a(1)))
    for i in range(2, n):
        c.append(toffoli(a(i - 1), q(i), a(i)))
        c.append(x(q(i)))
        c.append(cnot(q(i), a(i)))

    return AdderLayout(
        c,
        target=[q(i) for i in range(1, n + 1)],
        dirty_ancillas=[a(i) for i in range(1, n)],
    )


def haner_carry_strip(
    circuit: Circuit,
    xs: List[int],
    ancillas: List[int],
    constant: int,
    forward: bool = True,
) -> None:
    """One directional pass of the Häner carry strip for ``constant``.

    After a forward pass, ancilla wire ``ancillas[i]`` holds
    ``a_i XOR carry_{i+1}`` where ``carry_{i+1}`` is the carry out of bit
    ``i`` of ``xs + constant`` (little-endian, ``carry_1`` = carry out of
    bit 0).  The backward pass is the exact inverse.  ``len(ancillas)``
    must equal ``len(xs)``; X gates appear only where ``constant`` has a
    1 bit, which degenerates to the Figure 6.2 pattern when the constant
    is all ones.
    """
    m = len(xs)
    if len(ancillas) != m:
        raise CircuitError("carry strip needs one ancilla per input bit")
    gates = []
    # Downward prep: pair each x_i (i >= 1) with its ancilla.
    for i in range(m - 1, 0, -1):
        if (constant >> i) & 1:
            gates.append(cnot(xs[i], ancillas[i]))
            gates.append(x(xs[i]))
        gates.append(toffoli(ancillas[i - 1], xs[i], ancillas[i]))
    if constant & 1:
        gates.append(cnot(xs[0], ancillas[0]))
    # Upward completion: ripple the carries up.
    for i in range(1, m):
        gates.append(toffoli(ancillas[i - 1], xs[i], ancillas[i]))
    if not forward:
        gates = [g.dagger() for g in reversed(gates)]
    circuit.extend(gates)


def haner_ripple_constant_adder(n: int, constant: int) -> AdderLayout:
    """Out-of-place constant adder with ``n-1`` dirty ancillas.

    Computes ``y XOR= (x + constant) mod 2**n`` with all controls kept
    intact so the dirty carries uncompute safely.

    Wire layout: input ``x`` on ``0..n-1``, output ``y`` on ``n..2n-1``
    (both little-endian), ``n-1`` dirty ancillas on ``2n..3n-2``.
    """
    if n < 2:
        raise CircuitError("adder width must be at least 2")
    constant %= 2**n
    xs = list(range(n))
    ys = list(range(n, 2 * n))
    ancillas = list(range(2 * n, 3 * n - 1))
    labels = (
        [f"x{i}" for i in range(n)]
        + [f"y{i}" for i in range(n)]
        + [f"g{i}" for i in range(n - 1)]
    )
    circuit = Circuit(3 * n - 1, labels=labels)

    low_xs = xs[: n - 1]
    # Forward pass computes a_i XOR carry_{i+1} on each ancilla.
    haner_carry_strip(circuit, low_xs, ancillas, constant, forward=True)
    # Harvest: y_{i+1} XOR= (a_i XOR carry_{i+1}); targets are never
    # controls, so the strip's uncompute below is undisturbed.
    for i in range(n - 1):
        circuit.append(cnot(ancillas[i], ys[i + 1]))
    haner_carry_strip(circuit, low_xs, ancillas, constant, forward=False)
    # Second harvest cancels the dirty offset: y_{i+1} XOR= a_i.
    for i in range(n - 1):
        circuit.append(cnot(ancillas[i], ys[i + 1]))
    # Sum bits: s_i = x_i XOR c_i XOR carry_i.
    for i in range(n):
        circuit.append(cnot(xs[i], ys[i]))
        if (constant >> i) & 1:
            circuit.append(x(ys[i]))

    return AdderLayout(
        circuit,
        target=ys,
        dirty_ancillas=ancillas,
        operand=xs,
    )
