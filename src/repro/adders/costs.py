"""The Figure 1.1 cost table, measured from the implementations.

Each row reports size, depth and ancilla counts for one adder at one
width; :func:`adder_cost_rows` produces the table the E1 benchmark
prints, and :func:`fit_growth` estimates the growth exponent so the
``Θ(n)`` / ``Θ(n²)`` shapes of the paper's table can be asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.adders.cuccaro import cuccaro_constant_adder
from repro.adders.draper import draper_constant_adder
from repro.adders.haner import haner_ripple_constant_adder
from repro.adders.layout import AdderLayout
from repro.adders.takahashi import takahashi_constant_adder
from repro.circuits.metrics import depth as circuit_depth
from repro.circuits.metrics import size as circuit_size


@dataclass(frozen=True)
class AdderCostRow:
    """One (adder, width) measurement."""

    adder: str
    n: int
    size: int
    depth: int
    clean_ancillas: int
    dirty_ancillas: int

    def __str__(self) -> str:
        return (
            f"{self.adder:<12} n={self.n:<4} size={self.size:<6} "
            f"depth={self.depth:<6} clean={self.clean_ancillas:<4} "
            f"dirty={self.dirty_ancillas}"
        )


#: Builders for the four Figure 1.1 columns (constant fixed to an
#: alternating bit pattern so no column gets a degenerate constant).
ADDER_BUILDERS: Dict[str, Callable[[int], AdderLayout]] = {
    "cuccaro": lambda n: cuccaro_constant_adder(n, _pattern(n)),
    "takahashi": lambda n: takahashi_constant_adder(n, _pattern(n)),
    "draper": lambda n: draper_constant_adder(n, _pattern(n)),
    "haner": lambda n: haner_ripple_constant_adder(n, _pattern(n)),
}


def _pattern(n: int) -> int:
    """An alternating 1010... constant of width n (non-degenerate)."""
    value = 0
    for i in range(0, n, 2):
        value |= 1 << i
    return value


def adder_cost_rows(widths: Sequence[int]) -> List[AdderCostRow]:
    """Measure every adder at every width."""
    rows: List[AdderCostRow] = []
    for name, builder in ADDER_BUILDERS.items():
        for n in widths:
            layout = builder(n)
            rows.append(
                AdderCostRow(
                    adder=name,
                    n=n,
                    size=circuit_size(layout.circuit),
                    depth=circuit_depth(layout.circuit),
                    clean_ancillas=len(layout.clean_ancillas),
                    dirty_ancillas=len(layout.dirty_ancillas),
                )
            )
    return rows


def fit_growth(ns: Sequence[int], values: Sequence[int]) -> float:
    """Least-squares slope of log(value) vs log(n) — the growth exponent.

    ``Θ(n)`` circuits fit near 1.0, ``Θ(n²)`` near 2.0.
    """
    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need at least two matching samples")
    logs_n = [math.log(n) for n in ns]
    logs_v = [math.log(max(v, 1)) for v in values]
    mean_n = sum(logs_n) / len(logs_n)
    mean_v = sum(logs_v) / len(logs_v)
    num = sum((x - mean_n) * (y - mean_v) for x, y in zip(logs_n, logs_v))
    den = sum((x - mean_n) ** 2 for x in logs_n)
    return num / den
