"""Register layout metadata shared by the adder constructions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.circuits.circuit import Circuit


@dataclass(frozen=True)
class AdderLayout:
    """Wire roles of an adder circuit.

    Attributes
    ----------
    circuit:
        The gates.
    target:
        Little-endian wires of the in/out register (``target[i]`` holds
        bit ``2**i``).
    clean_ancillas:
        Wires that must start in ``|0>`` and are returned to ``|0>``.
    dirty_ancillas:
        Borrowed wires with arbitrary initial state, restored on exit —
        the qubits whose safe uncomputation Section 6 verifies.
    operand:
        For register-register adders, the second input register (holds
        the addend, preserved).
    """

    circuit: Circuit
    target: List[int]
    clean_ancillas: List[int] = field(default_factory=list)
    dirty_ancillas: List[int] = field(default_factory=list)
    operand: List[int] = field(default_factory=list)

    @property
    def num_target_bits(self) -> int:
        return len(self.target)

    def encode_target(self, value: int, bits: Sequence[int]) -> List[int]:
        """Overwrite ``bits`` (a full register bit-list) with ``value``
        on the target wires; returns a new list."""
        out = list(bits)
        for i, wire in enumerate(self.target):
            out[wire] = (value >> i) & 1
        return out

    def decode_target(self, bits: Sequence[int]) -> int:
        """Read the little-endian target value out of a full bit-list."""
        value = 0
        for i, wire in enumerate(self.target):
            value |= (bits[wire] & 1) << i
        return value
