"""Constant-adder constructions — system S11 (Figure 1.1's four columns).

All adders act on a little-endian target register (wire list index ``i``
holds bit value ``2**i``) and add a classical constant ``c`` modulo
``2**n``:

* :mod:`repro.adders.cuccaro` — ripple-carry MAJ/UMA adder [Cuccaro et
  al. 2004]; the constant variant loads ``c`` into ``n`` clean qubits and
  uses one more clean carry qubit (``n+1`` clean ancillas).
* :mod:`repro.adders.takahashi` — ancilla-free register adder [Takahashi
  et al. 2010]; the constant variant needs ``n`` clean qubits for ``c``.
* :mod:`repro.adders.draper` — QFT adder [Draper 2000]; ``0`` ancillas,
  ``Θ(n²)`` gates.
* :mod:`repro.adders.haner` — the dirty-ancilla carry-strip circuits of
  Häner et al. 2017, including the exact Figure 6.2 / 10.1 benchmark
  circuit the paper verifies (see DESIGN.md §4 for the substitution note
  on the 1-dirty-qubit recursive variant).
"""

from repro.adders.layout import AdderLayout
from repro.adders.cuccaro import cuccaro_add_registers, cuccaro_constant_adder
from repro.adders.takahashi import (
    takahashi_add_registers,
    takahashi_constant_adder,
)
from repro.adders.draper import draper_constant_adder
from repro.adders.haner import (
    haner_carry_benchmark,
    haner_ripple_constant_adder,
)
from repro.adders.costs import adder_cost_rows

__all__ = [
    "AdderLayout",
    "adder_cost_rows",
    "cuccaro_add_registers",
    "cuccaro_constant_adder",
    "draper_constant_adder",
    "haner_carry_benchmark",
    "haner_ripple_constant_adder",
    "takahashi_add_registers",
    "takahashi_constant_adder",
]
