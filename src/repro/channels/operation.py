"""Kraus-operator representation of quantum operations.

The denotational semantics (Figure 4.3) interprets programs as *sets* of
quantum operations; this module supplies the single-operation algebra:

* ``e2 @ e1``   — sequential composition ``E2 ∘ E1``;
* ``e1 + e2``   — branch summation (used by ``if`` and ``while``);
* ``e.cp_leq(f)`` — the complete-positivity order ``E ⊑ F`` from
  Section 4.2, decided on Choi matrices;
* ``e.close_to(f)`` / ``e.key()`` — equality and hashing of operations via
  the superoperator (natural) representation, which is what lets the
  semantics deduplicate the operation set of a safe program
  (Theorem 5.5: safe  ⇔  ``|⟦S⟧| ≤ 1``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import QubitError

_ATOL = 1e-9


class QuantumOperation:
    """A completely positive, trace-non-increasing map in Kraus form.

    Parameters
    ----------
    kraus:
        Non-empty sequence of ``(2**n, 2**n)`` complex matrices ``K_i``;
        the operation acts as ``rho -> sum_i K_i rho K_i†``.
    num_qubits:
        Size ``n`` of the register the operation acts on.
    validate:
        When true (default), checks the trace-non-increasing condition
        ``sum_i K_i† K_i <= I``.
    """

    def __init__(
        self,
        kraus: Sequence[np.ndarray],
        num_qubits: int,
        validate: bool = True,
    ):
        dim = 2**num_qubits
        mats: List[np.ndarray] = []
        for k in kraus:
            k = np.asarray(k, dtype=complex)
            if k.shape != (dim, dim):
                raise QubitError(
                    f"Kraus operator of shape {k.shape} does not act on "
                    f"{num_qubits} qubits"
                )
            mats.append(k)
        if not mats:
            raise QubitError("an operation needs at least one Kraus operator")
        self.num_qubits = num_qubits
        self.kraus = mats
        if validate and not self.is_trace_nonincreasing():
            raise QubitError("Kraus operators exceed the trace bound sum K†K <= I")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def identity(num_qubits: int) -> "QuantumOperation":
        """The identity operation ``I`` on ``num_qubits`` qubits."""
        return QuantumOperation(
            [np.eye(2**num_qubits, dtype=complex)], num_qubits, validate=False
        )

    @staticmethod
    def zero(num_qubits: int) -> "QuantumOperation":
        """The zero map — the neutral element of branch summation."""
        return QuantumOperation(
            [np.zeros((2**num_qubits, 2**num_qubits), dtype=complex)],
            num_qubits,
            validate=False,
        )

    @staticmethod
    def from_unitary(unitary: np.ndarray, num_qubits: int) -> "QuantumOperation":
        """Wrap a full-register unitary as the operation ``rho -> U rho U†``."""
        return QuantumOperation([unitary], num_qubits, validate=False)

    # ------------------------------------------------------------------ #
    # Action and algebra
    # ------------------------------------------------------------------ #

    def __call__(self, rho: np.ndarray) -> np.ndarray:
        """Apply the operation to a (partial) density operator."""
        rho = np.asarray(rho, dtype=complex)
        out = np.zeros_like(rho)
        for k in self.kraus:
            out += k @ rho @ k.conj().T
        return out

    def apply_to_ket(self, ket: np.ndarray) -> np.ndarray:
        """Apply to a pure state, returning the (mixed) output density."""
        ket = np.asarray(ket, dtype=complex)
        return self(np.outer(ket, ket.conj()))

    def __matmul__(self, earlier: "QuantumOperation") -> "QuantumOperation":
        """Sequential composition: ``self @ earlier`` is ``self ∘ earlier``."""
        if earlier.num_qubits != self.num_qubits:
            raise QubitError("cannot compose operations on different registers")
        kraus = [b @ a for b in self.kraus for a in earlier.kraus]
        return QuantumOperation(kraus, self.num_qubits, validate=False)

    def __add__(self, other: "QuantumOperation") -> "QuantumOperation":
        """Branch summation, e.g. ``E1 ∘ E_T + E2 ∘ E_F`` for ``if``."""
        if other.num_qubits != self.num_qubits:
            raise QubitError("cannot sum operations on different registers")
        return QuantumOperation(
            list(self.kraus) + list(other.kraus), self.num_qubits, validate=False
        )

    def tensor(self, other: "QuantumOperation") -> "QuantumOperation":
        """Return ``self ⊗ other`` on the concatenated register."""
        kraus = [np.kron(a, b) for a in self.kraus for b in other.kraus]
        return QuantumOperation(
            kraus, self.num_qubits + other.num_qubits, validate=False
        )

    # ------------------------------------------------------------------ #
    # Representations
    # ------------------------------------------------------------------ #

    def superoperator(self) -> np.ndarray:
        """Natural representation: ``sum_i K_i ⊗ conj(K_i)``.

        Two operations are equal as maps iff their superoperators are
        equal, which makes this the canonical form for comparison.
        """
        dim = 2**self.num_qubits
        out = np.zeros((dim * dim, dim * dim), dtype=complex)
        for k in self.kraus:
            out += np.kron(k, k.conj())
        return out

    def choi(self) -> np.ndarray:
        """Choi matrix ``sum_ij |i><j| ⊗ E(|i><j|)`` (column-stacking)."""
        dim = 2**self.num_qubits
        out = np.zeros((dim * dim, dim * dim), dtype=complex)
        for k in self.kraus:
            vec = k.reshape(dim * dim, 1, order="F")
            out += vec @ vec.conj().T
        return out

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #

    def is_trace_preserving(self, atol: float = _ATOL) -> bool:
        """Check ``sum_i K_i† K_i = I``."""
        acc = sum(k.conj().T @ k for k in self.kraus)
        return bool(np.allclose(acc, np.eye(2**self.num_qubits), atol=atol))

    def is_trace_nonincreasing(self, atol: float = _ATOL) -> bool:
        """Check ``sum_i K_i† K_i <= I`` (PSD complement)."""
        acc = sum(k.conj().T @ k for k in self.kraus)
        gap = np.eye(2**self.num_qubits) - acc
        return bool(np.linalg.eigvalsh(gap).min() >= -atol)

    def cp_leq(self, other: "QuantumOperation", atol: float = _ATOL) -> bool:
        """The paper's order: ``self ⊑ other`` iff ``other - self`` is CP.

        Complete positivity of the difference is equivalent to its Choi
        matrix being positive semidefinite.
        """
        gap = other.choi() - self.choi()
        return bool(np.linalg.eigvalsh(gap).min() >= -atol)

    def close_to(self, other: "QuantumOperation", atol: float = 1e-8) -> bool:
        """Equality as linear maps, via the superoperator representation."""
        if other.num_qubits != self.num_qubits:
            return False
        return bool(
            np.allclose(self.superoperator(), other.superoperator(), atol=atol)
        )

    def key(self, decimals: int = 7) -> bytes:
        """A hashable fingerprint for deduplicating operation sets."""
        rounded = np.round(self.superoperator(), decimals)
        # Normalise -0.0 so that keys of equal maps match bit-for-bit.
        rounded = rounded + 0.0
        return rounded.tobytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumOperation(num_qubits={self.num_qubits}, "
            f"kraus_count={len(self.kraus)})"
        )


def dedup_operations(
    operations: Iterable[QuantumOperation],
) -> List[QuantumOperation]:
    """Remove duplicates (as maps) while preserving first-seen order."""
    seen = set()
    unique: List[QuantumOperation] = []
    for op in operations:
        key = op.key()
        if key not in seen:
            seen.add(key)
            unique.append(op)
    return unique
