"""The primitive quantum operations of Section 2.

Three families, exactly as the paper defines them:

* :func:`initialization` — ``E_init,q(rho) = |0><0|_q rho |0><0|_q +
  |0><1|_q rho |1><0|_q``;
* :func:`unitary_operation` — ``E_U,q(rho) = U_q rho U_q†``;
* :func:`measurement_branch` — ``E_m,q(rho) = M_m rho M_m†`` for a binary
  measurement ``{M_T, M_F}``; probabilities are encoded in the trace of the
  resulting partial density operator.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.channels.operation import QuantumOperation
from repro.errors import QubitError
from repro.linalg.kron import embed_operator
from repro.linalg.states import ket0, ket1

_KET0_BRA0 = np.outer(ket0, ket0.conj())
_KET0_BRA1 = np.outer(ket0, ket1.conj())
_KET1_BRA1 = np.outer(ket1, ket1.conj())


def initialization(qubit: int, num_qubits: int) -> QuantumOperation:
    """Reset ``qubit`` to the ground state ``|0>`` (the ``[q] := |0>`` statement)."""
    k0 = embed_operator(_KET0_BRA0, [qubit], num_qubits)
    k1 = embed_operator(_KET0_BRA1, [qubit], num_qubits)
    return QuantumOperation([k0, k1], num_qubits, validate=False)


def unitary_operation(
    unitary: np.ndarray, positions: Sequence[int], num_qubits: int
) -> QuantumOperation:
    """Apply ``unitary`` to ``positions`` (the ``U[q̄]`` statement)."""
    full = embed_operator(unitary, positions, num_qubits)
    return QuantumOperation([full], num_qubits, validate=False)


def measurement_branch(
    operator: np.ndarray, positions: Sequence[int], num_qubits: int
) -> QuantumOperation:
    """The sub-normalised branch ``rho -> M rho M†`` of a measurement."""
    full = embed_operator(operator, positions, num_qubits)
    return QuantumOperation([full], num_qubits, validate=False)


def basis_measurement(
    qubit: int, num_qubits: int
) -> Dict[bool, QuantumOperation]:
    """Computational-basis measurement of ``qubit``.

    Returns the two branches keyed by outcome: ``True`` for ``M_T = |1><1|``
    (the qubit was 1) and ``False`` for ``M_F = |0><0|``.  This is the guard
    used by ``if``/``while`` statements in the examples and tests.
    """
    return {
        True: measurement_branch(_KET1_BRA1, [qubit], num_qubits),
        False: measurement_branch(_KET0_BRA0, [qubit], num_qubits),
    }


def check_binary_measurement(
    m_true: np.ndarray, m_false: np.ndarray, atol: float = 1e-9
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate the completeness relation ``M_T† M_T + M_F† M_F = I``."""
    m_true = np.asarray(m_true, dtype=complex)
    m_false = np.asarray(m_false, dtype=complex)
    if m_true.shape != m_false.shape:
        raise QubitError("measurement operators must share a shape")
    acc = m_true.conj().T @ m_true + m_false.conj().T @ m_false
    if not np.allclose(acc, np.eye(m_true.shape[0]), atol=atol):
        raise QubitError("binary measurement violates M_T†M_T + M_F†M_F = I")
    return m_true, m_false
