"""Quantum operations (channels) — system S2.

A *quantum operation* in the paper is a completely positive,
trace-non-increasing linear map on partial density operators (Section 2).
:class:`repro.channels.QuantumOperation` represents one by its Kraus
operators on the full register and supports exactly the algebra the
denotational semantics of Figure 4.3 needs: sequential composition,
convex combination of measurement branches (``+``), tensoring with
identities, and the CP order ``⊑`` used for the while-loop fixpoint.

:mod:`repro.channels.primitives` builds the three primitive operations of
Section 2: initialization, unitary transformation, and binary measurement.
"""

from repro.channels.operation import QuantumOperation
from repro.channels.primitives import (
    basis_measurement,
    initialization,
    measurement_branch,
    unitary_operation,
)

__all__ = [
    "QuantumOperation",
    "basis_measurement",
    "initialization",
    "measurement_branch",
    "unitary_operation",
]
