"""Static borrow checker for the QBorrow surface language.

The checker tracks *register ownership states* — ``owned``, ``lent``,
``borrowed`` (a scoped ``borrow ... { within {...} apply {...} }`` block
is open), ``released``, and ``consumed`` (the block ended and returned
the qubit) — plus a per-block *wire taint lattice*, as the elaborator
walks the program.  It is a purely static, compile-time pass: no solver
runs, no simulation.  Loops are unrolled and registers resolved to
concrete wires first, so ``q[1]`` and ``q[i]`` are compared as wires,
not as names.

Why the taint lattice proves the paper's contract
-------------------------------------------------

A scoped borrow block elaborates to the double conjugation
``C; D; reverse(C); D`` (every surface gate is self-inverse, so
``reverse(C)`` *is* ``C``:sup:`-1`).  Call the borrowed wire's unknown
initial value ``b0``.  The paper's safety contract (Section 6) demands

* (6.1) the borrowed wire ends bit-identical to ``b0`` for all inputs;
* (6.2) every other output is independent of ``b0``.

``reverse(C)`` gives (6.1) as long as the apply-section never writes a
wire the within-section touched (rule **BQ004**).  For (6.2) each
apply-section gate fires twice — once after ``C`` and once after
``reverse(C)`` — so its net effect is ``P1 xor P2``, the XOR of its
control products in the two phases.  The lattice tracks, per open block,
what each wire's value may contain:

* ``clean`` — no ``b0`` dependence (the default);
* ``('offset', w)`` — exactly ``b0_w xor f`` for some ``b0``-free
  ``f``, where ``w`` is the borrowed wire the offset originated from
  (a multi-wire borrow has one unknown per wire, so origins matter:
  ``b0_1 xor b0_2`` cancels nothing and is *dirty*, not clean);
* ``dirty`` — any other ``b0`` dependence.

A gate whose only tainted control is a single borrowed wire still
carrying **its own** offset (``taint[w] == ('offset', w)``), with every
other control untouched by the within-section, has
``P1 xor P2 = (b0_w xor f)·h xor b0_w·h = f·h`` — the ``b0_w`` terms
cancel and the gate contributes a useful, provably-clean effect (this
is exactly the Figure 1.3 CCCNOT construction).  Every other read of a
borrowed or tainted wire leaks some ``b0`` into an output and is
rejected (**BQ010**) — including a borrowed wire the within-section
rewrote to a clean or foreign-offset value, because its mirror-phase
read still sees ``b0_w`` with nothing left to cancel it.  A wire both
read and written by the apply-section breaks the phase pairing
(**BQ011**); and a gate with no phase-varying control at all cancels
with its mirror copy, which is reported as the warning **BQ012**.

Blocks that finish without an error are *proven*: the emitted circuit
satisfies (6.1) and (6.2) for the borrowed wires by construction, and
elaboration records them in ``ElaboratedProgram.proven_wires`` so the
``verified`` allocation strategy and ``MultiProgrammer`` can skip the
solver obligations the checker already discharged.

Entry points
------------

:func:`check_program` / :func:`check_qbr` run in *collect* mode and
return every diagnostic as a :class:`~repro.lang.diagnostics.DiagnosticReport`;
:func:`repro.lang.surface.elaborate.elaborate` runs the same checker in
*strict* mode, raising :class:`~repro.lang.diagnostics.BorrowCheckError`
at the first violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ParseError
from repro.lang.diagnostics import (
    BorrowCheckError,
    Diagnostic,
    DiagnosticReport,
    Span,
)

# Register ownership states ------------------------------------------------- #

#: The program owns the register and may use it freely.
OWNED = "owned"
#: A ``lend`` block is open: the owner must stay away from the register.
LENT = "lent"
#: A scoped ``borrow ... { ... }`` block is currently open.
BORROWED = "borrowed"
#: ``release`` ran; the register name may be redeclared but not used.
RELEASED = "released"
#: A scoped borrow block ended; the qubit went back to its owner.
CONSUMED = "consumed"

# Wire taint states (per open borrow block) --------------------------------- #
#
# An offset is represented as the tuple ``(_OFFSET, origin_wire)`` so a
# multi-wire borrow keeps its per-wire unknowns apart: XOR-ing offsets
# of *different* origins leaves ``b0_a xor b0_b`` in the value, which is
# dirty, not clean.

_CLEAN = "clean"
_OFFSET = "offset"
_DIRTY = "dirty"


def _offset(wire: int) -> Tuple[str, int]:
    """The taint value ``b0_wire xor f`` (``f`` free of every ``b0``)."""
    return (_OFFSET, wire)


def _is_offset(state: object) -> bool:
    """True when ``state`` is an ``(offset, origin)`` taint value."""
    return isinstance(state, tuple)


@dataclass(frozen=True)
class GateOperand:
    """One resolved gate operand the elaborator hands to the checker."""

    reg: str  #: register name as written
    wire: int  #: concrete circuit wire
    span: Span  #: source extent of the operand
    text: str  #: display form, e.g. ``q`` or ``q[2]``


@dataclass
class _RegRecord:
    """Ownership bookkeeping for one declared register."""

    name: str
    wires: Tuple[int, ...]
    kind: str
    state: str = OWNED
    decl_line: int = 0
    event_line: int = 0  # line of the release/lend/borrow that set `state`


@dataclass
class _Frame:
    """One open scoped borrow block."""

    name: str
    wires: frozenset
    span: Span
    in_apply: bool = False
    # The block's own mirror emission (reverse(C); D) is running: taint
    # bookkeeping continues but the apply-phase rules don't re-fire.
    in_mirror: bool = False
    touched: Set[int] = field(default_factory=set)
    frozen: frozenset = frozenset()
    # Wire -> _CLEAN | _DIRTY | (_OFFSET, origin_wire).
    taint: Dict[int, object] = field(default_factory=dict)
    # Apply-section gates: (control operands, target operand).
    records: List[Tuple[Tuple[GateOperand, ...], GateOperand]] = field(
        default_factory=list
    )
    writes: Set[int] = field(default_factory=set)
    failed: bool = False


def _product_state(states: Sequence[object]) -> object:
    """Taint of a gate's control product under one block's lattice."""
    if not states or all(s == _CLEAN for s in states):
        return _CLEAN
    if len(states) == 1 and _is_offset(states[0]):
        return states[0]
    return _DIRTY


def _xor_state(current: object, product: object) -> object:
    """Taint of ``target xor product`` under one block's lattice."""
    if product == _CLEAN:
        return current
    if product == _DIRTY or current == _DIRTY:
        return _DIRTY
    # product is an offset: only the *same-origin* b0 cancels.  An XOR
    # of offsets from different borrowed wires leaves b0_a xor b0_b in
    # the value, which no later cancellation argument can remove.
    if current == _CLEAN:
        return product
    return _CLEAN if current == product else _DIRTY


class BorrowChecker:
    """Elaborator-driven ownership and taint tracker.

    One instance checks one program.  The elaborator calls the lifecycle
    hooks (:meth:`declare`, :meth:`release`, :meth:`enter_borrow`, ...)
    as it walks statements; every violation becomes a
    :class:`~repro.lang.diagnostics.Diagnostic` in :attr:`report`.  In
    strict mode the first error-severity diagnostic raises
    :class:`~repro.lang.diagnostics.BorrowCheckError`.
    """

    def __init__(self, report: DiagnosticReport, strict: bool = True):
        self.report = report
        self.strict = strict
        self.registers: Dict[str, _RegRecord] = {}
        self.frames: List[_Frame] = []
        # Loop bodies elaborate once per iteration and mirrored sections
        # re-run their gates, so the same source span can be checked many
        # times; each (code, position) pair is reported once.
        self._seen: Set[Tuple[str, int, int]] = set()

    # Reporting ---------------------------------------------------------- #

    def emit(
        self,
        code: str,
        message: str,
        span: Span,
        label: str = "",
        notes: Sequence[str] = (),
        hints: Sequence[str] = (),
        severity: str = "error",
    ) -> None:
        """Record one finding (deduplicated by code and position)."""
        key = (code, span.line, span.column)
        if key in self._seen:
            return
        self._seen.add(key)
        self.report.add(
            Diagnostic(
                code=code,
                message=message,
                span=span,
                label=label,
                notes=tuple(notes),
                hints=tuple(hints),
                severity=severity,
            )
        )
        if severity == "error":
            for frame in self.frames:
                frame.failed = True
            if self.strict:
                raise BorrowCheckError(self.report)

    # Lifecycle hooks ----------------------------------------------------- #

    def declare(
        self, name: str, wires: Sequence[int], kind: str, span: Span
    ) -> bool:
        """Register a declaration; False means skip it (BQ002)."""
        record = self.registers.get(name)
        if record is not None and record.state in (OWNED, LENT, BORROWED):
            self.emit(
                "BQ002",
                f"register '{name}' is already declared and still live",
                span,
                label="redeclared here",
                notes=(
                    f"the first declaration of '{name}' is on line "
                    f"{record.decl_line}",
                ),
                hints=(
                    f"release '{name}' before redeclaring it, or pick a "
                    f"fresh name",
                ),
            )
            return False
        self.registers[name] = _RegRecord(
            name=name,
            wires=tuple(wires),
            kind=kind,
            decl_line=span.line,
        )
        return True

    def release(self, name: str, span: Span) -> bool:
        """Validate a ``release``; False means skip it."""
        record = self.registers.get(name)
        if record is None:
            self.emit(
                "BQ008",
                f"release of undeclared register '{name}'",
                span,
                label="no such register",
                hints=(f"declare '{name}' before releasing it",),
            )
            return False
        if record.state == RELEASED:
            self.emit(
                "BQ008",
                f"register '{name}' released twice",
                span,
                label="second release",
                notes=(f"'{name}' was first released on line "
                       f"{record.event_line}",),
                hints=("drop one of the releases",),
            )
            return False
        if record.state == CONSUMED:
            self.emit(
                "BQ003",
                f"scoped borrow '{name}' referenced after its block ended",
                span,
                label="the borrow was already returned",
                notes=(f"the borrow block for '{name}' opened on line "
                       f"{record.decl_line}",),
                hints=("a scoped borrow returns itself; no release is "
                       "needed",),
            )
            return False
        if record.state == BORROWED:
            self.emit(
                "BQ009",
                f"cannot release '{name}': a scoped borrow must be "
                f"returned by its block, not released",
                span,
                label="borrow leaked here",
                notes=(f"the borrow block for '{name}' opened on line "
                       f"{record.decl_line}",),
                hints=(f"remove this release; the block returns '{name}' "
                       f"when it closes",),
            )
            return False
        if record.state == LENT:
            self.emit(
                "BQ009",
                f"cannot release '{name}' while it is lent out",
                span,
                label="released during a lend",
                notes=(f"'{name}' was lent on line {record.event_line}",),
                hints=("move the release after the lend block",),
            )
            return False
        record.state = RELEASED
        record.event_line = span.line
        return True

    def enter_borrow(
        self, name: str, wires: Sequence[int], span: Span
    ) -> _Frame:
        """Open a scoped borrow block for an already-declared register."""
        record = self.registers.get(name)
        if record is not None:
            record.state = BORROWED
            record.event_line = span.line
        frame = _Frame(name=name, wires=frozenset(wires), span=span)
        for wire in wires:
            # Each borrowed wire starts as its *own* offset: a width-N
            # borrow has N independent unknowns, and only same-origin
            # XORs cancel.
            frame.taint[wire] = _offset(wire)
        self.frames.append(frame)
        return frame

    def begin_apply(self, frame: _Frame) -> None:
        """Freeze the within-section's touched set and enter the apply phase."""
        frame.in_apply = True
        frame.frozen = frozenset(frame.touched | frame.wires)

    def begin_mirror(self, frame: _Frame) -> None:
        """Enter the block's mirror emission (``reverse(C); D``)."""
        frame.in_mirror = True

    def end_borrow(self, frame: _Frame) -> bool:
        """Close a block; True when its borrowed wires are proven safe."""
        # Post-hoc BQ011: the apply-section may not read a wire it also
        # writes — the written value differs between the two phases, so
        # the second copy of the reader sees a different input and the
        # b0 cancellation argument no longer applies.
        for controls, target in frame.records:
            for control in controls:
                if control.wire in frame.writes:
                    self.emit(
                        "BQ011",
                        f"apply-section reads '{control.text}', a wire "
                        f"it also writes",
                        control.span,
                        label="read/write overlap in the apply-section",
                        notes=(
                            "the apply-section runs twice (before and "
                            "after the uncompute); a wire it writes has "
                            "different values in the two runs",
                        ),
                        hints=(
                            "split the computation so no apply-section "
                            "gate reads a wire another apply-section "
                            "gate targets",
                        ),
                    )
        popped = self.frames.pop()
        assert popped is frame
        record = self.registers.get(frame.name)
        if record is not None and record.state == BORROWED:
            record.state = CONSUMED
        return not frame.failed

    def enter_lend(self, name: str, span: Span) -> bool:
        """Open a ``lend`` block; False means the lend is invalid."""
        record = self.registers.get(name)
        if record is None:
            self.emit(
                "BQ006",
                f"cannot lend undeclared register '{name}'",
                span,
                label="no such register",
                hints=(f"declare '{name}' before lending it",),
            )
            return False
        if record.state != OWNED:
            reason = {
                LENT: "it is already lent out",
                BORROWED: "it is a scoped borrow, not an owned register",
                RELEASED: "it was already released",
                CONSUMED: "its borrow block already ended",
            }[record.state]
            self.emit(
                "BQ006",
                f"cannot lend '{name}': {reason}",
                span,
                label="invalid lend",
                notes=(f"'{name}' changed state on line "
                       f"{record.event_line or record.decl_line}",),
                hints=("only an owned, live register can be lent",),
            )
            return False
        record.state = LENT
        record.event_line = span.line
        return True

    def exit_lend(self, name: str) -> None:
        """Close a ``lend`` block and return the register to its owner."""
        record = self.registers.get(name)
        if record is not None and record.state == LENT:
            record.state = OWNED

    # Gate hook ----------------------------------------------------------- #

    def gate(
        self,
        operands: Sequence[GateOperand],
        span: Span,
        mirrored_from: Optional[int] = None,
    ) -> bool:
        """Check one gate; False means the elaborator must skip emission.

        ``mirrored_from`` marks a gate re-emitted by a borrow block's
        mirror phases (``reverse(C); D``) and carries the block's line
        number for the note.
        """
        mirror_note = (
            f"in the mirrored copy emitted by the borrow block on line "
            f"{mirrored_from}"
            if mirrored_from is not None
            else None
        )

        # Ownership of every operand's register.  Mirrored gates are
        # compiler-generated restore machinery: their operands were
        # checked at first emission, and a nested block legitimately
        # replays gates of registers it has since consumed.
        for op in operands if mirrored_from is None else ():
            record = self.registers.get(op.reg)
            if record is None:
                continue  # unknown registers fail resolution earlier
            if record.state == RELEASED:
                self.emit(
                    "BQ001",
                    f"register '{op.reg}' used after release",
                    op.span,
                    label=f"'{op.reg}' is no longer live here",
                    notes=tuple(
                        n
                        for n in (
                            f"'{op.reg}' was released on line "
                            f"{record.event_line}",
                            mirror_note,
                        )
                        if n
                    ),
                    hints=("move this use before the release, or drop "
                           "the release",),
                )
            elif record.state == CONSUMED:
                self.emit(
                    "BQ003",
                    f"scoped borrow '{op.reg}' used after its block ended",
                    op.span,
                    label="the borrow was already returned",
                    notes=tuple(
                        n
                        for n in (
                            f"the borrow block for '{op.reg}' opened on "
                            f"line {record.decl_line}",
                            mirror_note,
                        )
                        if n
                    ),
                    hints=("move this gate inside the borrow block",),
                )
            elif record.state == LENT:
                self.emit(
                    "BQ005",
                    f"register '{op.reg}' is lent out and cannot be "
                    f"used here",
                    op.span,
                    label="owner access during a lend",
                    notes=(f"'{op.reg}' was lent on line "
                           f"{record.event_line}",),
                    hints=("move this gate outside the lend block",),
                )

        # Aliased operands (the Guppy copy_qubit class): a multi-qubit
        # gate needs distinct wires.
        seen_wires: Dict[int, GateOperand] = {}
        ok = True
        for op in operands:
            if op.wire in seen_wires:
                first = seen_wires[op.wire]
                self.emit(
                    "BQ007",
                    f"gate operands '{first.text}' and '{op.text}' alias "
                    f"the same wire",
                    op.span,
                    label="same wire as an earlier operand",
                    notes=("a controlled gate needs pairwise-distinct "
                           "wires; a qubit cannot be used twice in one "
                           "gate",),
                    hints=("route one of the operands to a different "
                           "wire",),
                )
                ok = False
            else:
                seen_wires[op.wire] = op
        if not ok:
            return False

        controls, target = tuple(operands[:-1]), operands[-1]

        # Apply-phase rules, per open block currently in its apply phase
        # (a block's own mirror emission is exempt: it re-plays gates the
        # phase rules already admitted).
        erred = False
        for frame in self.frames:
            if not frame.in_apply or frame.in_mirror:
                continue
            if self._check_apply_gate(
                frame, controls, target, span, mirror_note
            ):
                erred = True

        # BQ012 (warning): a gate whose controls are all phase-invariant
        # for its *innermost* apply phase fires identically in both
        # copies of that block and cancels itself out.  Outer frames
        # don't enter into it: the innermost mirror is what duplicates
        # the gate, so the innermost frame decides whether the copies
        # differ.
        apply_frames = [
            f for f in self.frames if f.in_apply and not f.in_mirror
        ]
        if apply_frames and mirrored_from is None and not erred:
            innermost = apply_frames[-1]
            varying = any(
                op.wire in innermost.frozen
                or innermost.taint.get(op.wire, _CLEAN) != _CLEAN
                for op in controls
            )
            if not varying:
                self.emit(
                    "BQ012",
                    "apply-section gate cancels with its mirror copy and "
                    "has no net effect",
                    span,
                    label="fires identically in both phases",
                    notes=("the apply-section is emitted twice; a gate "
                           "that reads no borrowed or within-touched "
                           "wire repeats itself and the two copies "
                           "cancel",),
                    hints=("control the gate on the borrowed wire, or "
                           "move it out of the borrow block",),
                    severity="warning",
                )

        # Taint propagation, per open block (any phase).
        control_wires = [op.wire for op in controls]
        for frame in self.frames:
            states = [frame.taint.get(w, _CLEAN) for w in control_wires]
            product = _product_state(states)
            if product != _CLEAN:
                new = _xor_state(
                    frame.taint.get(target.wire, _CLEAN), product
                )
                if new == _CLEAN:
                    frame.taint.pop(target.wire, None)
                else:
                    frame.taint[target.wire] = new
            if not frame.in_apply:
                frame.touched.update(op.wire for op in operands)
            elif not frame.in_mirror:
                frame.records.append((controls, target))
                frame.writes.add(target.wire)
        return True

    def _check_apply_gate(
        self,
        frame: _Frame,
        controls: Tuple[GateOperand, ...],
        target: GateOperand,
        span: Span,
        mirror_note: Optional[str],
    ) -> bool:
        """BQ004/BQ010 rules for one gate inside ``frame``'s apply phase.

        Returns True when the gate violated a rule (so the caller skips
        the BQ012 no-effect warning for it).
        """
        del span  # diagnostics anchor on operand spans
        if target.wire in frame.frozen:
            what = (
                f"the borrowed wire '{target.text}'"
                if target.wire in frame.wires
                else f"'{target.text}', which the within-section touched"
            )
            self.emit(
                "BQ004",
                f"apply-section writes to {what}",
                target.span,
                label="frozen by the borrow block",
                notes=tuple(
                    n
                    for n in (
                        "every wire the within-section touches (and the "
                        "borrowed wire itself) is restored when the "
                        "block ends; an apply-section write would "
                        "corrupt that restore",
                        mirror_note,
                    )
                    if n
                ),
                hints=("move this gate into the within-section, or "
                       "target a wire the within-section leaves alone",),
            )
            return True

        # A borrowed wire is always phase-sensitive: the mirror-phase
        # firing reads its dirty initial value b0_w no matter what taint
        # the within-section left on it, so it belongs in ``tainted``
        # even when its post-C taint is clean.
        tainted = [
            op
            for op in controls
            if frame.taint.get(op.wire, _CLEAN) != _CLEAN
            or op.wire in frame.wires
        ]
        if not tainted:
            return False
        # The one provable shape: a lone read of a borrowed wire still
        # carrying its *own* offset (so the two phases differ by exactly
        # b0_w and cancel), with every other control phase-stable.
        usable = (
            len(tainted) == 1
            and tainted[0].wire in frame.wires
            and frame.taint.get(tainted[0].wire) == _offset(tainted[0].wire)
            and not any(
                op.wire in frame.frozen
                for op in controls
                if op is not tainted[0]
            )
        )
        if usable:
            return False
        if len(tainted) > 1:
            culprit = tainted[1]
            detail = (
                "a single apply-section gate may read at most one "
                "borrowed wire"
            )
        else:
            culprit = tainted[0]
            state = frame.taint.get(culprit.wire, _CLEAN)
            if state == _DIRTY:
                detail = (
                    f"'{culprit.text}' carries a value contaminated by "
                    f"the dirty initial state of '{frame.name}'"
                )
            elif culprit.wire not in frame.wires:
                detail = (
                    f"the within-section mixed '{frame.name}' into "
                    f"'{culprit.text}', which does not restore to the "
                    f"borrowed value"
                )
            elif state != _offset(culprit.wire):
                detail = (
                    f"the within-section rewrote '{culprit.text}', so "
                    f"the mirror-phase read of its dirty initial value "
                    f"has nothing to cancel against"
                )
            else:
                mixed = [
                    op
                    for op in controls
                    if op is not culprit and op.wire in frame.frozen
                ]
                detail = (
                    f"'{culprit.text}' is read together with "
                    f"'{mixed[0].text}', which the within-section "
                    f"changes between the two phases"
                )
        self.emit(
            "BQ010",
            f"dirty read in the apply-section: {detail}",
            culprit.span,
            label="unprovable read",
            notes=tuple(
                n
                for n in (
                    "the apply-section runs before and after the "
                    "uncompute; only a lone read of the borrowed wire "
                    "(against otherwise phase-stable controls) makes "
                    "the two copies cancel the dirty value",
                    mirror_note,
                )
                if n
            ),
            hints=("recompute the needed value onto a fresh alloc wire "
                   "in the within-section, then control on that wire",),
        )
        return True


# Entry points --------------------------------------------------------------- #


def check_program(source: str, filename: str = "<qbr>") -> DiagnosticReport:
    """Borrow-check ``.qbr`` source in collect mode.

    Elaborates the program with the checker attached and accumulates
    every ownership diagnostic instead of stopping at the first one.  A
    grammar-level failure (a true parse error, an out-of-range index)
    still aborts elaboration; it is surfaced as a single ``PARSE``
    diagnostic so callers always get a report back.

    >>> report = check_program("borrow q; release q; X[q];")
    >>> report.codes()
    ['BQ001']
    """
    # Imported here to avoid a cycle: the elaborator imports this module.
    from repro.lang.surface.elaborate import elaborate

    report = DiagnosticReport(source=source, filename=filename)
    try:
        elaborate(source, strict=False, report=report)
    except BorrowCheckError:  # pragma: no cover - collect mode never raises
        pass
    except ParseError as err:
        line = getattr(err, "line", 0) or 1
        column = getattr(err, "column", 0) or 1
        report.add(
            Diagnostic(
                code="PARSE",
                message=str(err),
                span=Span(line, column),
            )
        )
    return report


def check_qbr(
    source: Union[str, Path], filename: Optional[str] = None
) -> DiagnosticReport:
    """Borrow-check ``.qbr`` text or a ``.qbr`` file from disk.

    Accepts the same flexible source forms as
    :func:`repro.lang.surface.elaborate.verify_qbr`: a path (or a string
    ending in ``.qbr``) is read from disk, anything else is treated as
    program text.
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and source.strip().endswith(".qbr")
    ):
        path = Path(source)
        return check_program(path.read_text(), filename or str(path))
    return check_program(source, filename or "<qbr>")
