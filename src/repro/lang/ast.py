"""Abstract syntax of QBorrow (Figure 4.1) and its static analyses.

Statements::

    S ::= skip | [q] := |0> | U[q̄] | S1; S2
        | if M[q̄] then S1 else S2
        | while M[q̄] do S end
        | borrow a; S; release a

Qubits are *names* (strings).  A name is either a concrete member of the
interpretation's ``qubits`` universe or a formal placeholder bound by an
enclosing ``borrow``; the distinction is made at interpretation time, as in
the paper.  ``borrow a; S; release a`` is represented by a single
:class:`Borrow` node whose body is ``S`` — the pairing of ``borrow`` and
``release`` is therefore structural, which enforces the paper's syntactic
discipline for free.

This module also implements:

* :func:`idle` — the idle-qubit scope of Figure 4.2;
* :func:`substitute` — the ``S[q/a]`` instantiation used by the semantics;
* :func:`check_well_formed` — placeholder scoping and arity checks;
* :func:`to_circuit` — lowering of straight-line unitary programs onto a
  :class:`~repro.circuits.Circuit` for the Section 6 verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, gate_from_name
from repro.errors import SemanticsError
from repro.linalg.states import ket0, ket1


# ---------------------------------------------------------------------- #
# Measurements
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Measurement:
    """A binary measurement ``M = {M_T, M_F}`` on named qubits.

    The operator arrays act on ``len(qubits)`` wires; completeness
    (``M_T†M_T + M_F†M_F = I``) is checked on construction.
    """

    name: str
    qubits: Tuple[str, ...]
    m_true: np.ndarray = field(compare=False)
    m_false: np.ndarray = field(compare=False)

    def __post_init__(self):
        dim = 2 ** len(self.qubits)
        for label, op in (("M_T", self.m_true), ("M_F", self.m_false)):
            if op.shape != (dim, dim):
                raise SemanticsError(
                    f"measurement {self.name}: {label} of shape {op.shape} "
                    f"does not act on {len(self.qubits)} qubits"
                )
        acc = (
            self.m_true.conj().T @ self.m_true
            + self.m_false.conj().T @ self.m_false
        )
        if not np.allclose(acc, np.eye(dim), atol=1e-9):
            raise SemanticsError(
                f"measurement {self.name} violates M_T†M_T + M_F†M_F = I"
            )

    def rename(self, mapping: Dict[str, str]) -> "Measurement":
        """Return a copy with qubit names substituted per ``mapping``."""
        qubits = tuple(mapping.get(q, q) for q in self.qubits)
        return Measurement(self.name, qubits, self.m_true, self.m_false)


def basis_measurement_on(qubit: str) -> Measurement:
    """Computational-basis measurement: outcome T when the qubit is ``|1>``."""
    return Measurement(
        f"meas[{qubit}]",
        (qubit,),
        np.outer(ket1, ket1.conj()),
        np.outer(ket0, ket0.conj()),
    )


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #


class Statement:
    """Base class of QBorrow statements (all subclasses are immutable)."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Statement):
    """``skip``."""


@dataclass(frozen=True)
class Init(Statement):
    """``[q] := |0>``."""

    qubit: str


@dataclass(frozen=True)
class UnitaryStmt(Statement):
    """``U[q̄]``: a named gate, or an explicit matrix for custom unitaries."""

    gate: str
    qubits: Tuple[str, ...]
    matrix: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    def local_matrix(self) -> np.ndarray:
        """Operator on ``len(self.qubits)`` wires."""
        if self.matrix is not None:
            return self.matrix
        dummy = gate_from_name(self.gate, tuple(range(len(self.qubits))))
        return dummy.local_matrix()


@dataclass(frozen=True)
class Seq(Statement):
    """``S1; S2; ...`` — n-ary for convenience, semantically left-to-right."""

    items: Tuple[Statement, ...]


@dataclass(frozen=True)
class If(Statement):
    """``if M[q̄] then S1 else S2``."""

    measurement: Measurement
    then_branch: Statement
    else_branch: Statement


@dataclass(frozen=True)
class While(Statement):
    """``while M[q̄] do S end`` — body runs on outcome T."""

    measurement: Measurement
    body: Statement


@dataclass(frozen=True)
class Borrow(Statement):
    """``borrow a; S; release a`` with ``a`` a formal placeholder."""

    placeholder: str
    body: Statement


# ---------------------------------------------------------------------- #
# Builders
# ---------------------------------------------------------------------- #


def skip() -> Skip:
    """``skip``."""
    return Skip()


def init(qubit: str) -> Init:
    """``[q] := |0>``."""
    return Init(qubit)


def unitary(gate: str, *qubits: str) -> UnitaryStmt:
    """A named-gate statement, e.g. ``unitary("CCX", "q1", "q2", "a")``."""
    stmt = UnitaryStmt(gate.upper(), tuple(qubits))
    stmt.local_matrix()  # validates name and arity eagerly
    return stmt


def unitary_matrix(
    matrix: np.ndarray, name: str, *qubits: str
) -> UnitaryStmt:
    """A unitary statement with an explicit matrix."""
    matrix = np.asarray(matrix, dtype=complex)
    dim = 2 ** len(qubits)
    if matrix.shape != (dim, dim):
        raise SemanticsError(
            f"matrix of shape {matrix.shape} does not act on {len(qubits)} qubits"
        )
    if not np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-9):
        raise SemanticsError(f"matrix for {name} is not unitary")
    return UnitaryStmt(name, tuple(qubits), matrix)


def seq(*statements: Statement) -> Statement:
    """Flattening sequence builder; ``seq()`` is ``skip``."""
    flat = []
    for stmt in statements:
        if isinstance(stmt, Seq):
            flat.extend(stmt.items)
        elif isinstance(stmt, Skip):
            continue
        else:
            flat.append(stmt)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def borrow(placeholder: str, *body: Statement) -> Borrow:
    """``borrow a; body...; release a``."""
    return Borrow(placeholder, seq(*body))


# ---------------------------------------------------------------------- #
# Static analyses
# ---------------------------------------------------------------------- #


def mentioned_qubits(stmt: Statement) -> FrozenSet[str]:
    """Every qubit name (concrete or placeholder) operated on by ``stmt``."""
    if isinstance(stmt, Skip):
        return frozenset()
    if isinstance(stmt, Init):
        return frozenset([stmt.qubit])
    if isinstance(stmt, UnitaryStmt):
        return frozenset(stmt.qubits)
    if isinstance(stmt, Seq):
        out: Set[str] = set()
        for item in stmt.items:
            out |= mentioned_qubits(item)
        return frozenset(out)
    if isinstance(stmt, If):
        return (
            frozenset(stmt.measurement.qubits)
            | mentioned_qubits(stmt.then_branch)
            | mentioned_qubits(stmt.else_branch)
        )
    if isinstance(stmt, While):
        return frozenset(stmt.measurement.qubits) | mentioned_qubits(stmt.body)
    if isinstance(stmt, Borrow):
        return mentioned_qubits(stmt.body)
    raise SemanticsError(f"unknown statement {stmt!r}")


def idle(stmt: Statement, universe: Iterable[str]) -> FrozenSet[str]:
    """The idle-qubit scope of Figure 4.2.

    Unfolding the paper's structural rules shows ``idle(S)`` is the
    universe minus every qubit mentioned anywhere in ``S`` (placeholders
    are not universe members, so they never subtract anything) — which is
    what this computes.  The structural rules are kept in the tests as an
    independent oracle.
    """
    return frozenset(universe) - mentioned_qubits(stmt)


def placeholders(stmt: Statement) -> FrozenSet[str]:
    """All placeholders bound by ``borrow`` nodes in ``stmt``."""
    if isinstance(stmt, Borrow):
        return frozenset([stmt.placeholder]) | placeholders(stmt.body)
    if isinstance(stmt, Seq):
        out: Set[str] = set()
        for item in stmt.items:
            out |= placeholders(item)
        return frozenset(out)
    if isinstance(stmt, If):
        return placeholders(stmt.then_branch) | placeholders(stmt.else_branch)
    if isinstance(stmt, While):
        return placeholders(stmt.body)
    return frozenset()


def substitute(stmt: Statement, mapping: Dict[str, str]) -> Statement:
    """The paper's ``S[q/a]``: rename qubit operands (capture-checked).

    Renaming *into* a bound placeholder name is rejected, mirroring the
    paper's convention that nested borrows introduce distinct names.
    """
    if not mapping:
        return stmt
    if isinstance(stmt, Skip):
        return stmt
    if isinstance(stmt, Init):
        return Init(mapping.get(stmt.qubit, stmt.qubit))
    if isinstance(stmt, UnitaryStmt):
        qubits = tuple(mapping.get(q, q) for q in stmt.qubits)
        return UnitaryStmt(stmt.gate, qubits, stmt.matrix)
    if isinstance(stmt, Seq):
        return Seq(tuple(substitute(item, mapping) for item in stmt.items))
    if isinstance(stmt, If):
        return If(
            stmt.measurement.rename(mapping),
            substitute(stmt.then_branch, mapping),
            substitute(stmt.else_branch, mapping),
        )
    if isinstance(stmt, While):
        return While(stmt.measurement.rename(mapping), substitute(stmt.body, mapping))
    if isinstance(stmt, Borrow):
        if stmt.placeholder in mapping:
            raise SemanticsError(
                f"substitution would capture placeholder {stmt.placeholder!r}"
            )
        if stmt.placeholder in mapping.values():
            raise SemanticsError(
                f"substitution target collides with placeholder "
                f"{stmt.placeholder!r}"
            )
        return Borrow(stmt.placeholder, substitute(stmt.body, mapping))
    raise SemanticsError(f"unknown statement {stmt!r}")


def check_well_formed(
    stmt: Statement,
    universe: Iterable[str],
    bound: FrozenSet[str] = frozenset(),
) -> None:
    """Enforce the paper's syntactic restrictions.

    * every qubit operand is a universe member or an in-scope placeholder;
    * nested ``borrow`` statements bind distinct placeholders;
    * placeholder names do not shadow universe members.
    """
    universe = frozenset(universe)

    def check_names(names: Sequence[str]) -> None:
        for name in names:
            if name not in universe and name not in bound:
                raise SemanticsError(
                    f"qubit {name!r} is neither a universe qubit nor an "
                    f"in-scope placeholder"
                )

    if isinstance(stmt, Skip):
        return
    if isinstance(stmt, Init):
        check_names([stmt.qubit])
        return
    if isinstance(stmt, UnitaryStmt):
        check_names(stmt.qubits)
        stmt.local_matrix()
        return
    if isinstance(stmt, Seq):
        for item in stmt.items:
            check_well_formed(item, universe, bound)
        return
    if isinstance(stmt, If):
        check_names(stmt.measurement.qubits)
        check_well_formed(stmt.then_branch, universe, bound)
        check_well_formed(stmt.else_branch, universe, bound)
        return
    if isinstance(stmt, While):
        check_names(stmt.measurement.qubits)
        check_well_formed(stmt.body, universe, bound)
        return
    if isinstance(stmt, Borrow):
        if stmt.placeholder in bound:
            raise SemanticsError(
                f"nested borrow reuses placeholder {stmt.placeholder!r}"
            )
        if stmt.placeholder in universe:
            raise SemanticsError(
                f"placeholder {stmt.placeholder!r} shadows a universe qubit"
            )
        check_well_formed(stmt.body, universe, bound | {stmt.placeholder})
        return
    raise SemanticsError(f"unknown statement {stmt!r}")


# ---------------------------------------------------------------------- #
# Lowering to circuits
# ---------------------------------------------------------------------- #


def to_circuit(
    stmt: Statement, qubit_order: Sequence[str]
) -> Circuit:
    """Lower a straight-line unitary program to a circuit.

    Only ``skip``, sequences and unitary statements are allowed — the
    fragment in which Section 6's classical verification operates.  The
    wire of each named qubit is its position in ``qubit_order``.
    """
    index_of = {name: i for i, name in enumerate(qubit_order)}
    if len(index_of) != len(list(qubit_order)):
        raise SemanticsError("duplicate names in qubit order")
    circuit = Circuit(len(index_of), labels=list(qubit_order))

    def emit(node: Statement) -> None:
        if isinstance(node, Skip):
            return
        if isinstance(node, Seq):
            for item in node.items:
                emit(item)
            return
        if isinstance(node, UnitaryStmt):
            try:
                wires = tuple(index_of[q] for q in node.qubits)
            except KeyError as missing:
                raise SemanticsError(
                    f"qubit {missing.args[0]!r} not in the circuit order"
                ) from None
            if node.matrix is not None:
                circuit.append(Gate(node.gate, wires, (), node.matrix))
            else:
                circuit.append(gate_from_name(node.gate, wires))
            return
        raise SemanticsError(
            f"statement {type(node).__name__} has no circuit lowering; "
            f"only straight-line unitary programs can be lowered"
        )

    emit(stmt)
    return circuit
