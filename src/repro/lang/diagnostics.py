"""Source-located diagnostics for the QBorrow surface language.

The borrow checker (:mod:`repro.lang.borrowck`) reports ownership
violations through the small engine in this module rather than raising
bare exceptions.  Each :class:`Diagnostic` carries a stable error code
(``BQ001``...), a primary :class:`Span` into the original source text, an
optional caret label, and machine-checkable ``notes`` / ``hints`` lines.
:meth:`Diagnostic.render` produces the rustc-style block that the docs
catalogue (``docs/language.md``) and the snapshot tests pin::

    error[BQ001]: register 'q' used after release
     --> <qbr>:1:21
      |
    1 | borrow q; release q; X[q];
      |                        ^ 'q' is no longer live here
      |
      = note: 'q' was released on line 1
      = help: move this use before the release, or drop the release

Two consumption modes are supported.  *Strict* mode (the default inside
:func:`repro.lang.surface.elaborate.elaborate`) raises
:class:`BorrowCheckError` at the first diagnostic; because that exception
subclasses :class:`~repro.errors.ParseError`, existing callers that catch
parse failures keep working unchanged.  *Collect* mode
(:func:`repro.lang.borrowck.check_program`) accumulates every diagnostic
into a :class:`DiagnosticReport` so a single run surfaces all errors in a
file, the way a real compiler front end would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import ParseError

#: Catalogue of borrow-checker error codes.  ``docs/language.md`` documents
#: each one with a minimal failing program; ``tests/lang/test_borrowck.py``
#: snapshot-tests every entry.
CODES = {
    "BQ001": "use after release",
    "BQ002": "redeclaration of a live register",
    "BQ003": "use of a scoped borrow after its block ended",
    "BQ004": "apply-section write to a frozen wire",
    "BQ005": "use of a register while it is lent out",
    "BQ006": "invalid lend",
    "BQ007": "aliased gate operands",
    "BQ008": "invalid release",
    "BQ009": "release of a register that is not currently owned",
    "BQ010": "dirty read in an apply-section",
    "BQ011": "apply-section reads a wire it also writes",
    "BQ012": "apply-section gate cancels with its mirror (warning)",
}


@dataclass(frozen=True)
class Span:
    """A 1-based source location with a caret length."""

    line: int
    column: int
    length: int = 1


@dataclass(frozen=True)
class Diagnostic:
    """One borrow-checker finding, renderable as a caret-span block."""

    code: str
    message: str
    span: Span
    label: str = ""
    notes: Tuple[str, ...] = ()
    hints: Tuple[str, ...] = ()
    severity: str = "error"

    def render(self, source: str, filename: str = "<qbr>") -> str:
        """Render the rustc-style block for this diagnostic."""
        span = self.span
        gutter = " " * len(str(span.line))
        lines = source.splitlines()
        snippet = lines[span.line - 1] if 0 < span.line <= len(lines) else ""
        caret = " " * max(0, span.column - 1) + "^" * max(1, span.length)
        if self.label:
            caret = f"{caret} {self.label}"
        out = [
            f"{self.severity}[{self.code}]: {self.message}",
            f"{gutter}--> {filename}:{span.line}:{span.column}",
            f"{gutter} |",
            f"{span.line} | {snippet}",
            f"{gutter} | {caret}",
        ]
        if self.notes or self.hints:
            out.append(f"{gutter} |")
        for note in self.notes:
            out.append(f"{gutter} = note: {note}")
        for hint in self.hints:
            out.append(f"{gutter} = help: {hint}")
        return "\n".join(out)


@dataclass
class DiagnosticReport:
    """Every diagnostic collected from one borrow-check run."""

    source: str
    filename: str = "<qbr>"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was collected."""
        return not any(d.severity == "error" for d in self.diagnostics)

    def codes(self) -> List[str]:
        """Error codes in emission order (duplicates preserved)."""
        return [d.code for d in self.diagnostics]

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def render(self) -> str:
        """Render every diagnostic, blocks separated by blank lines."""
        blocks = [
            d.render(self.source, self.filename) for d in self.diagnostics
        ]
        return "\n\n".join(blocks)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        """A report is truthy when it holds at least one diagnostic."""
        return bool(self.diagnostics)


class BorrowCheckError(ParseError):
    """Raised in strict mode at the first ownership violation.

    Subclasses :class:`~repro.errors.ParseError` so callers that guard
    elaboration with ``except ParseError`` keep working; ``str(err)`` is
    the fully rendered caret-span block and ``err.report`` carries the
    structured :class:`DiagnosticReport`.
    """

    def __init__(self, report: DiagnosticReport):
        self.report = report
        first = report.diagnostics[0]
        super().__init__(report.render(), 0, 0)
        self.line = first.span.line
        self.column = first.span.column
        self.code = first.code
