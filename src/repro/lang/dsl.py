"""A small fluent builder for QBorrow programs.

Constructing nested :class:`~repro.lang.ast.Statement` trees by hand is
verbose; the builder gives Q#-flavoured ergonomics with ``borrow`` as a
context manager::

    from repro.lang.dsl import ProgramBuilder

    b = ProgramBuilder()
    b.x("q1")
    with b.borrow() as a:          # fresh placeholder name
        b.cx("q1", a)
        b.x(a)
        b.x(a)
        b.cx("q1", a)
    program = b.build()

The produced AST is the ordinary Figure 4.1 core language, so all
analyses (idle scopes, semantics, safety) apply unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import (
    Borrow,
    If,
    Init,
    Measurement,
    Statement,
    While,
    basis_measurement_on,
    seq,
    unitary,
    unitary_matrix,
)


class ProgramBuilder:
    """Accumulates statements; nestable via the context-manager blocks."""

    def __init__(self):
        self._frames: List[List[Statement]] = [[]]
        self._fresh = 0

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _emit(self, statement: Statement) -> "ProgramBuilder":
        self._frames[-1].append(statement)
        return self

    def build(self) -> Statement:
        """Finish and return the program."""
        if len(self._frames) != 1:
            raise SemanticsError("unclosed borrow/if/while block")
        return seq(*self._frames[0])

    # ------------------------------------------------------------------ #
    # Straight-line statements
    # ------------------------------------------------------------------ #

    def gate(self, name: str, *qubits: str) -> "ProgramBuilder":
        """Apply a named gate (X/CX/CCX/H/...)."""
        return self._emit(unitary(name, *qubits))

    def x(self, qubit: str) -> "ProgramBuilder":
        """Apply a NOT."""
        return self.gate("X", qubit)

    def cx(self, control: str, target: str) -> "ProgramBuilder":
        """Apply a controlled NOT."""
        return self.gate("CX", control, target)

    def ccx(self, c1: str, c2: str, target: str) -> "ProgramBuilder":
        """Apply a Toffoli."""
        return self.gate("CCX", c1, c2, target)

    def h(self, qubit: str) -> "ProgramBuilder":
        """Apply a Hadamard."""
        return self.gate("H", qubit)

    def apply(self, matrix: np.ndarray, name: str, *qubits: str):
        """Apply an explicit unitary matrix."""
        return self._emit(unitary_matrix(matrix, name, *qubits))

    def reset(self, qubit: str) -> "ProgramBuilder":
        """``[q] := |0>``."""
        return self._emit(Init(qubit))

    # ------------------------------------------------------------------ #
    # Blocks
    # ------------------------------------------------------------------ #

    @contextmanager
    def borrow(self, placeholder: str = None):
        """``borrow a; ...; release a`` with an auto-fresh placeholder."""
        if placeholder is None:
            self._fresh += 1
            placeholder = f"_a{self._fresh}"
        self._frames.append([])
        try:
            yield placeholder
        finally:
            body = self._frames.pop()
            self._emit(Borrow(placeholder, seq(*body)))

    @contextmanager
    def if_measures_one(self, qubit: str):
        """``if M[q] then <block> else skip`` (computational basis)."""
        self._frames.append([])
        try:
            yield
        finally:
            body = self._frames.pop()
            self._emit(
                If(basis_measurement_on(qubit), seq(*body), seq())
            )

    @contextmanager
    def if_else(self, measurement: Measurement):
        """Two-armed branch: yields a pair of sub-builders."""
        then_builder = ProgramBuilder()
        else_builder = ProgramBuilder()
        try:
            yield then_builder, else_builder
        finally:
            self._emit(
                If(measurement, then_builder.build(), else_builder.build())
            )

    @contextmanager
    def while_measures_one(self, qubit: str):
        """``while M[q] do <block> end`` (computational basis)."""
        self._frames.append([])
        try:
            yield
        finally:
            body = self._frames.pop()
            self._emit(While(basis_measurement_on(qubit), seq(*body)))
