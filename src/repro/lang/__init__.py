"""The QBorrow language — system S5.

Module tour (abstract to concrete):

* :mod:`repro.lang.ast` — abstract syntax of Figure 4.1 (QWhile plus
  ``borrow a; S; release a``), the idle-qubit analysis of Figure 4.2,
  substitution of concrete qubits for placeholders, and
  well-formedness checks.
* :mod:`repro.lang.dsl` — a fluent Python builder over that AST.
* :mod:`repro.lang.programs` — the paper's example programs.
* :mod:`repro.lang.surface` — the concrete ``.qbr`` front end from the
  artifact appendix: lexer, parser, and the elaborator that lowers
  surface programs to flat circuits with qubit roles.
* :mod:`repro.lang.borrowck` — the static borrow checker: ownership
  states (owned / lent / borrowed / released / consumed) and the taint
  lattice that proves scoped ``borrow ... { within {...} apply {...} }``
  blocks safe without a solver.
* :mod:`repro.lang.diagnostics` — source-located, caret-span
  diagnostics (``BQ001``...) the checker reports through.

The full surface-language reference, including the ownership
constructs and the diagnostics catalogue, lives in
``docs/language.md``.
"""

from repro.lang.ast import (
    Borrow,
    If,
    Init,
    Measurement,
    Seq,
    Skip,
    Statement,
    UnitaryStmt,
    While,
    basis_measurement_on,
    borrow,
    check_well_formed,
    idle,
    init,
    mentioned_qubits,
    placeholders,
    seq,
    skip,
    substitute,
    to_circuit,
    unitary,
    unitary_matrix,
)
from repro.lang.borrowck import check_program, check_qbr
from repro.lang.diagnostics import (
    BorrowCheckError,
    Diagnostic,
    DiagnosticReport,
    Span,
)

__all__ = [
    "Borrow",
    "BorrowCheckError",
    "Diagnostic",
    "DiagnosticReport",
    "If",
    "Init",
    "Measurement",
    "Seq",
    "Skip",
    "Span",
    "Statement",
    "UnitaryStmt",
    "While",
    "basis_measurement_on",
    "borrow",
    "check_program",
    "check_qbr",
    "check_well_formed",
    "idle",
    "init",
    "mentioned_qubits",
    "placeholders",
    "seq",
    "skip",
    "substitute",
    "to_circuit",
    "unitary",
    "unitary_matrix",
]
