"""The QBorrow language — system S5.

:mod:`repro.lang.ast` defines the abstract syntax of Figure 4.1 (QWhile
plus ``borrow a; S; release a``), the idle-qubit analysis of Figure 4.2,
substitution of concrete qubits for placeholders, and well-formedness
checks.  :mod:`repro.lang.programs` builds the paper's example programs.
:mod:`repro.lang.surface` is the concrete ``.qbr`` front end from the
artifact appendix.
"""

from repro.lang.ast import (
    Borrow,
    If,
    Init,
    Measurement,
    Seq,
    Skip,
    Statement,
    UnitaryStmt,
    While,
    basis_measurement_on,
    borrow,
    check_well_formed,
    idle,
    init,
    mentioned_qubits,
    placeholders,
    seq,
    skip,
    substitute,
    to_circuit,
    unitary,
    unitary_matrix,
)

__all__ = [
    "Borrow",
    "If",
    "Init",
    "Measurement",
    "Seq",
    "Skip",
    "Statement",
    "UnitaryStmt",
    "While",
    "basis_measurement_on",
    "borrow",
    "check_well_formed",
    "idle",
    "init",
    "mentioned_qubits",
    "placeholders",
    "seq",
    "skip",
    "substitute",
    "to_circuit",
    "unitary",
    "unitary_matrix",
]
