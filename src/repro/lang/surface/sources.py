"""Parameterised generators for the paper's benchmark ``.qbr`` programs.

The templates reproduce the artifact's ``adder.qbr`` (Figure 6.2) and
``mcx.qbr`` (Section 10.4) with the qubit-count constant substituted.
The test suite cross-validates them gate-for-gate against the direct
circuit builders (:func:`repro.adders.haner_carry_benchmark`,
:func:`repro.mcx.gidney_mcx`).
"""

from __future__ import annotations

_ADDER_TEMPLATE = """\
// adder.qbr (Figure 6.2)
let n = {n}; // number of qubits
borrow@ q[n]; // skip verification
borrow a[n - 1]; // dirty qubits
CNOT[a[n - 1], q[n]];
for i = (n - 1) to 2 {{
    CNOT[q[i], a[i]];
    X[q[i]];
    CCNOT[a[i - 1], q[i], a[i]];
}}
CNOT[q[1], a[1]];
for i = 2 to (n - 1) {{
    CCNOT[a[i - 1], q[i], a[i]];
}}
CNOT[a[n - 1], q[n]];
X[q[n]];

// reverse the circuit to uncompute
for i = (n - 1) to 2 {{
    CCNOT[a[i - 1], q[i], a[i]];
}}
CNOT[q[1], a[1]];
for i = 2 to (n - 1) {{
    CCNOT[a[i - 1], q[i], a[i]];
    X[q[i]];
    CNOT[q[i], a[i]];
}}
"""


def adder_qbr_source(n: int) -> str:
    """The Figure 6.2 program with ``n`` working qubits."""
    return _ADDER_TEMPLATE.format(n=n)


_MCX_TEMPLATE = """\
// mcx.qbr (Section 10.4)
let m = {m};
let n = m + (m - 1); // n-controlled NOT gate

borrow@ q[n];
borrow@ t;

borrow anc;

// first part
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}

// second part
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}

// third part
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}
CCNOT[q[n - 1], q[n], anc];
for i = (m - 2) to 2 {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}
CCNOT[q[1], q[3], q[4]];
for i = 2 to (m - 2) {{
    CCNOT[q[{odd}], q[2 * i + 1], q[2 * i + 2]];
}}

// fourth part
CCNOT[q[n], anc, t];
for i = (m - 1) to 3 {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}
CCNOT[q[n], anc, t];
release anc;
for i = (m - 1) to 3 {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}
CCNOT[q[2], q[4], q[5]];
for i = 3 to (m - 1) {{
    CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];
}}
"""


def mcx_qbr_source(m: int, verbatim: bool = False) -> str:
    """The Section 10.4 program for parameter ``m``.

    ``verbatim=True`` keeps the paper's odd-staircase body
    ``q[2 * i - 1]`` (which degenerates to the identity for ``m > 3``
    but still has a safely-uncomputed ancilla — the property the
    benchmark measures); the default uses the corrected ``q[2 * i]``
    (see :func:`repro.mcx.gidney.gidney_mcx`).

    Note the ``release anc`` placement follows the paper: the last two
    gates touching ``anc`` precede it.

    Requires ``m >= 4``: the program's descending loops are written as
    ``for (m - 2) to 2``, which for ``m = 3`` reads ``for 1 to 2`` — an
    *empty* descending loop in the artifact's intent but an ascending
    out-of-range one under value-directed iteration.  Use
    :func:`repro.mcx.gidney_mcx` directly for ``m = 3``.
    """
    if m < 4:
        raise ValueError("mcx_qbr_source needs m >= 4; see docstring")
    odd = "2 * i - 1" if verbatim else "2 * i"
    return _MCX_TEMPLATE.format(m=m, odd=odd)
