"""Recursive-descent parser for the ``.qbr`` grammar (artifact §10.3).

Grammar (as published, plus the repository's ``MCX`` extension)::

    program   : statement+ EOF
    statement : 'let' ID '=' expr ';'
              | 'borrow' reg ';' | 'borrow@' reg ';' | 'alloc' reg ';'
              | 'borrow' reg '{' 'within' '{' statement* '}'
                              'apply'  '{' statement* '}' '}'
              | 'lend' ID '{' statement* '}'
              | 'release' ID ';'
              | 'X' '[' reg ']' ';'
              | 'CNOT' '[' reg ',' reg ']' ';'
              | 'CCNOT' '[' reg ',' reg ',' reg ']' ';'
              | 'for' ID '=' expr 'to' expr '{' statement* '}'
    reg       : ID '[' expr ']' | ID
    expr      : additive over term/factor with unary +/-

The scoped ``borrow ... { within {...} apply {...} }`` block and the
``lend`` block are this repository's ownership extensions (checked by
:mod:`repro.lang.borrowck`; reference in ``docs/language.md``); the
rest is the artifact grammar plus the ``MCX`` repository extension.
The gate names are ordinary identifiers in the token stream and are
matched by spelling here, exactly as ANTLR's literal tokens would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ParseError
from repro.lang.surface.lexer import Token, _scan

GATE_NAMES = {"X": 1, "CNOT": 2, "CCNOT": 3}


# ---------------------------------------------------------------------- #
# Surface AST
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Num:
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Name:
    """Reference to a ``let``-bound (or loop) variable."""

    ident: str
    line: int
    column: int


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic over two expressions."""

    op: str  # '+', '-', '*'
    left: "ExprNode"
    right: "ExprNode"


@dataclass(frozen=True)
class Neg:
    """Unary minus."""

    operand: "ExprNode"


ExprNode = Union[Num, Name, BinOp, Neg]


@dataclass(frozen=True)
class RegRef:
    """``q[expr]`` or bare ``q``.

    ``end_column`` is the column one past the reference's last character
    (0 when unknown), so diagnostics can underline the full extent.
    """

    name: str
    index: Optional[ExprNode]
    line: int
    column: int
    end_column: int = 0


@dataclass(frozen=True)
class LetStmt:
    """``let x = expr;`` classical binding."""

    name: str
    value: ExprNode
    line: int


@dataclass(frozen=True)
class DeclStmt:
    """``borrow`` / ``borrow@`` / ``alloc`` declaration."""

    kind: str  # 'borrow', 'borrow_skip', 'alloc'
    reg: RegRef
    line: int


@dataclass(frozen=True)
class ReleaseStmt:
    """``release x;`` — ``column``/``end_column`` span the register name."""

    name: str
    line: int
    column: int = 0
    end_column: int = 0


@dataclass(frozen=True)
class GateStmt:
    """A gate application; ``column`` anchors the gate name."""

    gate: str
    operands: Tuple[RegRef, ...]
    line: int
    column: int = 0
    end_column: int = 0


@dataclass(frozen=True)
class ForStmt:
    """``for i = a to b { ... }`` — inclusive, in either direction."""

    var: str
    start: ExprNode
    end: ExprNode
    body: Tuple["StmtNode", ...]
    line: int


@dataclass(frozen=True)
class BorrowBlock:
    """Scoped borrow: ``borrow b { within { C } apply { D } }``.

    Elaborates to the double conjugation ``C; D; reverse(C); D`` and is
    what the borrow checker (:mod:`repro.lang.borrowck`) can prove safe
    statically; see ``docs/language.md``.
    """

    reg: RegRef
    within: Tuple["StmtNode", ...]
    apply: Tuple["StmtNode", ...]
    line: int
    column: int = 0


@dataclass(frozen=True)
class LendBlock:
    """``lend x { ... }`` — the owner pledges ``x`` idle for the body."""

    name: str
    body: Tuple["StmtNode", ...]
    line: int
    column: int = 0
    name_column: int = 0


StmtNode = Union[
    LetStmt,
    DeclStmt,
    ReleaseStmt,
    GateStmt,
    ForStmt,
    BorrowBlock,
    LendBlock,
]


@dataclass(frozen=True)
class Program:
    """A parsed ``.qbr`` compilation unit."""

    statements: Tuple[StmtNode, ...]


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #


class _TokenStream:
    """Index the token stream while lexing only as far as the parser
    has looked.

    :class:`_Parser` reads tokens exclusively through ``tokens[pos]``
    with a bounded lookahead, so backing that access with the lazy
    :func:`~repro.lang.surface.lexer._scan` generator is all streaming
    needs: source past the current statement is not even lexed yet.
    The scan ends with an ``EOF`` token the parser never advances past,
    so the generator is never over-drawn.
    """

    def __init__(self, source: str):
        self._scan = _scan(source)
        self._buffer: List[Token] = []

    def __getitem__(self, index: int) -> Token:
        while len(self._buffer) <= index:
            self._buffer.append(next(self._scan))
        return self._buffer[index]


class _Parser:
    def __init__(self, tokens: Sequence[Token]):
        self.tokens = tokens
        self.pos = 0

    # Token plumbing ---------------------------------------------------- #

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str, what: str = "") -> Token:
        token = self.peek()
        if token.kind != kind:
            wanted = what or kind
            raise ParseError(
                f"expected {wanted}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    # Grammar ------------------------------------------------------------ #

    def program(self) -> Program:
        statements: List[StmtNode] = []
        while self.peek().kind != "EOF":
            statements.append(self.statement())
        if not statements:
            token = self.peek()
            raise ParseError("empty program", token.line, token.column)
        return Program(tuple(statements))

    def statement(self) -> StmtNode:
        token = self.peek()
        if token.kind == "LET":
            return self.let_statement()
        if token.kind in ("BORROW", "BORROW_SKIP", "ALLOC"):
            return self.decl_statement()
        if token.kind == "LEND":
            return self.lend_statement()
        if token.kind == "RELEASE":
            return self.release_statement()
        if token.kind == "FOR":
            return self.for_statement()
        if token.kind == "ID" and token.text in GATE_NAMES:
            return self.gate_statement()
        raise ParseError(
            f"expected a statement, found {token.text!r}",
            token.line,
            token.column,
        )

    def let_statement(self) -> LetStmt:
        let = self.expect("LET")
        name = self.expect("ID", "a variable name")
        self.expect("EQUALS")
        value = self.expression()
        self.expect("SEMI")
        return LetStmt(name.text, value, let.line)

    def decl_statement(self) -> Union[DeclStmt, BorrowBlock]:
        token = self.advance()
        kind = {
            "BORROW": "borrow",
            "BORROW_SKIP": "borrow_skip",
            "ALLOC": "alloc",
        }[token.kind]
        reg = self.reg()
        if token.kind == "BORROW" and self.peek().kind == "LBRACE":
            return self.borrow_block(token, reg)
        self.expect("SEMI")
        return DeclStmt(kind, reg, token.line)

    def borrow_block(self, token: Token, reg: RegRef) -> BorrowBlock:
        self.expect("LBRACE")
        self.expect("WITHIN", "'within'")
        self.expect("LBRACE")
        within = self.block_body(token, "within-section")
        self.expect("APPLY", "'apply'")
        self.expect("LBRACE")
        apply = self.block_body(token, "apply-section")
        self.expect("RBRACE")
        return BorrowBlock(reg, within, apply, token.line, token.column)

    def lend_statement(self) -> LendBlock:
        token = self.expect("LEND")
        name = self.expect("ID", "a register name")
        self.expect("LBRACE")
        body = self.block_body(token, "lend block")
        return LendBlock(
            name.text, body, token.line, token.column, name.column
        )

    def block_body(self, opener: Token, what: str) -> Tuple[StmtNode, ...]:
        """Statements up to (and consuming) the closing ``}``."""
        body: List[StmtNode] = []
        while self.peek().kind != "RBRACE":
            if self.peek().kind == "EOF":
                raise ParseError(
                    f"unterminated {what}", opener.line, opener.column
                )
            body.append(self.statement())
        self.expect("RBRACE")
        return tuple(body)

    def release_statement(self) -> ReleaseStmt:
        token = self.expect("RELEASE")
        name = self.expect("ID", "a register name")
        self.expect("SEMI")
        return ReleaseStmt(
            name.text,
            token.line,
            name.column,
            name.column + len(name.text),
        )

    def gate_statement(self) -> GateStmt:
        token = self.expect("ID")
        gate = token.text
        arity = GATE_NAMES[gate]
        self.expect("LBRACKET")
        operands = [self.reg()]
        for _ in range(arity - 1):
            self.expect("COMMA")
            operands.append(self.reg())
        rbracket = self.expect("RBRACKET")
        self.expect("SEMI")
        return GateStmt(
            gate,
            tuple(operands),
            token.line,
            token.column,
            rbracket.column + 1,
        )

    def for_statement(self) -> ForStmt:
        token = self.expect("FOR")
        var = self.expect("ID", "a loop variable")
        self.expect("EQUALS")
        start = self.expression()
        self.expect("TO")
        end = self.expression()
        self.expect("LBRACE")
        body: List[StmtNode] = []
        while self.peek().kind != "RBRACE":
            if self.peek().kind == "EOF":
                raise ParseError(
                    "unterminated for-loop body", token.line, token.column
                )
            body.append(self.statement())
        self.expect("RBRACE")
        return ForStmt(var.text, start, end, tuple(body), token.line)

    def reg(self) -> RegRef:
        name = self.expect("ID", "a register name")
        index: Optional[ExprNode] = None
        end_column = name.column + len(name.text)
        if self.peek().kind == "LBRACKET":
            self.advance()
            index = self.expression()
            rbracket = self.expect("RBRACKET")
            if rbracket.line == name.line:
                end_column = rbracket.column + 1
        return RegRef(name.text, index, name.line, name.column, end_column)

    # Expressions --------------------------------------------------------- #

    def expression(self) -> ExprNode:
        token = self.peek()
        if token.kind in ("PLUS", "MINUS"):
            self.advance()
            operand = self.term()
            node: ExprNode = Neg(operand) if token.kind == "MINUS" else operand
        else:
            node = self.term()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = self.advance()
            right = self.term()
            node = BinOp("+" if op.kind == "PLUS" else "-", node, right)
        return node

    def term(self) -> ExprNode:
        node = self.factor()
        while self.peek().kind == "STAR":
            self.advance()
            node = BinOp("*", node, self.factor())
        return node

    def factor(self) -> ExprNode:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return Num(int(token.text))
        if token.kind == "ID":
            self.advance()
            return Name(token.text, token.line, token.column)
        if token.kind == "LPAREN":
            self.advance()
            node = self.expression()
            self.expect("RPAREN")
            return node
        raise ParseError(
            f"expected a number, name or '(', found {token.text!r}",
            token.line,
            token.column,
        )


def iter_statements(source: str) -> Iterator[StmtNode]:
    """Yield top-level statements as the source is consumed.

    Lexing and parsing advance together: a statement is yielded as soon
    as its last token has been read, before anything after it has even
    been lexed.  This is the streaming entry the incremental elaborator
    (:func:`repro.lang.surface.elaborate.iter_program`) builds on.
    Raises the same :class:`~repro.errors.ParseError`\\ s as
    :func:`parse`, including ``empty program`` when the source holds no
    statement at all.
    """
    parser = _Parser(_TokenStream(source))
    produced = False
    while parser.peek().kind != "EOF":
        yield parser.statement()
        produced = True
    if not produced:
        token = parser.peek()
        raise ParseError("empty program", token.line, token.column)


def parse(source: str) -> Program:
    """Parse ``.qbr`` source into a surface AST.

    Drains :func:`iter_statements`, so the offline and streaming parse
    paths are a single code path and cannot drift.
    """
    return Program(tuple(iter_statements(source)))
