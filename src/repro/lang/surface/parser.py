"""Recursive-descent parser for the ``.qbr`` grammar (artifact §10.3).

Grammar (as published, plus the repository's ``MCX`` extension)::

    program   : statement+ EOF
    statement : 'let' ID '=' expr ';'
              | 'borrow' reg ';' | 'borrow@' reg ';' | 'alloc' reg ';'
              | 'release' ID ';'
              | 'X' '[' reg ']' ';'
              | 'CNOT' '[' reg ',' reg ']' ';'
              | 'CCNOT' '[' reg ',' reg ',' reg ']' ';'
              | 'for' ID '=' expr 'to' expr '{' statement* '}'
    reg       : ID '[' expr ']' | ID
    expr      : additive over term/factor with unary +/-

The gate names are ordinary identifiers in the token stream and are
matched by spelling here, exactly as ANTLR's literal tokens would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.lang.surface.lexer import Token, tokenize

GATE_NAMES = {"X": 1, "CNOT": 2, "CCNOT": 3}


# ---------------------------------------------------------------------- #
# Surface AST
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Name:
    ident: str
    line: int
    column: int


@dataclass(frozen=True)
class BinOp:
    op: str  # '+', '-', '*'
    left: "ExprNode"
    right: "ExprNode"


@dataclass(frozen=True)
class Neg:
    operand: "ExprNode"


ExprNode = Union[Num, Name, BinOp, Neg]


@dataclass(frozen=True)
class RegRef:
    """``q[expr]`` or bare ``q``."""

    name: str
    index: Optional[ExprNode]
    line: int
    column: int


@dataclass(frozen=True)
class LetStmt:
    name: str
    value: ExprNode
    line: int


@dataclass(frozen=True)
class DeclStmt:
    """``borrow`` / ``borrow@`` / ``alloc`` declaration."""

    kind: str  # 'borrow', 'borrow_skip', 'alloc'
    reg: RegRef
    line: int


@dataclass(frozen=True)
class ReleaseStmt:
    name: str
    line: int


@dataclass(frozen=True)
class GateStmt:
    gate: str
    operands: Tuple[RegRef, ...]
    line: int


@dataclass(frozen=True)
class ForStmt:
    var: str
    start: ExprNode
    end: ExprNode
    body: Tuple["StmtNode", ...]
    line: int


StmtNode = Union[LetStmt, DeclStmt, ReleaseStmt, GateStmt, ForStmt]


@dataclass(frozen=True)
class Program:
    statements: Tuple[StmtNode, ...]


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # Token plumbing ---------------------------------------------------- #

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str, what: str = "") -> Token:
        token = self.peek()
        if token.kind != kind:
            wanted = what or kind
            raise ParseError(
                f"expected {wanted}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    # Grammar ------------------------------------------------------------ #

    def program(self) -> Program:
        statements: List[StmtNode] = []
        while self.peek().kind != "EOF":
            statements.append(self.statement())
        if not statements:
            token = self.peek()
            raise ParseError("empty program", token.line, token.column)
        return Program(tuple(statements))

    def statement(self) -> StmtNode:
        token = self.peek()
        if token.kind == "LET":
            return self.let_statement()
        if token.kind in ("BORROW", "BORROW_SKIP", "ALLOC"):
            return self.decl_statement()
        if token.kind == "RELEASE":
            return self.release_statement()
        if token.kind == "FOR":
            return self.for_statement()
        if token.kind == "ID" and token.text in GATE_NAMES:
            return self.gate_statement()
        raise ParseError(
            f"expected a statement, found {token.text!r}",
            token.line,
            token.column,
        )

    def let_statement(self) -> LetStmt:
        let = self.expect("LET")
        name = self.expect("ID", "a variable name")
        self.expect("EQUALS")
        value = self.expression()
        self.expect("SEMI")
        return LetStmt(name.text, value, let.line)

    def decl_statement(self) -> DeclStmt:
        token = self.advance()
        kind = {
            "BORROW": "borrow",
            "BORROW_SKIP": "borrow_skip",
            "ALLOC": "alloc",
        }[token.kind]
        reg = self.reg()
        self.expect("SEMI")
        return DeclStmt(kind, reg, token.line)

    def release_statement(self) -> ReleaseStmt:
        token = self.expect("RELEASE")
        name = self.expect("ID", "a register name")
        self.expect("SEMI")
        return ReleaseStmt(name.text, token.line)

    def gate_statement(self) -> GateStmt:
        token = self.expect("ID")
        gate = token.text
        arity = GATE_NAMES[gate]
        self.expect("LBRACKET")
        operands = [self.reg()]
        for _ in range(arity - 1):
            self.expect("COMMA")
            operands.append(self.reg())
        self.expect("RBRACKET")
        self.expect("SEMI")
        return GateStmt(gate, tuple(operands), token.line)

    def for_statement(self) -> ForStmt:
        token = self.expect("FOR")
        var = self.expect("ID", "a loop variable")
        self.expect("EQUALS")
        start = self.expression()
        self.expect("TO")
        end = self.expression()
        self.expect("LBRACE")
        body: List[StmtNode] = []
        while self.peek().kind != "RBRACE":
            if self.peek().kind == "EOF":
                raise ParseError(
                    "unterminated for-loop body", token.line, token.column
                )
            body.append(self.statement())
        self.expect("RBRACE")
        return ForStmt(var.text, start, end, tuple(body), token.line)

    def reg(self) -> RegRef:
        name = self.expect("ID", "a register name")
        index: Optional[ExprNode] = None
        if self.peek().kind == "LBRACKET":
            self.advance()
            index = self.expression()
            self.expect("RBRACKET")
        return RegRef(name.text, index, name.line, name.column)

    # Expressions --------------------------------------------------------- #

    def expression(self) -> ExprNode:
        token = self.peek()
        if token.kind in ("PLUS", "MINUS"):
            self.advance()
            operand = self.term()
            node: ExprNode = Neg(operand) if token.kind == "MINUS" else operand
        else:
            node = self.term()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = self.advance()
            right = self.term()
            node = BinOp("+" if op.kind == "PLUS" else "-", node, right)
        return node

    def term(self) -> ExprNode:
        node = self.factor()
        while self.peek().kind == "STAR":
            self.advance()
            node = BinOp("*", node, self.factor())
        return node

    def factor(self) -> ExprNode:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return Num(int(token.text))
        if token.kind == "ID":
            self.advance()
            return Name(token.text, token.line, token.column)
        if token.kind == "LPAREN":
            self.advance()
            node = self.expression()
            self.expect("RPAREN")
            return node
        raise ParseError(
            f"expected a number, name or '(', found {token.text!r}",
            token.line,
            token.column,
        )


def parse(source: str) -> Program:
    """Parse ``.qbr`` source into a surface AST."""
    return _Parser(tokenize(source)).program()
