"""Elaboration of ``.qbr`` surface programs to circuits with qubit roles.

Evaluates ``let`` bindings and loop variables, allocates register wires
in declaration order, enforces lifetimes (no gate on a released
register), and produces an :class:`ElaboratedProgram`:

* the flat classical :class:`~repro.circuits.Circuit`;
* ``dirty_wires`` — qubits declared with ``borrow`` (verified);
* ``input_wires`` — qubits declared with ``borrow@`` (assumption-free
  inputs whose verification the paper's benchmarks skip);
* ``clean_wires`` — qubits declared with ``alloc``.

``for A to B`` iterates from A to B *inclusive, in either direction* —
the descending loops of ``adder.qbr``/``mcx.qbr`` rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, gate_from_name
from repro.errors import ParseError
from repro.lang.surface.parser import (
    BinOp,
    DeclStmt,
    ExprNode,
    ForStmt,
    GateStmt,
    LetStmt,
    Name,
    Neg,
    Num,
    Program,
    RegRef,
    ReleaseStmt,
    parse,
)
from repro.verify.pipeline import VerificationReport, verify_circuit


@dataclass
class _Register:
    name: str
    kind: str  # 'borrow' | 'borrow_skip' | 'alloc'
    wires: List[int]
    scalar: bool
    released: bool = False


@dataclass
class ElaboratedProgram:
    """A fully elaborated ``.qbr`` program."""

    circuit: Circuit
    dirty_wires: List[int] = field(default_factory=list)
    input_wires: List[int] = field(default_factory=list)
    clean_wires: List[int] = field(default_factory=list)
    registers: Dict[str, "_Register"] = field(default_factory=dict)
    bindings: Dict[str, int] = field(default_factory=dict)

    def wires_of(self, register: str) -> List[int]:
        """Wire indices of a declared register."""
        if register not in self.registers:
            raise ParseError(f"unknown register {register!r}")
        return list(self.registers[register].wires)

    def summary(self) -> str:
        return (
            f"{self.circuit.num_qubits} qubits, {len(self.circuit.gates)} "
            f"gates; dirty={len(self.dirty_wires)} "
            f"inputs={len(self.input_wires)} clean={len(self.clean_wires)}"
        )


class _Elaborator:
    def __init__(self):
        self.env: Dict[str, int] = {}
        self.registers: Dict[str, _Register] = {}
        self.wire_labels: List[str] = []
        self.gates: List[Gate] = []

    # Expressions ---------------------------------------------------------- #

    def eval_expr(self, node: ExprNode) -> int:
        if isinstance(node, Num):
            return node.value
        if isinstance(node, Name):
            if node.ident not in self.env:
                raise ParseError(
                    f"undefined variable {node.ident!r}", node.line, node.column
                )
            return self.env[node.ident]
        if isinstance(node, Neg):
            return -self.eval_expr(node.operand)
        if isinstance(node, BinOp):
            left = self.eval_expr(node.left)
            right = self.eval_expr(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            return left * right
        raise ParseError(f"unknown expression node {node!r}")

    # Declarations ---------------------------------------------------------- #

    def declare(self, stmt: DeclStmt) -> None:
        ref = stmt.reg
        if ref.name in self.registers and not self.registers[ref.name].released:
            raise ParseError(
                f"register {ref.name!r} already declared", stmt.line, 0
            )
        if ref.name in self.env:
            raise ParseError(
                f"register {ref.name!r} collides with a variable", stmt.line, 0
            )
        if ref.index is None:
            size, scalar = 1, True
        else:
            size = self.eval_expr(ref.index)
            scalar = False
            if size < 1:
                raise ParseError(
                    f"register {ref.name!r} has non-positive size {size}",
                    stmt.line,
                    0,
                )
        first = len(self.wire_labels)
        for i in range(size):
            label = ref.name if scalar else f"{ref.name}[{i + 1}]"
            self.wire_labels.append(label)
        self.registers[ref.name] = _Register(
            name=ref.name,
            kind=stmt.kind,
            wires=list(range(first, first + size)),
            scalar=scalar,
        )

    def release(self, stmt: ReleaseStmt) -> None:
        register = self.registers.get(stmt.name)
        if register is None:
            raise ParseError(
                f"release of undeclared register {stmt.name!r}", stmt.line, 0
            )
        if register.released:
            raise ParseError(
                f"register {stmt.name!r} released twice", stmt.line, 0
            )
        register.released = True

    # References ------------------------------------------------------------ #

    def resolve(self, ref: RegRef) -> int:
        register = self.registers.get(ref.name)
        if register is None:
            raise ParseError(
                f"undeclared register {ref.name!r}", ref.line, ref.column
            )
        if register.released:
            raise ParseError(
                f"register {ref.name!r} used after release", ref.line, ref.column
            )
        if ref.index is None:
            if not register.scalar:
                raise ParseError(
                    f"array register {ref.name!r} needs an index",
                    ref.line,
                    ref.column,
                )
            return register.wires[0]
        if register.scalar:
            raise ParseError(
                f"scalar register {ref.name!r} cannot be indexed",
                ref.line,
                ref.column,
            )
        index = self.eval_expr(ref.index)
        if not 1 <= index <= len(register.wires):
            raise ParseError(
                f"{ref.name}[{index}] out of range 1..{len(register.wires)}",
                ref.line,
                ref.column,
            )
        return register.wires[index - 1]

    # Statements ------------------------------------------------------------- #

    def run(self, statements) -> None:
        for stmt in statements:
            if isinstance(stmt, LetStmt):
                if stmt.name in self.registers:
                    raise ParseError(
                        f"variable {stmt.name!r} collides with a register",
                        stmt.line,
                        0,
                    )
                self.env[stmt.name] = self.eval_expr(stmt.value)
            elif isinstance(stmt, DeclStmt):
                self.declare(stmt)
            elif isinstance(stmt, ReleaseStmt):
                self.release(stmt)
            elif isinstance(stmt, GateStmt):
                wires = [self.resolve(ref) for ref in stmt.operands]
                self.gates.append(gate_from_name(stmt.gate, wires))
            elif isinstance(stmt, ForStmt):
                self.run_for(stmt)
            else:  # pragma: no cover - exhaustive over statement kinds
                raise ParseError(f"unknown statement {stmt!r}")

    def run_for(self, stmt: ForStmt) -> None:
        start = self.eval_expr(stmt.start)
        end = self.eval_expr(stmt.end)
        step = 1 if end >= start else -1
        shadowed = self.env.get(stmt.var)
        had_binding = stmt.var in self.env
        for value in range(start, end + step, step):
            self.env[stmt.var] = value
            self.run(stmt.body)
        if had_binding:
            self.env[stmt.var] = shadowed
        else:
            self.env.pop(stmt.var, None)


def elaborate(source: Union[str, Program]) -> ElaboratedProgram:
    """Elaborate ``.qbr`` source (or a parsed :class:`Program`)."""
    program = parse(source) if isinstance(source, str) else source
    ela = _Elaborator()
    ela.run(program.statements)
    circuit = Circuit(len(ela.wire_labels), labels=ela.wire_labels)
    for gate in ela.gates:
        circuit.append(gate)
    result = ElaboratedProgram(
        circuit=circuit,
        registers=ela.registers,
        bindings=dict(ela.env),
    )
    for register in ela.registers.values():
        bucket = {
            "borrow": result.dirty_wires,
            "borrow_skip": result.input_wires,
            "alloc": result.clean_wires,
        }[register.kind]
        bucket.extend(register.wires)
    return result


def elaborate_file(path: Union[str, Path]) -> ElaboratedProgram:
    """Elaborate a ``.qbr`` file from disk."""
    return elaborate(Path(path).read_text())


def verify_qbr(
    source: Union[str, Path, ElaboratedProgram],
    backend: str = "cdcl",
    simplify_xor: bool = True,
    include_clean: bool = False,
) -> VerificationReport:
    """End-to-end: parse, elaborate, and verify every ``borrow`` qubit.

    ``source`` may be ``.qbr`` text, a path to a ``.qbr`` file, or an
    already elaborated program.  ``borrow@`` registers are skipped, as in
    the paper's benchmarks.  With ``include_clean=True``, every ``alloc``
    register is additionally checked against the weaker clean-qubit
    contract (|0> in, |0> out — formula (6.1) only) and its verdicts are
    appended to the report.
    """
    if isinstance(source, ElaboratedProgram):
        program = source
    elif isinstance(source, Path) or (
        isinstance(source, str) and source.strip().endswith(".qbr")
    ):
        program = elaborate_file(source)
    else:
        program = elaborate(source)
    report = verify_circuit(
        program.circuit,
        program.dirty_wires,
        backend=backend,
        simplify_xor=simplify_xor,
    )
    if include_clean and program.clean_wires:
        from repro.verify.clean import verify_clean_wires

        clean_report = verify_clean_wires(
            program.circuit, program.clean_wires, backend=backend
        )
        report.verdicts.extend(clean_report.verdicts)
        report.total_seconds += clean_report.total_seconds
    return report
