"""Elaboration of ``.qbr`` surface programs to circuits with qubit roles.

Evaluates ``let`` bindings and loop variables, allocates register wires
in declaration order, drives the static borrow checker
(:mod:`repro.lang.borrowck`) over every statement, and produces an
:class:`ElaboratedProgram`:

* the flat classical :class:`~repro.circuits.Circuit`;
* ``dirty_wires`` — qubits declared with ``borrow`` (verified) or by a
  scoped ``borrow ... { within {...} apply {...} }`` block;
* ``input_wires`` — qubits declared with ``borrow@`` (assumption-free
  inputs whose verification the paper's benchmarks skip);
* ``clean_wires`` — qubits declared with ``alloc``;
* ``proven_wires`` — the subset of ``dirty_wires`` whose safety the
  borrow checker proved statically (scoped blocks that checked clean);
* ``lend_windows`` — gate-index ranges of each ``lend x {...}`` block.

A scoped borrow block elaborates to the double conjugation
``C; D; reverse(C); D`` (every surface gate is self-inverse, so
``reverse(C)`` is its own inverse emission); see
:mod:`repro.lang.borrowck` for why the checker's rules make that
emission satisfy the paper's (6.1)/(6.2) contract by construction.

``for A to B`` iterates from A to B *inclusive, in either direction* —
the descending loops of ``adder.qbr``/``mcx.qbr`` rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, gate_from_name
from repro.errors import ParseError
from repro.lang.borrowck import BorrowChecker, GateOperand
from repro.lang.diagnostics import DiagnosticReport, Span
from repro.lang.surface.parser import (
    BinOp,
    BorrowBlock,
    DeclStmt,
    ExprNode,
    ForStmt,
    GateStmt,
    LendBlock,
    LetStmt,
    Name,
    Neg,
    Num,
    Program,
    RegRef,
    ReleaseStmt,
    iter_statements,
)
from repro.verify.pipeline import VerificationReport, verify_circuit


@dataclass
class _Register:
    """Wire layout of one declared register (ownership lives in the checker)."""

    name: str
    kind: str  # 'borrow' | 'borrow_skip' | 'alloc' | 'borrow_scoped'
    wires: List[int]
    scalar: bool
    released: bool = False


@dataclass
class ElaboratedProgram:
    """A fully elaborated ``.qbr`` program."""

    circuit: Circuit
    dirty_wires: List[int] = field(default_factory=list)
    input_wires: List[int] = field(default_factory=list)
    clean_wires: List[int] = field(default_factory=list)
    registers: Dict[str, "_Register"] = field(default_factory=dict)
    bindings: Dict[str, int] = field(default_factory=dict)
    #: Dirty wires whose (6.1)/(6.2) safety the borrow checker proved.
    proven_wires: List[int] = field(default_factory=list)
    #: Register name -> gate-index ranges of its ``lend`` blocks (first
    #: emission; mirror copies of gates inside a borrow block are not
    #: re-counted).
    lend_windows: Dict[str, List[Tuple[int, int]]] = field(
        default_factory=dict
    )
    #: The borrow-check report this elaboration produced.
    diagnostics: Optional[DiagnosticReport] = None

    def wires_of(self, register: str) -> List[int]:
        """Wire indices of a declared register."""
        if register not in self.registers:
            raise ParseError(f"unknown register {register!r}")
        return list(self.registers[register].wires)

    def summary(self) -> str:
        """One-line census of qubits, gates and roles."""
        return (
            f"{self.circuit.num_qubits} qubits, {len(self.circuit.gates)} "
            f"gates; dirty={len(self.dirty_wires)} "
            f"inputs={len(self.input_wires)} clean={len(self.clean_wires)} "
            f"proven={len(self.proven_wires)}"
        )


class _Elaborator:
    """One elaboration pass; drives ``checker`` over every statement."""

    def __init__(self, checker: BorrowChecker):
        self.checker = checker
        self.env: Dict[str, int] = {}
        self.registers: Dict[str, _Register] = {}
        self.wire_labels: List[str] = []
        self.gates: List[Gate] = []
        # Parallel to `gates`: the checker operands and span of each
        # emitted gate, so borrow-block mirrors can replay them.
        self.gate_meta: List[Tuple[Tuple[GateOperand, ...], Span]] = []
        self.proven: List[int] = []
        self.lend_windows: Dict[str, List[Tuple[int, int]]] = {}

    # Expressions ---------------------------------------------------------- #

    def eval_expr(self, node: ExprNode) -> int:
        """Evaluate a compile-time integer expression."""
        if isinstance(node, Num):
            return node.value
        if isinstance(node, Name):
            if node.ident not in self.env:
                raise ParseError(
                    f"undefined variable {node.ident!r}", node.line, node.column
                )
            return self.env[node.ident]
        if isinstance(node, Neg):
            return -self.eval_expr(node.operand)
        if isinstance(node, BinOp):
            left = self.eval_expr(node.left)
            right = self.eval_expr(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            return left * right
        raise ParseError(f"unknown expression node {node!r}")

    # Spans ----------------------------------------------------------------- #

    @staticmethod
    def _ref_span(ref: RegRef) -> Span:
        end = ref.end_column or (ref.column + len(ref.name))
        return Span(ref.line, ref.column, max(1, end - ref.column))

    # Declarations ---------------------------------------------------------- #

    def declare(self, stmt: DeclStmt) -> None:
        """Elaborate a ``borrow``/``borrow@``/``alloc`` declaration."""
        self._declare_register(stmt.reg, stmt.kind, stmt.line)

    def _declare_register(
        self, ref: RegRef, kind: str, line: int
    ) -> Optional[_Register]:
        if ref.name in self.env:
            raise ParseError(
                f"register {ref.name!r} collides with a variable", line, 0
            )
        if ref.index is None:
            size, scalar = 1, True
        else:
            size = self.eval_expr(ref.index)
            scalar = False
            if size < 1:
                raise ParseError(
                    f"register {ref.name!r} has non-positive size {size}",
                    line,
                    0,
                )
        first = len(self.wire_labels)
        wires = list(range(first, first + size))
        if not self.checker.declare(ref.name, wires, kind, self._ref_span(ref)):
            return None  # BQ002: keep the original declaration
        for i in range(size):
            label = ref.name if scalar else f"{ref.name}[{i + 1}]"
            self.wire_labels.append(label)
        register = _Register(
            name=ref.name, kind=kind, wires=wires, scalar=scalar
        )
        self.registers[ref.name] = register
        return register

    def release(self, stmt: ReleaseStmt) -> None:
        """Elaborate ``release x;`` (BQ003/BQ008/BQ009 on misuse)."""
        span = Span(
            stmt.line, stmt.column or 1, max(1, len(stmt.name))
        )
        if self.checker.release(stmt.name, span):
            self.registers[stmt.name].released = True

    # References ------------------------------------------------------------ #

    def resolve(self, ref: RegRef) -> int:
        """Resolve a register reference to a concrete wire index.

        Shape errors (unknown name, missing/extra index, out-of-range
        index) stay plain :class:`ParseError`; *lifetime* errors are the
        borrow checker's job and are reported when the wire is used.
        """
        register = self.registers.get(ref.name)
        if register is None:
            raise ParseError(
                f"undeclared register {ref.name!r}", ref.line, ref.column
            )
        if ref.index is None:
            if not register.scalar:
                raise ParseError(
                    f"array register {ref.name!r} needs an index",
                    ref.line,
                    ref.column,
                )
            return register.wires[0]
        if register.scalar:
            raise ParseError(
                f"scalar register {ref.name!r} cannot be indexed",
                ref.line,
                ref.column,
            )
        index = self.eval_expr(ref.index)
        if not 1 <= index <= len(register.wires):
            raise ParseError(
                f"{ref.name}[{index}] out of range 1..{len(register.wires)}",
                ref.line,
                ref.column,
            )
        return register.wires[index - 1]

    # Statements ------------------------------------------------------------- #

    def run(self, statements) -> None:
        """Elaborate a statement sequence."""
        for stmt in statements:
            if isinstance(stmt, LetStmt):
                if stmt.name in self.registers:
                    raise ParseError(
                        f"variable {stmt.name!r} collides with a register",
                        stmt.line,
                        0,
                    )
                self.env[stmt.name] = self.eval_expr(stmt.value)
            elif isinstance(stmt, DeclStmt):
                self.declare(stmt)
            elif isinstance(stmt, ReleaseStmt):
                self.release(stmt)
            elif isinstance(stmt, GateStmt):
                self.run_gate(stmt)
            elif isinstance(stmt, ForStmt):
                self.run_for(stmt)
            elif isinstance(stmt, BorrowBlock):
                self.run_borrow_block(stmt)
            elif isinstance(stmt, LendBlock):
                self.run_lend_block(stmt)
            else:  # pragma: no cover - exhaustive over statement kinds
                raise ParseError(f"unknown statement {stmt!r}")

    def run_gate(self, stmt: GateStmt) -> None:
        """Elaborate one gate application through the borrow checker."""
        operands = []
        for ref in stmt.operands:
            wire = self.resolve(ref)
            if ref.index is None:
                text = ref.name
            else:
                text = f"{ref.name}[{self.eval_expr(ref.index)}]"
            operands.append(
                GateOperand(ref.name, wire, self._ref_span(ref), text)
            )
        column = stmt.column or 1
        span = Span(
            stmt.line, column, max(1, (stmt.end_column or column) - column)
        )
        ops = tuple(operands)
        if self.checker.gate(ops, span):
            gate = gate_from_name(stmt.gate, [op.wire for op in ops])
            self.gates.append(gate)
            self.gate_meta.append((ops, span))

    def run_for(self, stmt: ForStmt) -> None:
        """Unroll a ``for`` loop (inclusive bounds, either direction)."""
        for _ in self._for_iterations(stmt):
            self.run(stmt.body)

    def _for_iterations(self, stmt: ForStmt):
        """Yield once per loop iteration with the variable bound.

        Owns the loop-variable scoping (bind before each iteration,
        restore any shadowed binding afterwards) so :meth:`run_for` and
        the statement-streaming path in :class:`ProgramStream` unroll
        loops through one code path.
        """
        start = self.eval_expr(stmt.start)
        end = self.eval_expr(stmt.end)
        step = 1 if end >= start else -1
        shadowed = self.env.get(stmt.var)
        had_binding = stmt.var in self.env
        try:
            for value in range(start, end + step, step):
                self.env[stmt.var] = value
                yield value
        finally:
            if had_binding:
                self.env[stmt.var] = shadowed
            else:
                self.env.pop(stmt.var, None)

    # Ownership blocks -------------------------------------------------------- #

    def run_borrow_block(self, stmt: BorrowBlock) -> None:
        """Elaborate ``borrow b { within { C } apply { D } }``.

        Emits ``C; D; reverse(C); D``.  The mirror phases replay the
        already-emitted gates (never the statements — loop bounds and
        lets must not re-evaluate) and feed them back through the
        checker so taint bookkeeping covers the full emission.
        """
        register = self._declare_register(stmt.reg, "borrow_scoped", stmt.line)
        if register is None:
            return  # BQ002: recovery skips the whole block
        frame = self.checker.enter_borrow(
            register.name, register.wires, self._ref_span(stmt.reg)
        )
        w_start = len(self.gates)
        self.run(stmt.within)
        w_stop = len(self.gates)
        self.checker.begin_apply(frame)
        self.run(stmt.apply)
        a_stop = len(self.gates)
        self.checker.begin_mirror(frame)
        self._replay(range(w_stop - 1, w_start - 1, -1), stmt.line)
        self._replay(range(w_stop, a_stop), stmt.line)
        proven = self.checker.end_borrow(frame)
        register.released = True  # consumed: the qubit went back
        if proven:
            self.proven.extend(register.wires)

    def _replay(self, indices, block_line: int) -> None:
        """Re-emit already-emitted gates for a borrow block's mirror."""
        for idx in indices:
            gate = self.gates[idx]
            ops, span = self.gate_meta[idx]
            self.checker.gate(ops, span, mirrored_from=block_line)
            self.gates.append(gate)
            self.gate_meta.append((ops, span))

    def run_lend_block(self, stmt: LendBlock) -> None:
        """Elaborate ``lend x { ... }`` and record its gate-index window."""
        span = Span(
            stmt.line,
            stmt.name_column or stmt.column or 1,
            max(1, len(stmt.name)),
        )
        ok = self.checker.enter_lend(stmt.name, span)
        start = len(self.gates)
        self.run(stmt.body)
        if ok:
            self.checker.exit_lend(stmt.name)
            self.lend_windows.setdefault(stmt.name, []).append(
                (start, len(self.gates))
            )


def _finish(ela: _Elaborator, report: DiagnosticReport) -> ElaboratedProgram:
    """Assemble the :class:`ElaboratedProgram` once every statement ran."""
    circuit = Circuit(len(ela.wire_labels), labels=ela.wire_labels)
    for gate in ela.gates:
        circuit.append(gate)
    result = ElaboratedProgram(
        circuit=circuit,
        registers=ela.registers,
        bindings=dict(ela.env),
        lend_windows={k: list(v) for k, v in ela.lend_windows.items()},
        diagnostics=report,
    )
    for register in ela.registers.values():
        bucket = {
            "borrow": result.dirty_wires,
            "borrow_scoped": result.dirty_wires,
            "borrow_skip": result.input_wires,
            "alloc": result.clean_wires,
        }[register.kind]
        bucket.extend(register.wires)
    dirty = set(result.dirty_wires)
    result.proven_wires = [w for w in ela.proven if w in dirty]
    return result


class ProgramStream:
    """Iterator of elaborated gates, driven as the source is consumed.

    Parsing, borrow checking and elaboration advance statement by
    statement: iterating yields each emitted
    :class:`~repro.circuits.gates.Gate` as soon as the statement (or,
    for a top-level ``for`` loop, the loop iteration) that produced it
    has been read — source past that point has not been lexed yet.  A
    scoped ``borrow { within { C } apply { D } }`` block buffers until
    its closing brace and then yields its whole ``C; D; rev(C); D``
    emission, since the mirror phases replay gates the block itself
    produced.  Diagnostics accumulate in :attr:`report` exactly as in
    offline elaboration; strict-mode violations raise at the gate that
    caused them.

    :meth:`result` drains whatever remains and assembles the
    :class:`ElaboratedProgram` — :func:`elaborate` is exactly
    ``iter_program(...).result()``, so the offline and streaming paths
    cannot drift.
    """

    def __init__(
        self,
        source: Union[str, Program],
        *,
        strict: bool = True,
        report: Optional[DiagnosticReport] = None,
        filename: str = "<qbr>",
    ):
        if isinstance(source, str):
            statements = iter_statements(source)
            text = source
        else:
            statements = iter(source.statements)
            text = ""
        if report is None:
            report = DiagnosticReport(source=text, filename=filename)
        self.report = report
        self._ela = _Elaborator(BorrowChecker(report, strict=strict))
        self._gates = self._emit(statements)
        self._result: Optional[ElaboratedProgram] = None

    def _emit(self, statements):
        ela = self._ela
        for stmt in statements:
            if isinstance(stmt, ForStmt):
                for _ in ela._for_iterations(stmt):
                    mark = len(ela.gates)
                    ela.run(stmt.body)
                    # `gates` is append-only, so the slice past `mark`
                    # is exactly this iteration's emission.
                    yield from ela.gates[mark:]
            else:
                mark = len(ela.gates)
                ela.run((stmt,))
                yield from ela.gates[mark:]

    def __iter__(self) -> "ProgramStream":
        return self

    def __next__(self) -> Gate:
        return next(self._gates)

    @property
    def num_wires(self) -> int:
        """Register width declared so far (grows as the stream runs)."""
        return len(self._ela.wire_labels)

    def result(self) -> ElaboratedProgram:
        """Drain the rest of the stream and return the elaborated
        program (idempotent)."""
        if self._result is None:
            for _ in self._gates:
                pass
            self._result = _finish(self._ela, self.report)
        return self._result


def iter_program(
    source: Union[str, Program],
    *,
    strict: bool = True,
    report: Optional[DiagnosticReport] = None,
    filename: str = "<qbr>",
) -> ProgramStream:
    """Stream a ``.qbr`` program's gates as the source is parsed.

    Returns a :class:`ProgramStream`; ``list(iter_program(src))``
    equals ``elaborate(src).circuit.gates`` gate for gate.
    """
    return ProgramStream(
        source, strict=strict, report=report, filename=filename
    )


def elaborate(
    source: Union[str, Program],
    *,
    strict: bool = True,
    report: Optional[DiagnosticReport] = None,
    filename: str = "<qbr>",
) -> ElaboratedProgram:
    """Elaborate ``.qbr`` source (or a parsed :class:`Program`).

    The static borrow checker runs as part of elaboration.  In strict
    mode (the default) the first ownership violation raises
    :class:`~repro.lang.diagnostics.BorrowCheckError` — a
    :class:`ParseError` subclass, so existing error handling keeps
    working.  With ``strict=False`` every violation is collected into
    ``report`` (see :func:`repro.lang.borrowck.check_program`) and
    elaboration recovers and continues.

    Implemented as "drain the stream": this is
    :func:`iter_program`\\ ``(...).result()``, nothing more.
    """
    return iter_program(
        source, strict=strict, report=report, filename=filename
    ).result()


def elaborate_file(path: Union[str, Path]) -> ElaboratedProgram:
    """Elaborate a ``.qbr`` file from disk."""
    return elaborate(Path(path).read_text())


def _as_program(
    source: Union[str, Path, ElaboratedProgram],
) -> ElaboratedProgram:
    """Resolve text / path / elaborated-program into a program."""
    if isinstance(source, ElaboratedProgram):
        return source
    if isinstance(source, Path) or (
        isinstance(source, str) and source.strip().endswith(".qbr")
    ):
        return elaborate_file(source)
    return elaborate(source)


def verify_qbr(
    source: Union[str, Path, ElaboratedProgram],
    backend: str = "cdcl",
    simplify_xor: bool = True,
    include_clean: bool = False,
    trust_checker: bool = False,
) -> VerificationReport:
    """End-to-end: parse, elaborate, and verify every ``borrow`` qubit.

    ``source`` may be ``.qbr`` text, a path to a ``.qbr`` file, or an
    already elaborated program.  ``borrow@`` registers are skipped, as in
    the paper's benchmarks.  With ``include_clean=True``, every ``alloc``
    register is additionally checked against the weaker clean-qubit
    contract (|0> in, |0> out — formula (6.1) only) and its verdicts are
    appended to the report.  With ``trust_checker=True`` the wires the
    static borrow checker already proved (``proven_wires``) are omitted
    from the solver run — the obligations the type system discharged are
    not re-paid.
    """
    program = _as_program(source)
    to_check = program.dirty_wires
    if trust_checker and program.proven_wires:
        proven = set(program.proven_wires)
        to_check = [w for w in to_check if w not in proven]
    report = verify_circuit(
        program.circuit,
        to_check,
        backend=backend,
        simplify_xor=simplify_xor,
    )
    if include_clean and program.clean_wires:
        from repro.verify.clean import verify_clean_wires

        clean_report = verify_clean_wires(
            program.circuit, program.clean_wires, backend=backend
        )
        report.verdicts.extend(clean_report.verdicts)
        report.total_seconds += clean_report.total_seconds
    return report


def job_from_qbr(
    name: str,
    source: Union[str, Path, ElaboratedProgram],
    trust_checker: bool = False,
) -> "object":
    """Build a :class:`~repro.multiprog.scheduler.QuantumJob` from ``.qbr``.

    Every dirty wire becomes a
    :class:`~repro.multiprog.scheduler.BorrowRequest`.  With
    ``trust_checker=True`` the wires the borrow checker proved safe are
    marked ``certified``, so
    :meth:`~repro.multiprog.scheduler.MultiProgrammer.admit` skips their
    solver obligations and counts them in
    ``stats()['static_discharged']``.  Certification is opt-in —
    mirroring :func:`verify_qbr`'s conservative default — so admission
    pays its solver obligations unless the caller explicitly chooses to
    trust the static proof on this safety-critical path.
    """
    program = _as_program(source)
    # Imported here so the language layer stays importable without the
    # scheduler stack (multiprog imports alloc imports verify).
    from repro.multiprog.scheduler import BorrowRequest, QuantumJob

    proven = set(program.proven_wires) if trust_checker else set()
    requests = [
        BorrowRequest(wire, certified=wire in proven)
        for wire in program.dirty_wires
    ]
    return QuantumJob(
        name=name, circuit=program.circuit, ancilla_requests=requests
    )
