"""Tokenizer for the ``.qbr`` surface language.

Follows the artifact grammar: identifiers, numbers, the punctuation set
``= ; , [ ] { } ( ) + - *``, the ``borrow@`` marker, ``//`` line comments
and ``/* */`` block comments.  Keywords are classified here so the parser
can match on token kinds.

Beyond the published grammar this repository adds the ownership
keywords ``lend``, ``within`` and ``apply`` for the scoped
``borrow ... { within {...} apply {...} }`` and ``lend x {...}``
constructs checked by :mod:`repro.lang.borrowck` (see
``docs/language.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "let",
        "borrow",
        "alloc",
        "release",
        "for",
        "to",
        "lend",
        "within",
        "apply",
    }
)

PUNCTUATION = {
    "=": "EQUALS",
    ";": "SEMI",
    ",": "COMMA",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "{": "LBRACE",
    "}": "RBRACE",
    "(": "LPAREN",
    ")": "RPAREN",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its 1-based source position."""

    kind: str  # KEYWORD name, "ID", "NUMBER", punctuation kind, or "EOF"
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    i = 0
    length = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < length and source[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < length:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, column
            advance(2)
            while i < length and not source.startswith("*/", i):
                advance(1)
            if i >= length:
                raise ParseError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isdigit():
            start_line, start_col = line, column
            begin = i
            while i < length and source[i].isdigit():
                advance(1)
            yield Token("NUMBER", source[begin:i], start_line, start_col)
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, column
            begin = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[begin:i]
            if text == "borrow" and i < length and source[i] == "@":
                advance(1)
                yield Token("BORROW_SKIP", "borrow@", start_line, start_col)
                continue
            kind = text.upper() if text in KEYWORDS else "ID"
            yield Token(kind, text, start_line, start_col)
            continue
        if ch in PUNCTUATION:
            yield Token(PUNCTUATION[ch], ch, line, column)
            advance(1)
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    yield Token("EOF", "", line, column)
