"""The concrete QBorrow surface language (``.qbr`` files) — system S7.

A hand-written front end for the ANTLR grammar of the paper's artifact
appendix (Section 10.3): ``let`` bindings, ``borrow`` / ``borrow@`` /
``alloc`` / ``release`` register declarations, ``X``/``CNOT``/``CCNOT``
gate statements, arithmetic expressions and bidirectional ``for``
loops — plus this repository's ownership constructs, the scoped
``borrow b { within {...} apply {...} }`` block and ``lend x {...}``
(reference and diagnostics catalogue in ``docs/language.md``).

Module tour:

* :mod:`repro.lang.surface.lexer` — tokens, keywords, comments.
* :mod:`repro.lang.surface.parser` — recursive descent to the surface
  AST (``RegRef``, ``GateStmt``, ``BorrowBlock``, ``LendBlock``, ...).
* :mod:`repro.lang.surface.elaborate` — lowers the AST to a flat
  classical circuit with qubit roles, drives the borrow checker, and
  bridges to allocation/scheduling (``verify_qbr``, ``job_from_qbr``).
* :mod:`repro.lang.surface.sources` — the paper's ``.qbr`` templates
  (the Haner adder, the dirty-ancilla MCX ladder).

Pipeline: :func:`parse` (source → surface AST) →
:func:`elaborate` (AST → flat circuit + qubit roles + proven wires) →
— or, streamed, :func:`iter_statements` → :func:`iter_program`, which
yield statements/gates as the source is consumed (``elaborate`` is the
drained stream) →
:func:`verify_qbr` (circuit → per-dirty-qubit safe-uncomputation
report) or :func:`job_from_qbr` (circuit → scheduler job; passing
``trust_checker=True`` opts in to marking checker-proven wires
pre-certified).
"""

from repro.lang.surface.lexer import tokenize
from repro.lang.surface.parser import iter_statements, parse
from repro.lang.surface.elaborate import (
    ElaboratedProgram,
    ProgramStream,
    elaborate,
    elaborate_file,
    iter_program,
    job_from_qbr,
    verify_qbr,
)

__all__ = [
    "ElaboratedProgram",
    "ProgramStream",
    "elaborate",
    "elaborate_file",
    "iter_program",
    "iter_statements",
    "job_from_qbr",
    "parse",
    "tokenize",
    "verify_qbr",
]
