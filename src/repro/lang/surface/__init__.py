"""The concrete QBorrow surface language (``.qbr`` files) — system S7.

A hand-written front end for the ANTLR grammar of the paper's artifact
appendix (Section 10.3): ``let`` bindings, ``borrow`` / ``borrow@`` /
``alloc`` / ``release`` register declarations, ``X``/``CNOT``/``CCNOT``
gate statements, arithmetic expressions and bidirectional ``for`` loops.

Pipeline: :func:`parse` (source → surface AST) →
:func:`elaborate` (AST → flat circuit + qubit roles) →
:func:`verify_qbr` (circuit → per-dirty-qubit safe-uncomputation report).
"""

from repro.lang.surface.lexer import tokenize
from repro.lang.surface.parser import parse
from repro.lang.surface.elaborate import (
    ElaboratedProgram,
    elaborate,
    elaborate_file,
    verify_qbr,
)

__all__ = [
    "ElaboratedProgram",
    "elaborate",
    "elaborate_file",
    "parse",
    "tokenize",
    "verify_qbr",
]
