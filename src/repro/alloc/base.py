"""The abstract allocation-strategy interface.

A strategy turns a :class:`~repro.alloc.model.ConflictModel` into a
:class:`~repro.alloc.model.Placement` — pure combinatorics, no circuit
rewriting and no safety reasoning unless the strategy opts into it (see
:mod:`repro.alloc.verified`).  Concrete strategies register themselves
under a name with
:func:`repro.alloc.registry.register_strategy`; callers obtain instances
through :func:`~repro.alloc.registry.make_strategy` or go straight to
:func:`repro.alloc.api.allocate`.
"""

from __future__ import annotations

import abc
from typing import ClassVar

from repro.alloc.model import ConflictModel, Placement


class AllocationStrategy(abc.ABC):
    """One borrow-placement policy.

    Strategies are cheap, stateless-by-default objects; anything with
    per-instance state (a verifier, a node budget) takes it through
    keyword arguments so :func:`~repro.alloc.registry.make_strategy`
    can forward options from the caller.
    """

    #: Registry name; set by the ``@register_strategy`` decorator.
    name: ClassVar[str] = "?"

    @abc.abstractmethod
    def plan(self, model: ConflictModel) -> Placement:
        """Place the model's ancillas onto hosts.

        Must account for every ancilla in ``model.ancillas``: each one
        ends up either in ``assignment`` or in ``unplaced``, and the
        lending windows of the guests sharing any one host must be
        pairwise disjoint (the structural contract
        :func:`~repro.alloc.model.validate_placement` enforces).
        """
