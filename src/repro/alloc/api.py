"""The allocation driver: model -> strategy -> rewritten circuit.

:func:`allocate` is the subsystem's front door.  It builds the
interval-conflict model, applies the caller's safety gate (the seed's
``safety_check`` / ``on_unsafe`` contract), hands the surviving
ancillas to a registered strategy, and materialises the winning
placement as a compacted circuit — returning the same
:class:`BorrowPlan` the Figure 3.1 pass has always produced, so every
pre-refactor caller keeps working through the
:mod:`repro.circuits.borrowing` shim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.alloc.base import AllocationStrategy
from repro.alloc.model import ConflictModel, build_model
from repro.alloc.registry import make_strategy

# BorrowPlan and SafetyCheck live in the (dependency-free) historical
# module so both packages can share them without an import cycle.
from repro.circuits.borrowing import BorrowPlan, SafetyCheck
from repro.circuits.circuit import Circuit
from repro.errors import CircuitError

StrategyLike = Union[str, AllocationStrategy]


def allocate(
    circuit: Circuit,
    ancillas: Sequence[int],
    strategy: StrategyLike = "greedy",
    safety_check: Optional[SafetyCheck] = None,
    on_unsafe: str = "error",
    model: Optional[ConflictModel] = None,
    segmented: bool = False,
    segment_check=None,
    **strategy_options,
) -> BorrowPlan:
    """Eliminate dirty-ancilla wires by borrowing idle qubits.

    Parameters
    ----------
    circuit:
        The input circuit; ``ancillas`` are wire indices to eliminate.
    strategy:
        A registered strategy name (see
        :func:`repro.alloc.registry.available_strategies`) or an
        :class:`AllocationStrategy` instance; ``strategy_options`` are
        forwarded to the constructor when a name is given.
    safety_check:
        Optional predicate ``(circuit, ancilla) -> bool`` deciding safe
        uncomputation (Definition 3.1), applied per ancilla in
        period-start order.  The ``"verified"`` strategy is the batched
        alternative: it verifies only ancillas that have a candidate
        host, through one shared :class:`BatchVerifier` call.
    on_unsafe:
        ``"error"`` raises :class:`CircuitError` at the first unsafe
        ancilla; ``"skip"`` leaves it as a real wire and records a note.
    model:
        An interval-conflict model already built for exactly
        ``(circuit, ancillas)`` — callers that needed the model for
        their own analysis (the online scheduler's lazy-verification
        gate) pass it back to skip the rebuild.
    segmented / segment_check:
        Forwarded to :func:`~repro.alloc.model.build_model` when no
        ``model`` is supplied: refine each ancilla's lending window
        into its restore-point :class:`~repro.circuits.intervals.WindowSet`
        (optionally solver-backed), so hosts busy only inside the gaps
        become candidates.
    """
    if on_unsafe not in ("error", "skip"):
        raise CircuitError(f"on_unsafe must be 'error' or 'skip', got {on_unsafe!r}")
    if model is None:
        model = build_model(
            circuit, ancillas, segmented=segmented, segment_check=segment_check
        )
    elif model.circuit is not circuit or set(model.all_targets) != set(
        ancillas
    ):
        raise CircuitError(
            "the supplied model was built for a different circuit or "
            "ancilla set"
        )

    notes: List[str] = []
    blocked: List[int] = []
    targets = list(model.ancillas)
    if safety_check is not None:
        targets = []
        for a in model.ancillas:
            if safety_check(circuit, a):
                targets.append(a)
                continue
            if on_unsafe == "error":
                raise CircuitError(
                    f"ancilla {a} is not safely uncomputed; refusing to borrow"
                )
            notes.append(f"ancilla {a} unsafe: left in place")
            blocked.append(a)

    if isinstance(strategy, AllocationStrategy):
        if strategy_options:
            raise CircuitError(
                "strategy options only apply when passing a name"
            )
        engine = strategy
    else:
        engine = make_strategy(strategy, **strategy_options)

    placement = engine.plan(model.restrict(targets))
    notes.extend(placement.notes)
    unplaced = sorted((*blocked, *placement.unplaced))
    return materialise(model, placement.assignment, unplaced, notes, engine.name)


def materialise(
    model: ConflictModel,
    assignment: Dict[int, int],
    unplaced: List[int],
    notes: List[str],
    strategy_name: str,
) -> BorrowPlan:
    """Rewrite the circuit onto the compacted register.

    Shared back end of :func:`allocate` and
    :class:`repro.alloc.streaming.StreamingAllocator.close`: given a
    model and a final assignment, produce the :class:`BorrowPlan` with
    ancilla wires merged into their hosts and the register compacted.
    """
    circuit = model.circuit
    removed = set(assignment) | set(model.untouched)
    survivors = [q for q in range(circuit.num_qubits) if q not in removed]
    wire_map = {q: i for i, q in enumerate(survivors)}
    remap = dict(wire_map)
    for a, host in assignment.items():
        remap[a] = wire_map[host]

    labels = None
    if circuit.labels is not None:
        labels = [circuit.labels[q] for q in survivors]
    new_circuit = Circuit(len(survivors), labels=labels)
    for gate in circuit.gates:
        new_circuit.append(gate.remap(remap))

    return BorrowPlan(
        circuit=new_circuit,
        assignment=assignment,
        unplaced=unplaced,
        periods=dict(model.periods),
        wire_map=wire_map,
        original_width=circuit.num_qubits,
        final_width=len(survivors),
        notes=notes,
        strategy=strategy_name,
        windows=dict(model.windows),
    )
