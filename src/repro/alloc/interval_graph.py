"""Conflict-graph colouring that packs guests onto few hosts.

The ancillas and their lending-window overlaps form an interval graph
(a union-of-intervals graph once windows are segmented — the colouring
argument is unchanged); a valid placement is a colouring where each
colour class is one host compatible with every member.  This strategy
colours in Welsh–Powell order (most conflicted first) and, among
compatible hosts, prefers the one already carrying the *most* guests —
so non-overlapping ancillas pile onto a shared host instead of
spreading across the register.

Final width equals greedy's whenever both place the same ancillas; the
difference is occupancy shape, which matters to the multi-programmer:
concentrating guests on few hosts leaves whole co-tenant wires
untouched and therefore lendable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.alloc.base import AllocationStrategy
from repro.alloc.model import ConflictModel, Placement
from repro.alloc.registry import register_strategy


@register_strategy("interval-graph")
class IntervalGraphStrategy(AllocationStrategy):
    """Welsh–Powell colouring with best-fit (most-loaded host) packing."""

    def plan(self, model: ConflictModel) -> Placement:
        placement = Placement()
        order = sorted(
            model.ancillas,
            key=lambda a: (
                -len(model.conflicts[a]),
                len(model.candidates[a]),
                model.periods[a].first,
                a,
            ),
        )
        load: Dict[int, List[int]] = {}
        for a in order:
            host = self._best_fit(model, a, placement.assignment, load)
            if host is None:
                placement.notes.append(
                    f"ancilla {a}: no colourable host for period "
                    f"{model.periods[a]}"
                )
                placement.unplaced.append(a)
                continue
            placement.assignment[a] = host
            load.setdefault(host, []).append(a)
        placement.unplaced.sort()
        return placement

    @staticmethod
    def _best_fit(model, ancilla, assignment, load):
        best = None
        best_load = -1
        for host in model.candidates[ancilla]:
            if not model.compatible(ancilla, host, assignment):
                continue
            host_load = len(load.get(host, ()))
            if host_load > best_load:
                best, best_load = host, host_load
        return best
