"""The interval-conflict model every allocation strategy plans over.

Borrow placement (Figure 3.1) is an interval problem: each dirty ancilla
is *active* over a closed gate-index period, a working qubit can host it
only if the host has no gate inside that period, and two ancillas can
share a host only if their periods do not overlap.  :func:`build_model`
extracts that structure from a circuit once — periods, per-ancilla host
candidates, and the ancilla conflict graph — so strategies are pure
combinatorial searches that never re-scan the gate list.

Every ancilla additionally carries a **lending window**: a
:class:`~repro.circuits.intervals.WindowSet`, the ordered set of
disjoint gate-index segments in which a guest actually occupies
whatever wire hosts it.  By default the window is the whole activity
period (one segment); with ``segmented=True`` the
:func:`~repro.circuits.intervals.restore_segments` analysis splits it
at valid release points — the gaps where the prefix provably restores
the ancilla — so the host is only needed inside the segments.  Host
sharing is decided by *window-set disjointness* everywhere: inside one
circuit by :meth:`ConflictModel.compatible` /
:func:`validate_placement`, and across programs by the
multi-programmer's lease machinery, which shifts the same window sets
onto the machine timeline.

Candidate computation is a single pass over the gates plus one binary
search per (host, segment) pair, so building the model is
``O(gates + hosts * segments * log gates)`` — noticeably cheaper than
the seed's per-ancilla ``idle_qubits_during`` rescans on wide circuits.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.intervals import (
    ActivityInterval,
    SegmentCheck,
    WindowSet,
    activity_intervals,
    restore_segments,
    touch_indices,
)
from repro.errors import CircuitError


@dataclass
class Placement:
    """A strategy's answer: which ancilla lands on which host.

    Purely combinatorial — the circuit rewrite happens later, in
    :func:`repro.alloc.api.allocate`.  ``assignment`` maps ancilla wire
    to host wire; ``unplaced`` lists ancillas the strategy could not
    (or chose not to) place; ``notes`` carries human-readable reasons.
    """

    assignment: Dict[int, int] = field(default_factory=dict)
    unplaced: List[int] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class ConflictModel:
    """Interval structure of one circuit's borrow-placement problem.

    Attributes
    ----------
    circuit:
        The circuit the model was built from.
    ancillas:
        Placement targets with at least one gate, ordered by period
        start (the canonical processing order).
    untouched:
        Requested ancillas with no gates at all — trivially removable,
        no placement needed.
    periods:
        Ancilla wire -> its :class:`ActivityInterval`.
    windows:
        Ancilla wire -> its lending :class:`WindowSet`: the disjoint
        gate-index segments during which a guest occupies its host
        wire.  One whole-period segment by default; the restore-point
        segmentation under ``segmented=True``.  The single source every
        host-sharing decision (in-circuit and cross-program) reasons
        over.
    hosts:
        Non-ancilla wires, ascending — the potential hosts.
    candidates:
        Ancilla wire -> hosts idle throughout every window segment,
        ascending.  (A host busy only inside a window *gap* is a
        candidate under segmentation — the wire is released there.)
    conflicts:
        Ancilla wire -> the other ancillas whose window sets overlap it
        (the edges of the conflict graph).
    segmented:
        Whether the windows carry the restore-point segmentation.
    """

    circuit: Circuit
    ancillas: Tuple[int, ...]
    untouched: Tuple[int, ...]
    periods: Dict[int, ActivityInterval]
    windows: Dict[int, WindowSet]
    hosts: Tuple[int, ...]
    candidates: Dict[int, Tuple[int, ...]]
    conflicts: Dict[int, FrozenSet[int]]
    segmented: bool = False

    @property
    def all_targets(self) -> Tuple[int, ...]:
        """Every requested ancilla, active or untouched."""
        return tuple(sorted((*self.ancillas, *self.untouched)))

    def restrict(self, keep: Sequence[int]) -> "ConflictModel":
        """A sub-problem over ``keep``: excluded ancillas stop being
        placement targets but stay off the host list (they keep their
        wires, e.g. after failing a safety check)."""
        keep_set = set(keep)
        unknown = keep_set - set(self.all_targets)
        if unknown:
            raise CircuitError(
                f"cannot restrict to non-ancilla wires {sorted(unknown)}"
            )
        ancillas = tuple(a for a in self.ancillas if a in keep_set)
        return ConflictModel(
            circuit=self.circuit,
            ancillas=ancillas,
            untouched=tuple(a for a in self.untouched if a in keep_set),
            periods={a: self.periods[a] for a in ancillas},
            windows={a: self.windows[a] for a in ancillas},
            hosts=self.hosts,
            candidates={a: self.candidates[a] for a in ancillas},
            conflicts={
                a: self.conflicts[a] & keep_set for a in ancillas
            },
            segmented=self.segmented,
        )

    def compatible(self, ancilla: int, host: int, taken: Dict[int, int]) -> bool:
        """May ``ancilla`` land on ``host`` given placements ``taken``?

        True when ``host`` is a candidate and no already-placed ancilla
        with an overlapping window set sits on the same host.  The
        conflict graph *is* the window-overlap relation (see
        :func:`build_model`), so the precomputed edge set answers this
        in O(degree) — this sits in the lookahead search's innermost
        loop.
        """
        if host not in self.candidates.get(ancilla, ()):
            return False
        return all(
            taken.get(other) != host for other in self.conflicts[ancilla]
        )


def build_model(
    circuit: Circuit,
    ancillas: Sequence[int],
    segmented: bool = False,
    segment_check: Optional[SegmentCheck] = None,
) -> ConflictModel:
    """Extract the interval-conflict structure for ``ancillas``.

    With ``segmented`` on, each ancilla's lending window is refined by
    the restore-point analysis
    (:func:`~repro.circuits.intervals.restore_segments`, optionally
    solver-backed through ``segment_check``); candidate hosts then only
    need to be idle inside the surviving segments, and conflicts are
    window-*set* overlaps — both strictly more permissive than the
    whole-period default, never less.
    """
    ancilla_set = set(ancillas)
    for a in ancilla_set:
        if not 0 <= a < circuit.num_qubits:
            raise CircuitError(f"ancilla {a} outside the register")

    intervals = activity_intervals(circuit)
    active = sorted(
        (a for a in ancilla_set if a in intervals),
        key=lambda a: (intervals[a].first, a),
    )
    untouched = tuple(sorted(a for a in ancilla_set if a not in intervals))
    hosts = tuple(
        q for q in range(circuit.num_qubits) if q not in ancilla_set
    )

    # One pass builds every wire's sorted gate-index list; the restore
    # analysis and the candidate scan both read it, so neither re-walks
    # the gate list per ancilla.
    touches = touch_indices(circuit)

    # The lending window: the whole activity period (a dirty ancilla
    # carries borrowed state from its first touch to its last), or the
    # restore-point segmentation of it — the host wire is occupied for
    # exactly those segments and no longer.
    if segmented:
        windows = {
            a: restore_segments(
                circuit,
                a,
                segment_check=segment_check,
                touches=touches[a],
            )
            for a in active
        }
    else:
        windows = {a: WindowSet.whole(intervals[a]) for a in active}

    # A host is a candidate for an ancilla iff binary search finds none
    # of its indices in any of the ancilla's window segments.
    candidates: Dict[int, Tuple[int, ...]] = {}
    for a in active:
        idle = []
        for host in hosts:
            indices = touches.get(host, ())
            if all(
                (cut := bisect_left(indices, seg.first)) == len(indices)
                or indices[cut] > seg.last
                for seg in windows[a].segments
            ):
                idle.append(host)
        candidates[a] = tuple(idle)

    conflicts: Dict[int, FrozenSet[int]] = {
        a: frozenset(
            b
            for b in active
            if b != a and windows[a].overlaps(windows[b])
        )
        for a in active
    }

    return ConflictModel(
        circuit=circuit,
        ancillas=tuple(active),
        untouched=untouched,
        periods={a: intervals[a] for a in active},
        windows=windows,
        hosts=hosts,
        candidates=candidates,
        conflicts=conflicts,
        segmented=segmented,
    )


def validate_placement(model: ConflictModel, placement: Placement) -> None:
    """Raise :class:`CircuitError` unless ``placement`` is sound.

    Sound means: every assigned host is a candidate for its guest, the
    lending window *sets* of the guests sharing any one host are
    pairwise disjoint, and every active ancilla is either assigned or
    listed unplaced.  Set disjointness (not whole-circuit exclusivity)
    is the contract — it is what lets several guests multiplex one
    host, interleaving through each other's gaps — and it is exactly
    what the conflict graph encodes, so the check is equivalent to the
    historical no-overlapping-conflict rule while stating the real
    invariant.  Checked by a single sweep over every segment on the
    host (adjacent-pair comparison of whole sets would miss an overlap
    between non-adjacent sets).  Used by the differential tests to hold
    every registered strategy to the same structural contract, and by
    the occupancy invariant checker after every scheduler event.
    """
    seen = set(placement.assignment) | set(placement.unplaced)
    missing = set(model.ancillas) - seen
    if missing:
        raise CircuitError(f"placement ignores ancillas {sorted(missing)}")
    for a, host in placement.assignment.items():
        if host not in model.candidates.get(a, ()):
            raise CircuitError(
                f"ancilla {a} assigned to non-candidate host {host}"
            )
    guests_by_host: Dict[int, List[int]] = {}
    for a, host in placement.assignment.items():
        guests_by_host.setdefault(host, []).append(a)
    for host, guests in guests_by_host.items():
        spans = sorted(
            (seg.first, seg.last, a)
            for a in guests
            for seg in model.windows[a].segments
        )
        for (_, prev_last, prev_a), (nxt_first, _, nxt_a) in zip(
            spans, spans[1:]
        ):
            if nxt_first <= prev_last:
                raise CircuitError(
                    f"overlapping ancillas {min(prev_a, nxt_a)} and "
                    f"{max(prev_a, nxt_a)} share host {host}"
                )
