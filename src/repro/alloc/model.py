"""The interval-conflict model every allocation strategy plans over.

Borrow placement (Figure 3.1) is an interval problem: each dirty ancilla
is *active* over a closed gate-index period, a working qubit can host it
only if the host has no gate inside that period, and two ancillas can
share a host only if their periods do not overlap.  :func:`build_model`
extracts that structure from a circuit once — periods, per-ancilla host
candidates, and the ancilla conflict graph — so strategies are pure
combinatorial searches that never re-scan the gate list.

Every ancilla additionally carries a **lending window**: a
:class:`~repro.circuits.intervals.WindowSet`, the ordered set of
disjoint gate-index segments in which a guest actually occupies
whatever wire hosts it.  By default the window is the whole activity
period (one segment); with ``segmented=True`` the
:func:`~repro.circuits.intervals.restore_segments` analysis splits it
at valid release points — the gaps where the prefix provably restores
the ancilla — so the host is only needed inside the segments.  Host
sharing is decided by *window-set disjointness* everywhere: inside one
circuit by :meth:`ConflictModel.compatible` /
:func:`validate_placement`, and across programs by the
multi-programmer's lease machinery, which shifts the same window sets
onto the machine timeline.

Candidate computation is a single pass over the gates plus one binary
search per (host, segment) pair, so building the model is
``O(gates + hosts * segments * log gates)`` — noticeably cheaper than
the seed's per-ancilla ``idle_qubits_during`` rescans on wide circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.circuits.circuit import Circuit
from repro.circuits.intervals import (
    ActivityInterval,
    IncrementalTouchIndex,
    RestoreScan,
    SegmentCheck,
    WindowSet,
)
from repro.errors import CircuitError


@dataclass
class Placement:
    """A strategy's answer: which ancilla lands on which host.

    Purely combinatorial — the circuit rewrite happens later, in
    :func:`repro.alloc.api.allocate`.  ``assignment`` maps ancilla wire
    to host wire; ``unplaced`` lists ancillas the strategy could not
    (or chose not to) place; ``notes`` carries human-readable reasons.
    """

    assignment: Dict[int, int] = field(default_factory=dict)
    unplaced: List[int] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class ConflictModel:
    """Interval structure of one circuit's borrow-placement problem.

    Attributes
    ----------
    circuit:
        The circuit the model was built from.
    ancillas:
        Placement targets with at least one gate, ordered by period
        start (the canonical processing order).
    untouched:
        Requested ancillas with no gates at all — trivially removable,
        no placement needed.
    periods:
        Ancilla wire -> its :class:`ActivityInterval`.
    windows:
        Ancilla wire -> its lending :class:`WindowSet`: the disjoint
        gate-index segments during which a guest occupies its host
        wire.  One whole-period segment by default; the restore-point
        segmentation under ``segmented=True``.  The single source every
        host-sharing decision (in-circuit and cross-program) reasons
        over.
    hosts:
        Non-ancilla wires, ascending — the potential hosts.
    candidates:
        Ancilla wire -> hosts idle throughout every window segment,
        ascending.  (A host busy only inside a window *gap* is a
        candidate under segmentation — the wire is released there.)
    conflicts:
        Ancilla wire -> the other ancillas whose window sets overlap it
        (the edges of the conflict graph).
    segmented:
        Whether the windows carry the restore-point segmentation.
    """

    circuit: Circuit
    ancillas: Tuple[int, ...]
    untouched: Tuple[int, ...]
    periods: Dict[int, ActivityInterval]
    windows: Dict[int, WindowSet]
    hosts: Tuple[int, ...]
    candidates: Dict[int, Tuple[int, ...]]
    conflicts: Dict[int, FrozenSet[int]]
    segmented: bool = False

    @property
    def all_targets(self) -> Tuple[int, ...]:
        """Every requested ancilla, active or untouched."""
        return tuple(sorted((*self.ancillas, *self.untouched)))

    def restrict(self, keep: Sequence[int]) -> "ConflictModel":
        """A sub-problem over ``keep``: excluded ancillas stop being
        placement targets but stay off the host list (they keep their
        wires, e.g. after failing a safety check)."""
        keep_set = set(keep)
        unknown = keep_set - set(self.all_targets)
        if unknown:
            raise CircuitError(
                f"cannot restrict to non-ancilla wires {sorted(unknown)}"
            )
        ancillas = tuple(a for a in self.ancillas if a in keep_set)
        return ConflictModel(
            circuit=self.circuit,
            ancillas=ancillas,
            untouched=tuple(a for a in self.untouched if a in keep_set),
            periods={a: self.periods[a] for a in ancillas},
            windows={a: self.windows[a] for a in ancillas},
            hosts=self.hosts,
            candidates={a: self.candidates[a] for a in ancillas},
            conflicts={
                a: self.conflicts[a] & keep_set for a in ancillas
            },
            segmented=self.segmented,
        )

    def compatible(self, ancilla: int, host: int, taken: Dict[int, int]) -> bool:
        """May ``ancilla`` land on ``host`` given placements ``taken``?

        True when ``host`` is a candidate and no already-placed ancilla
        with an overlapping window set sits on the same host.  The
        conflict graph *is* the window-overlap relation (see
        :func:`build_model`), so the precomputed edge set answers this
        in O(degree) — this sits in the lookahead search's innermost
        loop.
        """
        if host not in self.candidates.get(ancilla, ()):
            return False
        return all(
            taken.get(other) != host for other in self.conflicts[ancilla]
        )


class IncrementalConflictModel:
    """The interval-conflict structure, maintained one gate at a time.

    The streaming engine behind both faces of the allocator: gates
    arrive through :meth:`append`, and after every gate the per-wire
    touch lists (:class:`~repro.circuits.intervals.IncrementalTouchIndex`),
    each active ancilla's lending window
    (:class:`~repro.circuits.intervals.RestoreScan` under
    ``segmented=True``, the whole activity hull otherwise) and the
    candidate-host query are current — no structure ever re-walks the
    gate prefix.  :meth:`snapshot` materialises the usual frozen
    :class:`ConflictModel` for the prefix seen so far; :func:`build_model`
    is now exactly "feed every gate, snapshot once", so offline and
    streaming answers agree by construction.

    Per-gate cost is O(wires-per-gate) list appends plus, for touched
    ancillas, one restore-scan step; the point queries
    (:meth:`window`, :meth:`candidate_hosts`, :meth:`host_idle_in`)
    are bisect probes over the sorted lists.  The rescan alternative —
    rebuilding the model per gate — is O(gates) *per gate*; the bench's
    ``streaming.incremental_vs_rescan`` section records the gap.
    """

    def __init__(
        self,
        num_qubits: int,
        ancillas: Sequence[int],
        segmented: bool = False,
        segment_check: Optional[SegmentCheck] = None,
        labels: Optional[Sequence[str]] = None,
    ):
        self._ancilla_set = set(ancillas)
        for a in self._ancilla_set:
            if not 0 <= a < num_qubits:
                raise CircuitError(f"ancilla {a} outside the register")
        self._circuit = Circuit(num_qubits, labels=labels)
        self._index = IncrementalTouchIndex(num_qubits)
        self._segmented = segmented
        self._segment_check = segment_check
        self._scans: Dict[int, RestoreScan] = {}
        # Active ancillas in first-touch order, ties broken by wire
        # index — the canonical (period.first, a) processing order, kept
        # sorted for free because first touches only ever move forward.
        self._active: List[int] = []
        self._active_set: set = set()
        self._hosts = tuple(
            q for q in range(num_qubits) if q not in self._ancilla_set
        )

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #

    def append(self, gate) -> int:
        """Feed one gate; returns the gate index it was assigned."""
        self._circuit.append(gate)  # validates wire indices
        index = self._index.append(gate)
        for a in sorted(set(gate.qubits) & self._ancilla_set):
            if a not in self._active_set:
                self._active_set.add(a)
                self._active.append(a)
            if self._segmented:
                scan = self._scans.get(a)
                if scan is None:
                    scan = self._scans[a] = RestoreScan(
                        self._circuit.num_qubits,
                        self._circuit.gates,
                        a,
                        self._segment_check,
                    )
                scan.observe(index)
        return index

    def extend(self, gates) -> None:
        """Feed many gates in order."""
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------ #
    # Point queries (current prefix)
    # ------------------------------------------------------------------ #

    @property
    def num_qubits(self) -> int:
        return self._circuit.num_qubits

    @property
    def num_gates(self) -> int:
        """Gates fed so far."""
        return self._index.num_gates

    @property
    def segmented(self) -> bool:
        return self._segmented

    @property
    def hosts(self) -> Tuple[int, ...]:
        """Non-ancilla wires, ascending."""
        return self._hosts

    @property
    def active(self) -> Tuple[int, ...]:
        """Touched ancillas in (first touch, wire) order — the
        canonical processing order of every strategy."""
        return tuple(self._active)

    def last_touch(self, ancilla: int) -> Optional[int]:
        """The ancilla's most recent gate index, or ``None``."""
        return self._index.last_touch(ancilla)

    def period(self, ancilla: int) -> Optional[ActivityInterval]:
        """The ancilla's activity period so far, or ``None``."""
        return self._index.interval(ancilla)

    def window(self, ancilla: int) -> Optional[WindowSet]:
        """The ancilla's lending window over the prefix seen so far
        (``None`` while untouched)."""
        if ancilla not in self._active_set:
            return None
        if self._segmented:
            return self._scans[ancilla].window()
        return WindowSet.whole(self._index.interval(ancilla))

    def host_idle_in(
        self, host: int, window: Union[ActivityInterval, WindowSet]
    ) -> bool:
        """Is ``host`` free of gates inside every segment of ``window``?"""
        return not self._index.busy_in(host, window)

    def candidate_hosts(self, ancilla: int) -> Tuple[int, ...]:
        """Hosts idle throughout the ancilla's current window, ascending."""
        window = self.window(ancilla)
        if window is None:
            return self._hosts
        return tuple(
            h for h in self._hosts if not self._index.busy_in(h, window)
        )

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #

    def snapshot(self, circuit: Optional[Circuit] = None) -> ConflictModel:
        """Freeze the current prefix into a :class:`ConflictModel`.

        ``circuit`` lets :func:`build_model` hand back the caller's own
        circuit object (required: :func:`repro.alloc.api.allocate`
        checks model/circuit identity).  Without it, the engine's
        internal gate list is *copied* into a fresh circuit, so the
        snapshot stays stable if more gates are fed afterwards.
        """
        if circuit is None:
            circuit = Circuit(
                self._circuit.num_qubits,
                self._circuit.gates,
                self._circuit.labels,
            )
        active = tuple(self._active)
        untouched = tuple(sorted(self._ancilla_set - self._active_set))
        windows = {a: self.window(a) for a in active}
        periods = {a: self._index.interval(a) for a in active}
        candidates = {
            a: tuple(
                h
                for h in self._hosts
                if not self._index.busy_in(h, windows[a])
            )
            for a in active
        }
        conflicts: Dict[int, FrozenSet[int]] = {
            a: frozenset(
                b
                for b in active
                if b != a and windows[a].overlaps(windows[b])
            )
            for a in active
        }
        return ConflictModel(
            circuit=circuit,
            ancillas=active,
            untouched=untouched,
            periods=periods,
            windows=windows,
            hosts=self._hosts,
            candidates=candidates,
            conflicts=conflicts,
            segmented=self._segmented,
        )


def build_model(
    circuit: Circuit,
    ancillas: Sequence[int],
    segmented: bool = False,
    segment_check: Optional[SegmentCheck] = None,
) -> ConflictModel:
    """Extract the interval-conflict structure for ``ancillas``.

    With ``segmented`` on, each ancilla's lending window is refined by
    the restore-point analysis
    (:func:`~repro.circuits.intervals.restore_segments`, optionally
    solver-backed through ``segment_check``); candidate hosts then only
    need to be idle inside the surviving segments, and conflicts are
    window-*set* overlaps — both strictly more permissive than the
    whole-period default, never less.

    Implemented as "feed every gate through an
    :class:`IncrementalConflictModel`, snapshot once" — the same engine
    the streaming allocator drives gate-by-gate, which is what makes
    the offline/streaming differential contract hold by construction.
    """
    engine = IncrementalConflictModel(
        circuit.num_qubits,
        ancillas,
        segmented=segmented,
        segment_check=segment_check,
        labels=circuit.labels,
    )
    engine.extend(circuit.gates)
    return engine.snapshot(circuit)


def validate_placement(model: ConflictModel, placement: Placement) -> None:
    """Raise :class:`CircuitError` unless ``placement`` is sound.

    Sound means: every assigned host is a candidate for its guest, the
    lending window *sets* of the guests sharing any one host are
    pairwise disjoint, and every active ancilla is either assigned or
    listed unplaced.  Set disjointness (not whole-circuit exclusivity)
    is the contract — it is what lets several guests multiplex one
    host, interleaving through each other's gaps — and it is exactly
    what the conflict graph encodes, so the check is equivalent to the
    historical no-overlapping-conflict rule while stating the real
    invariant.  Checked by a single sweep over every segment on the
    host (adjacent-pair comparison of whole sets would miss an overlap
    between non-adjacent sets).  Used by the differential tests to hold
    every registered strategy to the same structural contract, and by
    the occupancy invariant checker after every scheduler event.
    """
    seen = set(placement.assignment) | set(placement.unplaced)
    missing = set(model.ancillas) - seen
    if missing:
        raise CircuitError(f"placement ignores ancillas {sorted(missing)}")
    for a, host in placement.assignment.items():
        if host not in model.candidates.get(a, ()):
            raise CircuitError(
                f"ancilla {a} assigned to non-candidate host {host}"
            )
    guests_by_host: Dict[int, List[int]] = {}
    for a, host in placement.assignment.items():
        guests_by_host.setdefault(host, []).append(a)
    for host, guests in guests_by_host.items():
        spans = sorted(
            (seg.first, seg.last, a)
            for a in guests
            for seg in model.windows[a].segments
        )
        for (_, prev_last, prev_a), (nxt_first, _, nxt_a) in zip(
            spans, spans[1:]
        ):
            if nxt_first <= prev_last:
                raise CircuitError(
                    f"overlapping ancillas {min(prev_a, nxt_a)} and "
                    f"{max(prev_a, nxt_a)} share host {host}"
                )
