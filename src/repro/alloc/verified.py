"""Safety-aware placement: verify lazily, then delegate.

The seed's schedulers verified *every* requested ancilla up front, even
ones no idle host could ever take — pure wasted solver time.  This
wrapper inverts the order: it first reads the conflict model, drops
ancillas with no candidate host (they stay real wires, no solver run),
then batches the survivors through one
:class:`~repro.verify.batch.BatchVerifier` call so tracking, checkers
and verdict memoisation are shared.  Ancillas that verify unsafe are
excluded and the wrapped strategy plans placement for the safe rest.

Only classical circuits can be auto-verified; a non-classical circuit
with candidate-hosted ancillas raises
:class:`~repro.errors.VerificationError`, same as the Section 6
pipeline itself.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.alloc.base import AllocationStrategy
from repro.alloc.model import ConflictModel, Placement
from repro.alloc.registry import make_strategy, register_strategy
from repro.errors import CircuitError, VerificationError


@register_strategy("verified")
class VerifiedStrategy(AllocationStrategy):
    """Lazy batched safety gate around any registered strategy.

    Parameters
    ----------
    inner:
        Name of the strategy that plans placement for the ancillas that
        verify safe (default ``"greedy"``).
    verifier:
        A shared :class:`~repro.verify.batch.BatchVerifier`; by default
        the strategy owns a private one (so verdicts memoise across
        repeated plans on the same circuit).
    backend:
        Backend name for the private verifier when none is supplied.
    precertified:
        Ancilla wires whose safety was already proven *statically* —
        typically the surface language's borrow checker
        (``ElaboratedProgram.proven_wires``).  They are treated as safe
        without a solver obligation; every skip of an otherwise-due
        verification bumps :attr:`static_discharged`.
    """

    def __init__(
        self,
        inner: str = "greedy",
        verifier: Optional[object] = None,
        backend: str = "bdd",
        precertified: Optional[Iterable[int]] = None,
    ):
        if inner == "verified":
            raise CircuitError("verified strategy cannot wrap itself")
        self.inner = make_strategy(inner)
        if verifier is None:
            # Imported here, not at module top: repro.alloc loads during
            # repro.circuits package init (via the borrowing shim), and
            # pulling the verify stack in at that point would recurse.
            from repro.verify.batch import BatchVerifier

            verifier = BatchVerifier(backend=backend)
        self.verifier = verifier
        #: Wires proven safe before planning (no solver run needed).
        self.precertified: FrozenSet[int] = frozenset(precertified or ())
        #: Lifetime count of solver obligations skipped because the
        #: ancilla arrived pre-certified.
        self.static_discharged = 0
        #: Ancilla wire -> verdict of the last :meth:`plan` call;
        #: ancillas skipped as host-less never appear (never verified).
        self.last_safety: Dict[int, bool] = {}

    def plan(self, model: ConflictModel) -> Placement:
        hostless = [a for a in model.ancillas if not model.candidates[a]]
        to_verify = [
            a
            for a in model.ancillas
            if model.candidates[a] and a not in self.precertified
        ]
        certified = [
            a
            for a in model.ancillas
            if model.candidates[a] and a in self.precertified
        ]

        self.last_safety = {}
        for a in certified:
            self.last_safety[a] = True
        self.static_discharged += len(certified)
        unsafe = []
        if to_verify:
            from repro.circuits.classical import is_classical_circuit

            if not is_classical_circuit(model.circuit):
                raise VerificationError(
                    "verified allocation needs a classical circuit "
                    "(X / multi-controlled-NOT gates only)"
                )
            report = self.verifier.verify_circuit(model.circuit, to_verify)
            for verdict in report.verdicts:
                self.last_safety[verdict.qubit] = verdict.safe
                if not verdict.safe:
                    unsafe.append(verdict.qubit)

        # Keep the model's ancilla order (certified and verified alike).
        admitted = set(certified)
        admitted.update(a for a in to_verify if a not in unsafe)
        safe = [a for a in model.ancillas if a in admitted]
        placement = self.inner.plan(model.restrict(safe))
        for a in hostless:
            placement.unplaced.append(a)
            placement.notes.append(
                f"ancilla {a}: no candidate host, verification skipped"
            )
        for a in unsafe:
            placement.unplaced.append(a)
            placement.notes.append(
                f"ancilla {a}: not safely uncomputed, left in place"
            )
        placement.unplaced.sort()
        return placement
