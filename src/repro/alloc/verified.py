"""Safety-aware placement: verify lazily, then delegate.

The seed's schedulers verified *every* requested ancilla up front, even
ones no idle host could ever take — pure wasted solver time.  This
wrapper inverts the order: it first reads the conflict model, drops
ancillas with no candidate host (they stay real wires, no solver run),
then batches the survivors through one
:class:`~repro.verify.batch.BatchVerifier` call so tracking, checkers
and verdict memoisation are shared.  Ancillas that verify unsafe are
excluded and the wrapped strategy plans placement for the safe rest.

Only classical circuits can be auto-verified; a non-classical circuit
with candidate-hosted ancillas raises
:class:`~repro.errors.VerificationError`, same as the Section 6
pipeline itself.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.alloc.base import AllocationStrategy
from repro.alloc.model import ConflictModel, Placement
from repro.alloc.registry import make_strategy, register_strategy
from repro.errors import CircuitError, VerificationError


@register_strategy("verified")
class VerifiedStrategy(AllocationStrategy):
    """Lazy batched safety gate around any registered strategy.

    Parameters
    ----------
    inner:
        Name of the strategy that plans placement for the ancillas that
        verify safe (default ``"greedy"``).
    verifier:
        A shared :class:`~repro.verify.batch.BatchVerifier`; by default
        the strategy owns a private one (so verdicts memoise across
        repeated plans on the same circuit).
    backend:
        Backend name for the private verifier when none is supplied.
    """

    def __init__(
        self,
        inner: str = "greedy",
        verifier: Optional[object] = None,
        backend: str = "bdd",
    ):
        if inner == "verified":
            raise CircuitError("verified strategy cannot wrap itself")
        self.inner = make_strategy(inner)
        if verifier is None:
            # Imported here, not at module top: repro.alloc loads during
            # repro.circuits package init (via the borrowing shim), and
            # pulling the verify stack in at that point would recurse.
            from repro.verify.batch import BatchVerifier

            verifier = BatchVerifier(backend=backend)
        self.verifier = verifier
        #: Ancilla wire -> verdict of the last :meth:`plan` call;
        #: ancillas skipped as host-less never appear (never verified).
        self.last_safety: Dict[int, bool] = {}

    def plan(self, model: ConflictModel) -> Placement:
        hostless = [a for a in model.ancillas if not model.candidates[a]]
        to_verify = [a for a in model.ancillas if model.candidates[a]]

        self.last_safety = {}
        unsafe = []
        if to_verify:
            from repro.circuits.classical import is_classical_circuit

            if not is_classical_circuit(model.circuit):
                raise VerificationError(
                    "verified allocation needs a classical circuit "
                    "(X / multi-controlled-NOT gates only)"
                )
            report = self.verifier.verify_circuit(model.circuit, to_verify)
            for verdict in report.verdicts:
                self.last_safety[verdict.qubit] = verdict.safe
                if not verdict.safe:
                    unsafe.append(verdict.qubit)

        safe = [a for a in to_verify if a not in unsafe]
        placement = self.inner.plan(model.restrict(safe))
        for a in hostless:
            placement.unplaced.append(a)
            placement.notes.append(
                f"ancilla {a}: no candidate host, verification skipped"
            )
        for a in unsafe:
            placement.unplaced.append(a)
            placement.notes.append(
                f"ancilla {a}: not safely uncomputed, left in place"
            )
        placement.unplaced.sort()
        return placement
