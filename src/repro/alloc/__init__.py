"""Borrow-allocation subsystem — the Figure 3.1 pass, made pluggable.

The width-reduction pass is split into layers mirroring
:mod:`repro.verify`:

* :mod:`repro.alloc.model` — the interval-conflict model
  (:func:`build_model`): ancilla periods, per-ancilla lending
  :class:`~repro.circuits.intervals.WindowSet`\\ s (whole-period by
  default; split at restore points with ``segmented=True``, so a host
  busy only inside a restore gap still qualifies), candidate hosts and
  the window-overlap conflict graph, extracted from the circuit once;
* :mod:`repro.alloc.base` / :mod:`repro.alloc.registry` — the
  :class:`AllocationStrategy` interface and the ``@register_strategy``
  decorator registry;
* one module per policy:

  - ``greedy`` (:mod:`repro.alloc.greedy`) — the seed's first-fit,
    linear time;
  - ``interval-graph`` (:mod:`repro.alloc.interval_graph`) —
    conflict-graph colouring that packs many guests onto one host;
  - ``lookahead`` (:mod:`repro.alloc.lookahead`) — branch-and-bound
    optimal for small ancilla counts, the differential-test oracle,
    seeded with greedy so it never does worse;
  - ``verified`` (:mod:`repro.alloc.verified`) — a safety gate that
    batch-verifies only ancillas with a candidate host, then delegates;

* :mod:`repro.alloc.api` — :func:`allocate`, which drives model ->
  strategy -> rewritten circuit and returns the historical
  :class:`BorrowPlan`.

:func:`repro.circuits.borrowing.borrow_dirty_qubits` remains as the
compatibility shim over :func:`allocate`, and the online
multi-programmer (:mod:`repro.multiprog`) picks a strategy per
admission.
"""

from repro.alloc.api import BorrowPlan, SafetyCheck, allocate
from repro.alloc.base import AllocationStrategy
from repro.alloc.model import (
    ConflictModel,
    Placement,
    build_model,
    validate_placement,
)
from repro.alloc.registry import (
    available_strategies,
    make_strategy,
    register_strategy,
    strategy_class,
)

# Importing the strategy modules is what registers them.
from repro.alloc.greedy import GreedyStrategy
from repro.alloc.interval_graph import IntervalGraphStrategy
from repro.alloc.lookahead import LookaheadStrategy
from repro.alloc.verified import VerifiedStrategy

__all__ = [
    "AllocationStrategy",
    "BorrowPlan",
    "ConflictModel",
    "GreedyStrategy",
    "IntervalGraphStrategy",
    "LookaheadStrategy",
    "Placement",
    "SafetyCheck",
    "VerifiedStrategy",
    "allocate",
    "available_strategies",
    "build_model",
    "make_strategy",
    "register_strategy",
    "strategy_class",
    "validate_placement",
]
