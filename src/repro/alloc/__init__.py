"""Borrow-allocation subsystem — the Figure 3.1 pass, made pluggable.

The width-reduction pass is split into layers mirroring
:mod:`repro.verify`:

* :mod:`repro.alloc.model` — the interval-conflict model
  (:func:`build_model`): ancilla periods, per-ancilla lending
  :class:`~repro.circuits.intervals.WindowSet`\\ s (whole-period by
  default; split at restore points with ``segmented=True``, so a host
  busy only inside a restore gap still qualifies), candidate hosts and
  the window-overlap conflict graph, extracted from the circuit once;
* :mod:`repro.alloc.base` / :mod:`repro.alloc.registry` — the
  :class:`AllocationStrategy` interface and the ``@register_strategy``
  decorator registry;
* one module per policy:

  - ``greedy`` (:mod:`repro.alloc.greedy`) — the seed's first-fit,
    linear time;
  - ``interval-graph`` (:mod:`repro.alloc.interval_graph`) —
    conflict-graph colouring that packs many guests onto one host;
  - ``lookahead`` (:mod:`repro.alloc.lookahead`) — branch-and-bound
    optimal for small ancilla counts, the differential-test oracle,
    seeded with greedy so it never does worse;
  - ``verified`` (:mod:`repro.alloc.verified`) — a safety gate that
    batch-verifies only ancillas with a candidate host, then delegates;

* :mod:`repro.alloc.api` — :func:`allocate`, which drives model ->
  strategy -> rewritten circuit and returns the historical
  :class:`BorrowPlan`;
* :mod:`repro.alloc.streaming` — the online face: a
  :class:`StreamingAllocator` fed one gate at a time over an
  :class:`~repro.alloc.model.IncrementalConflictModel` (per-wire
  sorted touch lists and incremental restore scans from
  :mod:`repro.circuits.intervals` — no prefix rescans).  Placements
  stay tentative inside a bounded ``lookahead`` horizon (rolled back
  and re-planned on conflict) and become final behind it; with
  ``lookahead=None`` (∞) the closed stream reproduces the offline
  ``greedy`` plan exactly.  :func:`build_model` itself now feeds the
  same engine and snapshots it once, so the offline path shares the
  incremental structures (see the ``streaming`` section of
  ``BENCH_alloc.json`` for the speedup this buys on long circuits).

:func:`repro.circuits.borrowing.borrow_dirty_qubits` remains as the
compatibility shim over :func:`allocate`, and the online
multi-programmer (:mod:`repro.multiprog`) picks a strategy per
admission.
"""

from repro.alloc.api import BorrowPlan, SafetyCheck, allocate, materialise
from repro.alloc.model import (
    ConflictModel,
    IncrementalConflictModel,
    Placement,
    build_model,
    validate_placement,
)
from repro.alloc.base import AllocationStrategy
from repro.alloc.streaming import (
    AdaptiveLookahead,
    FixedLookahead,
    LookaheadPolicy,
    StreamingAllocator,
    StreamingStats,
    available_lookahead_policies,
    lookahead_policy_class,
    make_lookahead_policy,
    register_lookahead,
    stream_allocate,
)
from repro.alloc.registry import (
    available_strategies,
    make_strategy,
    register_strategy,
    strategy_class,
)

# Importing the strategy modules is what registers them.
from repro.alloc.greedy import GreedyStrategy
from repro.alloc.interval_graph import IntervalGraphStrategy
from repro.alloc.lookahead import LookaheadStrategy
from repro.alloc.verified import VerifiedStrategy

__all__ = [
    "AdaptiveLookahead",
    "AllocationStrategy",
    "BorrowPlan",
    "ConflictModel",
    "FixedLookahead",
    "GreedyStrategy",
    "IncrementalConflictModel",
    "IntervalGraphStrategy",
    "LookaheadPolicy",
    "LookaheadStrategy",
    "Placement",
    "SafetyCheck",
    "StreamingAllocator",
    "StreamingStats",
    "VerifiedStrategy",
    "allocate",
    "available_lookahead_policies",
    "available_strategies",
    "build_model",
    "lookahead_policy_class",
    "make_lookahead_policy",
    "make_strategy",
    "materialise",
    "register_lookahead",
    "register_strategy",
    "stream_allocate",
    "strategy_class",
    "validate_placement",
]
