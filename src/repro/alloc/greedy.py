"""First-fit placement — the seed's Figure 3.1 policy, extracted.

Ancillas are processed in period-start order; each takes the
smallest-index candidate host whose existing guests' lending window
sets do not overlap its own.  Hosts whose windows freed up are reused,
which is what lets ``q3`` serve both ``a1`` and ``a2`` in Figure 3.1
(and, under segmented windows, lets a guest slot into another guest's
restore gap).  Linear-time and good enough when hosts are plentiful;
:mod:`repro.alloc.lookahead` is the optimal reference it is measured
against.
"""

from __future__ import annotations

from typing import Dict, List

from repro.alloc.base import AllocationStrategy
from repro.alloc.model import ConflictModel, Placement, WindowSet
from repro.alloc.registry import register_strategy


@register_strategy("greedy")
class GreedyStrategy(AllocationStrategy):
    """Smallest-index first-fit in period-start order."""

    def plan(self, model: ConflictModel) -> Placement:
        placement = Placement()
        guest_windows: Dict[int, List[WindowSet]] = {}
        for a in model.ancillas:
            host = self._first_fit(model, a, guest_windows)
            if host is None:
                placement.notes.append(
                    f"ancilla {a}: no idle host for period "
                    f"{model.periods[a]}"
                )
                placement.unplaced.append(a)
                continue
            placement.assignment[a] = host
            guest_windows.setdefault(host, []).append(model.windows[a])
        return placement

    @staticmethod
    def _first_fit(model, ancilla, guest_windows):
        window = model.windows[ancilla]
        for host in model.candidates[ancilla]:
            guests = guest_windows.get(host, ())
            if all(not window.overlaps(g) for g in guests):
                return host
        return None
