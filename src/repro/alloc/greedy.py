"""First-fit placement — the seed's Figure 3.1 policy, extracted.

Ancillas are processed in period-start order; each takes the
smallest-index candidate host whose existing guests do not overlap it.
Hosts that freed up are reused, which is what lets ``q3`` serve both
``a1`` and ``a2`` in Figure 3.1.  Linear-time and good enough when
hosts are plentiful; :mod:`repro.alloc.lookahead` is the optimal
reference it is measured against.
"""

from __future__ import annotations

from typing import Dict, List

from repro.alloc.base import AllocationStrategy
from repro.alloc.model import ActivityInterval, ConflictModel, Placement
from repro.alloc.registry import register_strategy


@register_strategy("greedy")
class GreedyStrategy(AllocationStrategy):
    """Smallest-index first-fit in period-start order."""

    def plan(self, model: ConflictModel) -> Placement:
        placement = Placement()
        guest_periods: Dict[int, List[ActivityInterval]] = {}
        for a in model.ancillas:
            period = model.periods[a]
            host = self._first_fit(model, a, guest_periods)
            if host is None:
                placement.notes.append(
                    f"ancilla {a}: no idle host for period {period}"
                )
                placement.unplaced.append(a)
                continue
            placement.assignment[a] = host
            guest_periods.setdefault(host, []).append(period)
        return placement

    @staticmethod
    def _first_fit(model, ancilla, guest_periods):
        period = model.periods[ancilla]
        for host in model.candidates[ancilla]:
            guests = guest_periods.get(host, ())
            if all(not period.overlaps(g) for g in guests):
                return host
        return None
