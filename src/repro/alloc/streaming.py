"""Streaming/JIT borrow allocation — commit placements as gates arrive.

The offline pipeline sees a finished circuit; a live service sees a
*gate stream*.  :class:`StreamingAllocator` makes borrow decisions
online: every appended gate updates an
:class:`~repro.alloc.model.IncrementalConflictModel` (per-wire sorted
touch lists, incremental restore-point scans — no rescans of the
prefix), and ancillas are placed in the same (period-start, wire)
order and with the same smallest-index first-fit as the offline
``greedy`` strategy.

Decisions live in two tiers, separated by a bounded lookahead buffer:

* **Tentative** — an ancilla whose activity may still be inside the
  lookahead horizon keeps a provisional placement.  New information (a
  host conflict, another guest) triggers a *rollback* of only this
  buffered suffix: tentative placements are re-planned, nothing
  emitted before the horizon moves.
* **Final** — once ``head_index - last_touch(a) >= lookahead``, the
  ancilla's decision is committed, in period-start order, by the exact
  offline first-fit over the hosts currently idle in its window.
  Finality is behavioural, not clairvoyant: if the ancilla itself
  reappears later and breaks its committed placement, the placement is
  *revoked* to unplaced — always sound, never silently wrong — and
  counted in :class:`StreamingStats`.  (Nothing else can break a final
  placement: a host gate after the window's last index is outside the
  window by construction.)

Differential contract, held by design and enforced by the tests and
the ``streaming`` bench section: with ``lookahead=None`` (∞), every
commit happens at :meth:`StreamingAllocator.close` with full windows,
so the plan equals the offline ``greedy`` plan gate-for-gate; and at
*every* stream point the current placement passes
:func:`~repro.alloc.model.validate_placement` against the current
prefix's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.alloc.api import materialise
from repro.alloc.model import (
    IncrementalConflictModel,
    Placement,
    validate_placement,
)
from repro.circuits.borrowing import BorrowPlan
from repro.circuits.circuit import Circuit
from repro.circuits.intervals import SegmentCheck, WindowSet
from repro.errors import CircuitError


@dataclass
class StreamingStats:
    """Counters describing one stream's allocation behaviour."""

    gates: int = 0
    commits: int = 0
    #: Tentative placements revised while still inside the horizon.
    rollbacks: int = 0
    #: Final placements withdrawn because the ancilla reappeared after
    #: its horizon and broke the committed hosting.
    revocations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "gates": self.gates,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "revocations": self.revocations,
        }


class StreamingAllocator:
    """Online first-fit borrow allocation over a gate stream.

    Parameters
    ----------
    num_qubits:
        Register width of the stream.
    ancillas:
        Wire indices to eliminate by borrowing.
    lookahead:
        The horizon ``K`` in gates.  An ancilla's placement stays
        tentative while ``head - last_touch < K`` and is committed
        (final) once the stream has moved ``K`` gates past its last
        activity.  ``None`` means ∞: commit only at :meth:`close`,
        which reproduces the offline greedy plan exactly.  ``0`` means
        commit at first sight.
    segmented / segment_check:
        Lending-window refinement, as in
        :func:`~repro.alloc.model.build_model`.
    labels:
        Optional register labels, carried into the final plan.
    """

    def __init__(
        self,
        num_qubits: int,
        ancillas: Sequence[int],
        lookahead: Optional[int] = None,
        segmented: bool = False,
        segment_check: Optional[SegmentCheck] = None,
        labels: Optional[Sequence[str]] = None,
    ):
        if lookahead == float("inf"):
            lookahead = None
        if lookahead is not None and (
            not isinstance(lookahead, int) or lookahead < 0
        ):
            raise CircuitError(
                f"lookahead must be None (∞) or a non-negative gate "
                f"count, got {lookahead!r}"
            )
        self.lookahead = lookahead
        self._ancilla_set = set(ancillas)
        self._engine = IncrementalConflictModel(
            num_qubits,
            ancillas,
            segmented=segmented,
            segment_check=segment_check,
            labels=labels,
        )
        self._committed: Dict[int, Optional[int]] = {}
        self._tentative: Dict[int, Optional[int]] = {}
        self._notes: List[str] = []
        self._closed = False
        self._plan: Optional[BorrowPlan] = None
        self.stats = StreamingStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        horizon = "inf" if self.lookahead is None else self.lookahead
        return f"streaming(lookahead={horizon})"

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def num_gates(self) -> int:
        return self._engine.num_gates

    def committed(self) -> Dict[int, Optional[int]]:
        """Final decisions so far: ancilla -> host (or None, unplaced)."""
        return dict(self._committed)

    def tentative(self) -> Dict[int, Optional[int]]:
        """Buffered (re-plannable) decisions: ancilla -> host or None."""
        return dict(self._tentative)

    def placement(self) -> Placement:
        """The current placement (final + tentative) for the prefix.

        Sound at every stream point: passes
        :func:`~repro.alloc.model.validate_placement` against
        :meth:`model` — the invariant the property tests replay.
        """
        assignment: Dict[int, int] = {}
        unplaced: List[int] = []
        for a in self._engine.active:
            host = self._committed.get(a, self._tentative.get(a))
            if host is None:
                unplaced.append(a)
            else:
                assignment[a] = host
        return Placement(
            assignment=assignment,
            unplaced=sorted(unplaced),
            notes=list(self._notes),
        )

    def model(self):
        """A frozen :class:`~repro.alloc.model.ConflictModel` of the
        prefix seen so far (stable copy; feeding more gates later does
        not mutate it)."""
        return self._engine.snapshot()

    # ------------------------------------------------------------------ #
    # The stream
    # ------------------------------------------------------------------ #

    def feed(self, gate) -> int:
        """Append one gate; returns its index in the stream.

        Order of effects: the incremental model advances; committed
        guests the gate reactivates are compatibility-checked (revoked
        to unplaced if broken); ancillas whose activity has fallen a
        full horizon behind the head are committed, earliest period
        first; and the remaining tentative suffix is re-planned.
        """
        if self._closed:
            raise CircuitError("cannot feed a closed stream")
        index = self._engine.append(gate)
        self.stats.gates += 1

        touched = sorted(set(gate.qubits) & self._ancilla_set)
        changed = bool(touched)
        for a in touched:
            if a not in self._committed:
                continue
            host = self._committed[a]
            if host is not None and not self._still_compatible(a, host):
                self._committed[a] = None
                self._notes.append(
                    f"ancilla {a}: committed host {host} revoked at "
                    f"gate {index} (reactivation conflict)"
                )
                self.stats.revocations += 1

        changed |= self._commit_ready() > 0
        if changed:
            self._replan_tentative()
        return index

    def extend(self, gates) -> int:
        """Feed many gates; returns the last index."""
        index = self._engine.num_gates - 1
        for gate in gates:
            index = self.feed(gate)
        return index

    def close(self) -> BorrowPlan:
        """End the stream: commit every open decision and materialise.

        Commits run in period-start order with the offline first-fit,
        so with ``lookahead=None`` this reproduces the offline greedy
        plan exactly.  The final placement is validated against the
        full-stream model before the rewrite.  Idempotent.
        """
        if self._plan is not None:
            return self._plan
        self._closed = True
        self._commit_ready()
        self._tentative.clear()
        model = self._engine.snapshot()
        assignment = {
            a: h for a, h in self._committed.items() if h is not None
        }
        unplaced = sorted(
            a for a, h in self._committed.items() if h is None
        )
        validate_placement(
            model,
            Placement(
                assignment=dict(assignment),
                unplaced=list(unplaced),
                notes=list(self._notes),
            ),
        )
        self._plan = materialise(
            model, assignment, unplaced, list(self._notes), self.name
        )
        return self._plan

    # ------------------------------------------------------------------ #
    # Decision machinery
    # ------------------------------------------------------------------ #

    def _guest_window(self, ancilla: int) -> WindowSet:
        window = self._engine.window(ancilla)
        assert window is not None  # only called for active ancillas
        return window

    def _still_compatible(self, ancilla: int, host: int) -> bool:
        """May the committed ``ancilla -> host`` placement stand, given
        the ancilla's window just grew?"""
        window = self._guest_window(ancilla)
        if not self._engine.host_idle_in(host, window):
            return False
        return all(
            other == ancilla
            or other_host != host
            or not window.overlaps(self._guest_window(other))
            for other, other_host in self._committed.items()
        )

    def _first_fit_committed(self, ancilla: int) -> Optional[int]:
        """Offline greedy's first-fit against the committed guests."""
        window = self._guest_window(ancilla)
        for host in self._engine.candidate_hosts(ancilla):
            if all(
                other_host != host
                or not window.overlaps(self._guest_window(other))
                for other, other_host in self._committed.items()
            ):
                return host
        return None

    def _commit_ready(self) -> int:
        """Commit every ancilla whose activity is a full horizon behind
        the head (all of them once closed), earliest period first.

        The period-start barrier — stop at the first open ancilla that
        is not yet ready — keeps commits in the offline processing
        order, which is what makes the ∞-lookahead plan equal offline
        greedy and keeps finite-K plans deterministic.
        """
        if not self._closed and self.lookahead is None:
            return 0
        head = self._engine.num_gates - 1
        committed = 0
        for a in self._engine.active:
            if a in self._committed:
                continue
            if not self._closed:
                last = self._engine.last_touch(a)
                if head - last < self.lookahead:
                    break
            host = self._first_fit_committed(a)
            self._committed[a] = host
            self._tentative.pop(a, None)
            self.stats.commits += 1
            if host is None:
                self._notes.append(
                    f"ancilla {a}: no idle host for period "
                    f"{self._engine.period(a)}"
                )
            committed += 1
        return committed

    def _replan_tentative(self) -> None:
        """First-fit re-plan of the whole buffered suffix.

        Open ancillas are re-placed in period-start order around the
        committed guests; a previously buffered host that changes (or
        vanishes) counts as a rollback.  Only the suffix moves —
        committed decisions are never touched here.
        """
        planned: Dict[int, List[WindowSet]] = {}
        for other, host in self._committed.items():
            if host is not None:
                planned.setdefault(host, []).append(
                    self._guest_window(other)
                )
        for a in self._engine.active:
            if a in self._committed:
                continue
            window = self._guest_window(a)
            choice: Optional[int] = None
            for host in self._engine.candidate_hosts(a):
                if all(
                    not window.overlaps(g)
                    for g in planned.get(host, ())
                ):
                    choice = host
                    break
            previous = self._tentative.get(a)
            if (
                a in self._tentative
                and previous is not None
                and previous != choice
            ):
                self.stats.rollbacks += 1
            self._tentative[a] = choice
            if choice is not None:
                planned.setdefault(choice, []).append(window)


def stream_allocate(
    circuit: Circuit,
    ancillas: Sequence[int],
    lookahead: Optional[int] = None,
    segmented: bool = False,
    segment_check: Optional[SegmentCheck] = None,
) -> BorrowPlan:
    """Run a finished circuit through the streaming allocator.

    Convenience for benches and differential tests: feeds every gate of
    ``circuit`` in order and closes the stream.  With
    ``lookahead=None`` the result equals
    ``allocate(circuit, ancillas, strategy="greedy", ...)`` gate for
    gate (only the recorded strategy name differs).
    """
    allocator = StreamingAllocator(
        circuit.num_qubits,
        ancillas,
        lookahead=lookahead,
        segmented=segmented,
        segment_check=segment_check,
        labels=circuit.labels,
    )
    for gate in circuit.gates:
        allocator.feed(gate)
    return allocator.close()
