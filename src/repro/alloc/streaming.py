"""Streaming/JIT borrow allocation — commit placements as gates arrive.

The offline pipeline sees a finished circuit; a live service sees a
*gate stream*.  :class:`StreamingAllocator` makes borrow decisions
online: every appended gate updates an
:class:`~repro.alloc.model.IncrementalConflictModel` (per-wire sorted
touch lists, incremental restore-point scans — no rescans of the
prefix), and ancillas are placed in the same (period-start, wire)
order and with the same smallest-index first-fit as the offline
``greedy`` strategy.

Decisions live in two tiers, separated by a bounded lookahead buffer:

* **Tentative** — an ancilla whose activity may still be inside the
  lookahead horizon keeps a provisional placement.  New information (a
  host conflict, another guest) triggers a *rollback* of only this
  buffered suffix: tentative placements are re-planned, nothing
  emitted before the horizon moves.
* **Final** — once ``head_index - last_touch(a) >= lookahead``, the
  ancilla's decision is committed, in period-start order, by the exact
  offline first-fit over the hosts currently idle in its window.
  Finality is behavioural, not clairvoyant: if the ancilla itself
  reappears later and breaks its committed placement, the placement is
  *revoked* to unplaced — always sound, never silently wrong — and
  counted in :class:`StreamingStats`.  (Nothing else can break a final
  placement: a host gate after the window's last index is outside the
  window by construction.)

Differential contract, held by design and enforced by the tests and
the ``streaming`` bench section: with ``lookahead=None`` (∞), every
commit happens at :meth:`StreamingAllocator.close` with full windows,
so the plan equals the offline ``greedy`` plan gate-for-gate; and at
*every* stream point the current placement passes
:func:`~repro.alloc.model.validate_placement` against the current
prefix's model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Union

from repro.alloc.api import materialise
from repro.alloc.model import (
    IncrementalConflictModel,
    Placement,
    validate_placement,
)
from repro.circuits.borrowing import BorrowPlan
from repro.circuits.circuit import Circuit
from repro.circuits.intervals import SegmentCheck, WindowSet
from repro.errors import CircuitError
from repro.registry import make_registry


@dataclass
class StreamingStats:
    """Counters describing one stream's allocation behaviour.

    All counters are event counts maintained inline — no clocks in the
    hot loop — so a service tier can report ingestion health from
    :meth:`as_dict` without perturbing the stream it is measuring.
    """

    gates: int = 0
    commits: int = 0
    #: Tentative placements revised while still inside the horizon.
    rollbacks: int = 0
    #: Final placements withdrawn because the ancilla reappeared after
    #: its horizon and broke the committed hosting.
    revocations: int = 0
    #: Re-plan passes over the buffered suffix (each pass may roll back
    #: several tentative placements, or none).
    replans: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "gates": self.gates,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "revocations": self.revocations,
            "replans": self.replans,
        }


# ---------------------------------------------------------------------- #
# Lookahead policies
# ---------------------------------------------------------------------- #


class LookaheadPolicy:
    """Decides the commit horizon ``K`` for a :class:`StreamingAllocator`.

    The allocator asks :meth:`horizon` before every commit sweep and
    reports back through :meth:`observe` after every fed gate, so a
    policy can move the horizon in response to how turbulent the stream
    actually is.  Policies are registered under short names via
    :data:`register_lookahead` (the same
    :func:`repro.registry.make_registry` contract as the strategy and
    backend registries).
    """

    def horizon(self) -> Optional[int]:
        """Current horizon: ``None`` for ∞, else a gate count ≥ 0."""
        raise NotImplementedError

    def observe(self, disturbances: int) -> None:
        """One gate was fed; ``disturbances`` is how many rollbacks and
        revocations it caused.  Default: static policies ignore it."""

    def describe(self) -> str:
        """Horizon tag used in plan/strategy names."""
        horizon = self.horizon()
        return "inf" if horizon is None else str(horizon)


_POLICIES = make_registry(
    LookaheadPolicy, "lookahead policy", plural="lookahead policies"
)
register_lookahead = _POLICIES.register
lookahead_policy_class = _POLICIES.get
available_lookahead_policies = _POLICIES.available
make_lookahead_policy = _POLICIES.make


@register_lookahead("fixed")
class FixedLookahead(LookaheadPolicy):
    """Today's static horizon: a constant ``K`` (or ``None`` for ∞)."""

    def __init__(self, horizon: Optional[int] = None):
        if horizon == float("inf"):
            horizon = None
        if horizon is not None and (
            not isinstance(horizon, int) or horizon < 0
        ):
            raise CircuitError(
                f"lookahead must be None (∞) or a non-negative gate "
                f"count, got {horizon!r}"
            )
        self._horizon = horizon

    def horizon(self) -> Optional[int]:
        return self._horizon


@register_lookahead("adaptive")
class AdaptiveLookahead(LookaheadPolicy):
    """Move the horizon with the observed rollback/revocation rate.

    The policy keeps the disturbance counts of the last ``window``
    gates.  When their sum crosses ``threshold`` the horizon grows
    multiplicatively (``K -> max(1, K * growth)``, capped at
    ``ceiling``) — buffering longer is the only cure for premature
    commits.  After a full window with no disturbance at all it shrinks
    (``K -> K // growth``) toward 0, trading buffer latency back for
    responsiveness once the tentative plan has proven stable.  The
    history resets on every move so each further step requires fresh
    evidence.
    """

    def __init__(
        self,
        initial: int = 8,
        ceiling: int = 64,
        window: int = 32,
        threshold: int = 1,
        growth: int = 2,
    ):
        if not isinstance(initial, int) or initial < 0:
            raise CircuitError(
                f"adaptive lookahead needs a non-negative initial "
                f"horizon, got {initial!r}"
            )
        if growth < 2:
            raise CircuitError(
                f"adaptive lookahead growth factor must be >= 2, "
                f"got {growth!r}"
            )
        self._horizon = min(initial, ceiling)
        self._ceiling = ceiling
        self._threshold = max(1, threshold)
        self._growth = growth
        self._history: Deque[int] = deque(maxlen=max(1, window))

    def horizon(self) -> int:
        return self._horizon

    def describe(self) -> str:
        return f"adaptive@{self._horizon}"

    def observe(self, disturbances: int) -> None:
        history = self._history
        history.append(disturbances)
        if sum(history) >= self._threshold:
            self._horizon = min(
                self._ceiling, max(1, self._horizon * self._growth)
            )
            history.clear()
        elif len(history) == history.maxlen and self._horizon > 0:
            self._horizon //= self._growth
            history.clear()


def _as_policy(
    lookahead: Union[None, int, float, str, LookaheadPolicy],
) -> LookaheadPolicy:
    """Coerce the ``lookahead=`` argument into a policy instance.

    Accepts the legacy forms (``None``/∞, a gate count) as a ``fixed``
    policy, a registered policy name, or a ready instance.
    """
    if isinstance(lookahead, LookaheadPolicy):
        return lookahead
    if isinstance(lookahead, str):
        return make_lookahead_policy(lookahead)
    return FixedLookahead(lookahead)


class StreamingAllocator:
    """Online first-fit borrow allocation over a gate stream.

    Parameters
    ----------
    num_qubits:
        Register width of the stream.
    ancillas:
        Wire indices to eliminate by borrowing.
    lookahead:
        The horizon ``K`` in gates.  An ancilla's placement stays
        tentative while ``head - last_touch < K`` and is committed
        (final) once the stream has moved ``K`` gates past its last
        activity.  ``None`` means ∞: commit only at :meth:`close`,
        which reproduces the offline greedy plan exactly.  ``0`` means
        commit at first sight.  Also accepts a registered
        :class:`LookaheadPolicy` name (``"fixed"``, ``"adaptive"``) or
        a policy instance, in which case the horizon may move while
        the stream runs.
    segmented / segment_check:
        Lending-window refinement, as in
        :func:`~repro.alloc.model.build_model`.
    labels:
        Optional register labels, carried into the final plan.
    """

    def __init__(
        self,
        num_qubits: int,
        ancillas: Sequence[int],
        lookahead: Union[None, int, float, str, LookaheadPolicy] = None,
        segmented: bool = False,
        segment_check: Optional[SegmentCheck] = None,
        labels: Optional[Sequence[str]] = None,
    ):
        self.policy = _as_policy(lookahead)
        self._ancilla_set = set(ancillas)
        self._engine = IncrementalConflictModel(
            num_qubits,
            ancillas,
            segmented=segmented,
            segment_check=segment_check,
            labels=labels,
        )
        self._committed: Dict[int, Optional[int]] = {}
        self._tentative: Dict[int, Optional[int]] = {}
        self._notes: List[str] = []
        self._closed = False
        self._plan: Optional[BorrowPlan] = None
        self.stats = StreamingStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def lookahead(self) -> Optional[int]:
        """The policy's current horizon (may move between gates)."""
        return self.policy.horizon()

    @property
    def name(self) -> str:
        return f"streaming(lookahead={self.policy.describe()})"

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def num_gates(self) -> int:
        return self._engine.num_gates

    @property
    def active(self):
        """Ancillas the stream has touched so far (sorted)."""
        return self._engine.active

    def window(self, ancilla: int) -> WindowSet:
        """Current lending window of an active ancilla.

        Grows monotonically as gates arrive; a prefix admission
        (:meth:`repro.multiprog.MultiProgrammer.admit_stream`) rebuilds
        its lease windows from this after every feed.
        """
        window = self._engine.window(ancilla)
        if window is None:
            raise CircuitError(f"ancilla {ancilla} is not active yet")
        return window

    def committed(self) -> Dict[int, Optional[int]]:
        """Final decisions so far: ancilla -> host (or None, unplaced)."""
        return dict(self._committed)

    def tentative(self) -> Dict[int, Optional[int]]:
        """Buffered (re-plannable) decisions: ancilla -> host or None."""
        return dict(self._tentative)

    def placement(self) -> Placement:
        """The current placement (final + tentative) for the prefix.

        Sound at every stream point: passes
        :func:`~repro.alloc.model.validate_placement` against
        :meth:`model` — the invariant the property tests replay.
        """
        assignment: Dict[int, int] = {}
        unplaced: List[int] = []
        for a in self._engine.active:
            host = self._committed.get(a, self._tentative.get(a))
            if host is None:
                unplaced.append(a)
            else:
                assignment[a] = host
        return Placement(
            assignment=assignment,
            unplaced=sorted(unplaced),
            notes=list(self._notes),
        )

    def model(self):
        """A frozen :class:`~repro.alloc.model.ConflictModel` of the
        prefix seen so far (stable copy; feeding more gates later does
        not mutate it)."""
        return self._engine.snapshot()

    # ------------------------------------------------------------------ #
    # The stream
    # ------------------------------------------------------------------ #

    def feed(self, gate) -> int:
        """Append one gate; returns its index in the stream.

        Order of effects: the incremental model advances; committed
        guests the gate reactivates are compatibility-checked (revoked
        to unplaced if broken); ancillas whose activity has fallen a
        full horizon behind the head are committed, earliest period
        first; and the remaining tentative suffix is re-planned.
        """
        if self._closed:
            raise CircuitError("cannot feed a closed stream")
        index = self._engine.append(gate)
        self.stats.gates += 1
        disturbed = self.stats.rollbacks + self.stats.revocations

        touched = sorted(set(gate.qubits) & self._ancilla_set)
        changed = bool(touched)
        for a in touched:
            if a not in self._committed:
                continue
            host = self._committed[a]
            if host is not None and not self._still_compatible(a, host):
                self._committed[a] = None
                self._notes.append(
                    f"ancilla {a}: committed host {host} revoked at "
                    f"gate {index} (reactivation conflict)"
                )
                self.stats.revocations += 1

        changed |= self._commit_ready() > 0
        if changed:
            self._replan_tentative()
        self.policy.observe(
            self.stats.rollbacks + self.stats.revocations - disturbed
        )
        return index

    def extend(self, gates) -> int:
        """Feed many gates; returns the last index."""
        index = self._engine.num_gates - 1
        for gate in gates:
            index = self.feed(gate)
        return index

    def close(self) -> BorrowPlan:
        """End the stream: commit every open decision and materialise.

        Commits run in period-start order with the offline first-fit,
        so with ``lookahead=None`` this reproduces the offline greedy
        plan exactly.  The final placement is validated against the
        full-stream model before the rewrite.  Idempotent.
        """
        if self._plan is not None:
            return self._plan
        self._closed = True
        self._commit_ready()
        self._tentative.clear()
        model = self._engine.snapshot()
        assignment = {
            a: h for a, h in self._committed.items() if h is not None
        }
        unplaced = sorted(
            a for a, h in self._committed.items() if h is None
        )
        validate_placement(
            model,
            Placement(
                assignment=dict(assignment),
                unplaced=list(unplaced),
                notes=list(self._notes),
            ),
        )
        self._plan = materialise(
            model, assignment, unplaced, list(self._notes), self.name
        )
        return self._plan

    # ------------------------------------------------------------------ #
    # Decision machinery
    # ------------------------------------------------------------------ #

    def _guest_window(self, ancilla: int) -> WindowSet:
        window = self._engine.window(ancilla)
        assert window is not None  # only called for active ancillas
        return window

    def _still_compatible(self, ancilla: int, host: int) -> bool:
        """May the committed ``ancilla -> host`` placement stand, given
        the ancilla's window just grew?"""
        window = self._guest_window(ancilla)
        if not self._engine.host_idle_in(host, window):
            return False
        return all(
            other == ancilla
            or other_host != host
            or not window.overlaps(self._guest_window(other))
            for other, other_host in self._committed.items()
        )

    def _first_fit_committed(self, ancilla: int) -> Optional[int]:
        """Offline greedy's first-fit against the committed guests."""
        window = self._guest_window(ancilla)
        for host in self._engine.candidate_hosts(ancilla):
            if all(
                other_host != host
                or not window.overlaps(self._guest_window(other))
                for other, other_host in self._committed.items()
            ):
                return host
        return None

    def _commit_ready(self) -> int:
        """Commit every ancilla whose activity is a full horizon behind
        the head (all of them once closed), earliest period first.

        The period-start barrier — stop at the first open ancilla that
        is not yet ready — keeps commits in the offline processing
        order, which is what makes the ∞-lookahead plan equal offline
        greedy and keeps finite-K plans deterministic.
        """
        if not self._closed and self.lookahead is None:
            return 0
        head = self._engine.num_gates - 1
        committed = 0
        for a in self._engine.active:
            if a in self._committed:
                continue
            if not self._closed:
                last = self._engine.last_touch(a)
                if head - last < self.lookahead:
                    break
            host = self._first_fit_committed(a)
            self._committed[a] = host
            self._tentative.pop(a, None)
            self.stats.commits += 1
            if host is None:
                self._notes.append(
                    f"ancilla {a}: no idle host for period "
                    f"{self._engine.period(a)}"
                )
            committed += 1
        return committed

    def _replan_tentative(self) -> None:
        """First-fit re-plan of the whole buffered suffix.

        Open ancillas are re-placed in period-start order around the
        committed guests; a previously buffered host that changes (or
        vanishes) counts as a rollback.  Only the suffix moves —
        committed decisions are never touched here.
        """
        self.stats.replans += 1
        planned: Dict[int, List[WindowSet]] = {}
        for other, host in self._committed.items():
            if host is not None:
                planned.setdefault(host, []).append(
                    self._guest_window(other)
                )
        for a in self._engine.active:
            if a in self._committed:
                continue
            window = self._guest_window(a)
            choice: Optional[int] = None
            for host in self._engine.candidate_hosts(a):
                if all(
                    not window.overlaps(g)
                    for g in planned.get(host, ())
                ):
                    choice = host
                    break
            previous = self._tentative.get(a)
            if (
                a in self._tentative
                and previous is not None
                and previous != choice
            ):
                self.stats.rollbacks += 1
            self._tentative[a] = choice
            if choice is not None:
                planned.setdefault(choice, []).append(window)


def stream_allocate(
    circuit: Circuit,
    ancillas: Sequence[int],
    lookahead: Union[None, int, float, str, LookaheadPolicy] = None,
    segmented: bool = False,
    segment_check: Optional[SegmentCheck] = None,
) -> BorrowPlan:
    """Run a finished circuit through the streaming allocator.

    Convenience for benches and differential tests: feeds every gate of
    ``circuit`` in order and closes the stream.  With
    ``lookahead=None`` the result equals
    ``allocate(circuit, ancillas, strategy="greedy", ...)`` gate for
    gate (only the recorded strategy name differs).
    """
    allocator = StreamingAllocator(
        circuit.num_qubits,
        ancillas,
        lookahead=lookahead,
        segmented=segmented,
        segment_check=segment_check,
        labels=circuit.labels,
    )
    for gate in circuit.gates:
        allocator.feed(gate)
    return allocator.close()
