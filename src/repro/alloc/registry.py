"""Decorator-based strategy registry, mirroring the verify backends.

Strategies self-register at import time::

    @register_strategy("greedy")
    class GreedyStrategy(AllocationStrategy):
        ...

and are instantiated by name::

    strategy = make_strategy("greedy")

:func:`available_strategies` lists every registered name; an unknown
name raises :class:`~repro.errors.CircuitError` naming the
alternatives, so typos fail with an actionable message.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type

from repro.alloc.base import AllocationStrategy
from repro.errors import CircuitError

_REGISTRY: Dict[str, Type[AllocationStrategy]] = {}


def register_strategy(
    name: str,
) -> Callable[[Type[AllocationStrategy]], Type[AllocationStrategy]]:
    """Class decorator: publish an :class:`AllocationStrategy` under
    ``name``."""

    def decorate(cls: Type[AllocationStrategy]) -> Type[AllocationStrategy]:
        if not (isinstance(cls, type) and issubclass(cls, AllocationStrategy)):
            raise CircuitError(
                f"strategy {name!r} must subclass AllocationStrategy, "
                f"got {cls!r}"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise CircuitError(
                f"strategy name {name!r} already registered by "
                f"{existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def available_strategies() -> Tuple[str, ...]:
    """All registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def strategy_class(name: str) -> Type[AllocationStrategy]:
    """Look up a strategy class by name (:class:`CircuitError` if absent)."""
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(available_strategies()) or "(none)"
        raise CircuitError(
            f"unknown allocation strategy {name!r}; registered: {known}"
        )
    return cls


def make_strategy(name: str, **options) -> AllocationStrategy:
    """Instantiate a registered strategy with ``options``."""
    return strategy_class(name)(**options)
