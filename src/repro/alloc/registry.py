"""The strategy registry — one line over :mod:`repro.registry`.

Strategies self-register at import time::

    @register_strategy("greedy")
    class GreedyStrategy(AllocationStrategy):
        ...

and are instantiated by name::

    strategy = make_strategy("greedy")

:func:`available_strategies` lists every registered name; an unknown
name raises :class:`~repro.errors.CircuitError` naming the
alternatives, so typos fail with an actionable message.  The decorator
machinery itself is the shared :class:`repro.registry.Registry` — the
verify backends and queue policies ride the same implementation.
"""

from __future__ import annotations

from repro.alloc.base import AllocationStrategy
from repro.registry import make_registry

_REGISTRY = make_registry(
    AllocationStrategy, "allocation strategy", plural="strategies"
)

#: Class decorator: publish an :class:`AllocationStrategy` under a name.
register_strategy = _REGISTRY.register
#: All registered strategy names, sorted.
available_strategies = _REGISTRY.available
#: Look up a strategy class by name (:class:`CircuitError` if absent).
strategy_class = _REGISTRY.get
#: Instantiate a registered strategy with keyword options.
make_strategy = _REGISTRY.make

__all__ = [
    "available_strategies",
    "make_strategy",
    "register_strategy",
    "strategy_class",
]
