"""Branch-and-bound placement — the optimal reference oracle.

Exhaustively searches host choices per ancilla (in period-start order),
maximising the number placed, i.e. minimising final width.  The search
is seeded with the greedy incumbent, so even when the node budget runs
out the answer is never worse than first-fit — which makes the strategy
safe to run on every workload and lets the differential tests use it as
a width lower bound wherever it reports ``optimal``.

Tie-breaking is deterministic: hosts are tried in ascending index and
the first placement achieving the best count wins, so repeated runs
produce identical plans.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.alloc.base import AllocationStrategy
from repro.alloc.greedy import GreedyStrategy
from repro.alloc.model import ConflictModel, Placement
from repro.alloc.registry import register_strategy
from repro.errors import CircuitError


@register_strategy("lookahead")
class LookaheadStrategy(AllocationStrategy):
    """Exact search over placements, bounded by ``max_nodes``.

    Parameters
    ----------
    max_ancillas:
        Hard cap on problem size; beyond it the search refuses to start
        (raise) rather than silently degrade — ``None`` disables.
    max_nodes:
        Search-tree node budget.  On exhaustion the best placement so
        far (at worst the greedy seed) is returned with
        ``optimal = False`` noted.
    """

    def __init__(
        self,
        max_ancillas: Optional[int] = 16,
        max_nodes: int = 200_000,
    ):
        if max_nodes < 1:
            raise CircuitError("max_nodes must be at least 1")
        self.max_ancillas = max_ancillas
        self.max_nodes = max_nodes
        #: Whether the last :meth:`plan` call proved optimality.
        self.last_optimal: bool = False

    def plan(self, model: ConflictModel) -> Placement:
        if (
            self.max_ancillas is not None
            and len(model.ancillas) > self.max_ancillas
        ):
            raise CircuitError(
                f"lookahead capped at {self.max_ancillas} ancillas, "
                f"got {len(model.ancillas)}; raise max_ancillas or use "
                f"a heuristic strategy"
            )
        seed = GreedyStrategy().plan(model)
        best: Dict[int, int] = dict(seed.assignment)
        order = model.ancillas
        nodes = 0
        exhausted = False

        def search(index: int, taken: Dict[int, int]) -> None:
            nonlocal best, nodes, exhausted
            if exhausted:
                return
            nodes += 1
            if nodes > self.max_nodes:
                exhausted = True
                return
            if index == len(order):
                if len(taken) > len(best):
                    best = dict(taken)
                return
            # Bound: even placing every remaining ancilla cannot beat
            # the incumbent.
            if len(taken) + (len(order) - index) <= len(best):
                return
            a = order[index]
            for host in model.candidates[a]:
                if model.compatible(a, host, taken):
                    taken[a] = host
                    search(index + 1, taken)
                    del taken[a]
            search(index + 1, taken)  # leave a unplaced

        search(0, {})
        self.last_optimal = not exhausted

        placement = Placement(assignment=dict(best))
        placement.unplaced = [a for a in order if a not in best]
        for a in placement.unplaced:
            placement.notes.append(
                f"ancilla {a}: optimal search leaves it unplaced"
            )
        if exhausted:
            placement.notes.append(
                f"node budget {self.max_nodes} exhausted; best-so-far "
                f"placement (never worse than greedy)"
            )
        return placement
