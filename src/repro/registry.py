"""One decorator registry for every pluggable subsystem.

Verification backends, allocation strategies and queue policies all
follow the same pattern: a base class, a class decorator that publishes
implementations under a name, a sorted listing, and name-based lookup
that fails with an actionable message naming the alternatives.  Each
subsystem used to carry its own ~40-line copy of that machinery;
:func:`make_registry` is the single implementation they now share.

A subsystem instantiates one :class:`Registry` at module scope and
re-exports bound methods under its historical names::

    _REGISTRY = make_registry(CheckerBackend, "backend", error=SolverError)
    register_backend = _REGISTRY.register
    available_backends = _REGISTRY.available
    backend_class = _REGISTRY.get

so every pre-unification caller keeps working unchanged, and a new
subsystem gets the whole contract — subclass enforcement, duplicate
rejection, ``cls.name`` stamping, actionable unknown-name errors — in
one line.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type

from repro.errors import CircuitError


class Registry:
    """A named family of registered subclasses of one base class.

    Parameters
    ----------
    base_class:
        Every registered class must subclass this (enforced at
        registration, so a typo'd decorator fails at import time).
    noun:
        Human noun used in error messages (``"backend"``,
        ``"allocation strategy"``, ``"queue policy"``).
    error:
        Exception class raised on misuse; defaults to
        :class:`~repro.errors.CircuitError`.
    plural:
        Plural of ``noun`` for the unknown-name listing; defaults to
        ``noun + "s"``.
    """

    def __init__(
        self,
        base_class: type,
        noun: str,
        error: Type[Exception] = CircuitError,
        plural: Optional[str] = None,
    ):
        self.base_class = base_class
        self.noun = noun
        self.plural = plural if plural is not None else f"{noun}s"
        self.error = error
        self._classes: Dict[str, type] = {}

    def register(self, name: str) -> Callable[[type], type]:
        """Class decorator: publish a ``base_class`` subclass under
        ``name`` (and stamp it with ``cls.name = name``)."""

        def decorate(cls: type) -> type:
            if not (isinstance(cls, type) and issubclass(cls, self.base_class)):
                raise self.error(
                    f"{self.noun} {name!r} must subclass "
                    f"{self.base_class.__name__}, got {cls!r}"
                )
            existing = self._classes.get(name)
            if existing is not None and existing is not cls:
                raise self.error(
                    f"{self.noun} name {name!r} already registered by "
                    f"{existing.__name__}"
                )
            cls.name = name
            self._classes[name] = cls
            return cls

        return decorate

    def available(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._classes))

    def get(self, name: str) -> type:
        """Look up a registered class by name (``error`` if absent)."""
        cls = self._classes.get(name)
        if cls is None:
            known = ", ".join(self.available()) or "(none)"
            raise self.error(
                f"unknown {self.noun} {name!r}; registered "
                f"{self.plural}: {known}"
            )
        return cls

    def make(self, name: str, *args, **options):
        """Instantiate a registered class with ``args``/``options``."""
        return self.get(name)(*args, **options)

    # Mapping conveniences: a registry *is* a name -> class mapping,
    # and tests lean on that to install/retire temporary entries.

    def pop(self, name: str) -> type:
        """Retire a registration and return its class (``KeyError`` if
        absent) — the teardown half of a temporary ``register``."""
        return self._classes.pop(name)

    def __getitem__(self, name: str) -> type:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self.available())


def make_registry(
    base_class: type,
    noun: str,
    error: Type[Exception] = CircuitError,
    plural: Optional[str] = None,
) -> Registry:
    """Create the decorator registry for one pluggable subsystem."""
    return Registry(base_class, noun, error=error, plural=plural)


__all__ = ["Registry", "make_registry"]
