"""Seeded workload generation and invariant checking — the randomized
test harness the queueing machinery ships with.

Lifecycle misuse (use-after-release, double-lend) dominates real
defects in borrowing/ownership systems, and example-driven unit tests
rarely reach the interleavings that trigger them.  This subsystem makes
randomized, *reproducible* testing a first-class citizen:

* :mod:`repro.testing.generators` — deterministic generators driven by
  an explicit seed: :func:`random_reversible_circuit` (classical
  circuits whose ancillas are constructively safe — or deliberately
  spoiled), :func:`random_job`, :func:`random_arrival_trace` (seeded
  submit/release event sequences with timeouts), and
  :func:`random_lending_trace` (a lender/guest mix shaped for the
  time-sliced lending regime, built from :func:`lender_job`,
  :func:`windowed_guest_job` and :func:`segmented_guest_job` — the
  last with multiple restore segments straddling long idle gaps, the
  shape segmented lending multiplexes); :func:`random_fleet_trace`
  adds recurring circuit families (resubmitted circuits under fresh
  names) — the signal the fleet router's ``family-affinity`` placement
  routes on;
* :mod:`repro.testing.invariants` —
  :class:`OccupancyInvariantChecker`, which re-derives the scheduler's
  global safety contract from first principles (no double-owned wire,
  every holder alive, released wires returned, every placement sound)
  and raises :class:`~repro.errors.InvariantViolation` with a machine
  snapshot; :class:`FleetInvariantChecker` runs it per shard of a
  :class:`~repro.multiprog.FleetRouter` and then cross-checks the
  router's own maps against shard reality;
* :mod:`repro.testing.harness` — :func:`replay_trace`, which drives a
  :class:`~repro.multiprog.MultiProgrammer` (or a
  :class:`~repro.multiprog.FleetRouter` — the surfaces match) through
  a trace, checking invariants after every event, and returns a
  :class:`TraceLog` with per-event backfill provenance (also the
  engine behind the ``queueing`` and ``fleet`` sections of
  ``BENCH_alloc.json``).

Same seed, same trace, same verdicts — a failing run is reproducible
from one integer.
"""

from repro.testing.generators import (
    TraceEvent,
    lender_job,
    random_arrival_trace,
    random_fleet_trace,
    random_job,
    random_lending_trace,
    random_reversible_circuit,
    segmented_guest_job,
    windowed_guest_job,
)
from repro.testing.harness import TraceLog, replay_trace
from repro.testing.invariants import (
    FleetInvariantChecker,
    OccupancyInvariantChecker,
)

__all__ = [
    "FleetInvariantChecker",
    "OccupancyInvariantChecker",
    "TraceEvent",
    "TraceLog",
    "lender_job",
    "random_arrival_trace",
    "random_fleet_trace",
    "random_job",
    "random_lending_trace",
    "random_reversible_circuit",
    "replay_trace",
    "segmented_guest_job",
    "windowed_guest_job",
]
