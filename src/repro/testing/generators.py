"""Seeded workload and circuit generators.

Everything here is driven by :class:`random.Random` with an explicit
seed, so the same seed produces byte-identical circuits, jobs and
traces on every run and every supported Python version (the Mersenne
Twister and the ``sample``/``shuffle``/``randrange`` algorithms are
stable across CPython 3.10–3.13) — a failing property test is
reproducible from its seed alone.

The circuit generator has a *constructive safety guarantee*: each
requested ancilla ``a`` is touched only inside its own
``C_a ; C_a^{-1}`` segment (classical gates are self-inverse, so the
inverse is just the reversed gate list).  The segment composes to the
identity, so the whole circuit restores ``a`` for **every** input and
never leaks it into other wires — the ancilla is dirty-borrowable by
Definition 3.1 and clean by the (6.1) contract, and a verifier must
*prove* that (the identity is invisible syntactically).  Passing an
ancilla in ``spoiled`` appends a final ``X`` on it, producing a
known-unsafe ancilla with a machine-checkable counterexample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot, toffoli, x
from repro.errors import CircuitError
from repro.multiprog import BorrowRequest, QuantumJob

SeedLike = Union[int, random.Random]


def _rng(seed: SeedLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _random_classical_gate(rng: random.Random, wires: Sequence[int]) -> Gate:
    """One X / CX / CCX over ``wires`` (arity capped by the pool size)."""
    arity = rng.randint(1, min(3, len(wires)))
    picked = rng.sample(list(wires), arity)
    if arity == 1:
        return x(picked[0])
    if arity == 2:
        return cnot(picked[0], picked[1])
    return toffoli(picked[0], picked[1], picked[2])


def random_reversible_circuit(
    seed: SeedLike,
    num_data: int = 4,
    num_ancillas: int = 1,
    segment_gates: int = 3,
    middle_gates: int = 4,
    spoiled: Sequence[int] = (),
) -> Tuple[Circuit, Tuple[int, ...]]:
    """A random classical circuit whose ancillas are known-safe.

    Wires ``0 .. num_data-1`` are data (labelled ``d0..``); the last
    ``num_ancillas`` wires (labelled ``a0..``) are the returned ancilla
    targets.  Each ancilla gets its own compute/uncompute segment over
    a random data subset; a pure-data "middle" segment provides
    unrelated activity, and segment order is shuffled so ancilla
    activity periods land at varied gate indices (some with candidate
    hosts, some without).  Ancillas listed in ``spoiled`` get a
    trailing ``X`` and are therefore known-**unsafe**.
    """
    if num_data < 1 or num_ancillas < 0:
        raise CircuitError("need at least one data wire")
    rng = _rng(seed)
    total = num_data + num_ancillas
    ancillas = tuple(range(num_data, total))
    for wire in spoiled:
        if wire not in ancillas:
            raise CircuitError(f"spoiled wire {wire} is not an ancilla")
    data = list(range(num_data))
    labels = [f"d{i}" for i in range(num_data)] + [
        f"a{i}" for i in range(num_ancillas)
    ]

    segments: List[List[Gate]] = []
    for ancilla in ancillas:
        pool = rng.sample(data, rng.randint(1, min(3, num_data)))
        wires = pool + [ancilla]
        # The first gate always touches the ancilla so it has a real
        # activity period (an untouched ancilla is trivially removed).
        compute: List[Gate] = [cnot(rng.choice(pool), ancilla)]
        for _ in range(segment_gates):
            compute.append(_random_classical_gate(rng, wires))
        segments.append(compute + list(reversed(compute)))
    middle = [
        _random_classical_gate(rng, data) for _ in range(middle_gates)
    ]
    if middle:
        segments.append(middle)
    rng.shuffle(segments)

    circuit = Circuit(total, labels=labels)
    for segment in segments:
        circuit.extend(segment)
    for wire in sorted(spoiled):
        circuit.append(x(wire))
    return circuit, ancillas


def random_job(
    seed: SeedLike,
    name: Optional[str] = None,
    max_data: int = 4,
    max_ancillas: int = 2,
    spoil_probability: float = 0.2,
) -> QuantumJob:
    """A random :class:`QuantumJob` requesting all its ancillas.

    Sizes are drawn from the rng (2..``max_data`` data wires,
    1..``max_ancillas`` ancillas); each ancilla is independently
    spoiled — left flipped, hence unsafe to lend — with
    ``spoil_probability``.
    """
    rng = _rng(seed)
    if name is None:
        if isinstance(seed, random.Random):
            raise CircuitError("random_job needs a name when given an rng")
        name = f"job-{seed}"
    num_data = rng.randint(2, max_data)
    num_ancillas = rng.randint(1, max_ancillas)
    spoiled = tuple(
        wire
        for wire in range(num_data, num_data + num_ancillas)
        if rng.random() < spoil_probability
    )
    circuit, ancillas = random_reversible_circuit(
        rng,
        num_data=num_data,
        num_ancillas=num_ancillas,
        segment_gates=rng.randint(1, 3),
        middle_gates=rng.randint(1, 4),
        spoiled=spoiled,
    )
    return QuantumJob(
        name, circuit, [BorrowRequest(wire) for wire in ancillas]
    )


@dataclass(frozen=True)
class TraceEvent:
    """One step of a seeded arrival trace.

    ``kind`` is ``"submit"`` (then ``job``/``timeout`` are set) or
    ``"release"`` (then ``pick`` selects among the residents *at replay
    time*: index ``pick % len(residents)``; the event is a no-op when
    the machine is empty).  Deferring the resident choice is what lets
    a single trace replay faithfully under different queue policies —
    who is resident at each step depends on the policy.
    """

    kind: str
    job: Optional[QuantumJob] = None
    timeout: Optional[int] = None
    pick: int = 0
    #: Submission priority (the ``priority`` queue policy's sort key;
    #: other policies ignore it).
    priority: int = 0


def lender_job(
    name: str, width: int = 5, touched: int = 3
) -> QuantumJob:
    """A job whose last ``width - touched`` wires are idle — they
    become the scheduler's lendable offers.  No ancilla requests."""
    if not 2 <= touched <= width:
        raise CircuitError("need 2 <= touched <= width")
    circuit = Circuit(width)
    circuit.extend([cnot(i, i + 1) for i in range(touched - 1)])
    return QuantumJob(name, circuit, [])


def windowed_guest_job(
    name: str,
    prelude: int = 0,
    span: int = 1,
    num_ancillas: int = 1,
) -> QuantumJob:
    """A job whose ancillas can only be hosted by a cross-program lease.

    Wire 0 is padded with ``prelude`` ``X`` gates, then each requested
    ancilla gets its own ``(CX;CX) * span`` segment — restored for
    every input (verified safe), with lending window exactly
    ``[prelude + 2*span*k, prelude + 2*span*(k+1) - 1]`` for the k-th
    ancilla.  Wire 0 participates in every segment, so no ancilla ever
    has an internal candidate host: placement happens through the
    multi-programmer's window-disjoint leases or not at all.
    """
    if prelude < 0 or span < 1 or num_ancillas < 1:
        raise CircuitError("need prelude >= 0, span >= 1, ancillas >= 1")
    circuit = Circuit(1 + num_ancillas)
    circuit.extend([x(0)] * prelude)
    for k in range(num_ancillas):
        circuit.extend([cnot(0, 1 + k), cnot(0, 1 + k)] * span)
    return QuantumJob(
        name, circuit, [BorrowRequest(1 + k) for k in range(num_ancillas)]
    )


def segmented_guest_job(
    name: str,
    prelude: int = 0,
    span: int = 1,
    gap: int = 6,
    blocks: int = 2,
) -> QuantumJob:
    """A job whose single ancilla has ``blocks`` disjoint restore
    segments — the workload shape segmented lending exists for.

    Wire 0 is padded with ``prelude`` ``X`` gates, then the requested
    ancilla gets ``blocks`` ``(CX;CX) * span`` identity blocks
    separated by ``gap`` ``X`` gates on wire 0.  Each block restores
    the ancilla for every input, so every inter-block gap is a valid
    release point: the restore-point analysis yields the ``blocks``-
    segment :class:`~repro.circuits.intervals.WindowSet` with segment
    ``k`` at ``[prelude + k*(2*span + gap), … + 2*span - 1]``.  Wire 0
    participates in every gate, so the ancilla never has an internal
    candidate host — under windowed lending a lease must cover the
    whole (mostly idle) hull, under segmented lending only the blocks.
    """
    if prelude < 0 or span < 1 or gap < 1 or blocks < 1:
        raise CircuitError(
            "need prelude >= 0, span >= 1, gap >= 1, blocks >= 1"
        )
    circuit = Circuit(2)
    circuit.extend([x(0)] * prelude)
    for block in range(blocks):
        if block:
            circuit.extend([x(0)] * gap)
        circuit.extend([cnot(0, 1), cnot(0, 1)] * span)
    return QuantumJob(name, circuit, [BorrowRequest(1)])


def random_lending_trace(
    seed: SeedLike,
    num_jobs: int = 50,
    lender_every: int = 8,
    lender_width: int = 5,
    lender_touched: int = 3,
    lender_guard: int = 3,
    max_prelude: int = 10,
    max_span: int = 3,
    max_ancillas: int = 2,
    min_timeout: int = 2,
    max_timeout: int = 3,
    release_probability: float = 0.2,
    segmented_fraction: float = 0.7,
    min_gap: int = 6,
    max_gap: int = 14,
    timeouts: bool = True,
    drain: bool = True,
) -> List[TraceEvent]:
    """A seeded trace shaped for the time-sliced lending regime.

    Every ``lender_every``-th submission is a :func:`lender_job` (its
    idle wires are the only offers in the system); the rest are guest
    arrivals with randomized window positions/spans and tight
    logical-clock timeouts — a ``segmented_fraction`` of them
    :func:`segmented_guest_job`\\ s whose two identity blocks straddle a
    long restore gap, the rest contiguous
    :func:`windowed_guest_job`\\ s.  Release bursts are suppressed for
    ``lender_guard`` submissions after each lender so the offers
    survive long enough to be contended.  The result is a workload
    where whole-residency lending runs out of lease-free wires,
    windowed lending keeps multiplexing them, and segmented lending
    additionally threads guests through the segmented guests' idle
    gaps — the regime the ``lending`` benchmark section and its CI
    gate measure.  ``timeouts=False`` emits the same arrival shape
    with no deadlines (the differential tests' drained comparisons).
    """
    rng = _rng(seed)
    events: List[TraceEvent] = []
    cooldown = 0
    for index in range(num_jobs):
        if index % lender_every == 0:
            events.append(
                TraceEvent(
                    "submit",
                    job=lender_job(
                        f"L{index}", lender_width, lender_touched
                    ),
                )
            )
            cooldown = lender_guard
        else:
            if rng.random() < segmented_fraction:
                job = segmented_guest_job(
                    f"g{index}",
                    prelude=rng.randint(0, max_prelude),
                    span=rng.randint(1, max_span),
                    gap=rng.randint(min_gap, max_gap),
                )
            else:
                job = windowed_guest_job(
                    f"g{index}",
                    prelude=rng.randint(0, max_prelude),
                    span=rng.randint(1, max_span),
                    num_ancillas=rng.randint(1, max_ancillas),
                )
            timeout = rng.randint(min_timeout, max_timeout)
            events.append(
                TraceEvent(
                    "submit",
                    job=job,
                    timeout=timeout if timeouts else None,
                )
            )
        if cooldown > 0:
            cooldown -= 1
            continue
        while rng.random() < release_probability:
            events.append(
                TraceEvent("release", pick=rng.randrange(1 << 16))
            )
    if drain:
        for _ in range(2 * num_jobs):
            events.append(
                TraceEvent("release", pick=rng.randrange(1 << 16))
            )
    return events


def random_arrival_trace(
    seed: SeedLike,
    num_jobs: int = 10,
    release_probability: float = 0.45,
    timeout_probability: float = 0.3,
    max_timeout: int = 6,
    spoil_probability: float = 0.2,
    max_data: int = 4,
    max_ancillas: int = 2,
    drain: bool = True,
) -> List[TraceEvent]:
    """A seeded submit/release event sequence over random jobs.

    Emits ``num_jobs`` submissions (geometric bursts of releases in
    between), each with a ``timeout_probability`` chance of carrying a
    logical-clock timeout.  ``max_data``/``max_ancillas`` bound the job
    widths (wider jobs against a small machine produce the head-of-line
    blocking that separates the queue policies).  With ``drain`` (the
    default) the trace ends with ``2 * num_jobs`` release events,
    enough to empty the machine and flush the queue — admitted counts
    are then comparable across queue policies.
    """
    rng = _rng(seed)
    events: List[TraceEvent] = []
    for index in range(num_jobs):
        job = random_job(
            rng,
            name=f"j{index}",
            max_data=max_data,
            max_ancillas=max_ancillas,
            spoil_probability=spoil_probability,
        )
        timeout = (
            rng.randint(1, max_timeout)
            if rng.random() < timeout_probability
            else None
        )
        events.append(TraceEvent("submit", job=job, timeout=timeout))
        while rng.random() < release_probability:
            events.append(TraceEvent("release", pick=rng.randrange(1 << 16)))
    if drain:
        for _ in range(2 * num_jobs):
            events.append(TraceEvent("release", pick=rng.randrange(1 << 16)))
    return events


def random_fleet_trace(
    seed: SeedLike,
    num_jobs: int = 50,
    repeat_probability: float = 0.35,
    release_probability: float = 0.35,
    timeout_probability: float = 0.3,
    max_timeout: int = 6,
    spoil_probability: float = 0.15,
    max_data: int = 6,
    max_ancillas: int = 2,
    drain: bool = True,
) -> List[TraceEvent]:
    """A seeded arrival trace shaped for multi-shard routing.

    Same submit/release skeleton as :func:`random_arrival_trace`, with
    one fleet-relevant twist: with ``repeat_probability`` a submission
    *reuses an earlier job's circuit* under a fresh name, so the trace
    contains recurring circuit families — the signal the
    ``family-affinity`` placement policy routes on and the
    model/verdict memoisation pays off for.  Deferred release picks
    (``pick % len(residents)`` at replay time) keep one trace
    replayable across shard layouts and placement policies alike.
    """
    rng = _rng(seed)
    events: List[TraceEvent] = []
    families: List[QuantumJob] = []
    for index in range(num_jobs):
        if families and rng.random() < repeat_probability:
            template = families[rng.randrange(len(families))]
            job = QuantumJob(
                f"f{index}",
                template.circuit,
                [BorrowRequest(wire) for wire in template.request_wires],
            )
        else:
            job = random_job(
                rng,
                name=f"f{index}",
                max_data=max_data,
                max_ancillas=max_ancillas,
                spoil_probability=spoil_probability,
            )
            families.append(job)
        timeout = (
            rng.randint(1, max_timeout)
            if rng.random() < timeout_probability
            else None
        )
        events.append(TraceEvent("submit", job=job, timeout=timeout))
        while rng.random() < release_probability:
            events.append(TraceEvent("release", pick=rng.randrange(1 << 16)))
    if drain:
        for _ in range(2 * num_jobs):
            events.append(TraceEvent("release", pick=rng.randrange(1 << 16)))
    return events


__all__ = [
    "TraceEvent",
    "lender_job",
    "random_arrival_trace",
    "random_fleet_trace",
    "random_job",
    "random_lending_trace",
    "random_reversible_circuit",
    "segmented_guest_job",
    "windowed_guest_job",
]
