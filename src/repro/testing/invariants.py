"""The global occupancy safety contract, checkable after every event.

Borrow lifecycles are a state machine where subtle bugs hide —
use-after-release, double-lend, a placement that silently violates the
interval model.  :class:`OccupancyInvariantChecker` re-derives the
whole contract from a live :class:`~repro.multiprog.MultiProgrammer`
through its public introspection surface and raises
:class:`~repro.errors.InvariantViolation` (with a machine snapshot) at
the first inconsistency:

1. every holder recorded on a machine wire is a live resident, and
   every resident holds exactly the wires of its admission — released
   wires really returned to the pool, no phantom occupancy;
2. no machine wire is *owned* (held fresh, not borrowed) by two
   residents, and occupancy never exceeds the machine;
3. every cross-program borrow is verified safe, targets an ancilla the
   internal pass left unplaced, and the guest really holds the lent
   wire; every idle-wire offer comes from a live resident that holds
   the offered wire;
4. every lease belongs to a live resident that holds the leased wire,
   its window is segment-for-segment the ancilla's lending window from
   a freshly rebuilt interval model — re-running the restore-point
   analysis under ``lending="segmented"``, whole-period otherwise —
   shifted by the admission's gate offset, the admission's
   ``cross_hosts`` and ``leases`` agree, and **no two leases on one
   wire overlap** as window sets (under whole-residency lending no
   wire carries more than one lease at all, and outside segmented
   lending every window is a single segment);
5. the wait queue never overlaps the residents and has no duplicates;
6. every resident's internal borrow placement still satisfies
   :func:`repro.alloc.model.validate_placement` against a freshly
   rebuilt interval model, and no unverified ancilla was ever placed.

The checker is deliberately *redundant* with the scheduler's own
bookkeeping — it recomputes from first principles precisely so a
bookkeeping bug cannot hide itself.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.alloc import Placement, build_model, validate_placement
from repro.errors import CircuitError, InvariantViolation


class OccupancyInvariantChecker:
    """Assert the scheduler-wide safety contract; cheap enough to run
    after every submit/release event of a property-test trace."""

    def __init__(self, programmer, check_placements: bool = True):
        self.programmer = programmer
        self.check_placements = check_placements
        #: Number of successful :meth:`check` calls (test bookkeeping).
        self.checks = 0

    def __call__(self) -> None:
        self.check()

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"{message}\n--- machine state ---\n{self.programmer.snapshot()}"
        )

    def check(self) -> None:
        mp = self.programmer
        residents = mp.residents
        resident_set = set(residents)
        table = mp.occupancy_table()
        admissions = [mp.admission(name) for name in residents]

        # 1. Holders alive, and held wires == the admissions' wires.
        for wire, holders in table.items():
            if not holders:
                self._fail(f"wire {wire} recorded with no holders")
            for holder in holders:
                if holder not in resident_set:
                    self._fail(
                        f"wire {wire} held by non-resident {holder!r} "
                        f"(use-after-release)"
                    )
        union: Set[int] = set()
        for adm in admissions:
            union.update(adm.wires)
            for wire in adm.wires:
                if adm.name not in table.get(wire, ()):
                    self._fail(
                        f"resident {adm.name!r} missing from holders of "
                        f"its wire {wire}"
                    )
        if set(table) != union:
            self._fail(
                f"held wires {sorted(table)} != union of admissions "
                f"{sorted(union)} (released wire not returned, or "
                f"phantom occupancy)"
            )
        if mp.occupancy != len(table):
            self._fail(
                f"occupancy {mp.occupancy} != {len(table)} held wires"
            )
        if mp.occupancy > mp.machine_size:
            self._fail(
                f"occupancy {mp.occupancy} exceeds machine "
                f"{mp.machine_size}"
            )

        # 2. No wire double-owned.
        owner = {}
        for adm in admissions:
            for wire in adm.fresh_wires:
                if wire in owner:
                    self._fail(
                        f"wire {wire} owned by both {owner[wire]!r} and "
                        f"{adm.name!r} (double-lend)"
                    )
                owner[wire] = adm.name

        # 3. Cross-borrows and idle offers.
        for adm in admissions:
            for ancilla, wire in adm.cross_hosts.items():
                if adm.safety.get(ancilla) is not True:
                    self._fail(
                        f"{adm.name!r} borrowed wire {wire} for ancilla "
                        f"{ancilla} without a safe verdict"
                    )
                if ancilla not in adm.plan.unplaced:
                    self._fail(
                        f"{adm.name!r} cross-borrowed ancilla {ancilla} "
                        f"that its internal pass also placed"
                    )
                if adm.name not in table.get(wire, ()):
                    self._fail(
                        f"{adm.name!r} not recorded on its borrowed "
                        f"wire {wire}"
                    )
        for wire, offering in mp.idle_offers().items():
            if offering not in resident_set:
                self._fail(
                    f"idle wire {wire} offered by non-resident "
                    f"{offering!r} (dangling lender)"
                )
            if offering not in table.get(wire, ()):
                self._fail(
                    f"lender {offering!r} does not hold its offered "
                    f"wire {wire}"
                )

        # 4. Leases: recorded consistently, windows (and their
        # restore-point segmentation, under segmented lending)
        # re-derived from first principles, and pairwise disjoint per
        # wire.  Models are built lazily — only leaseholders need one
        # here, and check 6 (the other consumer) may be switched off.
        models: Dict[str, object] = {}

        def model_of(adm):
            if adm.name not in models:
                # Re-derive with the scheduler's own segment certifier
                # (solver-backed under restore_check="solver"): the
                # lease windows being checked were cut by it, and the
                # structural-only analysis would be stricter.
                models[adm.name] = build_model(
                    adm.job.circuit,
                    adm.job.request_wires,
                    segmented=mp.lending == "segmented",
                    segment_check=getattr(mp, "segment_check", None),
                )
            return models[adm.name]

        by_admission = {adm.name: adm for adm in admissions}
        lease_table = mp.lease_table()
        for wire, leases in lease_table.items():
            for lease in leases:
                adm = by_admission.get(lease.guest)
                if adm is None:
                    self._fail(
                        f"lease {lease} held by non-resident "
                        f"{lease.guest!r} (dangling lease)"
                    )
                if lease.wire != wire:
                    self._fail(
                        f"lease {lease} filed under wire {wire}"
                    )
                if lease.guest not in table.get(wire, ()):
                    self._fail(
                        f"leaseholder {lease.guest!r} does not hold "
                        f"wire {wire}"
                    )
                if adm.cross_hosts.get(lease.ancilla) != wire:
                    self._fail(
                        f"lease {lease} disagrees with cross_hosts "
                        f"{adm.cross_hosts}"
                    )
                expected = model_of(adm).windows[
                    lease.ancilla
                ].shifted(adm.gate_offset)
                if expected.segments != lease.window.segments:
                    self._fail(
                        f"lease {lease} window differs from the "
                        f"re-derived lending window {expected} "
                        f"(offset {adm.gate_offset})"
                    )
                if mp.lending != "segmented" and len(lease.window) != 1:
                    self._fail(
                        f"lease {lease} carries a segmented window "
                        f"under {mp.lending!r} lending"
                    )
            if mp.lending == "whole" and len(leases) > 1:
                self._fail(
                    f"wire {wire} carries {len(leases)} leases under "
                    f"whole-residency lending"
                )
            for i, first in enumerate(leases):
                for second in leases[i + 1 :]:
                    if first.overlaps(second):
                        self._fail(
                            f"overlapping leases on wire {wire}: "
                            f"{first} vs {second} (double-lend in "
                            f"time)"
                        )
        for adm in admissions:
            if set(adm.cross_hosts) != set(adm.leases):
                self._fail(
                    f"{adm.name!r} cross_hosts/leases keys disagree: "
                    f"{sorted(adm.cross_hosts)} vs "
                    f"{sorted(adm.leases)}"
                )
            for lease in adm.leases.values():
                if lease not in lease_table.get(lease.wire, ()):
                    self._fail(
                        f"lease {lease} missing from the lease table"
                    )

        # 5. Queue consistency.
        pending = mp.pending()
        if len(set(pending)) != len(pending):
            self._fail(f"duplicate names in the queue: {pending}")
        overlap = set(pending) & resident_set
        if overlap:
            self._fail(
                f"jobs {sorted(overlap)} are both queued and resident"
            )

        # 6. Placement soundness of every resident.
        if self.check_placements:
            for adm in admissions:
                model = model_of(adm)
                placement = Placement(
                    assignment=dict(adm.plan.assignment),
                    unplaced=list(adm.plan.unplaced),
                )
                try:
                    validate_placement(model, placement)
                except CircuitError as error:
                    self._fail(
                        f"{adm.name!r} placement unsound: {error}"
                    )
                for ancilla in adm.plan.assignment:
                    if adm.safety.get(ancilla) is not True:
                        self._fail(
                            f"{adm.name!r} placed ancilla {ancilla} "
                            f"without a safe verdict"
                        )
        self.checks += 1


class FleetInvariantChecker:
    """The fleet-tier contract: every shard's occupancy contract plus
    the router's own routing consistency.

    Wraps one :class:`OccupancyInvariantChecker` per shard (the full
    per-machine re-derivation, rule by rule) and then asserts, from the
    router's public surface, that the fleet bookkeeping agrees with
    shard reality:

    1. no job is resident on two shards, and the router's
       ``resident_shards()`` map matches the union of shard residents
       exactly (right jobs, right shards);
    2. every entry of ``queued_shards()`` mapped to a shard really sits
       in that shard's queue — and shard queues hold no job the router
       has forgotten;
    3. residents, shard queues and the overflow queue are pairwise
       disjoint fleet-wide (a job lives in exactly one place);
    4. aggregate occupancy equals the sum over shards.

    Callable, like the per-machine checker, so :func:`replay_trace`
    drives either through the same ``checker=`` hook.
    """

    def __init__(self, router, check_placements: bool = True):
        self.router = router
        self.shard_checkers = {
            name: OccupancyInvariantChecker(shard, check_placements)
            for name, shard in router.shards.items()
        }
        #: Number of successful :meth:`check` calls (test bookkeeping).
        self.checks = 0

    def __call__(self) -> None:
        self.check()

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"fleet invariant violated: {message}\n{self.router.snapshot()}"
        )

    def check(self) -> None:
        for checker in self.shard_checkers.values():
            checker.check()
        router = self.router
        derived: Dict[str, str] = {}
        for shard_name, shard in router.shards.items():
            for resident in shard.residents:
                if resident in derived:
                    self._fail(
                        f"job {resident!r} resident on both "
                        f"{derived[resident]!r} and {shard_name!r}"
                    )
                derived[resident] = shard_name
        recorded = router.resident_shards()
        if recorded != derived:
            self._fail(
                f"resident map {recorded} disagrees with shard "
                f"residents {derived}"
            )
        queued = router.queued_shards()
        for name, shard_name in queued.items():
            if name in derived:
                self._fail(f"job {name!r} both queued and resident")
            if shard_name is not None and name not in router.shards[
                shard_name
            ].pending():
                self._fail(
                    f"job {name!r} recorded queued on {shard_name!r} "
                    f"but absent from its queue"
                )
        for shard_name, shard in router.shards.items():
            for name in shard.pending():
                if queued.get(name) != shard_name:
                    self._fail(
                        f"shard {shard_name!r} queues {name!r} but the "
                        f"router does not know it"
                    )
        total = sum(shard.occupancy for shard in router.shards.values())
        if router.occupancy != total:
            self._fail(
                f"aggregate occupancy {router.occupancy} != shard sum "
                f"{total}"
            )
        self.checks += 1


__all__ = ["FleetInvariantChecker", "OccupancyInvariantChecker"]
