"""Trace replay: drive a scheduler through a seeded event sequence.

:func:`replay_trace` is the shared engine of the property tests and
the queueing benchmark: it feeds a :func:`random_arrival_trace` (or
any list of :class:`TraceEvent`) through
:meth:`MultiProgrammer.submit` / :meth:`release`, optionally running an
:class:`~repro.testing.invariants.OccupancyInvariantChecker` after
*every* event, and returns a :class:`TraceLog` recording what happened
— the admitted names in admission order, the jobs by name (for
differential replay through the batch ``schedule()``), outright
rejections, and the final queue stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import CapacityError
from repro.testing.generators import TraceEvent


@dataclass
class TraceLog:
    """What a trace replay did, in order."""

    #: Job names in admission order (immediate and backfilled alike).
    admitted: List[str] = field(default_factory=list)
    #: Every submitted job by name, admitted or not.
    jobs: Dict[str, object] = field(default_factory=dict)
    #: Each admitted job's internal :class:`BorrowPlan`, captured at
    #: admission time (the Admission itself dies at release).
    plans: Dict[str, object] = field(default_factory=dict)
    #: Jobs rejected outright (cannot fit even an empty machine).
    rejected: List[str] = field(default_factory=list)
    #: One human-readable line per event.
    events: List[str] = field(default_factory=list)
    #: Backfill provenance: ``(event line, admitted names)`` for every
    #: event whose drain admitted queued jobs — submit events report
    #: the outcome's ``backfilled``, release events the scheduler's
    #: ``last_backfilled`` record.
    backfills: List[tuple] = field(default_factory=list)
    #: ``programmer.stats()`` at the end of the replay.
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def admitted_jobs(self) -> List[object]:
        """The admitted jobs themselves, in admission order."""
        return [self.jobs[name] for name in self.admitted]

    @property
    def backfilled_by(self) -> Dict[str, str]:
        """Backfilled job name -> the event line that admitted it."""
        return {
            name: event
            for event, names in self.backfills
            for name in names
        }


def replay_trace(
    programmer,
    trace: Sequence[TraceEvent],
    checker: Optional[Callable[[], None]] = None,
) -> TraceLog:
    """Drive ``programmer`` through ``trace``; returns the event log.

    ``checker`` (typically an
    :class:`~repro.testing.invariants.OccupancyInvariantChecker`) is
    invoked after every event, so a violation pinpoints the exact step
    that broke the contract.  Release events pick a resident at replay
    time (``pick % len(residents)``) and are no-ops on an empty
    machine; capacity-impossible submissions are logged as rejected,
    not raised.
    """
    log = TraceLog()
    seen = set()
    for event in trace:
        if event.kind == "submit":
            job = event.job
            log.jobs[job.name] = job
            try:
                outcome = programmer.submit(
                    job, timeout=event.timeout, priority=event.priority
                )
            except CapacityError:
                log.rejected.append(job.name)
                log.events.append(f"submit {job.name}: rejected")
            else:
                log.events.append(f"submit {job.name}: {outcome.status}")
                backfilled = getattr(outcome, "backfilled", ())
                if backfilled:
                    log.backfills.append((log.events[-1], tuple(backfilled)))
        elif event.kind == "release":
            residents = programmer.residents
            if residents:
                name = residents[event.pick % len(residents)]
                programmer.release(name)
                log.events.append(f"release {name}")
                backfilled = getattr(programmer, "last_backfilled", ())
                if backfilled:
                    log.backfills.append((log.events[-1], tuple(backfilled)))
            else:
                log.events.append("release (machine empty, skipped)")
        else:
            raise ValueError(f"unknown trace event kind {event.kind!r}")
        # An admission can only happen inside an event, so scanning the
        # residents after each one catches every admission exactly once.
        for name in programmer.residents:
            if name not in seen:
                seen.add(name)
                log.admitted.append(name)
                log.plans[name] = programmer.admission(name).plan
        if checker is not None:
            checker()
    log.stats = programmer.stats()
    return log


__all__ = ["TraceLog", "replay_trace"]
