"""repro — a reproduction of *Borrowing Dirty Qubits in Quantum Programs*
(Su, Zhou, Feng, Ying; ASPLOS 2026).

The package implements the paper's three contributions end to end:

1. **QBorrow** (:mod:`repro.lang`, :mod:`repro.semantics`) — a quantum
   while-language with first-class ``borrow``/``release`` of dirty qubits
   and a denotational semantics interpreting programs as *sets* of
   quantum operations;
2. **safe uncomputation** (:mod:`repro.verify`) — Definition 5.1 and its
   finite characterisations, down to the Theorem 6.4 reduction of
   classical circuits to Boolean unsatisfiability;
3. **scalable verification** (:mod:`repro.sat`, :mod:`repro.bdd`) —
   CDCL-SAT and ROBDD backends deciding the reduction on circuits with
   thousands of qubits, plus the paper's adder and MCX benchmark
   circuits (:mod:`repro.adders`, :mod:`repro.mcx`), the Figure 3.1
   width-reduction pass as a pluggable strategy subsystem
   (:mod:`repro.alloc`), and a Section 7 online multi-programming
   scheduler (:mod:`repro.multiprog`).

Quickstart
----------
>>> from repro import verify_qbr
>>> from repro.lang.surface.sources import adder_qbr_source
>>> report = verify_qbr(adder_qbr_source(10), backend="bdd")
>>> report.all_safe
True
"""

from repro.alloc import allocate, available_strategies
from repro.circuits import Circuit, borrow_dirty_qubits
from repro.lang import borrow, init, seq, skip, unitary
from repro.lang.surface import elaborate, elaborate_file, parse, verify_qbr
from repro.semantics import Interpretation, programs_equivalent
from repro.verify import (
    VerificationReport,
    classical_safe_uncomputation,
    program_is_safe,
    program_safely_uncomputes,
    unitary_acts_identity_on,
    verify_circuit,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Interpretation",
    "VerificationReport",
    "__version__",
    "allocate",
    "available_strategies",
    "borrow",
    "borrow_dirty_qubits",
    "classical_safe_uncomputation",
    "elaborate",
    "elaborate_file",
    "init",
    "parse",
    "program_is_safe",
    "program_safely_uncomputes",
    "programs_equivalent",
    "seq",
    "skip",
    "unitary",
    "unitary_acts_identity_on",
    "verify_circuit",
    "verify_qbr",
]
