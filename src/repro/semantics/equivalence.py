"""Equality of operations, operation sets, and programs.

Program equivalence (used by Theorem 5.5's "equivalent to a deterministic
program") is equality of the denoted operation *sets* as sets of linear
maps.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.channels.operation import QuantumOperation, dedup_operations
from repro.lang.ast import Statement
from repro.semantics.denotational import Interpretation


def operations_equal(
    a: QuantumOperation, b: QuantumOperation, atol: float = 1e-8
) -> bool:
    """Equality as linear maps (superoperator comparison)."""
    return a.close_to(b, atol=atol)


def set_of_operations_equal(
    left: Sequence[QuantumOperation],
    right: Sequence[QuantumOperation],
    atol: float = 1e-8,
) -> bool:
    """Set equality of operation collections, up to numerical tolerance."""
    left = dedup_operations(left)
    right = dedup_operations(right)
    if len(left) != len(right):
        return False
    remaining: List[QuantumOperation] = list(right)
    for op in left:
        for index, candidate in enumerate(remaining):
            if op.close_to(candidate, atol=atol):
                remaining.pop(index)
                break
        else:
            return False
    return True


def programs_equivalent(
    first: Statement,
    second: Statement,
    universe: Sequence[str],
    max_while_iterations: int = 24,
    atol: float = 1e-8,
) -> bool:
    """``⟦first⟧ = ⟦second⟧`` over the given universe."""
    interp = Interpretation(universe, max_while_iterations=max_while_iterations)
    return set_of_operations_equal(
        interp.denote(first), interp.denote(second), atol=atol
    )
