"""Almost-sure termination of measurement-guarded loops.

Section 7 notes that multi-program borrowing needs *termination
analysis* on top of safe uncomputation: a program that borrows a dirty
qubit and never releases it blocks the lender forever.  This module
provides the standard spectral criterion for the paper's while loops
(cf. Li & Ying 2017, cited as [18]):

For ``while M[q̄] do S end`` with deterministic body semantics ``E_S``,
one iteration that *stays* in the loop applies ``E_stay = E_S ∘ E_T``.
The probability of still being inside after ``k`` iterations from state
``rho`` is ``Tr(E_stay^k(rho))``, so the loop terminates almost surely
from every input iff ``Tr(E_stay^k(rho)) -> 0``, which holds iff the
spectral radius of ``E_stay``'s superoperator is strictly below 1.
When it equals 1 there is surviving mass: a peripheral eigenoperator
yields a witness state that never leaves the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import While
from repro.semantics.denotational import Interpretation

_TOL = 1e-9


@dataclass(frozen=True)
class TerminationVerdict:
    """Outcome of the spectral termination check."""

    terminates: bool
    spectral_radius: float
    witness: Optional[np.ndarray] = None  # a state that never exits

    def __str__(self) -> str:
        status = "terminates a.s." if self.terminates else "may diverge"
        return f"{status} (spectral radius {self.spectral_radius:.6f})"


def loop_terminates_almost_surely(
    loop: While,
    universe: Sequence[str],
    interpretation: Optional[Interpretation] = None,
) -> TerminationVerdict:
    """Spectral-radius criterion for a while loop.

    Requires the body's semantics to be deterministic (a single
    operation); nondeterministic bodies would need a joint spectral
    radius over all schedulers, which is out of scope here and raises.
    """
    interp = interpretation or Interpretation(universe)
    body_ops = interp.denote(loop.body)
    if len(body_ops) != 1:
        raise SemanticsError(
            f"termination analysis needs a deterministic body; this one "
            f"has {len(body_ops)} executions"
        )
    wires = interp.positions(loop.measurement.qubits)
    from repro.channels.primitives import measurement_branch

    e_true = measurement_branch(
        loop.measurement.m_true, wires, interp.num_qubits
    )
    stay = body_ops[0] @ e_true
    matrix = stay.superoperator()
    eigenvalues = np.linalg.eigvals(matrix)
    radius = float(np.max(np.abs(eigenvalues)))
    if radius < 1.0 - 1e-7:
        return TerminationVerdict(True, radius)
    witness = _surviving_state(matrix, interp.num_qubits)
    return TerminationVerdict(False, radius, witness)


def _surviving_state(matrix: np.ndarray, num_qubits: int) -> Optional[np.ndarray]:
    """Extract a density operator with non-vanishing loop mass.

    Averages ``E_stay^k`` applied to the eigen-operator of a peripheral
    eigenvalue; the PSD part of the result survives the loop.
    """
    dim = 2**num_qubits
    values, vectors = np.linalg.eig(matrix)
    order = np.argsort(-np.abs(values))
    for index in order:
        if abs(values[index]) < 1.0 - 1e-7:
            break
        candidate = vectors[:, index].reshape(dim, dim)
        hermitian = (candidate + candidate.conj().T) / 2.0
        eigvals, eigvecs = np.linalg.eigh(hermitian)
        top = np.argmax(np.abs(eigvals))
        state = np.outer(eigvecs[:, top], eigvecs[:, top].conj())
        trace = state.trace().real
        if trace > _TOL:
            return state / trace
    return None


def program_loops_terminate(
    stmt,
    universe: Sequence[str],
    interpretation: Optional[Interpretation] = None,
) -> bool:
    """Check every while loop inside ``stmt`` terminates almost surely."""
    from repro.lang.ast import Borrow, If, Seq

    interp = interpretation or Interpretation(universe)

    def walk(node) -> bool:
        if isinstance(node, While):
            verdict = loop_terminates_almost_surely(
                node, interp.universe, interpretation=interp
            )
            return verdict.terminates and walk(node.body)
        if isinstance(node, Seq):
            return all(walk(item) for item in node.items)
        if isinstance(node, If):
            return walk(node.then_branch) and walk(node.else_branch)
        if isinstance(node, Borrow):
            return walk(node.body)
        return True

    return walk(stmt)
