"""Executable denotational semantics (Figure 4.3).

An :class:`Interpretation` fixes the finite qubit universe and evaluates
``⟦S⟧`` as an explicit list of :class:`~repro.channels.QuantumOperation`.

Two sources of infinity are made finite:

* **while loops** — the paper's semantics is a countable sum over
  iteration counts, converging in the CP order.  We truncate at
  ``max_while_iterations`` and (optionally) verify convergence by
  comparing the last two prefix sums; the truncated prefix sum is a
  CP-below approximation of the true semantics.
* **schedulers** — a loop whose body is itself nondeterministic has one
  choice per iteration; we enumerate scheduler prefixes up to
  ``max_operations`` results and fail loudly beyond that.

Deduplication (operations compared as linear maps) keeps the sets small;
for a *safe* program the borrow unions collapse to singletons exactly as
Theorem 5.5 predicts.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Sequence

from repro.channels.operation import QuantumOperation, dedup_operations
from repro.channels.primitives import (
    initialization,
    measurement_branch,
    unitary_operation,
)
from repro.errors import SemanticsError
from repro.lang.ast import (
    Borrow,
    If,
    Init,
    Measurement,
    Seq,
    Skip,
    Statement,
    UnitaryStmt,
    While,
    check_well_formed,
    idle,
    substitute,
)


class Interpretation:
    """Evaluator for ``⟦S⟧`` over a fixed universe of named qubits."""

    def __init__(
        self,
        universe: Sequence[str],
        max_while_iterations: int = 24,
        max_operations: int = 512,
        check_loop_convergence: bool = False,
        convergence_atol: float = 1e-6,
    ):
        self.universe = list(universe)
        if len(set(self.universe)) != len(self.universe):
            raise SemanticsError("duplicate qubits in the universe")
        self.num_qubits = len(self.universe)
        if self.num_qubits > 10:
            raise SemanticsError(
                "dense semantics is exponential; universes above 10 qubits "
                "are rejected — use the Section 6 verifiers instead"
            )
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.universe)
        }
        self.max_while_iterations = max_while_iterations
        self.max_operations = max_operations
        self.check_loop_convergence = check_loop_convergence
        self.convergence_atol = convergence_atol

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def denote(self, stmt: Statement) -> List[QuantumOperation]:
        """Evaluate ``⟦stmt⟧`` as a deduplicated list of operations.

        An empty list is the paper's *stuck* program: some ``borrow``
        found no idle qubit.
        """
        check_well_formed(stmt, self.universe)
        return dedup_operations(self._denote(stmt))

    def positions(self, qubits: Sequence[str]) -> List[int]:
        """Wire indices of named qubits."""
        try:
            return [self._index[q] for q in qubits]
        except KeyError as missing:
            raise SemanticsError(
                f"qubit {missing.args[0]!r} is not in the universe"
            ) from None

    # ------------------------------------------------------------------ #
    # Structural cases
    # ------------------------------------------------------------------ #

    def _denote(self, stmt: Statement) -> List[QuantumOperation]:
        if isinstance(stmt, Skip):
            return [QuantumOperation.identity(self.num_qubits)]
        if isinstance(stmt, Init):
            return [initialization(self._index[stmt.qubit], self.num_qubits)]
        if isinstance(stmt, UnitaryStmt):
            return [
                unitary_operation(
                    stmt.local_matrix(),
                    self.positions(stmt.qubits),
                    self.num_qubits,
                )
            ]
        if isinstance(stmt, Seq):
            return self._denote_seq(stmt)
        if isinstance(stmt, If):
            return self._denote_if(stmt)
        if isinstance(stmt, While):
            return self._denote_while(stmt)
        if isinstance(stmt, Borrow):
            return self._denote_borrow(stmt)
        raise SemanticsError(f"unknown statement {stmt!r}")

    def _denote_seq(self, stmt: Seq) -> List[QuantumOperation]:
        current = [QuantumOperation.identity(self.num_qubits)]
        for item in stmt.items:
            step = dedup_operations(self._denote(item))
            if not step or not current:
                return []
            self._guard_size(len(current) * len(step))
            current = dedup_operations(
                later @ earlier for earlier in current for later in step
            )
        return current

    def _branches(self, measurement: Measurement):
        wires = self.positions(measurement.qubits)
        e_true = measurement_branch(measurement.m_true, wires, self.num_qubits)
        e_false = measurement_branch(measurement.m_false, wires, self.num_qubits)
        return e_true, e_false

    def _denote_if(self, stmt: If) -> List[QuantumOperation]:
        e_true, e_false = self._branches(stmt.measurement)
        then_ops = dedup_operations(self._denote(stmt.then_branch))
        else_ops = dedup_operations(self._denote(stmt.else_branch))
        if not then_ops or not else_ops:
            return []
        self._guard_size(len(then_ops) * len(else_ops))
        return dedup_operations(
            (e1 @ e_true) + (e2 @ e_false)
            for e1 in then_ops
            for e2 in else_ops
        )

    def _denote_while(self, stmt: While) -> List[QuantumOperation]:
        e_true, e_false = self._branches(stmt.measurement)
        body_ops = dedup_operations(self._denote(stmt.body))
        if not body_ops:
            return []
        results: List[QuantumOperation] = []
        depth = self.max_while_iterations
        # A scheduler fixes one body operation per iteration; enumerate
        # scheduler prefixes of length `depth` (bounded by max_operations).
        self._guard_size(len(body_ops) ** min(depth, 8) if len(body_ops) > 1 else 1)
        for scheduler in self._schedulers(body_ops, depth):
            total = e_false  # n = 0 term: measurement exits immediately
            prefix = e_true
            last_term = None
            for iteration in range(depth):
                prefix = scheduler[iteration] @ prefix
                last_term = e_false @ prefix
                total = total + last_term
                prefix = e_true @ prefix
            if self.check_loop_convergence and last_term is not None:
                residue = _superoperator_norm(last_term)
                if residue > self.convergence_atol:
                    raise SemanticsError(
                        f"while loop not converged after "
                        f"{self.max_while_iterations} iterations "
                        f"(last term norm {residue:.2e}); raise "
                        f"max_while_iterations"
                    )
            results.append(total)
        return dedup_operations(results)

    def _schedulers(self, body_ops, depth: int):
        if len(body_ops) == 1:
            yield [body_ops[0]] * depth
            return
        count = 0
        for choice in product(range(len(body_ops)), repeat=depth):
            count += 1
            if count > self.max_operations:
                raise SemanticsError(
                    f"scheduler enumeration exceeded {self.max_operations}; "
                    f"the loop body has {len(body_ops)} nondeterministic "
                    f"executions"
                )
            yield [body_ops[i] for i in choice]

    def _guard_size(self, candidate: int) -> None:
        if candidate > self.max_operations:
            raise SemanticsError(
                f"operation-set size {candidate} exceeds the cap "
                f"{self.max_operations}"
            )

    def _denote_borrow(self, stmt: Borrow) -> List[QuantumOperation]:
        pool = idle(stmt.body, self.universe)
        results: List[QuantumOperation] = []
        for qubit in sorted(pool):
            instantiated = substitute(stmt.body, {stmt.placeholder: qubit})
            results.extend(self._denote(instantiated))
            self._guard_size(len(results))
        return dedup_operations(results)


def _superoperator_norm(operation: QuantumOperation) -> float:
    import numpy as np

    return float(np.abs(operation.superoperator()).sum())


def denote(
    stmt: Statement,
    universe: Sequence[str],
    max_while_iterations: int = 24,
    max_operations: int = 512,
) -> List[QuantumOperation]:
    """One-shot helper: ``⟦stmt⟧`` over ``universe``."""
    interp = Interpretation(
        universe,
        max_while_iterations=max_while_iterations,
        max_operations=max_operations,
    )
    return interp.denote(stmt)
