"""Denotational semantics of QBorrow — system S6.

Implements Figure 4.3: every program denotes a *set* of quantum
operations on the state space of the qubit universe.  Nondeterminism
(which idle qubit a ``borrow`` grabs, and the scheduler of loop
iterations) becomes set union; measurement branching becomes operation
summation — the paper's key contrast between the two kinds of choice.
"""

from repro.semantics.denotational import Interpretation, denote
from repro.semantics.termination import (
    TerminationVerdict,
    loop_terminates_almost_surely,
    program_loops_terminate,
)
from repro.semantics.equivalence import (
    operations_equal,
    programs_equivalent,
    set_of_operations_equal,
)

__all__ = [
    "Interpretation",
    "TerminationVerdict",
    "denote",
    "loop_terminates_almost_surely",
    "operations_equal",
    "program_loops_terminate",
    "programs_equivalent",
    "set_of_operations_equal",
]
