"""Barenco-style multi-controlled-NOT decompositions.

Three constructions with different ancilla contracts:

* :func:`cccnot_with_dirty_ancilla` — the paper's Figure 1.3: a
  three-controlled NOT from four Toffolis and one dirty qubit, the
  running example of safe uncomputation;
* :func:`mcx_clean_ladder` — V-chain with ``k-2`` clean ancillas,
  ``2k-3`` Toffolis (the clean-qubit baseline that *cannot* reuse a
  non-ground qubit, cf. Section 3's discussion of Figure 3.1);
* :func:`mcx_dirty_chain` — the Barenco Lemma 7.2 network with ``k-2``
  *dirty* ancillas and ``4(k-2)`` Toffolis: every staircase runs twice so
  each ancilla's initial value toggles out.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.gates import Gate, toffoli
from repro.errors import CircuitError


def cccnot_with_dirty_ancilla(
    controls: Sequence[int], target: int, ancilla: int
) -> List[Gate]:
    """Figure 1.3: CCCNOT from four Toffolis and one dirty ancilla."""
    if len(controls) != 3:
        raise CircuitError("cccnot needs exactly three controls")
    c1, c2, c3 = controls
    return [
        toffoli(c1, c2, ancilla),
        toffoli(ancilla, c3, target),
        toffoli(c1, c2, ancilla),
        toffoli(ancilla, c3, target),
    ]


def mcx_clean_ladder(
    controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> List[Gate]:
    """V-chain MCX: ``k-2`` clean ancillas, ``2k-3`` Toffolis.

    The ancillas must start in ``|0>`` and are returned to ``|0>``.
    """
    controls = list(controls)
    ancillas = list(ancillas)
    k = len(controls)
    if k < 2:
        raise CircuitError("ladder needs at least two controls")
    if k == 2:
        return [toffoli(controls[0], controls[1], target)]
    if len(ancillas) != k - 2:
        raise CircuitError(f"{k}-control ladder needs {k - 2} clean ancillas")
    up: List[Gate] = [toffoli(controls[0], controls[1], ancillas[0])]
    for i in range(k - 3):
        up.append(toffoli(ancillas[i], controls[i + 2], ancillas[i + 1]))
    middle = toffoli(ancillas[-1], controls[-1], target)
    return up + [middle] + list(reversed(up))


def mcx_dirty_chain(
    controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> List[Gate]:
    """Barenco MCX with ``k-2`` *dirty* ancillas and ``4(k-2)`` Toffolis.

    Structure: a down-up Toffoli staircase, then the same staircase again
    without its outermost gate.  Every ancilla is written an even number
    of times with identical control values, so its arbitrary initial
    state cancels — all ancillas are safely uncomputed (verified in the
    test suite with the Section 6 pipeline).
    """
    controls = list(controls)
    ancillas = list(ancillas)
    k = len(controls)
    if k < 3:
        if k == 2:
            return [toffoli(controls[0], controls[1], target)]
        raise CircuitError("dirty chain needs at least two controls")
    if len(ancillas) != k - 2:
        raise CircuitError(f"{k}-control chain needs {k - 2} dirty ancillas")

    def level_gate(level: int) -> Gate:
        # level j in 1..k-2 pairs control j+1 with ancilla j-1.
        tgt = target if level == k - 2 else ancillas[level]
        return toffoli(controls[level + 1], ancillas[level - 1], tgt)

    base = toffoli(controls[0], controls[1], ancillas[0])

    def sweep(top_level: int) -> List[Gate]:
        down = [level_gate(j) for j in range(top_level, 0, -1)]
        return down + [base] + [level_gate(j) for j in range(1, top_level + 1)]

    full = sweep(k - 2)
    inner = full[1:-1] if k > 3 else [base]
    return full + inner
