"""Multi-controlled-NOT constructions — system S12.

* :func:`repro.mcx.barenco.cccnot_with_dirty_ancilla` — the Figure 1.3
  four-Toffoli CCCNOT using one dirty qubit;
* :func:`repro.mcx.barenco.mcx_clean_ladder` — the textbook V-chain with
  ``k-2`` clean ancillas (2k-3 Toffolis), the clean-qubit baseline;
* :func:`repro.mcx.barenco.mcx_dirty_chain` — Barenco-style recursion
  with ``k-2`` *dirty* ancillas (4(k-2)+... Toffolis, toggled twice);
* :func:`repro.mcx.gidney.gidney_mcx` — the paper's ``mcx.qbr`` benchmark
  (Figure 10.4): a ``(2m-1)``-controlled NOT from ``16(m-2)`` Toffolis
  and a single dirty ancilla.
"""

from repro.mcx.barenco import (
    cccnot_with_dirty_ancilla,
    mcx_clean_ladder,
    mcx_dirty_chain,
)
from repro.mcx.gidney import GidneyMcxLayout, gidney_mcx

__all__ = [
    "GidneyMcxLayout",
    "cccnot_with_dirty_ancilla",
    "gidney_mcx",
    "mcx_clean_ladder",
    "mcx_dirty_chain",
]
