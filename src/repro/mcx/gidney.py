"""The paper's MCX benchmark (Figure 10.4 / ``mcx.qbr``).

A ``(2m-1)``-controlled NOT built from ``16(m-2)`` Toffolis and a single
*dirty* ancilla, adapted from Gidney's "Constructing Large Controlled
Nots".  The four parts alternate two staircase gadgets so that both the
ancilla's initial value and all intermediate scribbles on the control
qubits toggle out; the ancilla is the dirty qubit whose safe
uncomputation Figures 6.4/10.3 verify at thousands of qubits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuits.circuit import Circuit
from repro.circuits.gates import toffoli
from repro.errors import CircuitError


@dataclass(frozen=True)
class GidneyMcxLayout:
    """Wires of the ``mcx.qbr`` circuit.

    ``controls`` are ``q[1..n]`` with ``n = 2m-1``; ``target`` is ``t``;
    ``ancilla`` is the dirty qubit ``anc``.
    """

    circuit: Circuit
    controls: List[int]
    target: int
    ancilla: int
    m: int

    @property
    def n(self) -> int:
        return 2 * self.m - 1


def gidney_mcx(m: int, verbatim: bool = False) -> GidneyMcxLayout:
    """The ``mcx.qbr`` construction for parameter ``m >= 3``.

    Wire layout (1-based registers of the program): ``q[i]`` on wire
    ``i-1``, ``t`` on wire ``n``, ``anc`` on wire ``n+1``.

    The paper's printed listing has an off-by-one in the odd staircase
    body (``CCNOT[q[2i-1], q[2i+1], q[2i+2]]``): translated literally it
    yields the identity for ``m > 3`` because each staircase cancels
    itself.  The corrected body ``CCNOT[q[2i], q[2i+1], q[2i+2]]`` — the
    previous even-wire ancilla plus the next odd control, exactly
    Gidney's pattern — implements the ``(2m-1)``-controlled NOT for all
    ``m`` with the same ``16(m-2)`` Toffoli count (the functional tests
    cover this).  Pass ``verbatim=True`` for the literal listing: its
    dirty ancilla still verifies as safe, which is the property the
    Figure 6.4 benchmark times.
    """
    if m < 3:
        raise CircuitError("the mcx.qbr construction needs m >= 3")
    n = 2 * m - 1

    def q(i: int) -> int:
        if not 1 <= i <= n:
            raise CircuitError(f"q[{i}] out of range")
        return i - 1

    t = n
    anc = n + 1
    labels = [f"q{i}" for i in range(1, n + 1)] + ["t", "anc"]
    c = Circuit(n + 2, labels=labels)

    first_odd_wire = (lambda i: q(2 * i - 1)) if verbatim else (lambda i: q(2 * i))

    def odd_stair_down() -> None:
        for i in range(m - 2, 1, -1):
            c.append(toffoli(first_odd_wire(i), q(2 * i + 1), q(2 * i + 2)))

    def odd_stair_up() -> None:
        for i in range(2, m - 1):
            c.append(toffoli(first_odd_wire(i), q(2 * i + 1), q(2 * i + 2)))

    def even_stair_down() -> None:
        for i in range(m - 1, 2, -1):
            c.append(toffoli(q(2 * i - 1), q(2 * i), q(2 * i + 1)))

    def even_stair_up() -> None:
        for i in range(3, m):
            c.append(toffoli(q(2 * i - 1), q(2 * i), q(2 * i + 1)))

    def part_odd() -> None:
        """Parts 1 and 3: fold the odd-indexed controls into ``anc``."""
        c.append(toffoli(q(n - 1), q(n), anc))
        odd_stair_down()
        c.append(toffoli(q(1), q(3), q(4)))
        odd_stair_up()
        c.append(toffoli(q(n - 1), q(n), anc))
        odd_stair_down()
        c.append(toffoli(q(1), q(3), q(4)))
        odd_stair_up()

    def part_even() -> None:
        """Parts 2 and 4: fold the even-indexed controls into ``t``."""
        c.append(toffoli(q(n), anc, t))
        even_stair_down()
        c.append(toffoli(q(2), q(4), q(5)))
        even_stair_up()
        c.append(toffoli(q(n), anc, t))
        even_stair_down()
        c.append(toffoli(q(2), q(4), q(5)))
        even_stair_up()

    part_odd()
    part_even()
    part_odd()
    part_even()

    return GidneyMcxLayout(
        circuit=c,
        controls=[q(i) for i in range(1, n + 1)],
        target=t,
        ancilla=anc,
        m=m,
    )
