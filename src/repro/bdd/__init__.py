"""Reduced ordered binary decision diagrams — the other half of system S9.

The BDD engine decides the paper's formulas (6.1)/(6.2) by canonicity:
a formula is unsatisfiable iff its ROBDD is the 0 terminal.  It plays the
role of the simplification-heavy solver (CVC5) in the two-backend
experiments of Figures 6.3/6.4, and its sensitivity to variable order is
ablation A3 of DESIGN.md.
"""

from repro.bdd.robdd import Bdd, FALSE_NODE, TRUE_NODE

__all__ = ["Bdd", "FALSE_NODE", "TRUE_NODE"]
