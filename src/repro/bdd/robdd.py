"""A reduced ordered BDD package with the classic apply/restrict algebra.

Nodes are integers into parallel arrays; 0 and 1 are the terminals.  The
unique table enforces canonicity, so semantic equality of functions is
integer equality of node ids — that is what makes the unsatisfiability
checks O(1) once a formula's BDD is built.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolfn.expr import AND, CONST, OR, VAR, XOR, Expr, _topological
from repro.errors import SolverError

FALSE_NODE = 0
TRUE_NODE = 1

_TERMINAL_LEVEL = 1 << 30


class Bdd:
    """ROBDD manager over a fixed variable order.

    Parameters
    ----------
    order:
        Variable names from top (tested first) to bottom.  Functions may
        only mention these variables.
    max_nodes:
        Safety valve: exceeding this many nodes raises
        :class:`SolverError` instead of exhausting memory.
    """

    def __init__(self, order: Sequence[str], max_nodes: int = 5_000_000):
        self.order = list(order)
        if len(set(self.order)) != len(self.order):
            raise SolverError("duplicate variable in BDD order")
        self._level_of: Dict[str, int] = {
            name: level for level, name in enumerate(self.order)
        }
        self.max_nodes = max_nodes
        # Parallel arrays; ids 0/1 are the terminals.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple, int] = {}

    # ------------------------------------------------------------------ #
    # Node construction
    # ------------------------------------------------------------------ #

    @property
    def node_count(self) -> int:
        """Total nodes allocated (including the two terminals)."""
        return len(self._level)

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if len(self._level) >= self.max_nodes:
            raise SolverError(f"BDD exceeded {self.max_nodes} nodes")
        node = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single variable."""
        level = self._require_level(name)
        return self._mk(level, FALSE_NODE, TRUE_NODE)

    def const(self, value: bool) -> int:
        return TRUE_NODE if value else FALSE_NODE

    def _require_level(self, name: str) -> int:
        level = self._level_of.get(name)
        if level is None:
            raise SolverError(f"variable {name!r} not in the BDD order")
        return level

    # ------------------------------------------------------------------ #
    # Boolean algebra via apply
    # ------------------------------------------------------------------ #

    def apply_and(self, f: int, g: int) -> int:
        return self._apply("and", f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply("or", f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply("xor", f, g)

    def negate(self, f: int) -> int:
        return self.apply_xor(f, TRUE_NODE)

    def _resolved(self, op: str, f: int, g: int) -> Optional[int]:
        """Terminal case or cache hit, else None (needs expansion)."""
        terminal = self._apply_terminal(op, f, g)
        if terminal is not None:
            return terminal
        if f > g:
            f, g = g, f  # all three ops are commutative
        return self._apply_cache.get((op, f, g))

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    def _apply(self, op: str, f0: int, g0: int) -> int:
        """Iterative apply — explicit stack so kilo-variable chains fit."""
        result = self._resolved(op, f0, g0)
        if result is not None:
            return result
        stack: List[Tuple[int, int]] = [(f0, g0)]
        while stack:
            f, g = stack[-1]
            if self._resolved(op, f, g) is not None:
                stack.pop()
                continue
            level = min(self._level[f], self._level[g])
            f_low, f_high = self._cofactors(f, level)
            g_low, g_high = self._cofactors(g, level)
            low = self._resolved(op, f_low, g_low)
            if low is None:
                stack.append((f_low, g_low))
                continue
            high = self._resolved(op, f_high, g_high)
            if high is None:
                stack.append((f_high, g_high))
                continue
            key = (op, f, g) if f <= g else (op, g, f)
            self._apply_cache[key] = self._mk(level, low, high)
            stack.pop()
        result = self._resolved(op, f0, g0)
        assert result is not None
        return result

    @staticmethod
    def _apply_terminal(op: str, f: int, g: int) -> Optional[int]:
        if op == "and":
            if f == FALSE_NODE or g == FALSE_NODE:
                return FALSE_NODE
            if f == TRUE_NODE:
                return g
            if g == TRUE_NODE:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == TRUE_NODE or g == TRUE_NODE:
                return TRUE_NODE
            if f == FALSE_NODE:
                return g
            if g == FALSE_NODE:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == g:
                return FALSE_NODE
            if f == FALSE_NODE:
                return g
            if g == FALSE_NODE:
                return f
        return None

    # ------------------------------------------------------------------ #
    # Cofactors
    # ------------------------------------------------------------------ #

    def restrict(self, f: int, name: str, value: bool) -> int:
        """The cofactor ``f[value/name]`` — the paper's ``b[0/q]`` at BDD level."""
        target = self._require_level(name)
        cache: Dict[int, int] = {}

        def resolved(node: int) -> Optional[int]:
            if self._level[node] > target:
                return node  # variable below the target, or a terminal
            if self._level[node] == target:
                return self._high[node] if value else self._low[node]
            return cache.get(node)

        top = resolved(f)
        if top is not None:
            return top
        stack = [f]
        while stack:
            node = stack[-1]
            if resolved(node) is not None:
                stack.pop()
                continue
            low = resolved(self._low[node])
            if low is None:
                stack.append(self._low[node])
                continue
            high = resolved(self._high[node])
            if high is None:
                stack.append(self._high[node])
                continue
            cache[node] = self._mk(self._level[node], low, high)
            stack.pop()
        result = resolved(f)
        assert result is not None
        return result

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_false(self, f: int) -> bool:
        return f == FALSE_NODE

    def is_true(self, f: int) -> bool:
        return f == TRUE_NODE

    def any_sat(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment (unmentioned variables omitted)."""
        if f == FALSE_NODE:
            return None
        assignment: Dict[str, bool] = {}
        node = f
        while node != TRUE_NODE:
            name = self.order[self._level[node]]
            if self._low[node] != FALSE_NODE:
                assignment[name] = False
                node = self._low[node]
            else:
                assignment[name] = True
                node = self._high[node]
        return assignment

    def count_sat(self, f: int) -> int:
        """Number of satisfying assignments over the full variable order."""
        total = len(self.order)
        reachable = self._reachable(f)
        # Children sit strictly below their parents in an ordered BDD, so
        # processing by decreasing level is children-first.
        reachable.sort(key=lambda node: -self._level[node])
        base: Dict[int, int] = {TRUE_NODE: 1, FALSE_NODE: 0}

        def level_of(node: int) -> int:
            return self._level[node] if node > TRUE_NODE else total

        for node in reachable:
            here = self._level[node]
            low, high = self._low[node], self._high[node]
            base[node] = (base[low] << (level_of(low) - here - 1)) + (
                base[high] << (level_of(high) - here - 1)
            )
        return base[f] << level_of(f)

    def _reachable(self, f: int) -> List[int]:
        """All internal nodes reachable from ``f`` (terminals excluded)."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE_NODE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return list(seen)

    def size(self, f: int) -> int:
        """Number of distinct nodes in the BDD rooted at ``f`` (plus terminals)."""
        return len(self._reachable(f)) + 2

    # ------------------------------------------------------------------ #
    # Conversion from expression DAGs
    # ------------------------------------------------------------------ #

    def from_expr(self, root: Expr, cache: Optional[Dict[int, int]] = None) -> int:
        """Compile an :class:`~repro.boolfn.expr.Expr` DAG to a BDD node.

        A shared ``cache`` (Expr uid -> node id) lets callers compile the
        many per-qubit formulas of one circuit without recompiling the
        common subcircuits.
        """
        if cache is None:
            cache = {}
        for node in _topological(root):
            if node.uid in cache:
                continue
            if node.kind == CONST:
                cache[node.uid] = self.const(bool(node.value))
            elif node.kind == VAR:
                cache[node.uid] = self.var(node.name)
            else:
                children = [cache[c.uid] for c in node.children]
                op = {AND: "and", OR: "or", XOR: "xor"}.get(node.kind)
                if op is None:  # pragma: no cover - exhaustive over kinds
                    raise SolverError(f"unknown node kind {node.kind!r}")
                cache[node.uid] = self._balanced_fold(op, children)
        return cache[root.uid]

    def _balanced_fold(self, op: str, nodes: List[int]) -> int:
        """Combine wide operators as a balanced tree.

        A left-to-right fold of an n-way XOR allocates Θ(n²) intermediate
        nodes (there is no garbage collection); balancing keeps the total
        near Θ(n log n).
        """
        if not nodes:
            return TRUE_NODE if op == "and" else FALSE_NODE
        layer = list(nodes)
        while len(layer) > 1:
            merged = []
            for i in range(0, len(layer) - 1, 2):
                merged.append(self._apply(op, layer[i], layer[i + 1]))
            if len(layer) % 2:
                merged.append(layer[-1])
            layer = merged
        return layer[0]
