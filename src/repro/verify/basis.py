"""The finite-state refinements of Theorem 6.1.

Condition 2 (*state restoration*): check (5.1) only for the five kets
``|0>, |1>, |+>, |+i>, |->`` on the dirty qubit and product states drawn
from the operator basis ``B`` on the rest.

Condition 3 (*entanglement preservation*): adjoin a single hypothetical
qubit, put a Bell pair across (dirty qubit, hypothetical qubit), again
with ``B``-basis products elsewhere, and check the Bell marginal is
untouched.

Both are exponential in the register size (4^(n-1) products) — they are
*test oracles* validating the scalable Section 6 path, exactly the role
they play in the paper's development.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, List, Tuple

import numpy as np

from repro.channels.operation import QuantumOperation
from repro.errors import QubitError
from repro.linalg.kron import kron_all, reorder_qubits
from repro.linalg.partial_trace import partial_trace
from repro.linalg.states import BASIS_B, VERIFICATION_KETS, bell_phi, density

_TRACE_FLOOR = 1e-12


def _product_state(
    factors_by_position: List[np.ndarray],
) -> np.ndarray:
    return kron_all(factors_by_position)


def _basis_products(
    num_factors: int,
) -> Iterable[Tuple[np.ndarray, ...]]:
    return product(BASIS_B, repeat=num_factors)


def restores_basis_states(
    operation: QuantumOperation, qubit: int, atol: float = 1e-8
) -> bool:
    """Theorem 6.1, condition 2, for one quantum operation.

    For every ``rho' ∈ B^{⊗(n-1)}`` and ``|psi>`` among the five
    verification kets, check
    ``E(rho' ⊗ |psi><psi|_q)|_q = |psi><psi|`` (vacuous when the output
    trace vanishes).
    """
    n = operation.num_qubits
    if not 0 <= qubit < n:
        raise QubitError(f"qubit {qubit} out of range for {n} qubits")
    others = [p for p in range(n) if p != qubit]
    for kets in _basis_products(n - 1):
        for psi in VERIFICATION_KETS:
            target = density(psi)
            factors = [None] * n
            factors[qubit] = target
            for position, factor in zip(others, kets):
                factors[position] = factor
            rho = _product_state(factors)
            out = operation(rho)
            reduced = partial_trace(out, [qubit], n)
            trace = reduced.trace().real
            if trace < _TRACE_FLOOR:
                continue
            if not np.allclose(reduced / trace, target, atol=atol):
                return False
    return True


def preserves_bell_entanglement(
    operation: QuantumOperation, qubit: int, atol: float = 1e-8
) -> bool:
    """Theorem 6.1, condition 3, for one quantum operation.

    Adjoins one hypothetical qubit ``q'`` (wired as the last qubit), sets
    ``(qubit, q')`` to the Bell state ``|Phi>``, and checks the Bell
    marginal survives every execution on ``B``-product environments.
    """
    n = operation.num_qubits
    if not 0 <= qubit < n:
        raise QubitError(f"qubit {qubit} out of range for {n} qubits")
    extended = operation.tensor(QuantumOperation.identity(1))
    total = n + 1
    hypothetical = n
    bell = density(bell_phi())
    others = [p for p in range(n) if p != qubit]
    for kets in _basis_products(n - 1):
        # Build the state in the order [others..., (qubit, q')] and then
        # reorder wires to the standard layout.
        rho_parts = list(kets) + [bell]
        rho_permuted = kron_all(rho_parts)
        wire_order = others + [qubit, hypothetical]
        rho = reorder_qubits(rho_permuted, wire_order)
        out = extended(rho)
        reduced = partial_trace(out, [qubit, hypothetical], total)
        trace = reduced.trace().real
        if trace < _TRACE_FLOOR:
            continue
        if not np.allclose(reduced / trace, bell, atol=atol):
            return False
    return True
