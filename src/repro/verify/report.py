"""Verdict records shared by the verification pipeline and batch engine.

Unsafe verdicts carry a concrete counterexample (an initial
computational-basis state) which is *replayed on the classical
simulator* before being reported, so a solver bug can never report a
spurious violation silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.circuits.circuit import Circuit
from repro.circuits.classical import apply_to_bits
from repro.errors import VerificationError
from repro.verify.backends.base import BooleanCheckOutcome


@dataclass(frozen=True)
class Counterexample:
    """A violating initial basis state for an unsafe dirty qubit.

    ``input_bits`` lists the initial state per wire.  For a
    ``zero-restoration`` violation the dirty qubit starts at 0 and ends
    at 1; for ``plus-restoration`` some other qubit's output depends on
    the dirty qubit's initial value (flip it and re-run to observe).
    """

    kind: str
    assignment: Dict[str, bool]
    input_bits: List[int]

    def describe(self) -> str:
        bits = "".join(str(b) for b in self.input_bits)
        return f"{self.kind} violated from initial state |{bits}>"


@dataclass(frozen=True)
class QubitVerdict:
    """Per-dirty-qubit outcome."""

    qubit: int
    name: str
    safe: bool
    failed_condition: Optional[str] = None
    counterexample: Optional[Counterexample] = None
    solve_seconds: float = 0.0

    def __str__(self) -> str:
        if self.safe:
            return f"{self.name}: SAFE ({self.solve_seconds:.3f}s)"
        return (
            f"{self.name}: UNSAFE [{self.failed_condition}] "
            f"({self.solve_seconds:.3f}s)"
        )


@dataclass
class VerificationReport:
    """Outcome of one circuit's verification over its dirty qubits.

    ``total_seconds`` is the wall time of the verify *call* that
    produced the report — for a batched call, the whole batch (shared,
    possibly overlapping work makes per-job wall time ill-defined), so
    it must not be summed across a batch.  ``solver_seconds`` is the
    per-qubit attribution Figures 6.3/6.4 plot.
    """

    backend: str
    num_qubits: int
    num_gates: int
    verdicts: List[QubitVerdict] = field(default_factory=list)
    track_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Memoised verdicts reused / freshly computed by the batch engine
    #: (both stay 0 on the non-memoising single-shot path).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def all_safe(self) -> bool:
        return all(v.safe for v in self.verdicts)

    @property
    def solver_seconds(self) -> float:
        """Aggregate backend time — the quantity Figures 6.3/6.4 plot."""
        return sum(v.solve_seconds for v in self.verdicts)

    def verdict_for(self, name: str) -> QubitVerdict:
        for verdict in self.verdicts:
            if verdict.name == name:
                return verdict
        raise VerificationError(f"no verdict for qubit {name!r}")

    def summary(self) -> str:
        lines = [
            f"backend={self.backend} qubits={self.num_qubits} "
            f"gates={self.num_gates} "
            f"solver={self.solver_seconds:.3f}s total={self.total_seconds:.3f}s"
        ]
        lines.extend(f"  {verdict}" for verdict in self.verdicts)
        return "\n".join(lines)


def outcome_to_verdict(
    circuit: Circuit,
    names: Dict[int, str],
    outcome: BooleanCheckOutcome,
    replay: bool,
) -> QubitVerdict:
    """Turn a backend outcome into a verdict, replaying counterexamples."""
    name = names[outcome.qubit]
    if outcome.safe:
        return QubitVerdict(
            outcome.qubit, name, True, solve_seconds=outcome.solve_seconds
        )
    assignment = dict(outcome.counterexample or {})
    input_bits = [
        1 if assignment.get(names[q], False) else 0
        for q in range(circuit.num_qubits)
    ]
    if outcome.failed_condition == "zero-restoration":
        input_bits[outcome.qubit] = 0
    counterexample = Counterexample(
        outcome.failed_condition, assignment, input_bits
    )
    if replay:
        replay_counterexample(circuit, outcome.qubit, counterexample)
    return QubitVerdict(
        outcome.qubit,
        name,
        False,
        failed_condition=outcome.failed_condition,
        counterexample=counterexample,
        solve_seconds=outcome.solve_seconds,
    )


def replay_counterexample(
    circuit: Circuit, qubit: int, cex: Counterexample
) -> None:
    """Confirm a counterexample on the classical simulator."""
    bits = list(cex.input_bits)
    if cex.kind == "zero-restoration":
        bits[qubit] = 0
        out = apply_to_bits(circuit, bits)
        if out[qubit] == 0:
            raise VerificationError(
                f"backend produced a bogus zero-restoration counterexample "
                f"{bits}"
            )
        return
    if cex.kind == "plus-restoration":
        low = list(bits)
        low[qubit] = 0
        high = list(bits)
        high[qubit] = 1
        out_low = apply_to_bits(circuit, low)
        out_high = apply_to_bits(circuit, high)
        differs = any(
            out_low[w] != out_high[w]
            for w in range(circuit.num_qubits)
            if w != qubit
        )
        if not differs:
            raise VerificationError(
                f"backend produced a bogus plus-restoration counterexample "
                f"{bits}"
            )
        return
    raise VerificationError(f"unknown counterexample kind {cex.kind!r}")
