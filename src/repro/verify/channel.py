"""Definition 5.1: safe uncomputation at the quantum-operation level, and
its lift to whole programs.

``E = I_q ⊗ E'`` is decided through the Kraus representation: any two
Kraus representations of a CP map are related by an isometric mixing, so
*every* Kraus operator of ``I_q ⊗ E'`` has the block form
``[[B, 0], [0, B]]`` with the dirty qubit's wire in front.  The block test
of :mod:`repro.verify.unitary` therefore applies operator by operator
(now allowing the two diagonal blocks to be any equal matrices, not
unitaries).

The module also implements:

* :func:`program_safely_uncomputes` — Definition 5.1 quantified over all
  executions ``E ∈ ⟦S⟧``;
* :func:`borrow_statement_safe` — the paper's "the borrow is safe" notion;
* :func:`program_is_safe` — all borrows safe, with the Theorem 5.5
  determinism criterion available as :func:`semantics_is_deterministic`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channels.operation import QuantumOperation
from repro.errors import SemanticsError
from repro.lang.ast import Borrow, If, Seq, Statement, While, idle, substitute
from repro.semantics.denotational import Interpretation
from repro.verify.unitary import move_qubit_front


def operation_acts_identity_on(
    operation: QuantumOperation, qubit: int, atol: float = 1e-9
) -> bool:
    """Definition 5.1 for one operation: ``E = I_q ⊗ E'``?"""
    n = operation.num_qubits
    half = 2 ** (n - 1)
    for kraus in operation.kraus:
        moved = move_qubit_front(kraus, qubit, n)
        a = moved[:half, :half]
        b = moved[:half, half:]
        c = moved[half:, :half]
        d = moved[half:, half:]
        if not (
            np.allclose(b, 0.0, atol=atol)
            and np.allclose(c, 0.0, atol=atol)
            and np.allclose(a, d, atol=atol)
        ):
            return False
    return True


def program_safely_uncomputes(
    stmt: Statement,
    qubit: str,
    universe: Sequence[str],
    interpretation: Optional[Interpretation] = None,
    atol: float = 1e-9,
) -> bool:
    """Definition 5.1: every execution of ``stmt`` is identity on ``qubit``.

    A stuck program (empty semantics) vacuously safely uncomputes every
    qubit, matching the universal quantification.
    """
    interp = interpretation or Interpretation(universe)
    if qubit not in interp.universe:
        raise SemanticsError(f"qubit {qubit!r} is not in the universe")
    wire = interp.universe.index(qubit)
    return all(
        operation_acts_identity_on(op, wire, atol=atol)
        for op in interp.denote(stmt)
    )


def borrow_statement_safe(
    stmt: Borrow,
    universe: Sequence[str],
    interpretation: Optional[Interpretation] = None,
    atol: float = 1e-9,
) -> bool:
    """Is ``borrow a; S; release a`` safe?

    Following Definition 5.1's reading: for every candidate instantiation
    ``q ∈ idle(S)``, the instantiated body ``S[q/a]`` must safely
    uncompute ``q``.
    """
    interp = interpretation or Interpretation(universe)
    pool = idle(stmt.body, interp.universe)
    for qubit in sorted(pool):
        body = substitute(stmt.body, {stmt.placeholder: qubit})
        if not program_safely_uncomputes(
            body, qubit, interp.universe, interpretation=interp, atol=atol
        ):
            return False
    return True


def program_is_safe(
    stmt: Statement,
    universe: Sequence[str],
    interpretation: Optional[Interpretation] = None,
    atol: float = 1e-9,
) -> bool:
    """All ``borrow`` statements in ``stmt`` are safe (Section 5)."""
    interp = interpretation or Interpretation(universe)

    def walk(node: Statement) -> bool:
        if isinstance(node, Borrow):
            return borrow_statement_safe(
                node, interp.universe, interpretation=interp, atol=atol
            ) and walk(node.body)
        if isinstance(node, Seq):
            return all(walk(item) for item in node.items)
        if isinstance(node, If):
            return walk(node.then_branch) and walk(node.else_branch)
        if isinstance(node, While):
            return walk(node.body)
        return True

    return walk(stmt)


def semantics_is_deterministic(
    stmt: Statement,
    universe: Sequence[str],
    interpretation: Optional[Interpretation] = None,
) -> bool:
    """Theorem 5.5's criterion: ``|⟦S⟧| <= 1``."""
    interp = interpretation or Interpretation(universe)
    return len(interp.denote(stmt)) <= 1
