"""Formula tracking for the Section 6.1 reduction.

:func:`track_circuit` scans a classical circuit once, maintaining for
every qubit ``q`` the Boolean formula ``b_q`` over the initial-state
variables (X: ``b := ¬b``; multi-controlled NOT: ``b_t := b_t ⊕
(b_{c1} ... b_{cm})``), with the paper's ``x ⊕ x = 0`` simplification
applied through hash-consing.  :func:`formula_61` and :func:`formula_62`
then build the two Theorem 6.4 obligations; deciding their
unsatisfiability is the job of the pluggable checkers in
:mod:`repro.verify.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.boolfn.expr import Expr, ExprBuilder
from repro.circuits.circuit import Circuit
from repro.errors import VerificationError


@dataclass
class TrackedFormulas:
    """Per-qubit Boolean formulas of a classical circuit (Section 6.1)."""

    builder: ExprBuilder
    circuit: Circuit
    names: Dict[int, str]
    input_vars: Dict[int, Expr]
    formulas: Dict[int, Expr]

    def formula_of(self, qubit: int) -> Expr:
        return self.formulas[qubit]

    def name_of(self, qubit: int) -> str:
        return self.names[qubit]


def track_circuit(
    circuit: Circuit,
    simplify_xor: bool = True,
    builder: Optional[ExprBuilder] = None,
) -> TrackedFormulas:
    """Scan the circuit once and return every ``b_q`` (linear-time)."""
    builder = builder or ExprBuilder(simplify_xor=simplify_xor)
    names: Dict[int, str] = {}
    for q in range(circuit.num_qubits):
        names[q] = circuit.label_of(q)
    if len(set(names.values())) != len(names):
        raise VerificationError("circuit labels are not unique")

    input_vars = {q: builder.var(names[q]) for q in range(circuit.num_qubits)}
    formulas = dict(input_vars)
    for gate in circuit.gates:
        if not gate.is_classical:
            raise VerificationError(
                f"gate {gate} is not classical; the Section 6 reduction "
                f"applies to X / multi-controlled-NOT circuits only"
            )
        target = gate.target
        if gate.controls:
            controls = builder.and_([formulas[c] for c in gate.controls])
            formulas[target] = builder.xor_([formulas[target], controls])
        else:
            formulas[target] = builder.not_(formulas[target])
    return TrackedFormulas(builder, circuit, names, input_vars, formulas)


def formula_61(tracked: TrackedFormulas, qubit: int) -> Expr:
    """Formula (6.1): ``¬(b_q → q)``; unsatisfiable ⇔ |0> is restored."""
    builder = tracked.builder
    b_q = tracked.formulas[qubit]
    q_var = tracked.input_vars[qubit]
    return builder.and_([b_q, builder.not_(q_var)])


def formula_62(
    tracked: TrackedFormulas,
    qubit: int,
    others: Optional[Sequence[int]] = None,
) -> Expr:
    """Formula (6.2): ``∨_{q'≠q} b_{q'}[0/q] ⊕ b_{q'}[1/q]``.

    Unsatisfiable ⇔ every other qubit's final value is independent of the
    dirty qubit's initial value ⇔ |+> is restored.
    """
    builder = tracked.builder
    name = tracked.names[qubit]
    disjuncts: List[Expr] = []
    pool = others if others is not None else [
        q for q in range(tracked.circuit.num_qubits) if q != qubit
    ]
    for other in pool:
        if other == qubit:
            continue
        b_other = tracked.formulas[other]
        low = builder.cofactor(b_other, name, False)
        high = builder.cofactor(b_other, name, True)
        disjuncts.append(builder.xor_([low, high]))
    return builder.or_(disjuncts)
