"""The Figure 6.1 construction trace: formulas after every gate.

Running :func:`formula_trace` on the dirty-qubit CCCNOT circuit of
Figure 1.3 regenerates the paper's table row by row, including the
``b_a = a`` collapse after the third gate (the ``x ⊕ x = 0``
simplification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.boolfn.anf import anf_to_string, to_anf
from repro.boolfn.expr import ExprBuilder
from repro.circuits.circuit import Circuit
from repro.errors import VerificationError


@dataclass(frozen=True)
class TraceRow:
    """Formulas of every qubit after one gate (rendered in ANF)."""

    step: int
    gate: str
    formulas: Dict[str, str]


def formula_trace(circuit: Circuit, anf_budget: int = 512) -> List[TraceRow]:
    """Gate-by-gate formula table (row 0 is the initial assignment)."""
    builder = ExprBuilder()
    names = {q: circuit.label_of(q) for q in range(circuit.num_qubits)}
    formulas = {q: builder.var(names[q]) for q in range(circuit.num_qubits)}

    def snapshot(step: int, gate_text: str) -> TraceRow:
        rendered = {
            names[q]: anf_to_string(to_anf(formulas[q], budget=anf_budget))
            for q in range(circuit.num_qubits)
        }
        return TraceRow(step, gate_text, rendered)

    rows = [snapshot(0, "initial")]
    for index, gate in enumerate(circuit.gates, start=1):
        if not gate.is_classical:
            raise VerificationError(f"gate {gate} is not classical")
        if gate.controls:
            controls = builder.and_([formulas[c] for c in gate.controls])
            formulas[gate.target] = builder.xor_(
                [formulas[gate.target], controls]
            )
        else:
            formulas[gate.target] = builder.not_(formulas[gate.target])
        rows.append(snapshot(index, str(gate)))
    return rows


def render_trace(rows: List[TraceRow]) -> str:
    """Pretty-print the trace as a fixed-width table."""
    if not rows:
        return ""
    names = list(rows[0].formulas)
    widths = {
        name: max(
            len(name), max(len(row.formulas[name]) for row in rows)
        )
        for name in names
    }
    gate_width = max(len("gate"), max(len(row.gate) for row in rows))
    header = "  ".join(
        ["gate".ljust(gate_width)]
        + [f"b_{name}".ljust(widths[name] + 2) for name in names]
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(
                [row.gate.ljust(gate_width)]
                + [row.formulas[name].ljust(widths[name] + 2) for name in names]
            )
        )
    return "\n".join(lines)
