"""The batch verification engine — the Section 6 pipeline at throughput.

Every caller used to re-track and re-encode each circuit per call;
:class:`BatchVerifier` is the shared engine behind
:func:`repro.verify.pipeline.verify_circuit`, the program verifier and
the multi-programming scheduler.  For a batch of jobs it

* tracks each distinct circuit once (:func:`track_circuit`) and builds
  one backend checker per (circuit, backend) pair, so Tseitin tables and
  compiled BDDs are shared across every qubit check on that circuit;
* fans the per-qubit checks out over a ``concurrent.futures`` thread
  pool (``max_workers``), serialising backends that are not
  ``parallel_safe`` through their per-instance lock;
* memoises verdicts keyed by ``(circuit fingerprint, qubit, backend)``
  so repeated borrows of the same ancilla — the scheduler-time hot path
  — are cache hits, not solver runs.

The memo cache holds raw :class:`BooleanCheckOutcome` records; verdict
construction (and counterexample replay) happens per request, so a
cached unsafe outcome is still re-validated on the simulator unless the
caller opts out of replay.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.circuits.circuit import Circuit
from repro.errors import VerificationError
from repro.verify.backends import CheckerBackend, make_checker
from repro.verify.backends.base import BooleanCheckOutcome
from repro.verify.report import (
    VerificationReport,
    outcome_to_verdict,
)
from repro.verify.tracking import TrackedFormulas, track_circuit

#: (circuit fingerprint, qubit, backend, simplify_xor) -> outcome.
VerdictCache = Dict[Tuple[str, int, str, bool], BooleanCheckOutcome]

#: Per-process checker cache for the process-pool executor.  Workers
#: receive (circuit, qubit) jobs and rebuild tracking + checker once
#: per (circuit, backend, simplify_xor); later jobs on the same circuit
#: — including the incremental SAT backend's long-lived solver — reuse
#: the warm instance for the lifetime of the worker process.
_WORKER_CHECKERS: Dict[Tuple[str, str, bool], CheckerBackend] = {}


def _process_check(
    circuit: Circuit,
    qubits: Sequence[int],
    backend: str,
    simplify_xor: bool,
    cache_path: Optional[str] = None,
) -> Tuple[List[BooleanCheckOutcome], int]:
    """Top-level (picklable) worker: check a chunk of qubits in this
    process.  Chunks are per-circuit so the tracking rebuild — and the
    incremental SAT backend's shared instance — amortise over every
    qubit in the chunk.

    When the parent verifier's memo is a
    :class:`~repro.verify.cache.DiskVerdictCache`, ``cache_path``
    points at its file and the worker joins the share *mid-batch*: it
    re-reads the file at chunk start (picking up verdicts other
    workers — of this verifier or any concurrent one — flushed since),
    solves only the remainder, and flushes its fresh verdicts before
    returning (a read-merge-write under the cache's sidecar lock, so
    chunks racing their flushes union rather than clobber).  Returns
    the outcomes in ``qubits`` order plus how many came from disk.
    """
    fingerprint = circuit.fingerprint()
    cache = None
    if cache_path is not None:
        from repro.verify.cache import DiskVerdictCache

        cache = DiskVerdictCache(cache_path, autosave=False)
    checker = None
    outcomes: List[BooleanCheckOutcome] = []
    disk_hits = 0
    solved = False
    for qubit in qubits:
        key = (fingerprint, qubit, backend, simplify_xor)
        if cache is not None and key in cache:
            outcomes.append(cache[key])
            disk_hits += 1
            continue
        if checker is None:
            warm_key = (fingerprint, backend, simplify_xor)
            checker = _WORKER_CHECKERS.get(warm_key)
            if checker is None:
                tracked = track_circuit(circuit, simplify_xor=simplify_xor)
                checker = make_checker(tracked, backend)
                _WORKER_CHECKERS[warm_key] = checker
        outcome = checker.check_qubit(qubit)
        outcomes.append(outcome)
        if cache is not None:
            cache[key] = outcome
            solved = True
    if cache is not None and solved:
        cache.flush()
    return outcomes, disk_hits


@dataclass(frozen=True)
class VerificationJob:
    """One circuit plus the dirty qubits to check on it.

    ``backend=None`` inherits the verifier's default, so heterogeneous
    batches (e.g. BDD for adders, SAT for MCX) can ride in one call.
    """

    circuit: Circuit
    dirty_qubits: Tuple[int, ...]
    backend: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "dirty_qubits", tuple(self.dirty_qubits))


JobLike = Union[VerificationJob, Tuple[Circuit, Sequence[int]]]


def _as_job(job: JobLike) -> VerificationJob:
    if isinstance(job, VerificationJob):
        return job
    circuit, qubits = job
    return VerificationJob(circuit, tuple(qubits))


class BatchVerifier:
    """Reusable verification engine with shared structures and memoisation.

    Parameters
    ----------
    backend:
        Default backend name for jobs that do not pin their own.
    max_workers:
        Worker count for fanning out per-qubit checks; ``None`` uses
        the CPU count.  ``1`` degenerates to the sequential loop.
    executor:
        ``"thread"`` (default) fans out over a thread pool — cheap,
        shares every in-process structure, but pure-Python solver
        backends serialise on the GIL.  ``"process"`` fans out over a
        persistent :class:`~concurrent.futures.ProcessPoolExecutor`
        for true multi-core solving: each worker process rebuilds
        tracking and its own checker per circuit (cached for the
        worker's lifetime) and results merge back into this verifier's
        memo and any shared :class:`~repro.verify.cache.DiskVerdictCache`.
        With a disk cache the workers also share it *mid-batch*: each
        chunk re-reads the file before solving (skipping verdicts any
        other worker or verifier already flushed — counted in
        :attr:`worker_disk_hits`) and flushes its own fresh verdicts
        under the cache's writer lock before returning, so concurrent
        verifiers on one ``cache_path`` converge while their batches
        are still in flight, not only at flush boundaries.
        Call :meth:`close` (or use the verifier as a context manager)
        to reap the pool.
    simplify_xor:
        Apply the Figure 6.1 ``x ⊕ x = 0`` rule while tracking.
    replay:
        Re-execute counterexamples on the classical simulator and raise
        if they do not actually violate the claimed condition.
    cache:
        Optional externally shared verdict cache (a mutable mapping);
        by default each verifier owns a private one.  Pass a
        :class:`repro.verify.cache.DiskVerdictCache` to persist
        verdicts across processes.
    cache_path:
        Convenience for the disk cache: a path here constructs a
        :class:`~repro.verify.cache.DiskVerdictCache` over it (mutually
        exclusive with ``cache``).
    """

    def __init__(
        self,
        backend: str = "cdcl",
        max_workers: Optional[int] = None,
        simplify_xor: bool = True,
        replay: bool = True,
        cache: Optional[VerdictCache] = None,
        cache_path: Optional[str] = None,
        executor: str = "thread",
    ):
        if max_workers is not None and max_workers < 1:
            raise VerificationError("max_workers must be at least 1")
        if executor not in ("thread", "process"):
            raise VerificationError(
                f"unknown executor {executor!r}: pick 'thread' or 'process'"
            )
        if cache is not None and cache_path is not None:
            raise VerificationError(
                "pass either cache or cache_path, not both"
            )
        if cache_path is not None:
            from repro.verify.cache import DiskVerdictCache

            cache = DiskVerdictCache(cache_path)
        self.backend = backend
        self.max_workers = max_workers or os.cpu_count() or 1
        self.executor = executor
        self.simplify_xor = simplify_xor
        self.replay = replay
        self.cache: VerdictCache = {} if cache is None else cache
        self.cache_hits = 0
        self.cache_misses = 0
        #: Verdicts process-pool workers pulled from a shared
        #: :class:`~repro.verify.cache.DiskVerdictCache` *mid-batch* —
        #: solver runs another worker (possibly of another verifier)
        #: had already paid for before this verifier's own memo or
        #: flush cycle could see them.
        self.worker_disk_hits = 0
        self._tracked: Dict[str, TrackedFormulas] = {}
        self._track_seconds: Dict[str, float] = {}
        self._checkers: Dict[Tuple[str, str], CheckerBackend] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut down the process pool, if one was ever started.

        Idempotent; the verifier remains usable afterwards (a later
        process-executor batch lazily starts a fresh pool).
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "BatchVerifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def clear(self) -> None:
        """Drop memoised verdicts and per-circuit structures.

        Per-circuit trackers, checkers (compiled BDDs, Tseitin tables,
        portfolio pools) and cached verdicts are retained for the
        verifier's lifetime; a long-running service cycling through many
        *distinct* circuits should call this periodically to bound
        memory.
        """
        self.cache.clear()
        self._tracked.clear()
        self._track_seconds.clear()
        self._checkers.clear()

    def verify_circuit(
        self,
        circuit: Circuit,
        dirty_qubits: Sequence[int],
        backend: Optional[str] = None,
    ) -> VerificationReport:
        """Verify one circuit (a batch of size one)."""
        job = VerificationJob(circuit, tuple(dirty_qubits), backend)
        return self.verify_circuits([job])[0]

    def verify_circuits(self, jobs: Iterable[JobLike]) -> List[VerificationReport]:
        """Verify a batch of jobs, sharing structures and memoised verdicts.

        Returns one :class:`VerificationReport` per job, in input order.
        Because work is shared and may overlap across jobs, per-job wall
        time is not well-defined: each report's ``total_seconds`` is the
        elapsed time of the *whole* call (do not sum it over a batch);
        per-qubit ``solve_seconds`` carries the attribution.
        """
        started = time.perf_counter()
        batch = [_as_job(job) for job in jobs]
        for job in batch:
            for qubit in job.dirty_qubits:
                if not 0 <= qubit < job.circuit.num_qubits:
                    raise VerificationError(
                        f"dirty qubit {qubit} outside the register"
                    )

        # Shared per-circuit structures: one tracking pass, one checker.
        plan: List[Tuple[VerificationJob, str, str]] = []
        for job in batch:
            backend = job.backend or self.backend
            fingerprint = job.circuit.fingerprint()
            self._ensure_checker(job.circuit, fingerprint, backend)
            plan.append((job, fingerprint, backend))

        # Deduplicate against the memo cache and within the batch.
        pending: Dict[
            Tuple[str, int, str, bool], Tuple[CheckerBackend, int, Circuit]
        ] = {}
        hits: Dict[int, int] = {}
        misses: Dict[int, int] = {}
        for index, (job, fingerprint, backend) in enumerate(plan):
            for qubit in job.dirty_qubits:
                key = (fingerprint, qubit, backend, self.simplify_xor)
                if key in self.cache:
                    hits[index] = hits.get(index, 0) + 1
                elif key in pending:
                    hits[index] = hits.get(index, 0) + 1
                else:
                    checker = self._checkers[(fingerprint, backend)]
                    pending[key] = (checker, qubit, job.circuit)
                    misses[index] = misses.get(index, 0) + 1
        self._execute(pending)

        # Assemble per-job reports (replay happens here, on this thread).
        reports: List[VerificationReport] = []
        for index, (job, fingerprint, backend) in enumerate(plan):
            tracked = self._tracked[fingerprint]
            verdicts = [
                outcome_to_verdict(
                    job.circuit,
                    tracked.names,
                    self.cache[(fingerprint, qubit, backend, self.simplify_xor)],
                    self.replay,
                )
                for qubit in job.dirty_qubits
            ]
            reports.append(
                VerificationReport(
                    backend=backend,
                    num_qubits=job.circuit.num_qubits,
                    num_gates=len(job.circuit.gates),
                    verdicts=verdicts,
                    track_seconds=self._track_seconds[fingerprint],
                    total_seconds=time.perf_counter() - started,
                    cache_hits=hits.get(index, 0),
                    cache_misses=misses.get(index, 0),
                )
            )
        self.cache_hits += sum(hits.values())
        self.cache_misses += sum(misses.values())
        return reports

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _ensure_checker(
        self, circuit: Circuit, fingerprint: str, backend: str
    ) -> CheckerBackend:
        tracked = self._tracked.get(fingerprint)
        if tracked is None:
            track_start = time.perf_counter()
            tracked = track_circuit(circuit, simplify_xor=self.simplify_xor)
            self._track_seconds[fingerprint] = (
                time.perf_counter() - track_start
            )
            self._tracked[fingerprint] = tracked
        key = (fingerprint, backend)
        checker = self._checkers.get(key)
        if checker is None:
            checker = make_checker(tracked, backend)
            self._checkers[key] = checker
        return checker

    @staticmethod
    def _run_check(checker: CheckerBackend, qubit: int) -> BooleanCheckOutcome:
        if checker.parallel_safe:
            return checker.check_qubit(qubit)
        with checker.serial_lock:
            return checker.check_qubit(qubit)

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _execute_process(
        self,
        pending: Dict[
            Tuple[str, int, str, bool], Tuple[CheckerBackend, int, Circuit]
        ],
    ) -> None:
        """Fan pending checks out over the process pool.

        Work ships as per-circuit chunks, not per-qubit tasks: each
        chunk pays one tracking rebuild in its worker and then runs all
        its qubits against the worker's warm checker.  When the batch
        holds fewer circuits than workers, each circuit's qubit list is
        split so every worker still gets work.
        """
        groups: Dict[
            Tuple[str, str, bool], Tuple[Circuit, List[Tuple[tuple, int]]]
        ] = {}
        for key, (_, qubit, circuit) in pending.items():
            fingerprint, _, backend, simplify_xor = key
            group = groups.setdefault(
                (fingerprint, backend, simplify_xor), (circuit, [])
            )
            group[1].append((key, qubit))
        # Oversubscribe chunks 2x so heterogeneous circuits load-balance
        # (the largest circuit otherwise pins the makespan); tracking
        # rebuilds cost milliseconds, so extra chunks are cheap.
        chunks_per_group = max(1, -(-2 * self.max_workers // len(groups)))
        pool = self._process_pool()
        futures = []
        cache_path = getattr(self.cache, "path", None)
        for (_, backend, simplify_xor), (circuit, items) in groups.items():
            splits = min(chunks_per_group, len(items))
            size = -(-len(items) // splits)
            for offset in range(0, len(items), size):
                chunk = items[offset : offset + size]
                futures.append(
                    (
                        chunk,
                        pool.submit(
                            _process_check,
                            circuit,
                            [qubit for _, qubit in chunk],
                            backend,
                            simplify_xor,
                            cache_path,
                        ),
                    )
                )
        for chunk, future in futures:
            outcomes, disk_hits = future.result()
            self.worker_disk_hits += disk_hits
            for (key, _), outcome in zip(chunk, outcomes):
                self.cache[key] = outcome

    def _execute(
        self,
        pending: Dict[
            Tuple[str, int, str, bool], Tuple[CheckerBackend, int, Circuit]
        ],
    ) -> None:
        if not pending:
            return
        # A persistent cache flushes once per batch, not per verdict
        # (duck-typed so plain dicts keep working).
        deferred = getattr(self.cache, "deferred", None)
        store = deferred() if deferred is not None else nullcontext()
        with store:
            if self.max_workers == 1 or len(pending) == 1:
                for key, (checker, qubit, _) in pending.items():
                    self.cache[key] = checker.check_qubit(qubit)
                return
            if self.executor == "process":
                self._execute_process(pending)
                return
            workers = min(self.max_workers, len(pending))
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="verify"
            ) as pool:
                futures = {
                    key: pool.submit(self._run_check, checker, qubit)
                    for key, (checker, qubit, _) in pending.items()
                }
                for key, future in futures.items():
                    self.cache[key] = future.result()
