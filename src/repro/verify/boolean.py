"""Compatibility façade over the Section 6.1 reduction.

The original monolith lived here; the pieces now have homes of their own
and this module re-exports them so existing imports keep working:

* formula tracking — :mod:`repro.verify.tracking`;
* backend implementations and the registry —
  :mod:`repro.verify.backends`;
* the batch engine — :mod:`repro.verify.batch`.

New code should import from those modules (or :mod:`repro.verify`)
directly.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.verify.backends import (
    BddCheckerBackend,
    BooleanCheckOutcome,
    CheckerBackend,
    available_backends,
    make_checker,
)
from repro.verify.tracking import (
    TrackedFormulas,
    formula_61,
    formula_62,
    track_circuit,
)

#: Registered backend names (kept as a tuple for the historical API).
BACKENDS = available_backends()

#: Historical alias: the BDD checker predates the backend registry.
BddBooleanChecker = BddCheckerBackend


class SatBooleanChecker:
    """Historical wrapper: SAT checker selected by solver name.

    Kept for callers of the pre-registry API; delegates to the
    registered backend classes.
    """

    def __init__(self, tracked: TrackedFormulas, solver: str = "cdcl"):
        if solver not in ("cdcl", "dpll", "brute"):
            raise SolverError(f"unknown SAT backend {solver!r}")
        self.tracked = tracked
        self.solver = solver
        self._impl: CheckerBackend = make_checker(tracked, solver)

    def check_qubit(self, qubit: int) -> BooleanCheckOutcome:
        return self._impl.check_qubit(qubit)


__all__ = [
    "BACKENDS",
    "BddBooleanChecker",
    "BooleanCheckOutcome",
    "SatBooleanChecker",
    "TrackedFormulas",
    "formula_61",
    "formula_62",
    "make_checker",
    "track_circuit",
]
