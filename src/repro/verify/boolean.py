"""The Section 6.1 reduction: safe uncomputation as Boolean unsatisfiability.

Pipeline
--------
1. :func:`track_circuit` scans a classical circuit once, maintaining for
   every qubit ``q`` the Boolean formula ``b_q`` over the initial-state
   variables (X: ``b := ¬b``; multi-controlled NOT: ``b_t := b_t ⊕
   (b_{c1} ... b_{cm})``), with the paper's ``x ⊕ x = 0`` simplification
   applied through hash-consing.
2. :func:`formula_61` builds ``¬(b_q → q)`` (the ``|0>``-restoration
   check) and :func:`formula_62` builds ``∨_{q'≠q} b_{q'}[0/q] ⊕
   b_{q'}[1/q]`` (the ``|+>``-restoration / independence check).
3. A backend decides unsatisfiability:

   * ``cdcl`` / ``dpll`` — Tseitin-encode and run a SAT solver;
   * ``bdd``  — compile to ROBDDs (with formula sharing) where
     unsatisfiability is canonical equality with the 0 terminal;
   * ``brute`` — enumerate assignments (oracle for small circuits).

By Theorem 6.4, both formulas unsatisfiable ⇔ the circuit safely
uncomputes the dirty qubit.  A satisfying model is decoded into a concrete
counterexample assignment of the initial computational-basis state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bdd.robdd import Bdd
from repro.boolfn.cnf import TseitinEncoder
from repro.boolfn.expr import Expr, ExprBuilder
from repro.circuits.circuit import Circuit
from repro.errors import SolverError, VerificationError
from repro.sat.brute import brute_force_solve
from repro.sat.cdcl import CdclSolver
from repro.sat.dpll import DpllSolver

BACKENDS = ("cdcl", "dpll", "bdd", "bdd-reversed", "brute")


@dataclass
class TrackedFormulas:
    """Per-qubit Boolean formulas of a classical circuit (Section 6.1)."""

    builder: ExprBuilder
    circuit: Circuit
    names: Dict[int, str]
    input_vars: Dict[int, Expr]
    formulas: Dict[int, Expr]

    def formula_of(self, qubit: int) -> Expr:
        return self.formulas[qubit]

    def name_of(self, qubit: int) -> str:
        return self.names[qubit]


def track_circuit(
    circuit: Circuit,
    simplify_xor: bool = True,
    builder: Optional[ExprBuilder] = None,
) -> TrackedFormulas:
    """Scan the circuit once and return every ``b_q`` (linear-time)."""
    builder = builder or ExprBuilder(simplify_xor=simplify_xor)
    names: Dict[int, str] = {}
    for q in range(circuit.num_qubits):
        names[q] = circuit.label_of(q)
    if len(set(names.values())) != len(names):
        raise VerificationError("circuit labels are not unique")

    input_vars = {q: builder.var(names[q]) for q in range(circuit.num_qubits)}
    formulas = dict(input_vars)
    for gate in circuit.gates:
        if not gate.is_classical:
            raise VerificationError(
                f"gate {gate} is not classical; the Section 6 reduction "
                f"applies to X / multi-controlled-NOT circuits only"
            )
        target = gate.target
        if gate.controls:
            controls = builder.and_([formulas[c] for c in gate.controls])
            formulas[target] = builder.xor_([formulas[target], controls])
        else:
            formulas[target] = builder.not_(formulas[target])
    return TrackedFormulas(builder, circuit, names, input_vars, formulas)


def formula_61(tracked: TrackedFormulas, qubit: int) -> Expr:
    """Formula (6.1): ``¬(b_q → q)``; unsatisfiable ⇔ |0> is restored."""
    builder = tracked.builder
    b_q = tracked.formulas[qubit]
    q_var = tracked.input_vars[qubit]
    return builder.and_([b_q, builder.not_(q_var)])


def formula_62(
    tracked: TrackedFormulas,
    qubit: int,
    others: Optional[Sequence[int]] = None,
) -> Expr:
    """Formula (6.2): ``∨_{q'≠q} b_{q'}[0/q] ⊕ b_{q'}[1/q]``.

    Unsatisfiable ⇔ every other qubit's final value is independent of the
    dirty qubit's initial value ⇔ |+> is restored.
    """
    builder = tracked.builder
    name = tracked.names[qubit]
    disjuncts: List[Expr] = []
    pool = others if others is not None else [
        q for q in range(tracked.circuit.num_qubits) if q != qubit
    ]
    for other in pool:
        if other == qubit:
            continue
        b_other = tracked.formulas[other]
        low = builder.cofactor(b_other, name, False)
        high = builder.cofactor(b_other, name, True)
        disjuncts.append(builder.xor_([low, high]))
    return builder.or_(disjuncts)


# ---------------------------------------------------------------------- #
# Outcomes
# ---------------------------------------------------------------------- #


@dataclass
class BooleanCheckOutcome:
    """Verdict of the Theorem 6.4 check for one dirty qubit."""

    qubit: int
    safe: bool
    failed_condition: Optional[str] = None
    counterexample: Optional[Dict[str, bool]] = None
    solve_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.safe


# ---------------------------------------------------------------------- #
# SAT backends
# ---------------------------------------------------------------------- #


class SatBooleanChecker:
    """Decide formulas (6.1)/(6.2) with a CNF SAT solver."""

    def __init__(self, tracked: TrackedFormulas, solver: str = "cdcl"):
        if solver not in ("cdcl", "dpll", "brute"):
            raise SolverError(f"unknown SAT backend {solver!r}")
        self.tracked = tracked
        self.solver = solver

    def _solve(self, expr: Expr):
        encoder = TseitinEncoder()
        encoder.assert_true(expr)
        cnf = encoder.cnf
        if self.solver == "cdcl":
            result = CdclSolver(cnf).solve()
        elif self.solver == "dpll":
            result = DpllSolver(cnf).solve()
        else:
            result = brute_force_solve(cnf)
        model = None
        if result.is_sat:
            model = encoder.decode_model(result.model)
        return result, model, cnf

    def check_qubit(self, qubit: int) -> BooleanCheckOutcome:
        start = time.perf_counter()
        expr1 = formula_61(self.tracked, qubit)
        result1, model1, cnf1 = self._solve(expr1)
        if result1.is_sat:
            model1[self.tracked.names[qubit]] = False
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="zero-restoration",
                counterexample=model1,
                solve_seconds=time.perf_counter() - start,
                details={"cnf_clauses": len(cnf1.clauses)},
            )
        expr2 = formula_62(self.tracked, qubit)
        result2, model2, cnf2 = self._solve(expr2)
        elapsed = time.perf_counter() - start
        if result2.is_sat:
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="plus-restoration",
                counterexample=model2,
                solve_seconds=elapsed,
                details={"cnf_clauses": len(cnf2.clauses)},
            )
        return BooleanCheckOutcome(
            qubit,
            safe=True,
            solve_seconds=elapsed,
            details={
                "cnf_clauses": len(cnf1.clauses) + len(cnf2.clauses),
            },
        )


# ---------------------------------------------------------------------- #
# BDD backend
# ---------------------------------------------------------------------- #


class BddBooleanChecker:
    """Decide formulas (6.1)/(6.2) on ROBDDs with formula sharing.

    All final formulas are compiled once (shared node cache); per-qubit
    checks are then cofactor/XOR/zero-test, each memoised inside the
    manager.  ``reverse_order=True`` is the variable-order ablation.
    """

    def __init__(self, tracked: TrackedFormulas, reverse_order: bool = False):
        self.tracked = tracked
        order = [
            tracked.names[q] for q in range(tracked.circuit.num_qubits)
        ]
        if reverse_order:
            order = list(reversed(order))
        self.bdd = Bdd(order)
        self._expr_cache: Dict[int, int] = {}
        self.compiled: Dict[int, int] = {}
        for q in range(tracked.circuit.num_qubits):
            self.compiled[q] = self.bdd.from_expr(
                tracked.formulas[q], self._expr_cache
            )

    def check_qubit(self, qubit: int) -> BooleanCheckOutcome:
        start = time.perf_counter()
        name = self.tracked.names[qubit]
        bdd = self.bdd
        # Formula (6.1): b_q with q := 0 must be the 0 terminal.
        zero_cofactor = bdd.restrict(self.compiled[qubit], name, False)
        if not bdd.is_false(zero_cofactor):
            model = bdd.any_sat(zero_cofactor) or {}
            model[name] = False
            return BooleanCheckOutcome(
                qubit,
                safe=False,
                failed_condition="zero-restoration",
                counterexample=model,
                solve_seconds=time.perf_counter() - start,
                details={"bdd_nodes": bdd.node_count},
            )
        # Formula (6.2): each other final formula must be q-independent.
        for other in range(self.tracked.circuit.num_qubits):
            if other == qubit:
                continue
            f = self.compiled[other]
            derivative = bdd.apply_xor(
                bdd.restrict(f, name, False), bdd.restrict(f, name, True)
            )
            if not bdd.is_false(derivative):
                model = bdd.any_sat(derivative) or {}
                return BooleanCheckOutcome(
                    qubit,
                    safe=False,
                    failed_condition="plus-restoration",
                    counterexample=model,
                    solve_seconds=time.perf_counter() - start,
                    details={
                        "bdd_nodes": bdd.node_count,
                        "dependent_qubit": self.tracked.names[other],
                    },
                )
        return BooleanCheckOutcome(
            qubit,
            safe=True,
            solve_seconds=time.perf_counter() - start,
            details={"bdd_nodes": bdd.node_count},
        )


def make_checker(tracked: TrackedFormulas, backend: str = "cdcl"):
    """Instantiate a checker by backend name (see :data:`BACKENDS`)."""
    if backend in ("cdcl", "dpll", "brute"):
        return SatBooleanChecker(tracked, solver=backend)
    if backend == "bdd":
        return BddBooleanChecker(tracked)
    if backend == "bdd-reversed":
        return BddBooleanChecker(tracked, reverse_order=True)
    raise SolverError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )
