"""Theorem 6.2 decided exactly by truth-table enumeration.

For a classical circuit (X / multi-controlled-NOT only) with permutation
``f``, qubit ``q`` is safely uncomputed iff for every input ``x`` with
``q``-bit clear::

    f(x) has the q-bit clear            (|0> restoration)
    f(x) XOR f(x | q-bit) == q-bit      (|+> restoration / independence)

The second line says toggling the dirty qubit's input bit toggles exactly
that bit of the output.  (``f(x|q)`` having the bit *set* then follows
from injectivity of ``f``.)

This checker is exponential in the register width; it serves as the
differential-testing oracle for the SAT/BDD reduction of Theorem 6.4,
and as the naive-definition baseline that the Figure 1.4 counterexample
defeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.circuits.circuit import Circuit
from repro.circuits.classical import truth_table


@dataclass(frozen=True)
class ClassicalCheckResult:
    """Outcome of the Theorem 6.2 brute-force check.

    ``counterexample_input`` is the offending basis input (as a bit list,
    with the dirty qubit forced to 0); ``failed_condition`` is
    ``"zero-restoration"`` or ``"plus-restoration"``.
    """

    safe: bool
    failed_condition: Optional[str] = None
    counterexample_input: Optional[List[int]] = None

    def __bool__(self) -> bool:
        return self.safe


def classical_safe_uncomputation(
    circuit: Circuit, qubit: int
) -> ClassicalCheckResult:
    """Run the two Theorem 6.2 conditions over the full truth table."""
    n = circuit.num_qubits
    table = truth_table(circuit)
    bit = 1 << (n - 1 - qubit)
    for x in range(2**n):
        if x & bit:
            continue
        y0 = int(table[x])
        y1 = int(table[x | bit])
        if y0 & bit:
            return ClassicalCheckResult(
                False, "zero-restoration", _bits(x, n)
            )
        if (y0 ^ y1) != bit:
            return ClassicalCheckResult(
                False, "plus-restoration", _bits(x, n)
            )
    return ClassicalCheckResult(True)


def naive_classical_check(circuit: Circuit, qubit: int) -> bool:
    """The *insufficient* clean-qubit criterion from Section 1.

    Checks only that every computational-basis input has its ``qubit``
    bit restored — the condition the Figure 1.4 circuit satisfies while
    still failing dirty-qubit safety.  Kept as an executable foil.
    """
    n = circuit.num_qubits
    table = truth_table(circuit)
    bit = 1 << (n - 1 - qubit)
    return all((int(table[x]) & bit) == (x & bit) for x in range(2**n))


def _bits(x: int, n: int) -> List[int]:
    return [(x >> (n - 1 - i)) & 1 for i in range(n)]
