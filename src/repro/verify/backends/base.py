"""The abstract checker-backend interface.

A backend decides the two Theorem 6.4 obligations for one dirty qubit of
one tracked circuit.  Concrete backends subclass :class:`CheckerBackend`
and register themselves under a name with
:func:`repro.verify.backends.registry.register_backend`; callers obtain
instances through :func:`~repro.verify.backends.registry.make_checker`
or, at scale, through :class:`repro.verify.batch.BatchVerifier`.

Thread-safety contract
----------------------
``check_qubit`` may be called from worker threads by the batch engine.
A backend whose per-qubit checks can safely overlap sets
``parallel_safe = True`` (taking internal locks around any shared
mutable state); otherwise the batch engine serialises its checks through
``serial_lock``.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, Optional

from repro.verify.tracking import TrackedFormulas


@dataclass
class BooleanCheckOutcome:
    """Verdict of the Theorem 6.4 check for one dirty qubit."""

    qubit: int
    safe: bool
    failed_condition: Optional[str] = None
    counterexample: Optional[Dict[str, bool]] = None
    solve_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.safe


class CheckerBackend(abc.ABC):
    """One verification backend bound to one tracked circuit.

    Subclasses implement :meth:`check_qubit`; construction is the place
    to build shared per-circuit structures (compiled BDDs, Tseitin
    tables) that every per-qubit check then reuses.
    """

    #: Registry name; set by the ``@register_backend`` decorator.
    name: ClassVar[str] = "?"
    #: Whether concurrent ``check_qubit`` calls on one instance are safe.
    parallel_safe: ClassVar[bool] = False

    def __init__(self, tracked: TrackedFormulas):
        self.tracked = tracked
        #: Taken by the batch engine around checks of non-parallel-safe
        #: backends (one lock per instance, i.e. per circuit).
        self.serial_lock = threading.Lock()

    @abc.abstractmethod
    def check_qubit(
        self,
        qubit: int,
        cancel_event: Optional[threading.Event] = None,
    ) -> BooleanCheckOutcome:
        """Decide formulas (6.1)/(6.2) for one dirty qubit.

        ``cancel_event``, when given, is polled during long-running
        work; once set, the check unwinds with
        :class:`~repro.errors.SolverCancelled` instead of finishing.
        The portfolio backend uses this to reclaim losing contenders.
        """

    @staticmethod
    def _stop_check(
        cancel_event: Optional[threading.Event],
    ) -> Optional[Callable[[], bool]]:
        """Adapt an event to the solvers' ``stop_check`` protocol."""
        return None if cancel_event is None else cancel_event.is_set
