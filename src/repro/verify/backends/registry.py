"""The backend registry — one line over :mod:`repro.registry`.

Backends self-register at import time::

    @register_backend("cdcl")
    class CdclCheckerBackend(SatCheckerBackend):
        ...

and are instantiated by name::

    checker = make_checker(tracked, "cdcl")

:func:`available_backends` lists every registered name; an unknown name
raises :class:`~repro.errors.SolverError` naming the alternatives, so
typos fail with an actionable message.  The decorator machinery itself
is the shared :class:`repro.registry.Registry` — the allocation
strategies and queue policies ride the same implementation.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.registry import make_registry
from repro.verify.backends.base import CheckerBackend
from repro.verify.tracking import TrackedFormulas

_REGISTRY = make_registry(CheckerBackend, "backend", error=SolverError)

#: Class decorator: publish a :class:`CheckerBackend` under a name.
register_backend = _REGISTRY.register
#: All registered backend names, sorted.
available_backends = _REGISTRY.available
#: Look up a backend class by name (:class:`SolverError` if absent).
backend_class = _REGISTRY.get


def make_checker(tracked: TrackedFormulas, backend: str = "cdcl") -> CheckerBackend:
    """Instantiate a registered backend over one tracked circuit."""
    return _REGISTRY.make(backend, tracked)


__all__ = [
    "available_backends",
    "backend_class",
    "make_checker",
    "register_backend",
]
