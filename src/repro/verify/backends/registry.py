"""Decorator-based backend registry.

Backends self-register at import time::

    @register_backend("cdcl")
    class CdclCheckerBackend(SatCheckerBackend):
        ...

and are instantiated by name::

    checker = make_checker(tracked, "cdcl")

:func:`available_backends` lists every registered name; an unknown name
raises :class:`~repro.errors.SolverError` naming the alternatives, so
typos fail with an actionable message.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type

from repro.errors import SolverError
from repro.verify.backends.base import CheckerBackend
from repro.verify.tracking import TrackedFormulas

_REGISTRY: Dict[str, Type[CheckerBackend]] = {}


def register_backend(
    name: str,
) -> Callable[[Type[CheckerBackend]], Type[CheckerBackend]]:
    """Class decorator: publish a :class:`CheckerBackend` under ``name``."""

    def decorate(cls: Type[CheckerBackend]) -> Type[CheckerBackend]:
        if not (isinstance(cls, type) and issubclass(cls, CheckerBackend)):
            raise SolverError(
                f"backend {name!r} must subclass CheckerBackend, "
                f"got {cls!r}"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise SolverError(
                f"backend name {name!r} already registered by "
                f"{existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def available_backends() -> Tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def backend_class(name: str) -> Type[CheckerBackend]:
    """Look up a backend class by name (:class:`SolverError` if absent)."""
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(available_backends()) or "(none)"
        raise SolverError(
            f"unknown backend {name!r}; registered backends: {known}"
        )
    return cls


def make_checker(tracked: TrackedFormulas, backend: str = "cdcl") -> CheckerBackend:
    """Instantiate a registered backend over one tracked circuit."""
    return backend_class(backend)(tracked)
