"""The portfolio backend: race SAT against BDD, first verdict wins.

The paper's two scalable engines have complementary strengths — SAT
shines on the MCX family, BDDs on the adder family (Figures 6.3/6.4) —
and which one wins a given circuit is hard to predict.  The portfolio
runs both on a small thread pool and returns whichever verdict lands
first.  Both contenders are sound and complete on the classical
fragment, so racing never changes the verdict, only the latency profile.

Which SAT engine earns the seat is not hard-coded: by default the pair
comes from :func:`recorded_contenders`, which reads the committed
``BENCH_verify.json`` trajectory and promotes the fastest SAT-family
backend that completed the full bench workload (see
:func:`choose_contenders`).  Passing ``contenders=...`` explicitly
overrides the record.

Losing contenders are *cancelled*, not abandoned: the winner sets a
per-race event that the solvers poll at their loop heads, so the pool's
worker threads come back almost immediately instead of grinding out an
answer nobody wants.  Without this, back-to-back races (the batch
engine's steady state) queue behind zombie runs and the portfolio
degrades to the speed of its slowest engine.

The pool is per-instance and lives for the checker's lifetime, so a
batch sweep pays thread start-up once per circuit, not once per qubit.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from pathlib import Path
from typing import ClassVar, Dict, Optional, Sequence, Tuple

from repro.errors import SolverCancelled, SolverError
from repro.verify.backends.base import BooleanCheckOutcome, CheckerBackend
from repro.verify.backends.registry import make_checker, register_backend
from repro.verify.tracking import TrackedFormulas

#: Fallback contenders; first entry is the tiebreak on simultaneous wins.
DEFAULT_CONTENDERS: Tuple[str, ...] = ("cdcl", "bdd")

#: The SAT-family engines a recorded trajectory may promote into the
#: race (the BDD side is structurally different and stays fixed).
SAT_FAMILY: Tuple[str, ...] = ("cdcl", "dpll", "brute", "bitset")


def choose_contenders(record: Optional[dict]) -> Tuple[str, ...]:
    """Pick the portfolio pair from a ``BENCH_verify.json`` payload.

    The SAT contender is the fastest SAT-family backend the recorded
    trajectory shows completing the *largest* bench workload safely —
    capped engines (brute/bitset run reduced adders) never outrank one
    that went the distance.  The BDD side stays ``bdd``: the race exists
    because the two families have complementary strengths, so the choice
    worth recording is *which SAT engine* earns the seat.  An absent or
    unusable record falls back to :data:`DEFAULT_CONTENDERS`.
    """
    if not record:
        return DEFAULT_CONTENDERS
    rows = [r for r in record.get("backends") or [] if isinstance(r, dict)]
    full_n = max((r.get("adder_n") or 0 for r in rows), default=0)
    best = None
    best_seconds = None
    for row in rows:
        if row.get("backend") not in SAT_FAMILY or "error" in row:
            continue
        if row.get("adder_n") != full_n or row.get("all_safe") is not True:
            continue
        seconds = row.get("solver_seconds")
        if not isinstance(seconds, (int, float)):
            continue
        if best_seconds is None or seconds < best_seconds:
            best = row["backend"]
            best_seconds = seconds
    if best is None:
        return DEFAULT_CONTENDERS
    return (best, "bdd")


_RECORD_PATH = Path(__file__).resolve().parents[4] / "BENCH_verify.json"
_recorded_cache: Optional[Tuple[str, ...]] = None


def recorded_contenders(
    path: Optional[Path] = None,
) -> Tuple[str, ...]:
    """Contenders from the committed bench record (cached per process)."""
    global _recorded_cache
    if path is None and _recorded_cache is not None:
        return _recorded_cache
    record = None
    try:
        with open(path or _RECORD_PATH) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = None
    contenders = choose_contenders(record)
    if path is None:
        _recorded_cache = contenders
    return contenders


class _EitherSet:
    """Event-like view that is set when either underlying event is.

    Backends only ever consume ``is_set`` (directly or as a solver
    ``stop_check``), so this is enough to forward an outer cancellation
    into a race without sharing the race's own event across calls.
    """

    __slots__ = ("_first", "_second")

    def __init__(self, first: threading.Event, second: threading.Event):
        self._first = first
        self._second = second

    def is_set(self) -> bool:
        return self._first.is_set() or self._second.is_set()


@register_backend("portfolio")
class PortfolioCheckerBackend(CheckerBackend):
    """Race several registered backends and return the first verdict."""

    parallel_safe: ClassVar[bool] = True

    def __init__(
        self,
        tracked: TrackedFormulas,
        contenders: Optional[Sequence[str]] = None,
    ):
        super().__init__(tracked)
        if contenders is None:
            # The recorded bench trajectory decides which SAT engine
            # races bdd (falls back to DEFAULT_CONTENDERS when no
            # record is available).
            contenders = recorded_contenders()
        if not contenders:
            raise SolverError("portfolio needs at least one contender")
        if "portfolio" in contenders:
            raise SolverError("portfolio cannot race itself")
        self.contenders = tuple(contenders)
        # Contenders are built lazily *inside* the race: a BDD checker's
        # per-circuit compile happens on its own worker thread, so a
        # fast SAT verdict is not held up behind it (and vice versa).
        self._built: Dict[str, CheckerBackend] = {}
        self._build_locks = {name: threading.Lock() for name in contenders}
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.contenders),
            thread_name_prefix="portfolio",
        )
        # Idle pool workers block on their queue forever; wake them when
        # the checker is garbage-collected so threads do not leak.
        self._pool_finalizer = weakref.finalize(
            self, self._pool.shutdown, wait=False
        )

    def _checker_for(self, name: str) -> CheckerBackend:
        checker = self._built.get(name)
        if checker is None:
            with self._build_locks[name]:
                checker = self._built.get(name)
                if checker is None:
                    checker = make_checker(self.tracked, name)
                    self._built[name] = checker
        return checker

    def _guarded_check(
        self,
        name: str,
        qubit: int,
        cancel_event,  # Event or _EitherSet; only is_set() is consumed
    ) -> BooleanCheckOutcome:
        if cancel_event.is_set():
            raise SolverCancelled("race already decided")
        checker = self._checker_for(name)
        if cancel_event.is_set():
            raise SolverCancelled("race already decided")
        if checker.parallel_safe:
            return checker.check_qubit(qubit, cancel_event=cancel_event)
        with checker.serial_lock:
            return checker.check_qubit(qubit, cancel_event=cancel_event)

    def check_qubit(
        self,
        qubit: int,
        cancel_event: threading.Event = None,
    ) -> BooleanCheckOutcome:
        start = time.perf_counter()
        # Per-race event: the winner sets it, losers unwind on it.  An
        # outer cancellation is forwarded through a composite view, not
        # by sharing the event, so one race cannot cancel another.
        race_over = threading.Event()
        stop = (
            race_over
            if cancel_event is None
            else _EitherSet(race_over, cancel_event)
        )
        futures = {
            self._pool.submit(self._guarded_check, name, qubit, stop): name
            for name in self.contenders
        }
        pending = set(futures)
        last_error = None
        winner = None
        try:
            while pending and winner is None:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                # Among simultaneous finishers, prefer contender order.
                for future in sorted(
                    done, key=lambda f: self.contenders.index(futures[f])
                ):
                    error = future.exception()
                    if isinstance(error, SolverCancelled):
                        continue
                    if error is not None:
                        last_error = error
                        continue
                    winner = (future.result(), futures[future])
                    break
        finally:
            race_over.set()
        if winner is None:
            if cancel_event is not None and cancel_event.is_set():
                raise SolverCancelled("portfolio race cancelled by caller")
            raise SolverError(
                f"every portfolio contender failed; last error: {last_error}"
            ) from last_error
        outcome, name = winner
        outcome.solve_seconds = time.perf_counter() - start
        outcome.details = dict(outcome.details)
        outcome.details["winner"] = name
        return outcome
