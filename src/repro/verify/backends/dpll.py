"""The ablation-baseline backend: plain DPLL (DESIGN.md A2)."""

from __future__ import annotations

from repro.boolfn.cnf import Cnf
from repro.sat.dpll import DpllSolver
from repro.sat.result import SatResult
from repro.verify.backends.registry import register_backend
from repro.verify.backends.sat import SatCheckerBackend, StopCheck


@register_backend("dpll")
class DpllCheckerBackend(SatCheckerBackend):
    """Decide the obligations with :class:`repro.sat.dpll.DpllSolver`."""

    def _run_solver(self, cnf: Cnf, stop_check: StopCheck = None) -> SatResult:
        return DpllSolver(cnf, stop_check=stop_check).solve()
